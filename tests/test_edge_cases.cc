// Edge-case and failure-injection tests: degenerate graphs (empty, single
// edge, star, complete) through every sparsifier and the key metrics, RNG
// contract tests, and the Table 1 metric registry.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/eval/metric_info.h"
#include "src/graph/generators.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/metrics/maxflow.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

// --------------------------------------------------------------------------
// Degenerate graphs through every sparsifier.

class DegenerateGraphTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DegenerateGraphTest, EmptyEdgeSet) {
  Graph g = Graph::FromEdges(10, {}, false, false);
  Rng rng(1);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.5, rng);
  EXPECT_EQ(h.NumVertices(), 10u);
  EXPECT_EQ(h.NumEdges(), 0u);
}

TEST_P(DegenerateGraphTest, SingleEdge) {
  Graph g = Graph::FromEdges(2, {{0, 1}}, false, false);
  Rng rng(2);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.1, rng);
  // Keep count rounds to 1: the single edge must survive.
  EXPECT_EQ(h.NumEdges(), 1u);
}

TEST_P(DegenerateGraphTest, StarGraph) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 12; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(13, edges, false, false);
  Rng rng(3);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.5, rng);
  EXPECT_LE(h.NumEdges(), g.NumEdges());
  for (const Edge& e : h.Edges()) EXPECT_TRUE(g.HasEdge(e.u, e.v));
}

TEST_P(DegenerateGraphTest, CompleteGraph) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) edges.push_back({u, v});
  }
  Graph g = Graph::FromEdges(12, edges, false, false);
  Rng rng(4);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.7, rng);
  EXPECT_LE(h.NumEdges(), g.NumEdges());
  EXPECT_EQ(h.NumVertices(), 12u);
}

INSTANTIATE_TEST_SUITE_P(AllSparsifiers, DegenerateGraphTest,
                         ::testing::ValuesIn(SparsifierNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --------------------------------------------------------------------------
// Metrics on degenerate graphs must not crash and must return sane values.

TEST(DegenerateMetricsTest, EmptyGraphMetrics) {
  Graph g = Graph::FromEdges(5, {}, false, false);
  EXPECT_DOUBLE_EQ(UnreachableRatio(g), 1.0);
  EXPECT_DOUBLE_EQ(IsolatedRatio(g), 1.0);
  EXPECT_DOUBLE_EQ(MeanClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(ApproxDiameter(g, 2, rng), 0.0);
  std::vector<double> pr = PageRank(g);
  for (double p : pr) EXPECT_NEAR(p, 0.2, 1e-9);
  Rng lrng(6);
  EXPECT_EQ(LouvainCommunities(g, lrng).num_clusters, 5);
}

TEST(DegenerateMetricsTest, SingleVertexGraph) {
  Graph g = Graph::FromEdges(1, {}, false, false);
  EXPECT_DOUBLE_EQ(UnreachableRatio(g), 0.0);
  std::vector<double> d = ShortestPathDistances(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(BetweennessCentrality(g)[0], 0.0);
}

TEST(DegenerateMetricsTest, ZeroVertexGraph) {
  Graph g = Graph::FromEdges(0, {}, false, false);
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_DOUBLE_EQ(IsolatedRatio(g), 0.0);
  EXPECT_TRUE(PageRank(g).empty());
}

TEST(DegenerateMetricsTest, MaxFlowSelfPair) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false, false);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 1, 1), 0.0);
}

TEST(DegenerateMetricsTest, StretchOnEmptySparsified) {
  Rng gen(7);
  Graph g = BarabasiAlbert(50, 2, gen);
  Graph empty = g.Subgraph(std::vector<uint8_t>(g.NumEdges(), 0));
  Rng rng(8);
  StretchResult r = SpspStretch(g, empty, 100, rng);
  EXPECT_DOUBLE_EQ(r.unreachable, 1.0);
  EXPECT_EQ(r.pairs_evaluated, 0);
}

TEST(DegenerateMetricsTest, QuadraticFormOnEmptySparsifiedIsZero) {
  Rng gen(9);
  Graph g = BarabasiAlbert(50, 2, gen);
  Graph empty = g.Subgraph(std::vector<uint8_t>(g.NumEdges(), 0));
  Rng rng(10);
  EXPECT_DOUBLE_EQ(QuadraticFormSimilarity(g, empty, 10, rng), 0.0);
}

// --------------------------------------------------------------------------
// RNG contract.

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, ForksAreIndependentStreams) {
  Rng parent(7);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Children produce different streams (first draws differ with
  // overwhelming probability for a 64-bit space).
  EXPECT_NE(child1(), child2());
}

TEST(RngTest, NextUintInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(1000, 300);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 300u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKGeN) {
  Rng rng(12);
  auto sample = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementUniformish) {
  // Each element of [0, 10) should be picked ~50% of the time at k = 5.
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    Rng rng(5000 + trial);
    for (uint64_t x : rng.SampleWithoutReplacement(10, 5)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --------------------------------------------------------------------------
// Table 1 metric registry.

TEST(MetricInfoTest, SixteenMetrics) {
  EXPECT_EQ(AllMetricInfos().size(), 16u);
}

TEST(MetricInfoTest, GroupsCoverPaperSections) {
  std::set<std::string> groups;
  for (const MetricInfo& m : AllMetricInfos()) groups.insert(m.group);
  EXPECT_TRUE(groups.contains("Basic"));
  EXPECT_TRUE(groups.contains("Distance"));
  EXPECT_TRUE(groups.contains("Centrality"));
  EXPECT_TRUE(groups.contains("Clustering"));
  EXPECT_TRUE(groups.contains("Application"));
}

TEST(MetricInfoTest, Table1FlagsMatchPaper) {
  auto find = [](const std::string& name) {
    for (const MetricInfo& m : AllMetricInfos()) {
      if (m.name == name) return m;
    }
    ADD_FAILURE() << "missing metric " << name;
    return MetricInfo{};
  };
  EXPECT_EQ(find("#Communities").directed, Applicability::kNo);
  EXPECT_EQ(find("Clustering F1 Sim").directed, Applicability::kNo);
  EXPECT_EQ(find("LCC").weighted, Applicability::kIgnored);
  EXPECT_EQ(find("APSP").unconnected, Applicability::kExcluded);
  EXPECT_EQ(find("GNN").directed, Applicability::kYes);
}

}  // namespace
}  // namespace sparsify
