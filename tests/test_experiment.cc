// Integration tests for the sweep harness: end-to-end sparsifier x metric
// sweeps, determinism, symmetrization routing, and output formatting.
#include "src/eval/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/metrics/components.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

MetricFn KeptFractionMetric() {
  return [](const Graph& original, const Graph& sparsified, Rng&) {
    return static_cast<double>(sparsified.NumEdges()) /
           static_cast<double>(original.NumEdges());
  };
}

TEST(SweepTest, EndToEndSmall) {
  Rng gen(91);
  Graph g = BarabasiAlbert(150, 3, gen);
  SweepConfig config;
  config.sparsifiers = {"RN", "LD", "SF"};
  config.prune_rates = {0.2, 0.5, 0.8};
  config.runs_nondeterministic = 3;
  auto series = RunSweep(g, config, KeptFractionMetric());
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].sparsifier, "RN");
  ASSERT_EQ(series[0].points.size(), 3u);
  // Random: kept fraction = 1 - prune rate, exactly.
  EXPECT_NEAR(series[0].points[0].mean, 0.8, 0.01);
  EXPECT_NEAR(series[0].points[2].mean, 0.2, 0.01);
  EXPECT_EQ(series[0].points[0].runs, 3);
  // LD is deterministic: one run, zero stddev.
  EXPECT_EQ(series[1].points[0].runs, 1);
  EXPECT_DOUBLE_EQ(series[1].points[0].stddev, 0.0);
  // SF has no prune-rate control: a single point.
  EXPECT_EQ(series[2].points.size(), 1u);
}

TEST(SweepTest, DeterministicAcrossCalls) {
  Rng gen(92);
  Graph g = BarabasiAlbert(120, 3, gen);
  SweepConfig config;
  config.sparsifiers = {"RN", "FF"};
  config.prune_rates = {0.5};
  config.runs_nondeterministic = 2;
  config.seed = 1234;
  auto a = RunSweep(g, config, KeptFractionMetric());
  auto b = RunSweep(g, config, KeptFractionMetric());
  for (size_t s = 0; s < a.size(); ++s) {
    for (size_t p = 0; p < a[s].points.size(); ++p) {
      EXPECT_DOUBLE_EQ(a[s].points[p].mean, b[s].points[p].mean);
      EXPECT_DOUBLE_EQ(a[s].points[p].stddev, b[s].points[p].stddev);
    }
  }
}

TEST(SweepTest, DuplicateSparsifierEntriesYieldSeparateSeries) {
  Rng gen(98);
  Graph g = BarabasiAlbert(100, 3, gen);
  SweepConfig config;
  config.sparsifiers = {"RN", "RN"};
  config.prune_rates = {0.3, 0.7};
  config.runs_nondeterministic = 2;
  auto series = RunSweep(g, config, KeptFractionMetric());
  ASSERT_EQ(series.size(), 2u);
  for (const auto& s : series) {
    EXPECT_EQ(s.sparsifier, "RN");
    EXPECT_EQ(s.points.size(), 2u);
  }
}

TEST(SweepTest, DirectedGraphRoutedThroughSymmetrization) {
  Rng gen(93);
  Graph g = RMat(8, 900, 0.57, 0.19, 0.19, true, gen);
  SweepConfig config;
  config.sparsifiers = {"SF", "ER-uw", "RN"};  // SF/ER undirected-only
  config.prune_rates = {0.5};
  config.runs_nondeterministic = 1;
  // Must not throw: harness symmetrizes for undirected-only sparsifiers.
  auto series = RunSweep(g, config, KeptFractionMetric());
  EXPECT_EQ(series.size(), 3u);
  for (const auto& s : series) {
    for (const auto& p : s.points) EXPECT_GT(p.mean, 0.0);
  }
}

TEST(SweepTest, AchievedPruneRateTracked) {
  Rng gen(94);
  Graph g = BarabasiAlbert(150, 4, gen);
  SweepConfig config;
  config.sparsifiers = {"GS"};
  config.prune_rates = {0.3, 0.6};
  auto series = RunSweep(g, config, KeptFractionMetric());
  EXPECT_NEAR(series[0].points[0].achieved_prune_rate, 0.3, 0.02);
  EXPECT_NEAR(series[0].points[1].achieved_prune_rate, 0.6, 0.02);
}

TEST(SweepTest, CsvOutputWellFormed) {
  Rng gen(95);
  Graph g = BarabasiAlbert(100, 3, gen);
  SweepConfig config;
  config.sparsifiers = {"RN"};
  config.prune_rates = {0.5};
  config.runs_nondeterministic = 2;
  auto series = RunSweep(g, config, KeptFractionMetric());
  std::ostringstream os;
  PrintSeriesCsv(os, "test title", series);
  std::string out = os.str();
  EXPECT_NE(out.find("# test title"), std::string::npos);
  EXPECT_NE(out.find("sparsifier,prune_rate"), std::string::npos);
  EXPECT_NE(out.find("RN,0.5"), std::string::npos);
}

TEST(SweepTest, TableOutputContainsAllSparsifiers) {
  Rng gen(96);
  Graph g = BarabasiAlbert(100, 3, gen);
  SweepConfig config;
  config.sparsifiers = {"RN", "LD"};
  config.prune_rates = {0.3, 0.7};
  auto series = RunSweep(g, config, KeptFractionMetric());
  std::ostringstream os;
  PrintSeriesTable(os, "Fig X", "val", series, 0.42);
  std::string out = os.str();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("RN"), std::string::npos);
  EXPECT_NE(out.find("LD"), std::string::npos);
  EXPECT_NE(out.find("0.42"), std::string::npos);
}

TEST(SweepTest, MetricReceivesMatchingOriginal) {
  // The metric must be called with the same graph the sparsifier consumed:
  // for an undirected-only sparsifier on a directed input, both are the
  // symmetrized version, so the kept-fraction is still in (0, 1].
  Rng gen(97);
  Graph g = RMat(7, 400, 0.57, 0.19, 0.19, true, gen);
  SweepConfig config;
  config.sparsifiers = {"SP-3"};
  auto series = RunSweep(
      g, config,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        EXPECT_FALSE(original.IsDirected());
        EXPECT_FALSE(sparsified.IsDirected());
        return SampledUnreachableIncrease(original, sparsified, 100, rng);
      });
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].points.size(), 1u);  // SP-3 has no prune control
}

}  // namespace
}  // namespace sparsify
