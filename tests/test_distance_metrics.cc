// Tests for distance metrics: SSSP correctness against brute force,
// eccentricity, approximate diameter, and the SPSP/eccentricity stretch
// evaluators.
#include "src/metrics/distance.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/metrics/components.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(SsspTest, PathGraphDistances) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  std::vector<double> d = ShortestPathDistances(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_DOUBLE_EQ(d[3], 3.0);
}

TEST(SsspTest, UnreachableIsInfinite) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}}, false, false);
  std::vector<double> d = ShortestPathDistances(g, 0);
  EXPECT_EQ(d[2], kInfDistance);
  EXPECT_EQ(d[3], kInfDistance);
}

TEST(SsspTest, DirectedRespectsArcDirection) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, true, false);
  std::vector<double> from0 = ShortestPathDistances(g, 0);
  std::vector<double> from2 = ShortestPathDistances(g, 2);
  EXPECT_DOUBLE_EQ(from0[2], 2.0);
  EXPECT_EQ(from2[0], kInfDistance);
}

TEST(SsspTest, WeightedUsesDijkstra) {
  // Direct edge weight 10, detour 1+1.
  Graph g = Graph::FromEdges(3, {{0, 2, 10.0}, {0, 1, 1.0}, {1, 2, 1.0}},
                             false, true);
  std::vector<double> d = ShortestPathDistances(g, 0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
}

TEST(SsspTest, MatchesBruteForceOnRandomGraph) {
  Rng rng(31);
  Graph g = WithRandomWeights(ErdosRenyi(40, 120, false, rng), 5.0, rng);
  // Brute force Bellman-Ford from vertex 0.
  std::vector<double> bf(g.NumVertices(), kInfDistance);
  bf[0] = 0.0;
  for (NodeId it = 0; it < g.NumVertices(); ++it) {
    for (const Edge& e : g.Edges()) {
      if (bf[e.u] + e.w < bf[e.v]) bf[e.v] = bf[e.u] + e.w;
      if (bf[e.v] + e.w < bf[e.u]) bf[e.u] = bf[e.v] + e.w;
    }
  }
  std::vector<double> d = ShortestPathDistances(g, 0);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    if (bf[v] == kInfDistance) {
      EXPECT_EQ(d[v], kInfDistance);
    } else {
      EXPECT_NEAR(d[v], bf[v], 1e-9);
    }
  }
}

TEST(EccentricityTest, PathGraph) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false,
                             false);
  EXPECT_DOUBLE_EQ(Eccentricity(g, 0), 4.0);
  EXPECT_DOUBLE_EQ(Eccentricity(g, 2), 2.0);
}

TEST(EccentricityTest, IsolatedVertexInfinite) {
  Graph g = Graph::FromEdges(3, {{0, 1}}, false, false);
  EXPECT_EQ(Eccentricity(g, 2), kInfDistance);
}

TEST(ApproxDiameterTest, ExactOnPath) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}},
                             false, false);
  Rng rng(32);
  EXPECT_DOUBLE_EQ(ApproxDiameter(g, 4, rng), 5.0);
}

TEST(ApproxDiameterTest, LowerBoundsTrueDiameter) {
  Rng gen(33);
  Graph g = ErdosRenyi(80, 200, false, gen);
  // True diameter by full BFS over the largest component.
  double truth = 0.0;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    double e = Eccentricity(g, v);
    if (e != kInfDistance) truth = std::max(truth, e);
  }
  Rng rng(34);
  double approx = ApproxDiameter(g, 6, rng);
  EXPECT_LE(approx, truth + 1e-9);
  EXPECT_GE(approx, 0.5 * truth);  // double sweep is a strong lower bound
}

TEST(SpspStretchTest, IdenticalGraphHasUnitStretch) {
  Rng gen(35);
  Graph g = BarabasiAlbert(150, 3, gen);
  Rng rng(36);
  StretchResult r = SpspStretch(g, g, 500, rng);
  EXPECT_DOUBLE_EQ(r.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(r.unreachable, 0.0);
  EXPECT_GT(r.pairs_evaluated, 0);
}

TEST(SpspStretchTest, StretchAtLeastOneForSubgraphs) {
  Rng gen(37);
  Graph g = BarabasiAlbert(150, 4, gen);
  // Remove every third edge.
  std::vector<uint8_t> keep(g.NumEdges(), 1);
  for (EdgeId e = 0; e < g.NumEdges(); e += 3) keep[e] = 0;
  Graph h = g.Subgraph(keep);
  Rng rng(38);
  StretchResult r = SpspStretch(g, h, 500, rng);
  EXPECT_GE(r.mean_stretch, 1.0);
}

TEST(SpspStretchTest, DetectsBrokenPairs) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  Graph h = g.Subgraph({1, 0, 1});  // cut the middle edge
  Rng rng(39);
  StretchResult r = SpspStretch(g, h, 200, rng);
  EXPECT_GT(r.unreachable, 0.0);
}

TEST(EccentricityStretchTest, IdenticalGraphUnitStretch) {
  Rng gen(40);
  Graph g = BarabasiAlbert(100, 3, gen);
  Rng rng(41);
  StretchResult r = EccentricityStretch(g, g, 30, rng);
  EXPECT_DOUBLE_EQ(r.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(r.unreachable, 0.0);
}

TEST(ConnectivityTest, UnreachableRatioExact) {
  // Components of sizes 3 and 2 among 5 vertices: reachable ordered pairs
  // = 3*2 + 2*1 = 8 of 20 -> unreachable 0.6.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}}, false, false);
  EXPECT_NEAR(UnreachableRatio(g), 0.6, 1e-12);
}

TEST(ConnectivityTest, ConnectedGraphZeroUnreachable) {
  Rng gen(42);
  Graph g = BarabasiAlbert(100, 2, gen);
  EXPECT_DOUBLE_EQ(UnreachableRatio(g), 0.0);
}

TEST(ConnectivityTest, IsolatedRatio) {
  Graph g = Graph::FromEdges(4, {{0, 1}}, false, false);
  EXPECT_DOUBLE_EQ(IsolatedRatio(g), 0.5);
}

TEST(ConnectivityTest, ComponentsLabelsConsistent) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}}, false, false);
  ComponentResult cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3u);
  EXPECT_EQ(cc.label[0], cc.label[2]);
  EXPECT_EQ(cc.label[3], cc.label[4]);
  EXPECT_NE(cc.label[0], cc.label[3]);
  EXPECT_NE(cc.label[5], cc.label[0]);
}

TEST(ConnectivityTest, SampledUnreachableIncrease) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  Graph same = g;
  Rng rng(43);
  EXPECT_DOUBLE_EQ(SampledUnreachableIncrease(g, same, 100, rng), 0.0);
  Graph cut = g.Subgraph({1, 0, 1});
  Rng rng2(44);
  EXPECT_GT(SampledUnreachableIncrease(g, cut, 200, rng2), 0.3);
}

}  // namespace
}  // namespace sparsify
