// Observability layer: sharded counters/histograms, span tracer and its
// Chrome-trace export, pool stats, progress callbacks, and — the contract
// that lets the instrumentation stay always-on — proof that none of it
// perturbs sweep output (thread-count-independent counter totals,
// byte-identical CSV with tracing on vs off).
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/cli/store_export.h"
#include "src/engine/batch_runner.h"
#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/metrics/basic.h"
#include "src/obs/counters.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// ---------------------------------------------------------------------
// Minimal JSON validator — enough of RFC 8259 to certify the trace
// writer's output (objects, arrays, strings with escapes, numbers,
// true/false/null). Returns false on the first syntax error.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw ctrl
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }

  bool Literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& text, const std::string& pat) {
  size_t n = 0;
  for (size_t at = text.find(pat); at != std::string::npos;
       at = text.find(pat, at + pat.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Counters / histograms

TEST(ObsCounters, ShardedAddSumsExactlyAcrossThreads) {
  obs::Counter& c = obs::GetCounter("test.obs.sharded_add");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsCounters, RegistryInternsStableReferences) {
  obs::Counter& a = obs::GetCounter("test.obs.interned");
  obs::Counter& b = obs::GetCounter("test.obs.interned");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::GetHistogram("test.obs.interned_h");
  obs::Histogram& hb = obs::GetHistogram("test.obs.interned_h");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsCounters, HistogramExactMomentsAndBoundedPercentiles) {
  obs::Histogram& h = obs::GetHistogram("test.obs.hist_moments");
  h.Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);  // exact, not bucketed
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 500.5);
  // Percentiles resolve to the containing power-of-two bucket: the bound
  // is >= the true rank sample and within 2x of it.
  uint64_t p50 = snap.PercentileUpperBound(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LT(p50, 1000u);
  uint64_t p100 = snap.PercentileUpperBound(1.0);
  EXPECT_GE(p100, 1000u);
  EXPECT_LT(p100, 2000u);
  EXPECT_EQ(snap.PercentileUpperBound(0.0), snap.PercentileUpperBound(0.001));

  h.Reset();
  EXPECT_EQ(h.Snap().count, 0u);
  EXPECT_EQ(h.Snap().PercentileUpperBound(0.5), 0u);
}

TEST(ObsCounters, SnapshotsAreSortedAndResettable) {
  obs::GetCounter("test.obs.zz_last").Add(7);
  obs::GetCounter("test.obs.aa_first").Add(3);
  std::vector<obs::CounterValue> counters = obs::SnapshotCounters();
  ASSERT_GE(counters.size(), 2u);
  for (size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1].name, counters[i].name);
  }
  obs::ResetAllStats();
  for (const obs::CounterValue& cv : obs::SnapshotCounters()) {
    EXPECT_EQ(cv.value, 0u) << cv.name;
  }
}

// The whole point of sharded counters: totals for a fixed workload must
// not depend on how many workers executed it.
TEST(ObsCounters, EngineCounterTotalsAreThreadCountIndependent) {
  Graph graph = LoadDatasetScaled("ego-Facebook", 0.1).graph;
  SweepConfig config;
  config.sparsifiers = {"RN", "LD"};
  config.runs_nondeterministic = 2;
  config.seed = 7;
  MetricFn metric = [](const Graph& g, const Graph& h, Rng&) {
    return static_cast<double>(h.NumEdges()) /
           static_cast<double>(std::max<EdgeId>(1, g.NumEdges()));
  };

  auto run_and_snapshot = [&](int threads) {
    obs::ResetAllStats();
    BatchRunner runner(threads);
    ResumableSweep sweep(runner, nullptr, "test-rev");
    sweep.Run(graph, "fb@0.1", "edge_ratio", config, metric);
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const obs::CounterValue& cv : obs::SnapshotCounters()) {
      if (cv.name.rfind("engine.", 0) == 0) out.emplace_back(cv.name, cv.value);
    }
    return out;
  };

  auto at1 = run_and_snapshot(1);
  auto at2 = run_and_snapshot(2);
  auto at8 = run_and_snapshot(8);
  EXPECT_GT(at1.size(), 0u);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  // Sanity: the sweep actually counted its units.
  uint64_t units = 0;
  for (const auto& [name, value] : at1) {
    if (name == "engine.metric_units") units = value;
  }
  EXPECT_EQ(units, BatchRunner::ExpandGrid(ToBatchSpec(config)).size());
}

// ---------------------------------------------------------------------
// Span tracer + Chrome trace export

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::StopTracing();
  obs::DrainTrace();
  {
    TRACE_SPAN(span, "should_not_record");
    EXPECT_FALSE(span.active());
    span.Detail("ignored");
    span.Arg("k", "v");
  }
  EXPECT_TRUE(obs::DrainTrace().empty());
}

TEST(ObsTrace, NullSpanIsInert) {
  obs::NullSpan span("anything");
  static_assert(!obs::NullSpan::active());
  span.Detail("ignored");
  span.Arg("k", "v");
}

// The runtime-tracing tests below exercise the armed ScopedSpan path,
// which a -DSPARSIFY_DISABLE_TRACING=ON build compiles away entirely.
#ifndef SPARSIFY_DISABLE_TRACING
TEST(ObsTrace, BalancedValidJsonAtOneTwoAndEightThreads) {
  for (int num_threads : {1, 2, 8}) {
    constexpr int kSpansPerThread = 5;
    obs::StartTracing();
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          TRACE_SPAN(span, "unit");
          ASSERT_TRUE(span.active());
          span.Detail("metric-" + std::to_string(t));
          span.Arg("index", std::to_string(i));
        }
      });
    }
    for (auto& t : threads) t.join();
    obs::StopTracing();

    std::vector<obs::TraceEvent> events = obs::DrainTrace();
    size_t expected = static_cast<size_t>(num_threads) * kSpansPerThread;
    ASSERT_EQ(events.size(), expected) << num_threads << " threads";
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);  // sorted
    }
    for (const obs::TraceEvent& ev : events) {
      EXPECT_GE(ev.end_ns, ev.begin_ns);
    }

    std::ostringstream out;
    obs::WriteChromeTrace(events, out);
    std::string json = out.str();
    EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 200);
    EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), expected);
    EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), expected);
  }
}

TEST(ObsTrace, ExportEscapesHostileStringsIntoValidJson) {
  std::vector<obs::TraceEvent> events(1);
  events[0].name = "weird";
  events[0].detail = "quote\" slash\\ newline\n tab\t ctrl\x01 end";
  events[0].begin_ns = 1000;
  events[0].end_ns = 2000;
  events[0].args.emplace_back("key\"", "value\\\n");
  std::ostringstream out;
  obs::WriteChromeTrace(events, out);
  std::string json = out.str();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(ObsTrace, TimestampsRebaseOntoEarliestSpan) {
  std::vector<obs::TraceEvent> events(2);
  events[0].name = "first";
  events[0].begin_ns = 5'000'000'000;  // arbitrary steady-clock offsets
  events[0].end_ns = 5'000'500'000;
  events[1].name = "second";
  events[1].begin_ns = 5'001'000'000;
  events[1].end_ns = 5'002'000'000;
  std::ostringstream out;
  obs::WriteChromeTrace(events, out);
  std::string json = out.str();
  // The earliest begin becomes ts 0; the later span sits 1000us after it.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
}

TEST(ObsTrace, StartTracingDropsStaleEvents) {
  obs::StartTracing();
  { TRACE_SPAN(span, "stale"); }
  // No drain: StartTracing itself must clear the leftover buffer.
  obs::StartTracing();
  { TRACE_SPAN(span, "fresh"); }
  obs::StopTracing();
  std::vector<obs::TraceEvent> events = obs::DrainTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
}
#endif  // SPARSIFY_DISABLE_TRACING

// The determinism contract, end to end: the same sweep with tracing on
// exports a byte-identical CSV to one run with tracing off.
TEST(ObsTrace, SweepCsvIsByteIdenticalWithTracingOn) {
  Graph graph = LoadDatasetScaled("ego-Facebook", 0.1).graph;
  SweepConfig config;
  config.sparsifiers = {"RN", "LD"};
  config.runs_nondeterministic = 2;
  config.seed = 11;
  // A metric that consumes the per-cell RNG stream, so any perturbation
  // of seeding or scheduling by the tracer would change the values.
  MetricFn metric = [](const Graph& g, const Graph& h, Rng& rng) {
    return QuadraticFormSimilarity(g, h, 5, rng);
  };

  auto run_to_csv = [&](const std::string& dir_name, bool tracing) {
    std::string dir = TempPath(dir_name);
    fs::remove_all(dir);
    if (tracing) obs::StartTracing();
    std::string csv;
    {
      ResultStore store(ResultStore::PathInDir(dir));
      BatchRunner runner(4);
      ResumableSweep sweep(runner, &store, "test-rev");
      sweep.Run(graph, "fb@0.1", "quad5", config, metric);
      std::ostringstream out;
      cli::ExportStore(store, out, /*csv=*/true);
      csv = out.str();
    }
    if (tracing) {
      obs::StopTracing();
#ifndef SPARSIFY_DISABLE_TRACING
      EXPECT_GT(obs::DrainTrace().size(), 0u);
#endif
    }
    return csv;
  };

  std::string off = run_to_csv("obs_csv_off", false);
  std::string on = run_to_csv("obs_csv_on", true);
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(off, on);  // byte-identical
}

// ---------------------------------------------------------------------
// Profile aggregation

TEST(ObsProfile, AggregatesByStageAndOrdersByTotalTime) {
  std::vector<obs::TraceEvent> events;
  auto add = [&events](const char* name, const std::string& detail,
                       int64_t dur_ns) {
    obs::TraceEvent ev;
    ev.name = name;
    ev.detail = detail;
    ev.begin_ns = 1000;
    ev.end_ns = 1000 + dur_ns;
    events.push_back(std::move(ev));
  };
  // "metric_unit" dominates (3ms total), then "subgraph" (1ms).
  add("metric_unit", "degree", 1'000'000);
  add("metric_unit", "degree", 1'000'000);
  add("metric_unit", "spsp", 1'000'000);
  add("subgraph", "RN", 1'000'000);

  std::vector<obs::ProfileRow> rows = obs::BuildProfile(events);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].stage, "metric_unit");
  EXPECT_EQ(rows[0].detail, "degree");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_NEAR(rows[0].total_seconds, 2e-3, 1e-9);
  EXPECT_NEAR(rows[0].p50_ms, 1.0, 1e-6);
  EXPECT_NEAR(rows[0].max_ms, 1.0, 1e-6);
  EXPECT_EQ(rows[1].stage, "metric_unit");
  EXPECT_EQ(rows[1].detail, "spsp");
  EXPECT_EQ(rows[2].stage, "subgraph");

  std::ostringstream out;
  obs::PrintProfile(rows, obs::ProfileSummary{0.01, 2, 0.004}, out);
  std::string table = out.str();
  EXPECT_NE(table.find("metric_unit"), std::string::npos);
  EXPECT_NE(table.find("pool_util"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pool stats + progress callback

TEST(ObsPool, StatsCountTasksAndReset) {
  ThreadPool pool(2);
  pool.ResetStats();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran] {
      ran.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 16);

  ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.tasks_executed, 16u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GE(stats.queue_high_water, 1u);
  ASSERT_EQ(stats.worker_tasks.size(), 2u);
  ASSERT_EQ(stats.worker_busy_seconds.size(), 2u);
  uint64_t per_worker_sum = stats.worker_tasks[0] + stats.worker_tasks[1];
  EXPECT_EQ(per_worker_sum, stats.tasks_executed);

  pool.ResetStats();
  ThreadPoolStats zeroed = pool.Stats();
  EXPECT_EQ(zeroed.tasks_executed, 0u);
  EXPECT_EQ(zeroed.busy_seconds, 0.0);
  EXPECT_EQ(zeroed.queue_high_water, 0u);
}

TEST(ObsPool, QueueWaitHistogramRecordsSubmittedTasks) {
  obs::GetHistogram("pool.queue_wait_ns").Reset();
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  EXPECT_GE(obs::GetHistogram("pool.queue_wait_ns").Snap().count, 8u);
}

TEST(ObsProgress, CallbackFiresPerSubmittedUnitAndSkipsCachedRuns) {
  Graph graph = LoadDatasetScaled("ego-Facebook", 0.1).graph;
  SweepConfig config;
  config.sparsifiers = {"RN"};
  config.runs_nondeterministic = 2;
  config.seed = 3;
  MetricFn metric = [](const Graph& g, const Graph& h, Rng&) {
    return static_cast<double>(h.NumEdges()) /
           static_cast<double>(std::max<EdgeId>(1, g.NumEdges()));
  };
  std::string dir = TempPath("obs_progress_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  BatchRunner runner(2);
  ResumableSweep sweep(runner, &store, "test-rev");

  std::atomic<size_t> calls{0};
  std::atomic<size_t> max_completed{0};
  std::atomic<size_t> reported_submitted{0};
  sweep.set_progress([&](size_t completed, size_t submitted) {
    calls.fetch_add(1);
    size_t prev = max_completed.load();
    while (completed > prev &&
           !max_completed.compare_exchange_weak(prev, completed)) {
    }
    reported_submitted.store(submitted);
  });

  ResumableSweepStats stats;
  sweep.Run(graph, "fb@0.1", "edge_ratio", config, metric, &stats);
  EXPECT_EQ(calls.load(), stats.submitted_cells);
  EXPECT_EQ(max_completed.load(), stats.submitted_cells);
  EXPECT_EQ(reported_submitted.load(), stats.submitted_cells);

  // Warm store: every unit cached, so the callback must never fire
  // (cached units were never work).
  calls.store(0);
  ResumableSweepStats warm;
  sweep.Run(graph, "fb@0.1", "edge_ratio", config, metric, &warm);
  EXPECT_EQ(warm.submitted_cells, 0u);
  EXPECT_EQ(calls.load(), 0u);
}

}  // namespace
}  // namespace sparsify
