// Property-test matrix: every registered sparsifier crossed with a grid of
// structurally distinct graphs (path, star, triangle+tail, ER random,
// weighted ER, disconnected, directed-where-supported). Complements
// test_sparsifiers_properties.cc, which sweeps prune rates on one large
// graph family: this file pins behavior on degenerate shapes (tiny graphs,
// hubs, chains) and verifies that every SparsifierInfo capability flag
// matches the implementation's actual accept/throw behavior.
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

struct GraphCase {
  std::string name;
  Graph (*make)();
};

Graph MakePath() {
  // P9: 8 edges in a chain.
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < 9; ++i) edges.push_back({i, i + 1});
  return Graph::FromEdges(9, edges, false, false);
}

Graph MakeStar() {
  // Hub 0 with 10 leaves.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 10; ++leaf) edges.push_back({0, leaf});
  return Graph::FromEdges(11, edges, false, false);
}

Graph MakeTriangleWithTail() {
  return Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}, false,
                          false);
}

Graph MakeErdosRenyi() {
  Rng rng(301);
  return ErdosRenyi(60, 180, false, rng);
}

Graph MakeWeighted() {
  Rng rng(302);
  Graph base = ErdosRenyi(50, 160, false, rng);
  return WithRandomWeights(base, 10.0, rng);
}

Graph MakeDisconnected() {
  // Two disjoint ER blobs plus two isolated vertices.
  Rng rng(303);
  Graph a = ErdosRenyi(30, 80, false, rng);
  Graph b = ErdosRenyi(30, 80, false, rng);
  std::vector<Edge> edges = a.Edges();
  for (const Edge& e : b.Edges()) edges.push_back({e.u + 30, e.v + 30, e.w});
  return Graph::FromEdges(62, edges, false, false);
}

const std::vector<GraphCase>& UndirectedCases() {
  static const std::vector<GraphCase> cases = {
      {"path", MakePath},
      {"star", MakeStar},
      {"triangle_tail", MakeTriangleWithTail},
      {"er", MakeErdosRenyi},
      {"weighted", MakeWeighted},
      {"disconnected", MakeDisconnected},
  };
  return cases;
}

Graph MakeDirected() {
  Rng rng(304);
  return ErdosRenyi(40, 200, true, rng);
}

class SparsifierMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {
 protected:
  std::string SparsifierName() const { return std::get<0>(GetParam()); }
  const GraphCase& Case() const {
    return UndirectedCases()[std::get<1>(GetParam())];
  }
};

TEST_P(SparsifierMatrixTest, VertexSetPreserved) {
  Graph g = Case().make();
  for (double rate : {0.3, 0.6}) {
    Rng rng(41);
    Graph h = CreateSparsifier(SparsifierName())->Sparsify(g, rate, rng);
    EXPECT_EQ(h.NumVertices(), g.NumVertices())
        << SparsifierName() << " on " << Case().name << " at " << rate;
    EXPECT_EQ(h.IsDirected(), g.IsDirected());
  }
}

TEST_P(SparsifierMatrixTest, EdgesAreSubset) {
  Graph g = Case().make();
  Rng rng(42);
  Graph h = CreateSparsifier(SparsifierName())->Sparsify(g, 0.4, rng);
  for (const Edge& e : h.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v))
        << SparsifierName() << " on " << Case().name << " invented edge "
        << e.u << "-" << e.v;
  }
}

TEST_P(SparsifierMatrixTest, AchievedRateTracksTargetKeepCount) {
  auto sparsifier = CreateSparsifier(SparsifierName());
  const SparsifierInfo& info = sparsifier->Info();
  Graph g = Case().make();
  for (double rate : {0.2, 0.5, 0.8}) {
    Rng rng(43);
    Graph h = sparsifier->Sparsify(g, rate, rng);
    EdgeId target = TargetKeepCount(g.NumEdges(), rate);
    switch (info.prune_rate_control) {
      case PruneRateControl::kFine:
        // Fine control means the exact keep-count is achievable on any
        // graph, including degenerate shapes (Table 2).
        EXPECT_EQ(h.NumEdges(), target)
            << info.short_name << " on " << Case().name << " at " << rate;
        break;
      case PruneRateControl::kConstrained:
        // Coarse knob with per-vertex floors: never prunes more than
        // requested (beyond rounding), may keep extra.
        EXPECT_GE(h.NumEdges() + 1, target)
            << info.short_name << " on " << Case().name << " at " << rate;
        break;
      case PruneRateControl::kNone:
        break;  // output size is the algorithm's own
    }
  }
}

TEST_P(SparsifierMatrixTest, CapabilityFlagsMatchBehavior) {
  auto sparsifier = CreateSparsifier(SparsifierName());
  const SparsifierInfo& info = sparsifier->Info();
  Graph g = Case().make();
  Rng rng(44);
  bool needs_weighted = g.IsWeighted();
  bool needs_unconnected = g.CountIsolated() > 0 || Case().name == "disconnected";
  bool supported = (!needs_weighted || info.supports_weighted) &&
                   (!needs_unconnected || info.supports_unconnected);
  if (supported) {
    EXPECT_NO_THROW(sparsifier->Sparsify(g, 0.5, rng))
        << info.short_name << " rejected supported input " << Case().name;
  } else {
    EXPECT_THROW(sparsifier->Sparsify(g, 0.5, rng), std::invalid_argument)
        << info.short_name << " accepted input its Table 2 flags disclaim: "
        << Case().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparsifierMatrixTest,
    ::testing::Combine(::testing::ValuesIn(SparsifierNames()),
                       ::testing::Range<size_t>(0, UndirectedCases().size())),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& i) {
      std::string name = std::get<0>(i.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + UndirectedCases()[std::get<1>(i.param)].name;
    });

// --------------------------------------------------------------------------
// Directed support: the flag must match accept/throw exactly, per
// sparsifier (one directed graph, not crossed with the undirected cases).

class SparsifierDirectedTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(SparsifierDirectedTest, DirectedFlagMatchesBehavior) {
  auto sparsifier = CreateSparsifier(GetParam());
  const SparsifierInfo& info = sparsifier->Info();
  Graph g = MakeDirected();
  Rng rng(45);
  if (info.supports_directed) {
    Graph h = sparsifier->Sparsify(g, 0.5, rng);
    EXPECT_TRUE(h.IsDirected()) << info.short_name;
    EXPECT_EQ(h.NumVertices(), g.NumVertices()) << info.short_name;
  } else {
    EXPECT_THROW(sparsifier->Sparsify(g, 0.5, rng), std::invalid_argument)
        << info.short_name << " accepted directed input its flags disclaim";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSparsifiers, SparsifierDirectedTest,
                         ::testing::ValuesIn(SparsifierNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sparsify
