// ResultStore: JSONL round-trip, replay semantics, and the crash-recovery
// contract — a log truncated anywhere inside its last record must replay
// to exactly the fully-written cells, never throw, and stay appendable.
#include "src/store/result_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "src/util/errors.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

CellKey MakeKey(const std::string& sparsifier, double rate, int run) {
  CellKey key;
  key.dataset = "test-ds@0.5";
  key.sparsifier = sparsifier;
  key.prune_rate = rate;
  key.run = run;
  key.master_seed = 42;
  key.metric = "degree";
  key.code_rev = "test-rev";
  return key;
}

TEST(ResultStoreTest, MissingFileIsEmptyStore) {
  std::string path = TempPath("missing_store.jsonl");
  fs::remove(path);
  ResultStore store(path);
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_FALSE(store.Contains(MakeKey("RN", 0.1, 0)));
}

TEST(ResultStoreTest, AppendLookupRoundTrip) {
  std::string path = TempPath("roundtrip_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1002, 0.123456789012345678);
    store.Append(MakeKey("RN", 0.1, 1), 0.1002, -3.5e-12);
    store.Append(MakeKey("LD", 0.9, 0), 0.9, 17.0);
    EXPECT_EQ(store.Size(), 3u);
  }
  // Replay from disk: exact double round-trip and key identity.
  ResultStore replayed(path);
  EXPECT_EQ(replayed.Size(), 3u);
  auto cell = replayed.Lookup(MakeKey("RN", 0.1, 0));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, 0.123456789012345678);
  EXPECT_EQ(cell->achieved_prune_rate, 0.1002);
  cell = replayed.Lookup(MakeKey("RN", 0.1, 1));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, -3.5e-12);
  EXPECT_FALSE(replayed.Contains(MakeKey("RN", 0.2, 0)));
  EXPECT_EQ(replayed.DroppedTailBytes(), 0u);
}

TEST(ResultStoreTest, NonFiniteValuesRoundTrip) {
  std::string path = TempPath("nonfinite_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1,
                 std::numeric_limits<double>::infinity());
  }
  ResultStore replayed(path);
  auto cell = replayed.Lookup(MakeKey("RN", 0.1, 0));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, std::numeric_limits<double>::infinity());
}

TEST(ResultStoreTest, DuplicateKeyLastWriteWins) {
  std::string path = TempPath("dup_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 2.0);
    EXPECT_EQ(store.Size(), 1u);
    EXPECT_EQ(store.Lookup(MakeKey("RN", 0.1, 0))->value, 2.0);
  }
  ResultStore replayed(path);
  EXPECT_EQ(replayed.Size(), 1u);
  EXPECT_EQ(replayed.Lookup(MakeKey("RN", 0.1, 0))->value, 2.0);
  EXPECT_EQ(replayed.Cells().size(), 1u);
}

TEST(ResultStoreTest, EscapedStringsRoundTrip) {
  std::string path = TempPath("escape_store.jsonl");
  fs::remove(path);
  CellKey key = MakeKey("RN", 0.5, 0);
  key.dataset = "odd \"name\"\twith\\escapes\n";
  {
    ResultStore store(path);
    store.Append(key, 0.5, 1.0);
  }
  ResultStore replayed(path);
  EXPECT_TRUE(replayed.Contains(key));
  EXPECT_EQ(replayed.Cells()[0].key.dataset, key.dataset);
}

TEST(ResultStoreTest, BadHeaderIsFatal) {
  std::string path = TempPath("badheader_store.jsonl");
  WriteFile(path, "{\"format\":\"something-else\",\"version\":1}\n");
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
  WriteFile(path, "not json at all\n");
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
}

TEST(ResultStoreTest, UnsupportedVersionIsFatal) {
  std::string path = TempPath("version_store.jsonl");
  WriteFile(path, "{\"format\":\"sparsify-result-store\",\"version\":99}\n");
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
}

TEST(ResultStoreTest, MidFileCorruptionIsFatal) {
  std::string path = TempPath("corrupt_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
    store.Append(MakeKey("RN", 0.2, 0), 0.2, 2.0);
  }
  std::string content = ReadFile(path);
  // Corrupt the FIRST record (a complete, newline-terminated line): that is
  // not a crash artifact, and replay must refuse rather than guess.
  size_t first_record = content.find('\n') + 1;
  content[first_record + 5] = '\x01';
  WriteFile(path, content);
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
}

// The crash-simulation contract: truncating the log at EVERY byte boundary
// of the last record must (a) never throw, (b) recover exactly the
// fully-written records, and (c) leave the store appendable.
TEST(ResultStoreTest, TruncationAtEveryByteOfLastRecordRecovers) {
  std::string path = TempPath("crash_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.5);
    store.Append(MakeKey("RN", 0.2, 0), 0.2, 2.5);
    store.Append(MakeKey("LD", 0.3, 0), 0.3, 3.5);
  }
  std::string content = ReadFile(path);
  ASSERT_EQ(content.back(), '\n');
  // Start of the last record line.
  size_t last_start = content.rfind('\n', content.size() - 2) + 1;
  size_t last_json_end = content.size() - 1;  // position of closing newline

  for (size_t cut = last_start; cut <= content.size(); ++cut) {
    std::string prefix = content.substr(0, cut);
    std::string trial = TempPath("crash_trial.jsonl");
    WriteFile(trial, prefix);

    // (a) replay never throws, (b) exact prefix of records recovered. A
    // cut at or past the final '}' leaves a complete record that merely
    // lost its newline; it must be recovered too. The first store must
    // close before the reopen below: open stores hold an exclusive
    // inter-process lock.
    size_t expected = cut >= last_json_end ? 3u : 2u;
    {
      ResultStore store(trial);
      EXPECT_EQ(store.Size(), expected) << "cut=" << cut;
      EXPECT_TRUE(store.Contains(MakeKey("RN", 0.1, 0))) << "cut=" << cut;
      EXPECT_TRUE(store.Contains(MakeKey("RN", 0.2, 0))) << "cut=" << cut;
      EXPECT_EQ(store.Contains(MakeKey("LD", 0.3, 0)), expected == 3u)
          << "cut=" << cut;
      if (expected == 2u) {
        EXPECT_EQ(store.DroppedTailBytes(), cut - last_start)
            << "cut=" << cut;
      }

      // (c) appending after the crash repairs the file: a fresh replay
      // sees the recovered records plus the new one, and no torn bytes
      // remain.
      store.Append(MakeKey("GS", 0.4, 0), 0.4, 4.5);
    }
    ResultStore reopened(trial);
    EXPECT_EQ(reopened.Size(), expected + 1) << "cut=" << cut;
    EXPECT_EQ(reopened.DroppedTailBytes(), 0u) << "cut=" << cut;
    EXPECT_EQ(reopened.Lookup(MakeKey("GS", 0.4, 0))->value, 4.5)
        << "cut=" << cut;
  }
}

// A crash can also tear the header of a brand-new store; that must behave
// like an empty store and be repaired by the first append.
TEST(ResultStoreTest, TornHeaderOnlyFileRecoversEmpty) {
  std::string path = TempPath("tornheader_store.jsonl");
  WriteFile(path, "{\"format\":\"sparsify-re");  // no newline: torn tail
  {
    ResultStore store(path);
    EXPECT_EQ(store.Size(), 0u);
    EXPECT_GT(store.DroppedTailBytes(), 0u);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
  }
  ResultStore reopened(path);
  EXPECT_EQ(reopened.Size(), 1u);
  EXPECT_EQ(reopened.DroppedTailBytes(), 0u);
}

TEST(ResultStoreTest, OpenInDirCreatesDirectory) {
  std::string dir = TempPath("store_dir/nested");
  fs::remove_all(TempPath("store_dir"));
  {
    ResultStore store(ResultStore::PathInDir(dir));
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
  }
  ResultStore reopened = ResultStore::OpenInDir(dir);
  EXPECT_EQ(reopened.Size(), 1u);
  EXPECT_EQ(reopened.Path(),
            (fs::path(dir) / ResultStore::DefaultFileName()).string());
}

#if defined(__unix__) || defined(__APPLE__)
TEST(ResultStoreTest, SecondWriterCoexistsAndRecordsMerge) {
  // Locking went cooperative: a second open takes its own lease and its
  // own segment file instead of failing with "locked by another
  // process". Each writer sees its peer's records (after RefreshPeers or
  // a fresh replay), and neither disturbs the other.
  fs::path dir = fs::path(::testing::TempDir()) / "coop_store_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = ResultStore::PathInDir(dir.string());
  ResultStore store(path);
  store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);

  {
    ResultStore second(path);
    EXPECT_NE(second.WriterId(), store.WriterId());
    // The peer's base record replayed into the second writer's view.
    EXPECT_EQ(second.Size(), 1u);
    second.Append(MakeKey("RN", 0.2, 0), 0.2, 2.0);
    EXPECT_EQ(second.Size(), 2u);

    // The first writer's view is untouched until it polls its peers.
    EXPECT_EQ(store.Size(), 1u);
    store.RefreshPeers();
    EXPECT_EQ(store.Size(), 2u);
    EXPECT_EQ(store.Lookup(MakeKey("RN", 0.2, 0))->value, 2.0);

    // Exclusive operations refuse while the other writer is live.
    EXPECT_THROW(store.Compact(), StoreLockHeldError);
  }
  // Second writer closed cleanly: exclusivity is available again and the
  // compacted base folds both writers' records together.
  CompactStats stats = store.Compact();
  EXPECT_EQ(stats.records_after, 2u);
  ResultStore replayed(path);
  EXPECT_EQ(replayed.Size(), 2u);
  EXPECT_EQ(replayed.Lookup(MakeKey("RN", 0.1, 0))->value, 1.0);
  EXPECT_EQ(replayed.Lookup(MakeKey("RN", 0.2, 0))->value, 2.0);
}

TEST(ResultStoreTest, LeaseReleasesOnCloseAndOnFailedOpen) {
  std::string path = TempPath("relock_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
  }
  // Closed cleanly: reopening succeeds.
  { ResultStore reopened(path); EXPECT_EQ(reopened.Size(), 1u); }

  // A constructor that throws during replay (corrupt mid-file) must also
  // release the lock, or the path would wedge for the whole process.
  std::string bad = TempPath("relock_corrupt.jsonl");
  std::string content = ReadFile(path);
  size_t header_end = content.find('\n') + 1;
  WriteFile(bad, content.substr(0, header_end) + "not json\n" +
                     content.substr(header_end));
  EXPECT_THROW(ResultStore{bad}, std::runtime_error);
  WriteFile(bad, content);  // repair the file; the lock must be free
  ResultStore recovered(bad);
  EXPECT_EQ(recovered.Size(), 1u);
}
#endif

TEST(ResultStoreTest, CodeRevBumpNeverReusesOldCells) {
  // PR 3 moved randomized sparsifiers to shared per-(sparsifier, run) seed
  // streams — a numeric change, isolated behind the kResultCodeRev bump:
  // cells computed by the r1 pipeline must be cache misses for this
  // binary, never silently mixed with r2 values.
  ASSERT_STRNE(kResultCodeRev, "r1");
  std::string path = TempPath("code_rev_store.jsonl");
  fs::remove(path);
  ResultStore store(path);

  CellKey old_rev = MakeKey("RN", 0.1, 0);
  old_rev.code_rev = "r1";
  store.Append(old_rev, 0.1, 3.25);

  CellKey current = MakeKey("RN", 0.1, 0);
  current.code_rev = kResultCodeRev;
  EXPECT_FALSE(store.Contains(current));
  EXPECT_FALSE(store.Lookup(current).has_value());
  // The old cell itself is still addressable under its own revision.
  EXPECT_TRUE(store.Contains(old_rev));

  // Both revisions coexist after this binary appends its own value.
  store.Append(current, 0.1, 4.5);
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_EQ(store.Lookup(current)->value, 4.5);
  EXPECT_EQ(store.Lookup(old_rev)->value, 3.25);
}

TEST(ResultStoreTest, StaleRevCellsNeverSatisfyCurrentLookups) {
  // PR 4 moved sampled-metric RNG from (master_seed, cell index) to the
  // MetricSeed identity stream (r2 -> r3); the multi-process store PR
  // then dropped grid_index from the key entirely (r3 -> r4). Either
  // way, a store full of old-revision cells must not serve a single one
  // of them to the current pipeline (not even for rng-free metrics —
  // revisions are keyed wholesale, not per metric).
  ASSERT_STREQ(kResultCodeRev, "r4");
  std::string path = TempPath("r2_r3_store.jsonl");
  fs::remove(path);
  ResultStore store(path);

  for (double rate : {0.1, 0.5, 0.9}) {
    CellKey r2 = MakeKey("LD", rate, 0);
    r2.code_rev = "r2";
    store.Append(r2, rate, 1.0);
  }
  EXPECT_EQ(store.Size(), 3u);
  for (double rate : {0.1, 0.5, 0.9}) {
    CellKey current = MakeKey("LD", rate, 0);
    current.code_rev = kResultCodeRev;
    EXPECT_FALSE(store.Contains(current));
    EXPECT_FALSE(store.Lookup(current).has_value());
  }
}

TEST(CellKeyTest, CanonicalDistinguishesEveryField) {
  CellKey base = MakeKey("RN", 0.1, 0);
  CellKey other = base;
  EXPECT_EQ(base.Canonical(), other.Canonical());
  other = base;
  other.dataset = "x";
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.sparsifier = "LD";
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.prune_rate = 0.1 + 1e-15;
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.run = 1;
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.master_seed = 43;
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.metric = "mcc";
  EXPECT_NE(base.Canonical(), other.Canonical());
  other = base;
  other.code_rev = "r2";
  EXPECT_NE(base.Canonical(), other.Canonical());
}

}  // namespace
}  // namespace sparsify
