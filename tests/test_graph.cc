// Unit tests for the CSR graph core: construction invariants, normalization,
// adjacency queries, subgraphs, symmetrization, preprocessing, and I/O.
#include "src/graph/graph.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/graph/io.h"
#include "src/graph/union_find.h"

namespace sparsify {
namespace {

Graph TriangleWithTail() {
  // 0-1, 1-2, 0-2 triangle plus tail 2-3.
  return Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false, false);
}

TEST(GraphTest, BasicCounts) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_FALSE(g.IsDirected());
  EXPECT_FALSE(g.IsWeighted());
}

TEST(GraphTest, UndirectedDegrees) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 2u);
  EXPECT_EQ(g.OutDegree(2), 3u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g = Graph::FromEdges(3, {{0, 0}, {0, 1}, {1, 1}}, false, false);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, ParallelEdgesMergedUnweighted) {
  Graph g = Graph::FromEdges(2, {{0, 1}, {1, 0}, {0, 1}}, false, false);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0), 1.0);
}

TEST(GraphTest, ParallelEdgesSummedWeighted) {
  Graph g = Graph::FromEdges(2, {{0, 1, 2.0}, {1, 0, 3.0}}, false, true);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0), 5.0);
}

TEST(GraphTest, DirectedKeepsBothArcs) {
  Graph g = Graph::FromEdges(2, {{0, 1}, {1, 0}}, true, false);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, DirectedInOutDegree) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}}, true, false);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(GraphTest, AdjacencySorted) {
  Graph g = Graph::FromEdges(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}}, false,
                             false);
  auto nbrs = g.OutNeighborNodes(0);
  ASSERT_EQ(nbrs.size(), 4u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(GraphTest, EdgeIdsConsistentBetweenDirections) {
  Graph g = TriangleWithTail();
  EdgeId e = g.FindEdge(0, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.FindEdge(1, 0), e);  // undirected: same canonical edge
  const Edge& ed = g.CanonicalEdge(e);
  EXPECT_EQ(ed.u, 0u);
  EXPECT_EQ(ed.v, 1u);
}

TEST(GraphTest, FindEdgeMissing) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.FindEdge(0, 3), kInvalidEdge);
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, OutOfRangeEndpointThrows) {
  EXPECT_THROW(Graph::FromEdges(2, {{0, 2}}, false, false),
               std::invalid_argument);
}

TEST(GraphTest, SubgraphKeepsVertexSet) {
  Graph g = TriangleWithTail();
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  keep[0] = 1;
  Graph h = g.Subgraph(keep);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), 1u);
}

TEST(GraphTest, SubgraphEmptyMask) {
  Graph g = TriangleWithTail();
  Graph h = g.Subgraph(std::vector<uint8_t>(g.NumEdges(), 0));
  EXPECT_EQ(h.NumEdges(), 0u);
  EXPECT_EQ(h.CountIsolated(), 4u);
}

TEST(GraphTest, ReweightedSubgraph) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}, false, true);
  std::vector<uint8_t> keep = {1, 1};
  std::vector<double> w = {2.5, 4.0};
  Graph h = g.ReweightedSubgraph(keep, w);
  EXPECT_TRUE(h.IsWeighted());
  EXPECT_DOUBLE_EQ(h.EdgeWeight(h.FindEdge(0, 1)), 2.5);
  EXPECT_DOUBLE_EQ(h.EdgeWeight(h.FindEdge(1, 2)), 4.0);
}

TEST(GraphTest, SymmetrizedMergesArcs) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {1, 2}}, true, false);
  Graph u = g.Symmetrized();
  EXPECT_FALSE(u.IsDirected());
  EXPECT_EQ(u.NumEdges(), 2u);
  EXPECT_TRUE(u.HasEdge(2, 1));
}

TEST(GraphTest, SymmetrizedKeepsMaxWeight) {
  Graph g = Graph::FromEdges(2, {{0, 1, 2.0}, {1, 0, 5.0}}, true, true);
  Graph u = g.Symmetrized();
  EXPECT_EQ(u.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(u.EdgeWeight(0), 5.0);
}

TEST(GraphTest, SymmetrizedOnUndirectedIsCopy) {
  Graph g = TriangleWithTail();
  Graph u = g.Symmetrized();
  EXPECT_EQ(u.NumEdges(), g.NumEdges());
}

TEST(GraphTest, UnweightedStripsWeights) {
  Graph g = Graph::FromEdges(2, {{0, 1, 7.0}}, false, true);
  Graph u = g.Unweighted();
  EXPECT_FALSE(u.IsWeighted());
  EXPECT_DOUBLE_EQ(u.EdgeWeight(0), 1.0);
}

TEST(GraphTest, TotalEdgeWeight) {
  Graph g = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}}, false, true);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 5.0);
}

TEST(GraphTest, CountIsolated) {
  Graph g = Graph::FromEdges(5, {{0, 1}}, false, false);
  EXPECT_EQ(g.CountIsolated(), 3u);
}

TEST(RemoveIsolatedVerticesTest, RemovesAndReindexes) {
  Graph g = Graph::FromEdges(6, {{1, 3}, {3, 5}}, false, false);
  std::vector<NodeId> map;
  Graph h = RemoveIsolatedVertices(g, &map);
  EXPECT_EQ(h.NumVertices(), 3u);
  EXPECT_EQ(h.NumEdges(), 2u);
  EXPECT_EQ(h.CountIsolated(), 0u);
  EXPECT_EQ(map[0], kInvalidNode);
  EXPECT_EQ(map[1], 0u);
  EXPECT_EQ(map[3], 1u);
  EXPECT_EQ(map[5], 2u);
}

TEST(RemoveIsolatedVerticesTest, NoOpOnCleanGraph) {
  Graph g = TriangleWithTail();
  Graph h = RemoveIsolatedVertices(g);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
}

TEST(IoTest, RoundTripUnweighted) {
  Graph g = TriangleWithTail();
  std::stringstream ss;
  WriteEdgeListStream(g, ss);
  Graph h = ReadEdgeListStream(ss, false, false);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  for (const Edge& e : g.Edges()) EXPECT_TRUE(h.HasEdge(e.u, e.v));
}

TEST(IoTest, RoundTripWeighted) {
  Graph g = Graph::FromEdges(3, {{0, 1, 2.5}, {1, 2, 0.5}}, true, true);
  std::stringstream ss;
  WriteEdgeListStream(g, ss);
  Graph h = ReadEdgeListStream(ss, true, true);
  EXPECT_EQ(h.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(h.EdgeWeight(h.FindEdge(0, 1)), 2.5);
}

TEST(IoTest, CommentsSkipped) {
  std::stringstream ss("# header\n% other comment\n0 1\n1 2\n");
  Graph g = ReadEdgeListStream(ss, false, false);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(IoTest, MalformedLineThrows) {
  std::stringstream ss("0 1\nbogus\n");
  EXPECT_THROW(ReadEdgeListStream(ss, false, false), std::runtime_error);
}

TEST(UnionFindTest, BasicMerge) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(1), 3u);
}

}  // namespace
}  // namespace sparsify
