// Tests for clustering metrics: Louvain community recovery on planted
// partitions, modularity, clustering coefficients on known graphs, and the
// paper's clustering F1 definition.
#include "src/metrics/clustering.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/metrics/louvain.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

Graph CompleteGraph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::FromEdges(n, edges, false, false);
}

TEST(LccTest, CompleteGraphAllOnes) {
  Graph g = CompleteGraph(6);
  for (double c : LocalClusteringCoefficients(g)) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(MeanClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(LccTest, TreeAllZeros) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false,
                             false);
  for (double c : LocalClusteringCoefficients(g)) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(LccTest, TriangleWithTail) {
  // Vertices 0,1 in triangle only: LCC 1. Vertex 2: neighbors {0,1,3},
  // one of three pairs connected -> 1/3. Vertex 3: degree 1 -> 0.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false,
                             false);
  std::vector<double> lcc = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(lcc[0], 1.0);
  EXPECT_DOUBLE_EQ(lcc[1], 1.0);
  EXPECT_NEAR(lcc[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(lcc[3], 0.0);
}

TEST(TriangleCountTest, KnownCounts) {
  EXPECT_EQ(CountTriangles(CompleteGraph(4)), 4u);
  EXPECT_EQ(CountTriangles(CompleteGraph(5)), 10u);
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  EXPECT_EQ(CountTriangles(path), 0u);
}

TEST(GccTest, TriangleWithTailValue) {
  // 1 triangle, triplets: deg (2,2,3,1) -> 1+1+3+0 = 5. GCC = 3/5.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false,
                             false);
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 0.6, 1e-12);
}

TEST(LouvainTest, RecoverPlantedPartition) {
  Rng gen(61);
  std::vector<int> truth;
  Graph g = PlantedPartition(300, 6, 0.4, 0.005, gen, &truth);
  Rng rng(62);
  Clustering c = LouvainCommunities(g, rng);
  EXPECT_NEAR(c.num_clusters, 6, 2);
  EXPECT_GT(ClusteringF1(c.label, truth), 0.8);
  EXPECT_GT(c.modularity, 0.5);
}

TEST(LouvainTest, DisjointCliquesAreSeparated) {
  std::vector<Edge> edges;
  for (int block = 0; block < 4; ++block) {
    NodeId base = block * 5;
    for (NodeId u = 0; u < 5; ++u) {
      for (NodeId v = u + 1; v < 5; ++v) {
        edges.push_back({base + u, base + v});
      }
    }
  }
  Graph g = Graph::FromEdges(20, edges, false, false);
  Rng rng(63);
  Clustering c = LouvainCommunities(g, rng);
  EXPECT_EQ(c.num_clusters, 4);
  // Members of the same clique share labels.
  for (int block = 0; block < 4; ++block) {
    for (int v = 1; v < 5; ++v) {
      EXPECT_EQ(c.label[block * 5 + v], c.label[block * 5]);
    }
  }
}

TEST(LouvainTest, EmptyGraphSingletons) {
  Graph g = Graph::FromEdges(5, {}, false, false);
  Rng rng(64);
  Clustering c = LouvainCommunities(g, rng);
  EXPECT_EQ(c.num_clusters, 5);
}

TEST(LouvainTest, ModularityOfPerfectSplit) {
  // Two disjoint triangles; perfect split has modularity 1/2.
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}, false, false);
  std::vector<int> label = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(Modularity(g, label), 0.5, 1e-12);
  std::vector<int> merged(6, 0);
  EXPECT_NEAR(Modularity(g, merged), 0.0, 1e-12);
}

TEST(ClusteringF1Test, IdenticalClusteringsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(ClusteringF1(a, a), 1.0);
}

TEST(ClusteringF1Test, LabelPermutationInvariant) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 9, 9, 7, 7};
  EXPECT_DOUBLE_EQ(ClusteringF1(a, b), 1.0);
}

TEST(ClusteringF1Test, AllMergedVsSplit) {
  // One big cluster against a 3-way reference: precision = best block / n
  // = 2/6; recall = every reference cluster fully covered = 6/6.
  // F1 = 2 * (1/3 * 1) / (1/3 + 1) = 0.5.
  std::vector<int> merged(6, 0);
  std::vector<int> ref = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(ClusteringF1(merged, ref), 0.5, 1e-12);
}

TEST(ClusteringF1Test, SizeMismatchReturnsZero) {
  EXPECT_DOUBLE_EQ(ClusteringF1({0, 1}, {0}), 0.0);
  EXPECT_DOUBLE_EQ(ClusteringF1({}, {}), 0.0);
}

TEST(ClusteringF1Test, FragmentationPenalized) {
  // Singletons vs 2 reference blocks: perfectly pure (precision 1) but
  // each reference cluster is best-covered by a single vertex (recall
  // 2/4) -> F1 = 2 * 0.5 / 1.5 = 2/3 < 1. Shattering costs score, as in
  // the paper's Fig. 10.
  std::vector<int> single = {0, 1, 2, 3};
  std::vector<int> ref = {0, 0, 1, 1};
  EXPECT_NEAR(ClusteringF1(single, ref), 2.0 / 3.0, 1e-12);
  // Merging against a singleton reference: precision 1/4, recall 1.
  std::vector<int> merged = {0, 0, 0, 0};
  EXPECT_NEAR(ClusteringF1(merged, single), 0.4, 1e-12);
}

}  // namespace
}  // namespace sparsify
