// Crash torture: SIGKILL the CLI mid-sweep at injected kill points, then
// resume against the survived store and require (a) the resume completes
// cleanly and (b) the exported CSV is byte-identical to a cold run that
// never crashed. This is the kill-anywhere invariant the store's
// append/flush/fsync discipline exists to provide.
//
// The child runs the real CLI entry point (RunSparsifyCli is the binary's
// main) with SPARSIFY_FAILPOINTS armed, so the path under torture is the
// shipped one end to end: ingest, engine, store, banner.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cli/sparsify_cli.h"
#include "src/store/result_store.h"
#include "src/util/failpoint.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

int RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "sparsify_cli");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return cli::RunSparsifyCli(static_cast<int>(argv.size()), argv.data());
}

std::vector<std::string> SweepArgs(const std::string& dir) {
  return {"sweep",       "--dataset=ego-Facebook",
          "--metrics=degree,kcore", "--algos=RN,LD",
          "--rates=0.3,0.6", "--runs=1",
          "--scale=0.1", "--store=" + dir,
          "--resume",    "--csv"};
}

std::string CaptureExport(const std::string& dir) {
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"export", "--store=" + dir}), cli::kExitOk);
  return ::testing::internal::GetCapturedStdout();
}

class CrashTortureTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("SPARSIFY_FAILPOINTS");
    ::unsetenv("SPARSIFY_STORE_FSYNC");
    fail::DisarmAll();
  }

  // Forks a child that arms `spec` and runs the sweep into `dir`. Returns
  // true if the child died by SIGKILL, false if the sweep outran the kill
  // point and exited normally. Anything else fails the test.
  bool RunKilledSweep(const std::string& dir, const std::string& spec) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: banner noise goes nowhere; the kill must be the only exit.
      std::freopen("/dev/null", "w", stdout);
      ::setenv("SPARSIFY_FAILPOINTS", spec.c_str(), 1);
      if (spec.find("store.fsync") != std::string::npos) {
        // The batch policy syncs every 32 appends — more than this small
        // grid writes — so put a sync (and its kill point) on every append.
        ::setenv("SPARSIFY_STORE_FSYNC", "always", 1);
      }
      int rc = 1;
      try {
        rc = RunCli(SweepArgs(dir));
      } catch (...) {
        rc = 99;
      }
      std::_Exit(rc);
    }
    EXPECT_GT(pid, 0);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL) << "spec " << spec;
      return true;
    }
    EXPECT_TRUE(WIFEXITED(status)) << "spec " << spec;
    EXPECT_EQ(WEXITSTATUS(status), cli::kExitOk) << "spec " << spec;
    return false;
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = (fs::path(::testing::TempDir()) / name).string();
    fs::remove_all(dir);
    return dir;
  }
};

TEST_F(CrashTortureTest, KillAnywhereThenResumeExportsIdentically) {
  // Cold reference: the same sweep, never crashed.
  std::string cold_dir = FreshDir("torture_cold");
  ASSERT_EQ(RunCli(SweepArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);
  ASSERT_FALSE(want.empty());

  // Kill points across the store's write path: early, mid, and late
  // appends (8 units total), the fsync syscall itself, and the engine's
  // metric unit (a worker thread dies mid-computation).
  const std::vector<std::string> kill_specs = {
      "store.append=kill@1",
      "store.append=kill@4",
      "store.append=kill@8",
      "store.fsync=kill@1",
      "engine.metric_unit=kill@3",
  };
  for (const std::string& spec : kill_specs) {
    std::string dir = FreshDir("torture_" + std::to_string(&spec - kill_specs.data()));
    bool killed = RunKilledSweep(dir, spec);
    EXPECT_TRUE(killed) << "kill point never reached: " << spec;

    // Resume with no faults armed: must complete cleanly...
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk) << "resume after " << spec;
    ::testing::internal::GetCapturedStdout();
    // ...and export byte-identically to the cold run.
    EXPECT_EQ(CaptureExport(dir), want) << "export drift after " << spec;
  }
}

TEST_F(CrashTortureTest, RepeatedKillsOnOneStoreStillConverge) {
  // One store, crashed again and again at moving kill points with fsync
  // forced on every append, then resumed: the log must stay replayable
  // through every generation and finish byte-identical.
  std::string cold_dir = FreshDir("torture_conv_cold");
  ASSERT_EQ(RunCli(SweepArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);

  std::string dir = FreshDir("torture_conv");
  ::setenv("SPARSIFY_STORE_FSYNC", "always", 1);
  for (int n = 1; n <= 3; ++n) {
    RunKilledSweep(dir, "store.append=kill@" + std::to_string(n));
  }
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk);
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(CaptureExport(dir), want);
}

TEST_F(CrashTortureTest, AbortActionAlsoRecovers) {
  // abort() takes the streams down without flushing, a different tear
  // shape than SIGKILL (stdio buffers lost, no atexit).
  std::string cold_dir = FreshDir("torture_abort_cold");
  ASSERT_EQ(RunCli(SweepArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);

  std::string dir = FreshDir("torture_abort");
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    ::setenv("SPARSIFY_FAILPOINTS", "store.append=abort@2", 1);
    std::_Exit(RunCli(SweepArgs(dir)));
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk);
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(CaptureExport(dir), want);
}

// Forks a child running the sweep with `spec` armed, streams silenced.
// Returns the child's pid (the caller signals and reaps it).
pid_t ForkSweep(const std::string& dir, const std::string& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    ::setenv("SPARSIFY_FAILPOINTS", spec.c_str(), 1);
    int rc = 99;
    try {
      rc = RunCli(SweepArgs(dir));
    } catch (...) {
    }
    std::_Exit(rc);
  }
  return pid;
}

TEST_F(CrashTortureTest, SigtermMidSweepDrainsAndResumesIdentically) {
  // Graceful shutdown is the THIRD tear shape: unlike SIGKILL/SIGABRT the
  // process gets to drain in-flight units and exit with a documented code,
  // but the store contract is the same — resume must reproduce the cold
  // run byte-identically.
  std::string cold_dir = FreshDir("torture_term_cold");
  ASSERT_EQ(RunCli(SweepArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);

  std::string dir = FreshDir("torture_term");
  // Every metric unit sleeps 2s, so the run is guaranteed to still be in
  // flight when the signal lands ~300ms in, at any thread count.
  const pid_t pid = ForkSweep(dir, "engine.metric_unit=delay:2000");
  ASSERT_GT(pid, 0);
  ::usleep(300 * 1000);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // A clean drain: normal exit (not signal death) with the documented
  // interrupted code.
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), cli::kExitInterrupted);

  // The survived store replays without repair and the resumed sweep
  // finishes exactly where the interrupted one would have.
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk);
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(CaptureExport(dir), want);
}

TEST_F(CrashTortureTest, SecondSigtermAbortsImmediately) {
  std::string dir = FreshDir("torture_term2");
  // 10s per unit: at 1s the workers are deep inside the delay, so the
  // first signal cannot finish draining before the second arrives.
  const pid_t pid = ForkSweep(dir, "engine.metric_unit=delay:10000");
  ASSERT_GT(pid, 0);
  ::usleep(1000 * 1000);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);  // cancels + starts draining
  ::usleep(300 * 1000);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);  // the user means it: _exit(128+15)
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);
}

}  // namespace
}  // namespace sparsify
