// Failpoint subsystem: spec grammar, trigger semantics (every-hit, Nth-hit,
// seeded probability), scoped-site resolution, and the determinism contract
// (a seeded probability trigger fires on the same hits every run).
#include "src/util/failpoint.h"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace sparsify {
namespace {

// Every test disarms in teardown so armed state never leaks into other
// tests in this binary (the registry is process-global).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteIsANoop) {
  SPARSIFY_FAILPOINT("test.never_armed");  // must not throw
  EXPECT_EQ(fail::HitCount("test.never_armed"), 0u);
}

TEST_F(FailpointTest, MalformedSpecThrowsInvalidArgument) {
  // A typo in a torture spec must abort loudly, never silently no-op.
  EXPECT_THROW(fail::ArmFromSpec("no-equals-sign"), std::invalid_argument);
  EXPECT_THROW(fail::ArmFromSpec("site=explode"), std::invalid_argument);
  EXPECT_THROW(fail::ArmFromSpec("site=throw@"), std::invalid_argument);
  EXPECT_THROW(fail::ArmFromSpec("site=throw@pZ"), std::invalid_argument);
  EXPECT_THROW(fail::ArmFromSpec("site=delay:abc"), std::invalid_argument);
  EXPECT_THROW(fail::ArmFromSpec("=throw"), std::invalid_argument);
}

TEST_F(FailpointTest, ThrowActionFiresEveryHit) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw"), 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), fail::InjectedFault);
  }
  EXPECT_EQ(fail::HitCount("test.site"), 3u);
  EXPECT_EQ(fail::FiredCount("test.site"), 3u);
}

TEST_F(FailpointTest, ThrowTransientThrowsTheRetryableClass) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw-transient"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), TransientError);
}

TEST_F(FailpointTest, InjectedClassesAreSparsifyErrors) {
  // Both injection classes slot into the engine's typed-error ladder (and
  // stay catchable as std::runtime_error by pre-existing call sites).
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), SparsifyError);
  fail::DisarmAll();
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw-transient"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), std::runtime_error);
}

TEST_F(FailpointTest, NthHitFiresExactlyOnce) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@3"), 1);
  SPARSIFY_FAILPOINT("test.site");  // hit 1
  SPARSIFY_FAILPOINT("test.site");  // hit 2
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), fail::InjectedFault);
  SPARSIFY_FAILPOINT("test.site");  // hit 4: fired already, passes
  SPARSIFY_FAILPOINT("test.site");  // hit 5
  EXPECT_EQ(fail::HitCount("test.site"), 5u);
  EXPECT_EQ(fail::FiredCount("test.site"), 1u);
}

TEST_F(FailpointTest, DelayActionContinues) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=delay:1"), 1);
  SPARSIFY_FAILPOINT("test.site");  // sleeps 1ms, does not throw
  EXPECT_EQ(fail::FiredCount("test.site"), 1u);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  auto fire_pattern = []() {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      bool f = false;
      try {
        SPARSIFY_FAILPOINT("test.site");
      } catch (const fail::InjectedFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@p0.5/42"), 1);
  std::vector<bool> first = fire_pattern();
  // Re-arming the same spec resets the site's RNG: identical pattern.
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@p0.5/42"), 1);
  EXPECT_EQ(fire_pattern(), first);

  size_t fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 50u);  // p=0.5 over 200 draws: wildly loose bounds
  EXPECT_LT(fires, 150u);

  // A different seed produces a different pattern.
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@p0.5/43"), 1);
  EXPECT_NE(fire_pattern(), first);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresAndOneAlwaysFires) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@p0"), 1);
  for (int i = 0; i < 50; ++i) SPARSIFY_FAILPOINT("test.site");
  EXPECT_EQ(fail::FiredCount("test.site"), 0u);
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw@p1"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), fail::InjectedFault);
}

TEST_F(FailpointTest, ScopedSiteMatchesBeforeBareSite) {
  ASSERT_EQ(fail::ArmFromSpec("test.scoped/degree=throw"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT_SCOPED("test.scoped", "degree"),
               fail::InjectedFault);
  SPARSIFY_FAILPOINT_SCOPED("test.scoped", "kcore");  // unarmed scope: passes
  SPARSIFY_FAILPOINT("test.scoped");                  // bare site: passes

  // A bare policy catches every scope.
  fail::DisarmAll();
  ASSERT_EQ(fail::ArmFromSpec("test.scoped=throw"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT_SCOPED("test.scoped", "degree"),
               fail::InjectedFault);
  EXPECT_THROW(SPARSIFY_FAILPOINT_SCOPED("test.scoped", "kcore"),
               fail::InjectedFault);
}

TEST_F(FailpointTest, MultiSiteSpecArmsEverySite) {
  ASSERT_EQ(fail::ArmFromSpec("test.a=throw@2;test.b=delay:1"), 2);
  SPARSIFY_FAILPOINT("test.a");
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.a"), fail::InjectedFault);
  SPARSIFY_FAILPOINT("test.b");
  EXPECT_EQ(fail::FiredCount("test.b"), 1u);
}

TEST_F(FailpointTest, DisarmAllStopsFiringAndResetsCounters) {
  ASSERT_EQ(fail::ArmFromSpec("test.site=throw"), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.site"), fail::InjectedFault);
  fail::DisarmAll();
  SPARSIFY_FAILPOINT("test.site");  // disarmed: free and silent
  EXPECT_EQ(fail::HitCount("test.site"), 0u);
  EXPECT_EQ(fail::FiredCount("test.site"), 0u);
}

TEST_F(FailpointTest, ArmFromEnvReadsTheVariable) {
  ASSERT_EQ(::setenv("SPARSIFY_FAILPOINTS", "test.env=throw", 1), 0);
  EXPECT_EQ(fail::ArmFromEnv(), 1);
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.env"), fail::InjectedFault);
  ASSERT_EQ(::unsetenv("SPARSIFY_FAILPOINTS"), 0);
  fail::DisarmAll();
  EXPECT_EQ(fail::ArmFromEnv(), 0);
  SPARSIFY_FAILPOINT("test.env");
}

}  // namespace
}  // namespace sparsify
