// Tests for the shared traversal kernel (src/graph/traversal.h): push-only
// == hybrid == legacy queue BFS on every graph shape, Dijkstra parity,
// scratch reuse across graph sizes and threads, the SoA CSR spans, the
// TraversalSummary folds, the cached MaxDegree, and full-metric
// bit-identity of a distance-heavy multi-metric run at 1/2/8 threads.
#include "src/graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "src/engine/batch_runner.h"
#include "src/graph/generators.h"
#include "src/metrics/distance.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

// The seed implementation, verbatim: per-call allocating queue BFS /
// priority-queue Dijkstra. The kernel must reproduce its output bitwise.
std::vector<double> LegacyShortestPathDistances(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  if (!g.IsWeighted()) {
    std::queue<NodeId> q;
    q.push(src);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (NodeId u : g.OutNeighborNodes(v)) {
        if (dist[u] == kInfDistance) {
          dist[u] = dist[v] + 1.0;
          q.push(u);
        }
      }
    }
    return dist;
  }
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    auto nodes = g.OutNeighborNodes(v);
    auto edges = g.OutNeighborEdges(v);
    for (size_t i = 0; i < nodes.size(); ++i) {
      double nd = d + g.EdgeWeight(edges[i]);
      if (nd < dist[nodes[i]]) {
        dist[nodes[i]] = nd;
        pq.emplace(nd, nodes[i]);
      }
    }
  }
  return dist;
}

Graph PathGraph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeId>(v + 1), 1.0});
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph StarGraph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v, 1.0});
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph TriangleWithTail() {
  return Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}}, false, false);
}

// All graph shapes the distance tests sweep, by name for failure output.
struct NamedGraph {
  std::string name;
  Graph graph;
};

std::vector<NamedGraph> TestGraphs() {
  Rng rng(7);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"path", PathGraph(24)});
  graphs.push_back({"star", StarGraph(40)});
  graphs.push_back({"triangle_tail", TriangleWithTail()});
  graphs.push_back({"er", ErdosRenyi(80, 200, false, rng)});
  graphs.push_back(
      {"disconnected",
       Graph::FromEdges(9, {{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}}, false,
                        false)});
  graphs.push_back({"directed", ErdosRenyi(60, 220, true, rng)});
  graphs.push_back({"directed_star",
                    Graph::FromEdges(12,
                                     {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
                                      {0, 6}, {0, 7}, {0, 8}, {0, 9}, {0, 10},
                                      {0, 11}},
                                     true, false)});
  graphs.push_back(
      {"weighted", WithRandomWeights(ErdosRenyi(50, 140, false, rng), 4.0,
                                     rng)});
  graphs.push_back({"ba", BarabasiAlbert(120, 3, rng)});
  return graphs;
}

TEST(TraversalKernelTest, PushHybridAndLegacyAgreeOnAllShapes) {
  TraversalScratch scratch;  // shared across every graph: reuse is the point
  for (const NamedGraph& ng : TestGraphs()) {
    const Graph& g = ng.graph;
    for (NodeId src = 0; src < g.NumVertices();
         src += std::max<NodeId>(1, g.NumVertices() / 7)) {
      std::vector<double> legacy = LegacyShortestPathDistances(g, src);
      std::vector<double> hybrid = ShortestPathDistances(g, src, scratch);
      EXPECT_EQ(legacy, hybrid) << ng.name << " src=" << src << " (hybrid)";
      if (!g.IsWeighted()) {
        BfsLevels(g, src, scratch, BfsMode::kPushOnly);
        for (NodeId v = 0; v < g.NumVertices(); ++v) {
          EXPECT_EQ(scratch.DistanceOf(v), legacy[v])
              << ng.name << " src=" << src << " v=" << v << " (push-only)";
        }
      }
    }
  }
}

TEST(TraversalKernelTest, SummaryMatchesReferenceScan) {
  TraversalScratch scratch;
  for (const NamedGraph& ng : TestGraphs()) {
    const Graph& g = ng.graph;
    for (NodeId src = 0; src < g.NumVertices();
         src += std::max<NodeId>(1, g.NumVertices() / 5)) {
      TraversalSummary sum = Traverse(g, src, scratch);
      std::vector<double> dist = LegacyShortestPathDistances(g, src);
      // The exact reduction the legacy consumers ran over the vector:
      // ascending scan, strict `>`, farthest defaults to the source.
      NodeId reached = 0;
      double far_d = 0.0;
      NodeId far_v = src;
      for (NodeId u = 0; u < g.NumVertices(); ++u) {
        if (dist[u] == kInfDistance) continue;
        ++reached;
        if (u != src && dist[u] > far_d) {
          far_d = dist[u];
          far_v = u;
        }
      }
      EXPECT_EQ(sum.reached, reached) << ng.name << " src=" << src;
      EXPECT_EQ(sum.max_dist, far_d) << ng.name << " src=" << src;
      EXPECT_EQ(sum.farthest, far_v) << ng.name << " src=" << src;
    }
  }
}

TEST(TraversalKernelTest, HybridActuallySwitchesToPullOnStar) {
  // From a leaf, round 2's frontier is the hub: scout = n-1 out-edges
  // always exceeds edges_to_check/alpha, so the heuristic must take the
  // pull direction at least once (this guards the CI jq assertion too).
  Graph g = StarGraph(64);
  TraversalScratch scratch;
  TraversalSummary sum = BfsLevels(g, 1, scratch);
  EXPECT_GE(sum.pull_rounds, 1);
  EXPECT_EQ(sum.reached, 64u);
}

TEST(TraversalKernelTest, DirectedPullScansInNeighbors) {
  // Directed hub->leaf star: from the hub the only correct pull source is
  // the IN-neighbor list of each leaf. A pull over out-neighbors would
  // find nothing.
  Graph g = Graph::FromEdges(
      40, [] {
        std::vector<Edge> edges;
        for (NodeId v = 1; v < 40; ++v) edges.push_back({0, v, 1.0});
        return edges;
      }(), true, false);
  TraversalScratch scratch;
  TraversalSummary sum = BfsLevels(g, 0, scratch);
  EXPECT_EQ(sum.reached, 40u);
  EXPECT_GE(sum.pull_rounds, 1);
  for (NodeId v = 1; v < 40; ++v) EXPECT_EQ(scratch.LevelOf(v), 1u);
  // And from a leaf nothing is reachable along out-arcs.
  sum = BfsLevels(g, 3, scratch);
  EXPECT_EQ(sum.reached, 1u);
  EXPECT_EQ(sum.max_dist, 0.0);
  EXPECT_EQ(sum.farthest, 3u);
}

TEST(TraversalKernelTest, ScratchReuseAcrossSizesAndEpochs) {
  TraversalScratch scratch;
  Rng rng(11);
  Graph big = ErdosRenyi(300, 900, false, rng);
  Graph small = PathGraph(5);
  Graph medium = ErdosRenyi(100, 150, false, rng);  // sparse: many unreached
  // Interleave sizes; every traversal must match a fresh-scratch run.
  for (int round = 0; round < 5; ++round) {
    for (const Graph* g : {&big, &small, &medium}) {
      NodeId src = static_cast<NodeId>((round * 13) % g->NumVertices());
      TraversalScratch fresh;
      EXPECT_EQ(ShortestPathDistances(*g, src, scratch),
                ShortestPathDistances(*g, src, fresh))
          << "round=" << round << " n=" << g->NumVertices();
    }
  }
}

TEST(TraversalKernelTest, PerThreadScratchUnderNestedParallelFor) {
  Rng rng(23);
  Graph g = BarabasiAlbert(200, 3, rng);
  std::vector<std::vector<double>> serial(g.NumVertices());
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    serial[v] = ShortestPathDistances(g, v);
  }
  ThreadPool pool(8);
  std::vector<std::vector<double>> parallel(g.NumVertices());
  NestedParallelFor(&pool, g.NumVertices(), [&](size_t v) {
    // LocalTraversalScratch hands every claiming thread its own scratch.
    parallel[v] = ShortestPathDistances(g, static_cast<NodeId>(v),
                                        LocalTraversalScratch());
  });
  EXPECT_EQ(serial, parallel);
}

TEST(SoaCsrTest, SpansAgreeWithCanonicalEdges) {
  for (const NamedGraph& ng : TestGraphs()) {
    const Graph& g = ng.graph;
    for (NodeId v = 0; v < g.NumVertices(); ++v) {
      auto nodes = g.OutNeighborNodes(v);
      auto edges = g.OutNeighborEdges(v);
      ASSERT_EQ(nodes.size(), edges.size());
      ASSERT_EQ(nodes.size(), g.OutDegree(v));
      EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end())) << ng.name;
      for (size_t i = 0; i < nodes.size(); ++i) {
        const Edge& e = g.CanonicalEdge(edges[i]);
        // The entry's edge must connect v to the entry's neighbor.
        if (g.IsDirected()) {
          EXPECT_EQ(e.u, v);
          EXPECT_EQ(e.v, nodes[i]);
        } else {
          EXPECT_TRUE((e.u == v && e.v == nodes[i]) ||
                      (e.v == v && e.u == nodes[i]))
              << ng.name;
        }
        EXPECT_EQ(g.FindEdge(v, nodes[i]), edges[i]) << ng.name;
      }
      // In-adjacency mirrors the arcs.
      auto in_nodes = g.InNeighborNodes(v);
      auto in_edges = g.InNeighborEdges(v);
      ASSERT_EQ(in_nodes.size(), in_edges.size());
      ASSERT_EQ(in_nodes.size(), g.InDegree(v));
      EXPECT_TRUE(std::is_sorted(in_nodes.begin(), in_nodes.end()));
      for (size_t i = 0; i < in_nodes.size(); ++i) {
        const Edge& e = g.CanonicalEdge(in_edges[i]);
        if (g.IsDirected()) {
          EXPECT_EQ(e.v, v);
          EXPECT_EQ(e.u, in_nodes[i]);
        }
      }
    }
  }
}

TEST(SoaCsrTest, MaxDegreeCachedMatchesScan) {
  for (const NamedGraph& ng : TestGraphs()) {
    const Graph& g = ng.graph;
    NodeId scan = 0;
    for (NodeId v = 0; v < g.NumVertices(); ++v) {
      scan = std::max(scan, g.OutDegree(v));
    }
    EXPECT_EQ(g.MaxDegree(), scan) << ng.name;
    // The cache must be rebuilt by Subgraph's BuildCsr too.
    std::vector<uint8_t> keep(g.NumEdges(), 0);
    for (EdgeId e = 0; e < g.NumEdges(); e += 2) keep[e] = 1;
    Graph sub = g.Subgraph(keep);
    NodeId sub_scan = 0;
    for (NodeId v = 0; v < sub.NumVertices(); ++v) {
      sub_scan = std::max(sub_scan, sub.OutDegree(v));
    }
    EXPECT_EQ(sub.MaxDegree(), sub_scan) << ng.name;
  }
}

TEST(TraversalKernelTest, EccentricityMatchesVectorFold) {
  TraversalScratch scratch;
  for (const NamedGraph& ng : TestGraphs()) {
    const Graph& g = ng.graph;
    for (NodeId v = 0; v < g.NumVertices();
         v += std::max<NodeId>(1, g.NumVertices() / 9)) {
      std::vector<double> dist = LegacyShortestPathDistances(g, v);
      double ecc = -1.0;
      for (NodeId u = 0; u < g.NumVertices(); ++u) {
        if (u != v && dist[u] != kInfDistance) ecc = std::max(ecc, dist[u]);
      }
      double want = ecc < 0.0 ? kInfDistance : ecc;
      EXPECT_EQ(Eccentricity(g, v), want) << ng.name << " v=" << v;
    }
  }
}

// Distance-heavy multi-metric run must stay bit-identical at every thread
// count: the kernel fans per-source traversals out through
// NestedParallelFor with per-thread scratches, and all folds are
// thread-count-independent by construction.
TEST(TraversalKernelTest, DistanceMetricsBitIdenticalAcrossThreadCounts) {
  Rng rng(5);
  Graph g = BarabasiAlbert(150, 3, rng);
  std::vector<BatchMetric> metrics = {
      {"spsp",
       [](const Graph& orig, const Graph& sp, Rng& r) {
         return SpspStretch(orig, sp, 400, r).mean_stretch;
       }},
      {"eccentricity",
       [](const Graph& orig, const Graph& sp, Rng& r) {
         return EccentricityStretch(orig, sp, 20, r).mean_stretch;
       }},
      {"diameter",
       [](const Graph&, const Graph& sp, Rng& r) {
         return ApproxDiameter(sp, 4, r);
       }},
  };
  BatchSpec spec;
  spec.sparsifiers = {"RN", "LD"};
  spec.prune_rates = {0.3, 0.6};
  spec.runs = 2;
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  auto run_at = [&](int threads) {
    BatchRunner runner(threads);
    std::vector<BatchMultiResult> results =
        runner.RunTasksMulti(g, "bitident", tasks, spec.master_seed, metrics);
    std::vector<double> values;
    for (const BatchMultiResult& r : results) {
      for (const BatchMetricValue& mv : r.values) values.push_back(mv.value);
    }
    return values;
  };
  std::vector<double> one = run_at(1);
  EXPECT_EQ(one, run_at(2));
  EXPECT_EQ(one, run_at(8));
}

}  // namespace
}  // namespace sparsify
