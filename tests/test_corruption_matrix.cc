// Corruption matrix for the persistent surfaces: bit rot inside a result
// store must be DETECTED (checksum mismatch with a line number), a torn
// tail must SELF-HEAL (crash semantics, not corruption), a version-1 log
// without checksums must keep replaying, compaction must shrink the log
// without changing its replayed contents, and a bit-flipped graph cache
// must be rejected by its content hash.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/ingest.h"
#include "src/store/result_store.h"
#include "src/util/errors.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

CellKey MakeKey(const std::string& sparsifier, double rate, int run) {
  CellKey key;
  key.dataset = "corrupt-ds@0.5";
  key.sparsifier = sparsifier;
  key.prune_rate = rate;
  key.run = run;
  key.master_seed = 7;
  key.metric = "degree";
  key.code_rev = "test-rev";
  return key;
}

std::string FreshStore(const std::string& name, int records) {
  std::string path = TempPath(name);
  fs::remove(path);
  ResultStore store(path);
  for (int i = 0; i < records; ++i) {
    store.Append(MakeKey("RN", 0.1 * (i + 1), i), 0.1, 1.5 + i);
  }
  return path;
}

// Replayed logical contents, serialized for comparison across files.
std::string Fingerprint(const ResultStore& store) {
  std::ostringstream out;
  for (const StoredCell& cell : store.Cells()) {
    out << cell.key.Canonical() << "|" << cell.is_error << "|"
        << cell.achieved_prune_rate << "|" << cell.value << "|"
        << cell.error_class << "|" << cell.attempts << "\n";
  }
  return out.str();
}

TEST(CorruptionMatrixTest, BitFlipInRecordIsDetectedWithLineNumber) {
  std::string path = FreshStore("bitflip_store.jsonl", 4);
  std::string bytes = ReadFile(path);
  // Flip one digit inside the SECOND record (file line 3: header + 2).
  size_t line_start = 0;
  for (int i = 0; i < 2; ++i) line_start = bytes.find('\n', line_start) + 1;
  size_t pos = bytes.find("\"value\":", line_start) + 8;
  ASSERT_LT(pos, bytes.find('\n', line_start));
  bytes[pos] = bytes[pos] == '2' ? '3' : '2';
  WriteFile(path, bytes);
  try {
    ResultStore store(path);
    FAIL() << "bit-flipped record replayed without error";
  } catch (const StoreCorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(CorruptionMatrixTest, GarbledCrcFieldOnTerminatedLineIsDetected) {
  std::string path = FreshStore("badcrc_store.jsonl", 2);
  std::string bytes = ReadFile(path);
  size_t pos = bytes.find("\"crc32c\":\"");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 10] = 'Z';  // not lowercase hex: malformed checksum
  WriteFile(path, bytes);
  EXPECT_THROW(ResultStore store(path), StoreCorruptError);
}

TEST(CorruptionMatrixTest, TornTailSelfHealsEvenInsideTheCrcField) {
  std::string path = FreshStore("torn_store.jsonl", 3);
  std::string whole = ReadFile(path);
  // Tear the file INSIDE the last record's checksum field: the torn line
  // fails its CRC shape check, but as the unterminated tail it must be
  // dropped as a crashed append, not reported as corruption.
  size_t last_crc = whole.rfind("\"crc32c\":\"");
  ASSERT_NE(last_crc, std::string::npos);
  WriteFile(path, whole.substr(0, last_crc + 14));
  {
    ResultStore healed(path);
    EXPECT_EQ(healed.Size(), 2u);
    EXPECT_GT(healed.DroppedTailBytes(), 0u);
    // Still appendable: the store cuts the tail and continues.
    healed.Append(MakeKey("RN", 0.3, 2), 0.1, 3.5);
  }
  ResultStore replayed(path);
  EXPECT_EQ(replayed.Size(), 3u);
  EXPECT_EQ(replayed.DroppedTailBytes(), 0u);
}

TEST(CorruptionMatrixTest, LegacyVersion1StoreWithoutChecksumsReplays) {
  std::string path = FreshStore("legacy_store.jsonl", 3);
  std::string want;
  {
    ResultStore modern(path);
    want = Fingerprint(modern);
  }
  // Rewrite as a version-1 log: header says 1, records carry no crc field.
  std::string bytes = ReadFile(path);
  size_t vpos = bytes.find("\"version\":2");
  ASSERT_NE(vpos, std::string::npos);
  bytes.replace(vpos, 11, "\"version\":1");
  for (size_t p = bytes.find(",\"crc32c\":\""); p != std::string::npos;
       p = bytes.find(",\"crc32c\":\"", p)) {
    bytes.replace(p, bytes.find('}', p) + 1 - p, "}");
  }
  WriteFile(path, bytes);
  {
    ResultStore legacy(path);
    EXPECT_EQ(Fingerprint(legacy), want);

    // Compacting a legacy log upgrades it in place: version-2 header,
    // every record checksummed, contents unchanged.
    CompactStats stats = legacy.Compact();
    EXPECT_EQ(stats.records_after, 3u);
  }
  std::string upgraded = ReadFile(path);
  EXPECT_NE(upgraded.find("\"version\":2"), std::string::npos);
  EXPECT_NE(upgraded.find("\"crc32c\":\""), std::string::npos);
  ResultStore reread(path);
  EXPECT_EQ(Fingerprint(reread), want);
}

TEST(CorruptionMatrixTest, FutureVersionIsRejected) {
  std::string path = FreshStore("future_store.jsonl", 1);
  std::string bytes = ReadFile(path);
  size_t vpos = bytes.find("\"version\":2");
  ASSERT_NE(vpos, std::string::npos);
  bytes.replace(vpos, 11, "\"version\":9");
  WriteFile(path, bytes);
  EXPECT_THROW(ResultStore store(path), StoreCorruptError);
}

TEST(CorruptionMatrixTest, ErrorRecordsRoundTripAndReadBackAsErrors) {
  std::string path = TempPath("error_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 2.5);
    store.AppendError(MakeKey("RN", 0.2, 0), "transient", "injected", 3);
    EXPECT_EQ(store.Size(), 2u);
    EXPECT_EQ(store.ErrorCount(), 1u);
  }
  {
    ResultStore replayed(path);
    EXPECT_EQ(replayed.ErrorCount(), 1u);
    auto cell = replayed.Lookup(MakeKey("RN", 0.2, 0));
    ASSERT_TRUE(cell.has_value());
    EXPECT_TRUE(cell->is_error);
    EXPECT_EQ(cell->error_class, "transient");
    EXPECT_EQ(cell->error_message, "injected");
    EXPECT_EQ(cell->attempts, 3);
    // A later success overwrites the error (last write wins on replay).
    replayed.Append(MakeKey("RN", 0.2, 0), 0.2, 4.5);
    EXPECT_EQ(replayed.ErrorCount(), 0u);
  }
  ResultStore healed(path);
  EXPECT_EQ(healed.ErrorCount(), 0u);
  auto fixed = healed.Lookup(MakeKey("RN", 0.2, 0));
  ASSERT_TRUE(fixed.has_value());
  EXPECT_FALSE(fixed->is_error);
  EXPECT_EQ(fixed->value, 4.5);
}

TEST(CorruptionMatrixTest, CompactDropsSupersededRecordsAndPreservesReplay) {
  std::string path = TempPath("compact_store.jsonl");
  fs::remove(path);
  {
    ResultStore store(path);
    for (int pass = 0; pass < 5; ++pass) {
      for (int run = 0; run < 4; ++run) {
        store.Append(MakeKey("RN", 0.5, run), 0.5, 1.0 + pass);
      }
    }
    store.AppendError(MakeKey("LD", 0.5, 0), "permanent", "boom", 1);
  }
  const auto bytes_before = fs::file_size(path);
  std::string want;
  {
    ResultStore store(path);
    want = Fingerprint(store);
    CompactStats stats = store.Compact();
    EXPECT_EQ(stats.records_before, 21u);
    EXPECT_EQ(stats.records_after, 5u);  // 4 live cells + 1 error record
    EXPECT_LT(stats.bytes_after, stats.bytes_before);
    EXPECT_EQ(stats.bytes_before, bytes_before);
    EXPECT_LT(fs::file_size(path), bytes_before);
    // In-memory view survives the rewrite unchanged.
    EXPECT_EQ(Fingerprint(store), want);
  }
  {
    ResultStore replayed(path);
    EXPECT_EQ(Fingerprint(replayed), want);
    replayed.Append(MakeKey("RN", 0.9, 0), 0.9, 9.0);
  }
  ResultStore again(path);
  EXPECT_EQ(again.Size(), 6u);
}

TEST(CorruptionMatrixTest, StaleCompactTmpFilesAreSweptOnOpen) {
  std::string path = TempPath("tmpsweep_store.jsonl");
  fs::remove(path);
  { ResultStore store(path); }
  std::string orphan = path + ".compact.tmp.12345";
  WriteFile(orphan, "half-written compaction\n");
  ResultStore store(path);
  EXPECT_FALSE(fs::exists(orphan));
}

TEST(CorruptionMatrixTest, InvalidFsyncPolicyEnvAborts) {
  ASSERT_EQ(::setenv("SPARSIFY_STORE_FSYNC", "sometimes", 1), 0);
  std::string path = TempPath("fsync_env_store.jsonl");
  fs::remove(path);
  EXPECT_THROW(ResultStore store(path), std::invalid_argument);
  ASSERT_EQ(::setenv("SPARSIFY_STORE_FSYNC", "always", 1), 0);
  {
    ResultStore store(path);
    EXPECT_EQ(store.fsync_policy(), FsyncPolicy::kAlways);
    store.Append(MakeKey("RN", 0.1, 0), 0.1, 1.0);
  }
  ASSERT_EQ(::unsetenv("SPARSIFY_STORE_FSYNC"), 0);
}

TEST(CorruptionMatrixTest, BitFlippedGraphCacheIsRejectedByContentHash) {
  Rng rng(123);
  Graph g = ErdosRenyi(200, 800, /*directed=*/false, rng);
  std::string path = TempPath("flip_cache.spgc");
  fs::remove(path);
  WriteGraphCache(g, path);
  Graph back = ReadGraphCache(path);
  EXPECT_EQ(GraphContentHash(back), GraphContentHash(g));
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
  WriteFile(path, bytes);
  EXPECT_THROW(ReadGraphCache(path), std::runtime_error);
}

}  // namespace
}  // namespace sparsify
