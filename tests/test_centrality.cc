// Tests for centrality metrics against analytically known values on small
// graphs, plus sampled-vs-exact cross-validation mirroring the paper's
// section 3.3.3.
#include "src/metrics/centrality.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

Graph StarGraph(NodeId leaves) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  return Graph::FromEdges(leaves + 1, edges, false, false);
}

TEST(BetweennessTest, StarCenterDominates) {
  Graph g = StarGraph(6);
  std::vector<double> b = BetweennessCentrality(g);
  // Center lies on all 6*5/2 = 15 leaf pairs.
  EXPECT_DOUBLE_EQ(b[0], 15.0);
  for (NodeId v = 1; v <= 6; ++v) EXPECT_DOUBLE_EQ(b[v], 0.0);
}

TEST(BetweennessTest, PathGraphValues) {
  // Path 0-1-2-3: b(1) = pairs {0,2},{0,3} = 2; plus... b(1)= {0-2,0-3} =2,
  // b(2) = {0-3,1-3} = 2.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  std::vector<double> b = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 2.0);
  EXPECT_DOUBLE_EQ(b[3], 0.0);
}

TEST(BetweennessTest, EvenSplitAcrossParallelPaths) {
  // Diamond: 0-1-3 and 0-2-3; vertices 1,2 each carry half of pair (0,3).
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, false,
                             false);
  std::vector<double> b = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(b[1], 0.5);
  EXPECT_DOUBLE_EQ(b[2], 0.5);
}

TEST(BetweennessTest, SampledApproximatesExact) {
  Rng gen(51);
  Graph g = BarabasiAlbert(200, 3, gen);
  std::vector<double> exact = BetweennessCentrality(g);
  Rng rng(52);
  std::vector<double> approx = ApproxBetweennessCentrality(g, 150, rng);
  // Top-20 rankings should mostly agree (paper validates 500 pivots).
  EXPECT_GE(TopKPrecision(exact, approx, 20), 0.7);
}

TEST(ClosenessTest, StarCenterHighest) {
  Graph g = StarGraph(8);
  std::vector<double> c = ClosenessCentrality(g);
  for (NodeId v = 1; v <= 8; ++v) EXPECT_GT(c[0], c[v]);
}

TEST(ClosenessTest, PathEndpointsLowest) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false,
                             false);
  std::vector<double> c = ClosenessCentrality(g);
  EXPECT_GT(c[2], c[0]);
  EXPECT_GT(c[2], c[4]);
  EXPECT_DOUBLE_EQ(c[0], c[4]);  // symmetry
}

TEST(ClosenessTest, DisconnectedScaledByReachability) {
  // Vertex in a big component should outrank a vertex in a 2-clique even
  // if the 2-clique distance sum is tiny (Wasserman-Faust correction).
  Graph g = Graph::FromEdges(7, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {5, 6}},
                             false, false);
  std::vector<double> c = ClosenessCentrality(g);
  EXPECT_GT(c[0], c[5]);
}

TEST(EigenvectorTest, UniformOnCycle) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 8; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % 8)});
  }
  Graph g = Graph::FromEdges(8, edges, false, false);
  std::vector<double> x = EigenvectorCentrality(g);
  for (NodeId v = 1; v < 8; ++v) EXPECT_NEAR(x[v], x[0], 1e-9);
}

TEST(EigenvectorTest, HubHighestOnStar) {
  Graph g = StarGraph(10);
  std::vector<double> x = EigenvectorCentrality(g);
  for (NodeId v = 1; v <= 10; ++v) EXPECT_GT(x[0], x[v]);
}

TEST(KatzTest, HigherDegreeHigherScore) {
  Graph g = StarGraph(5);
  std::vector<double> k = KatzCentrality(g);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_GT(k[0], k[v]);
}

TEST(KatzTest, AllPositive) {
  Rng gen(53);
  Graph g = ErdosRenyi(60, 150, true, gen);
  for (double ki : KatzCentrality(g)) EXPECT_GE(ki, 1.0);
}

TEST(PageRankTest, SumsToOne) {
  Rng gen(54);
  Graph g = RMat(8, 1000, 0.57, 0.19, 0.19, true, gen);
  std::vector<double> pr = PageRank(g);
  double sum = 0.0;
  for (double p : pr) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangles. Ranks must still sum to 1 and 1 outranks 0.
  Graph g = Graph::FromEdges(2, {{0, 1}}, true, false);
  std::vector<double> pr = PageRank(g);
  EXPECT_NEAR(pr[0] + pr[1], 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[0]);
}

TEST(PageRankTest, SymmetricGraphUniformDegreeUniformRank) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 10; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % 10)});
  }
  Graph g = Graph::FromEdges(10, edges, false, false);
  std::vector<double> pr = PageRank(g);
  for (NodeId v = 1; v < 10; ++v) EXPECT_NEAR(pr[v], pr[0], 1e-9);
}

TEST(TopKTest, PrecisionBounds) {
  std::vector<double> a = {5, 4, 3, 2, 1, 0};
  std::vector<double> b = {5, 4, 3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(TopKPrecision(a, b, 3), 1.0);
  std::vector<double> c = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(TopKPrecision(a, c, 3), 0.0);
}

TEST(TopKTest, PartialOverlap) {
  std::vector<double> a = {10, 9, 8, 0, 0, 0};
  std::vector<double> b = {10, 0, 8, 9, 0, 0};  // {0,3,2} vs {0,1,2}
  EXPECT_NEAR(TopKPrecision(a, b, 3), 2.0 / 3.0, 1e-12);
}

TEST(TopKTest, KLargerThanN) {
  std::vector<double> a = {1, 2};
  EXPECT_DOUBLE_EQ(TopKPrecision(a, a, 100), 1.0);
}

TEST(TopKIndicesTest, OrderedAndTieBroken) {
  std::vector<double> s = {1.0, 3.0, 3.0, 2.0};
  std::vector<NodeId> top = TopKIndices(s, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie with 2 broken by index
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
}

}  // namespace
}  // namespace sparsify
