// Delta-stepping vs binary-heap Dijkstra (src/graph/traversal.cc): both
// SsspModes must produce bit-identical distance arrays and summaries on
// every weighted shape — including the degenerate weight distributions
// that force the bucket queue to fall back to the heap — and a weighted
// distance-metric batch must stay bit-identical at 1/2/8 threads.
#include "src/graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "src/engine/batch_runner.h"
#include "src/graph/generators.h"
#include "src/metrics/distance.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

// The seed implementation, verbatim: per-call allocating priority-queue
// Dijkstra. Both kernel modes must reproduce its output bitwise.
std::vector<double> LegacyDijkstra(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    auto nodes = g.OutNeighborNodes(v);
    auto edges = g.OutNeighborEdges(v);
    for (size_t i = 0; i < nodes.size(); ++i) {
      double nd = d + g.EdgeWeight(edges[i]);
      if (nd < dist[nodes[i]]) {
        dist[nodes[i]] = nd;
        pq.emplace(nd, nodes[i]);
      }
    }
  }
  return dist;
}

struct NamedGraph {
  std::string name;
  Graph graph;
};

std::vector<NamedGraph> WeightedShapes() {
  Rng rng(17);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"er_zipf", WithRandomWeights(
                                   ErdosRenyi(120, 400, false, rng), 8.0,
                                   rng)});
  graphs.push_back({"ba_zipf",
                    WithRandomWeights(BarabasiAlbert(150, 3, rng), 4.0,
                                      rng)});
  graphs.push_back(
      {"powerlaw_zipf",
       WithRandomWeights(PowerLawConfiguration(200, 2.2, 2, 40, rng), 100.0,
                         rng)});
  graphs.push_back(
      {"directed_er", WithRandomWeights(ErdosRenyi(90, 320, true, rng), 6.0,
                                        rng)});
  // Uniform weights: every edge lands one bucket ahead (Dial's regime).
  std::vector<Edge> uniform;
  for (NodeId v = 0; v + 1 < 50; ++v) {
    uniform.push_back({v, static_cast<NodeId>(v + 1), 3.0});
    if (v + 2 < 50) uniform.push_back({v, static_cast<NodeId>(v + 2), 3.0});
  }
  graphs.push_back({"uniform", Graph::FromEdges(50, std::move(uniform),
                                                false, true)});
  // Heavy tail: one edge 10^6 times the mean blows the cyclic-bucket
  // budget, so even forced delta-stepping must fall back to the heap.
  std::vector<Edge> heavy;
  for (NodeId v = 0; v + 1 < 40; ++v) {
    heavy.push_back({v, static_cast<NodeId>(v + 1), 1.0});
  }
  heavy.push_back({0, 39, 1.0e6});
  graphs.push_back({"heavy_tail", Graph::FromEdges(40, std::move(heavy),
                                                   false, true)});
  // All-zero weights: delta == 0 disables bucketing entirely.
  std::vector<Edge> zeros;
  for (NodeId v = 0; v + 1 < 20; ++v) {
    zeros.push_back({v, static_cast<NodeId>(v + 1), 0.0});
  }
  graphs.push_back({"zero_weights", Graph::FromEdges(20, std::move(zeros),
                                                     false, true)});
  // Disconnected weighted pair of components.
  graphs.push_back(
      {"disconnected",
       Graph::FromEdges(10,
                        {{0, 1, 2.0}, {1, 2, 0.5}, {5, 6, 1.5}, {6, 7, 3.0}},
                        false, true)});
  return graphs;
}

TEST(DeltaSteppingTest, BitIdenticalToBinaryHeapOnAllShapes) {
  TraversalScratch scratch;  // shared across every run: reuse is the point
  for (const NamedGraph& ng : WeightedShapes()) {
    const Graph& g = ng.graph;
    for (NodeId src = 0; src < g.NumVertices();
         src += std::max<NodeId>(1, g.NumVertices() / 9)) {
      std::vector<double> legacy = LegacyDijkstra(g, src);
      TraversalSummary heap =
          DijkstraDistances(g, src, scratch, SsspMode::kBinaryHeap);
      std::vector<double> heap_dist(g.NumVertices());
      for (NodeId v = 0; v < g.NumVertices(); ++v) {
        heap_dist[v] = scratch.DistanceOf(v);
      }
      EXPECT_EQ(heap_dist, legacy) << ng.name << " src=" << src;

      TraversalSummary delta =
          DijkstraDistances(g, src, scratch, SsspMode::kDeltaStepping);
      for (NodeId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(scratch.DistanceOf(v), heap_dist[v])
            << ng.name << " src=" << src << " v=" << v;
      }
      EXPECT_EQ(delta.reached, heap.reached) << ng.name << " src=" << src;
      EXPECT_EQ(delta.max_dist, heap.max_dist) << ng.name << " src=" << src;
      EXPECT_EQ(delta.farthest, heap.farthest) << ng.name << " src=" << src;

      // kAuto picks one of the two; either way the results are the same.
      TraversalSummary autod = DijkstraDistances(g, src, scratch);
      for (NodeId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(scratch.DistanceOf(v), heap_dist[v])
            << ng.name << " src=" << src << " v=" << v << " (auto)";
      }
      EXPECT_EQ(autod.reached, heap.reached);
      EXPECT_EQ(autod.max_dist, heap.max_dist);
      EXPECT_EQ(autod.farthest, heap.farthest);
    }
  }
}

// One scratch must survive interleaved bucket sizes (the cyclic array and
// discovery list are reused across graphs of different weight scales).
TEST(DeltaSteppingTest, ScratchReuseAcrossWeightScales) {
  std::vector<NamedGraph> shapes = WeightedShapes();
  TraversalScratch scratch;
  for (int round = 0; round < 3; ++round) {
    for (const NamedGraph& ng : shapes) {
      NodeId src = static_cast<NodeId>((round * 7) %
                                       ng.graph.NumVertices());
      TraversalScratch fresh;
      DijkstraDistances(ng.graph, src, scratch, SsspMode::kDeltaStepping);
      DijkstraDistances(ng.graph, src, fresh, SsspMode::kDeltaStepping);
      for (NodeId v = 0; v < ng.graph.NumVertices(); ++v) {
        EXPECT_EQ(scratch.DistanceOf(v), fresh.DistanceOf(v))
            << ng.name << " round=" << round << " v=" << v;
      }
    }
  }
}

// Weighted distance-metric batch at 1/2/8 threads: Traverse dispatches
// weighted graphs into the delta-stepping path, whose distances are a
// unique fixed point — so the whole run is thread-count-independent.
TEST(DeltaSteppingTest, WeightedMetricsBitIdenticalAcrossThreadCounts) {
  Rng rng(41);
  Graph g = WithRandomWeights(BarabasiAlbert(130, 3, rng), 10.0, rng);
  std::vector<BatchMetric> metrics = {
      {"spsp",
       [](const Graph& orig, const Graph& sp, Rng& r) {
         return SpspStretch(orig, sp, 300, r).mean_stretch;
       }},
      {"eccentricity",
       [](const Graph& orig, const Graph& sp, Rng& r) {
         return EccentricityStretch(orig, sp, 15, r).mean_stretch;
       }},
  };
  BatchSpec spec;
  spec.sparsifiers = {"RN", "LD"};
  spec.prune_rates = {0.3, 0.6};
  spec.runs = 2;
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  auto run_at = [&](int threads) {
    BatchRunner runner(threads);
    std::vector<BatchMultiResult> results = runner.RunTasksMulti(
        g, "delta_bitident", tasks, spec.master_seed, metrics);
    std::vector<double> values;
    for (const BatchMultiResult& r : results) {
      for (const BatchMetricValue& mv : r.values) values.push_back(mv.value);
    }
    return values;
  };
  std::vector<double> one = run_at(1);
  EXPECT_EQ(one, run_at(2));
  EXPECT_EQ(one, run_at(8));
}

}  // namespace
}  // namespace sparsify
