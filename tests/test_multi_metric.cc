// Multi-metric engine and sweep: sparsify-once subgraph sharing.
//
// The core contract under test: a multi-metric run is bit-identical to
// the union of single-metric runs — MetricSeed streams are independent of
// the metric-set composition, the grid shape, the submitted subset, and
// the thread count — and the (cell × metric) scheduler materializes each
// subgraph once and submits only missing units on resume. Also covers
// NestedParallelFor (the within-metric BFS-batch fan-out primitive) and
// the MetricFn thread-safety audit regression.
#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/cli/metrics.h"
#include "src/engine/batch_runner.h"
#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/metrics/centrality.h"
#include "src/metrics/distance.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// ---------------------------------------------------------------------------
// NestedParallelFor — the primitive metrics use to fan BFS batches out.

TEST(NestedParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  NestedParallelFor(&pool, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(NestedParallelForTest, NullPoolRunsSerially) {
  std::vector<int> hits(64, 0);
  NestedParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(NestedParallelForTest, PropagatesException) {
  ThreadPool pool(4);
  auto boom = [](size_t i) {
    if (i == 3) throw std::runtime_error("subtask failed");
  };
  EXPECT_THROW(NestedParallelFor(&pool, 100, boom), std::runtime_error);
  EXPECT_THROW(NestedParallelFor(nullptr, 100, boom), std::runtime_error);
  // The pool survives for further use.
  std::atomic<int> count{0};
  NestedParallelFor(&pool, 10, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(NestedParallelForTest, SafeFromInsidePoolTasks) {
  // The engine calls metrics from pool workers, and metrics call
  // NestedParallelFor — a nested Wait would deadlock, the claim-loop
  // design must not. Exercised with several concurrent nested loops.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(400);
  for (int task = 0; task < 4; ++task) {
    pool.Submit([&, task] {
      NestedParallelFor(&pool, 100, [&, task](size_t i) {
        hits[task * 100 + i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.Wait();
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(NestedParallelForTest, SingleThreadPoolFallsBackToSerial) {
  // With one worker there is nobody to run queued helpers while the
  // caller waits — the serial fallback must kick in, even from inside the
  // pool's only worker.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.Submit([&] {
    NestedParallelFor(&pool, 50, [&](size_t) { count++; });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// MetricSeed — the grid-shape- and metric-set-independent stream identity.

TEST(MetricSeedTest, DependsOnEveryComponent) {
  uint64_t base = BatchRunner::MetricSeed(42, "ds@0.5", "RN", 0.3, 1, "spsp");
  EXPECT_EQ(base,
            BatchRunner::MetricSeed(42, "ds@0.5", "RN", 0.3, 1, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(43, "ds@0.5", "RN", 0.3, 1, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(42, "ds@0.4", "RN", 0.3, 1, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(42, "ds@0.5", "LD", 0.3, 1, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(42, "ds@0.5", "RN", 0.4, 1, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(42, "ds@0.5", "RN", 0.3, 2, "spsp"));
  EXPECT_NE(base,
            BatchRunner::MetricSeed(42, "ds@0.5", "RN", 0.3, 1, "degree"));
  // String-boundary discipline: shifting a character between fields must
  // not collide — including bytes that could masquerade as a terminator
  // (boundaries are length-folded, not sentinel-byte-folded).
  EXPECT_NE(BatchRunner::MetricSeed(42, "ab", "c", 0.3, 1, ""),
            BatchRunner::MetricSeed(42, "a", "bc", 0.3, 1, ""));
  EXPECT_NE(BatchRunner::MetricSeed(42, "a\xff", "b", 0.3, 1, ""),
            BatchRunner::MetricSeed(42, "a", "\xffb", 0.3, 1, ""));
}

// ---------------------------------------------------------------------------
// Within-metric parallelism: subtask fan-out must not move a single bit.

TEST(MetricSubtaskTest, SampledMetricsBitIdenticalWithSubtaskPool) {
  Dataset d = LoadDatasetScaled("ego-Facebook", 0.1);
  Rng sparsify_rng(9);
  Graph h = CreateSparsifier("RN")->Sparsify(d.graph, 0.5, sparsify_rng);
  ThreadPool pool(8);

  Rng a1(7), a2(7);
  StretchResult spsp_serial = SpspStretch(d.graph, h, 500, a1);
  StretchResult spsp_parallel;
  {
    SubtaskPoolScope scope(&pool);
    spsp_parallel = SpspStretch(d.graph, h, 500, a2);
  }
  EXPECT_EQ(spsp_serial.mean_stretch, spsp_parallel.mean_stretch);
  EXPECT_EQ(spsp_serial.unreachable, spsp_parallel.unreachable);
  EXPECT_EQ(spsp_serial.pairs_evaluated, spsp_parallel.pairs_evaluated);

  Rng b1(11), b2(11);
  StretchResult ecc_serial = EccentricityStretch(d.graph, h, 40, b1);
  StretchResult ecc_parallel;
  {
    SubtaskPoolScope scope(&pool);
    ecc_parallel = EccentricityStretch(d.graph, h, 40, b2);
  }
  EXPECT_EQ(ecc_serial.mean_stretch, ecc_parallel.mean_stretch);
  EXPECT_EQ(ecc_serial.unreachable, ecc_parallel.unreachable);

  Rng c1(13), c2(13);
  double diam_serial = ApproxDiameter(h, 4, c1);
  double diam_parallel;
  {
    SubtaskPoolScope scope(&pool);
    diam_parallel = ApproxDiameter(h, 4, c2);
  }
  EXPECT_EQ(diam_serial, diam_parallel);

  Rng e1(17), e2(17);
  std::vector<double> btw_serial =
      ApproxBetweennessCentrality(h, 100, e1);
  std::vector<double> btw_parallel;
  {
    SubtaskPoolScope scope(&pool);
    btw_parallel = ApproxBetweennessCentrality(h, 100, e2);
  }
  ASSERT_EQ(btw_serial.size(), btw_parallel.size());
  for (size_t v = 0; v < btw_serial.size(); ++v) {
    EXPECT_EQ(btw_serial[v], btw_parallel[v]) << v;
  }

  std::vector<double> close_serial = ClosenessCentrality(h);
  std::vector<double> close_parallel;
  {
    SubtaskPoolScope scope(&pool);
    close_parallel = ClosenessCentrality(h);
  }
  ASSERT_EQ(close_serial.size(), close_parallel.size());
  for (size_t v = 0; v < close_serial.size(); ++v) {
    EXPECT_EQ(close_serial[v], close_parallel[v]) << v;
  }
}

// ---------------------------------------------------------------------------
// Engine: RunTasksMulti.

class MultiMetricEngineTest : public ::testing::Test {
 protected:
  MultiMetricEngineTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph) {}

  static BatchSpec Spec() {
    BatchSpec spec;
    spec.sparsifiers = {"RN", "LD", "SF"};
    spec.prune_rates = {0.2, 0.5, 0.8};
    spec.runs = 2;
    spec.master_seed = 123;
    return spec;
  }

  // Registry metrics chosen to exercise every sharing axis: a sampled
  // BFS-batch metric (spsp), a Louvain rng consumer (communities), and
  // two deterministic structural metrics (degree, kcore).
  static std::vector<BatchMetric> Metrics() {
    return {
        {"degree", cli::FindMetric("degree")},
        {"spsp", cli::FindMetric("spsp")},
        {"communities", cli::FindMetric("communities")},
        {"kcore", cli::FindMetric("kcore")},
    };
  }

  Graph graph_;
};

TEST_F(MultiMetricEngineTest, MultiRunEqualsUnionOfSingleMetricRuns) {
  BatchSpec spec = Spec();
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchMetric> metrics = Metrics();
  BatchRunner runner(2);
  std::vector<BatchMultiResult> multi = runner.RunTasksMulti(
      graph_, "fb@0.1", tasks, spec.master_seed, metrics);
  ASSERT_EQ(multi.size(), tasks.size());
  for (uint32_t m = 0; m < metrics.size(); ++m) {
    std::vector<BatchMultiResult> single = runner.RunTasksMulti(
        graph_, "fb@0.1", tasks, spec.master_seed, {metrics[m]});
    for (size_t i = 0; i < tasks.size(); ++i) {
      ASSERT_EQ(multi[i].values.size(), metrics.size());
      EXPECT_EQ(multi[i].values[m].metric, m);
      // EXPECT_EQ on doubles is exact: the contract is bit-identical.
      EXPECT_EQ(multi[i].values[m].value, single[i].values[0].value)
          << metrics[m].name << " cell " << i;
      EXPECT_EQ(multi[i].achieved_prune_rate, single[i].achieved_prune_rate);
    }
  }
}

TEST_F(MultiMetricEngineTest, BitIdenticalAcrossThreadCounts) {
  BatchSpec spec = Spec();
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchMetric> metrics = Metrics();
  std::vector<std::vector<BatchMultiResult>> runs;
  for (int threads : {1, 2, 8}) {
    BatchRunner runner(threads);
    runs.push_back(runner.RunTasksMulti(graph_, "fb@0.1", tasks,
                                        spec.master_seed, metrics));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[0][i].achieved_prune_rate, runs[r][i].achieved_prune_rate);
      ASSERT_EQ(runs[0][i].values.size(), runs[r][i].values.size());
      for (size_t s = 0; s < runs[0][i].values.size(); ++s) {
        EXPECT_EQ(runs[0][i].values[s].value, runs[r][i].values[s].value);
      }
    }
  }
}

TEST_F(MultiMetricEngineTest, PerTaskMetricSubsetsAreHonored) {
  BatchSpec spec = Spec();
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchMetric> metrics = Metrics();
  BatchRunner runner(2);
  std::vector<BatchMultiResult> full = runner.RunTasksMulti(
      graph_, "fb@0.1", tasks, spec.master_seed, metrics);

  // Odd cells evaluate only metric 1, even cells metrics {0, 3} — the
  // shapes the resume scheduler produces. Values must match the full run.
  std::vector<BatchTask> subset = tasks;
  size_t expected_units = 0;
  for (size_t i = 0; i < subset.size(); ++i) {
    subset[i].metrics =
        (i % 2 == 1) ? std::vector<uint32_t>{1} : std::vector<uint32_t>{0, 3};
    expected_units += subset[i].metrics.size();
  }
  BatchRunStats stats;
  std::vector<BatchMultiResult> partial = runner.RunTasksMulti(
      graph_, "fb@0.1", subset, spec.master_seed, metrics, nullptr, &stats);
  EXPECT_EQ(stats.cells, tasks.size());
  EXPECT_EQ(stats.metric_units, expected_units);
  EXPECT_EQ(stats.subgraph_builds, tasks.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    ASSERT_EQ(partial[i].values.size(), subset[i].metrics.size());
    for (size_t s = 0; s < partial[i].values.size(); ++s) {
      uint32_t m = subset[i].metrics[s];
      EXPECT_EQ(partial[i].values[s].metric, m);
      EXPECT_EQ(partial[i].values[s].value, full[i].values[m].value);
    }
  }
}

TEST_F(MultiMetricEngineTest, StatsCountBothSharingAxes) {
  BatchSpec spec = Spec();
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  // RN: 3 rates x 2 runs; LD: 3 x 1; SF: 1 x 1 (no rate control).
  ASSERT_EQ(tasks.size(), 6u + 3u + 1u);
  std::vector<BatchMetric> metrics = Metrics();
  BatchRunner runner(2);
  BatchRunStats stats;
  runner.RunTasksMulti(graph_, "fb@0.1", tasks, spec.master_seed, metrics,
                       nullptr, &stats);
  EXPECT_EQ(stats.cells, 10u);
  EXPECT_EQ(stats.metric_units, 40u);
  EXPECT_EQ(stats.subgraph_builds, 10u);   // one per cell, not per unit
  EXPECT_EQ(stats.score_groups, 4u);       // (RN,0), (RN,1), (LD,0), (SF,0)
}

TEST_F(MultiMetricEngineTest, InvalidMetricConfigurationsThrow) {
  BatchSpec spec = Spec();
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  BatchRunner runner(2);
  EXPECT_THROW(
      runner.RunTasksMulti(graph_, "fb@0.1", tasks, spec.master_seed, {}),
      std::invalid_argument);
  std::vector<BatchTask> bad = tasks;
  bad[0].metrics = {7};  // out of range for a 1-metric list
  EXPECT_THROW(runner.RunTasksMulti(graph_, "fb@0.1", bad, spec.master_seed,
                                    {{"degree", cli::FindMetric("degree")}}),
               std::invalid_argument);
}

TEST_F(MultiMetricEngineTest, MetricThreadSafetyAuditRegression) {
  // The audit satellite: metrics that keep scratch state (Louvain's level
  // buffers, Dinic's residual arcs, Brandes' thread_local vectors) run
  // concurrently both ACROSS cells and WITHIN a cell's metric fan-out.
  // Any shared mutable state shows up as cross-thread drift: an 8-thread
  // run must reproduce the single-thread run bit for bit.
  BatchSpec spec;
  spec.sparsifiers = {"RN", "LD"};
  spec.prune_rates = {0.3, 0.6};
  spec.runs = 2;
  spec.master_seed = 7;
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchMetric> metrics = {
      {"communities", cli::FindMetric("communities")},
      {"maxflow", cli::FindMetric("maxflow")},
      {"betweenness", cli::FindMetric("betweenness")},
      {"closeness", cli::FindMetric("closeness")},
  };
  BatchRunner one(1);
  BatchRunner eight(8);
  std::vector<BatchMultiResult> serial = one.RunTasksMulti(
      graph_, "fb@0.1", tasks, spec.master_seed, metrics);
  std::vector<BatchMultiResult> parallel = eight.RunTasksMulti(
      graph_, "fb@0.1", tasks, spec.master_seed, metrics);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    for (size_t s = 0; s < serial[i].values.size(); ++s) {
      EXPECT_EQ(serial[i].values[s].value, parallel[i].values[s].value)
          << metrics[s].name << " cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// ResumableSweep::RunMulti — the (cell × metric) scheduler.

class MultiMetricSweepTest : public ::testing::Test {
 protected:
  MultiMetricSweepTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph), runner_(2) {}

  static SweepConfig Config() {
    SweepConfig config;
    config.sparsifiers = {"RN", "LD"};
    config.prune_rates = {0.2, 0.5, 0.8};
    config.runs_nondeterministic = 2;
    config.seed = 123;
    return config;
  }

  static std::vector<SweepMetric> TwoMetrics() {
    return {{"degree", cli::FindMetric("degree")},
            {"quadratic", cli::FindMetric("quadratic")}};
  }

  static void ExpectSeriesBitIdentical(const std::vector<SweepSeries>& a,
                                       const std::vector<SweepSeries>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a[s].sparsifier, b[s].sparsifier);
      ASSERT_EQ(a[s].points.size(), b[s].points.size());
      for (size_t p = 0; p < a[s].points.size(); ++p) {
        EXPECT_EQ(a[s].points[p].mean, b[s].points[p].mean);
        EXPECT_EQ(a[s].points[p].stddev, b[s].points[p].stddev);
        EXPECT_EQ(a[s].points[p].achieved_prune_rate,
                  b[s].points[p].achieved_prune_rate);
        EXPECT_EQ(a[s].points[p].runs, b[s].points[p].runs);
      }
    }
  }

  Graph graph_;
  BatchRunner runner_;
};

TEST_F(MultiMetricSweepTest, MultiSweepEqualsUnionOfSingleMetricSweeps) {
  SweepConfig config = Config();
  std::vector<SweepMetric> metrics = TwoMetrics();
  ResumableSweep sweep(runner_, nullptr, "test-rev");
  std::vector<MetricSweepSeries> multi =
      sweep.RunMulti(graph_, "fb@0.1", metrics, config);
  ASSERT_EQ(multi.size(), 2u);
  for (const SweepMetric& m : metrics) {
    std::vector<SweepSeries> single =
        sweep.Run(graph_, "fb@0.1", m.name, config, m.fn);
    const MetricSweepSeries* found = nullptr;
    for (const MetricSweepSeries& ms : multi) {
      if (ms.metric == m.name) found = &ms;
    }
    ASSERT_NE(found, nullptr);
    ExpectSeriesBitIdentical(single, found->series);
  }
}

TEST_F(MultiMetricSweepTest, ResumingWithMoreMetricsSubmitsOnlyNewUnits) {
  std::string dir = TempPath("more_metrics_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  SweepConfig config = Config();
  std::vector<SweepMetric> metrics = TwoMetrics();
  size_t cells = BatchRunner::ExpandGrid(ToBatchSpec(config)).size();

  // First sweep: metric "degree" alone, through the single-metric API.
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.Run(graph_, "fb@0.1", metrics[0].name, config, metrics[0].fn);
  EXPECT_EQ(store.Size(), cells);

  // Resumed with BOTH metrics: the degree units are served from the
  // store, every cell is rebuilt once for the quadratic units only.
  ResumableSweepStats stats;
  std::vector<MetricSweepSeries> resumed =
      sweep.RunMulti(graph_, "fb@0.1", metrics, config, &stats);
  EXPECT_EQ(stats.total_cells, 2 * cells);
  EXPECT_EQ(stats.cached_cells, cells);
  EXPECT_EQ(stats.submitted_cells, cells);
  EXPECT_EQ(stats.subgraph_builds, cells);
  EXPECT_EQ(store.Size(), 2 * cells);

  // And the resumed output matches a cold multi-metric run bit for bit.
  ResumableSweep cold(runner_, nullptr, "test-rev");
  std::vector<MetricSweepSeries> cold_multi =
      cold.RunMulti(graph_, "fb@0.1", metrics, config);
  for (size_t m = 0; m < metrics.size(); ++m) {
    ExpectSeriesBitIdentical(cold_multi[m].series, resumed[m].series);
  }

  // A third pass schedules nothing at all.
  ResumableSweepStats again;
  sweep.RunMulti(graph_, "fb@0.1", metrics, config, &again);
  EXPECT_EQ(again.submitted_cells, 0u);
  EXPECT_EQ(again.subgraph_builds, 0u);
}

TEST_F(MultiMetricSweepTest, ColdAndResumedBitIdenticalAcrossThreadCounts) {
  SweepConfig config = Config();
  std::vector<SweepMetric> metrics = TwoMetrics();

  // Cold reference on 1 thread.
  BatchRunner one(1);
  ResumableSweep cold(one, nullptr, "test-rev");
  std::vector<MetricSweepSeries> reference =
      cold.RunMulti(graph_, "fb@0.1", metrics, config);

  for (int threads : {2, 8}) {
    BatchRunner runner(threads);
    // Cold at this thread count.
    ResumableSweep sweep(runner, nullptr, "test-rev");
    std::vector<MetricSweepSeries> out =
        sweep.RunMulti(graph_, "fb@0.1", metrics, config);
    for (size_t m = 0; m < metrics.size(); ++m) {
      ExpectSeriesBitIdentical(reference[m].series, out[m].series);
    }
    // Interrupted-at-one-metric + resumed at this thread count.
    std::string dir = TempPath("threads_store_" + std::to_string(threads));
    fs::remove_all(dir);
    ResultStore store(ResultStore::PathInDir(dir));
    ResumableSweep resumed(runner, &store, "test-rev");
    resumed.Run(graph_, "fb@0.1", metrics[1].name, config, metrics[1].fn);
    std::vector<MetricSweepSeries> after =
        resumed.RunMulti(graph_, "fb@0.1", metrics, config);
    for (size_t m = 0; m < metrics.size(); ++m) {
      ExpectSeriesBitIdentical(reference[m].series, after[m].series);
    }
  }
}

}  // namespace
}  // namespace sparsify
