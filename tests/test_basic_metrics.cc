// Tests for the basic metrics (degree-distribution distance, quadratic-form
// similarity) and the statistics utilities behind them.
#include "src/metrics/basic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/sparsifiers/random_sparsifier.h"
#include "src/util/stats.h"

namespace sparsify {
namespace {

TEST(StatsTest, MeanStdDevMedian) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(StdDev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  std::vector<double> xs = {0.5, 1.5, -2.0, 7.0, 3.25};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.StdDev(), StdDev(xs), 1e-12);
}

TEST(BhattacharyyaTest, IdenticalDistributionsZero) {
  std::vector<double> p = {1.0, 2.0, 3.0};
  EXPECT_NEAR(BhattacharyyaDistance(p, p), 0.0, 1e-12);
}

TEST(BhattacharyyaTest, ScaleInvariant) {
  std::vector<double> p = {1.0, 2.0, 3.0};
  std::vector<double> q = {10.0, 20.0, 30.0};
  EXPECT_NEAR(BhattacharyyaDistance(p, q), 0.0, 1e-12);
}

TEST(BhattacharyyaTest, DisjointSupportInfinite) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_TRUE(std::isinf(BhattacharyyaDistance(p, q)));
}

TEST(BhattacharyyaTest, KnownValue) {
  // p = (1/2, 1/2), q = (1/8, 7/8): BC = sqrt(1/16) + sqrt(7/16).
  double bc = std::sqrt(1.0 / 16.0) + std::sqrt(7.0 / 16.0);
  EXPECT_NEAR(BhattacharyyaDistance({0.5, 0.5}, {0.125, 0.875}),
              -std::log(bc), 1e-12);
}

TEST(DegreeHistogramTest, BinsCoverRange) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}}, false, false);
  std::vector<double> h = DegreeHistogram(g, 4, g.MaxDegree());
  double total = 0.0;
  for (double b : h) total += b;
  EXPECT_DOUBLE_EQ(total, 4.0);  // every vertex lands in some bin
}

TEST(DegreeDistributionTest, SelfDistanceZero) {
  Rng rng(81);
  Graph g = BarabasiAlbert(300, 4, rng);
  EXPECT_NEAR(DegreeDistributionDistance(g, g), 0.0, 1e-12);
}

TEST(DegreeDistributionTest, RandomBeatsDegreeBiased) {
  // The headline of paper Fig. 2: Random preserves the degree distribution
  // better than a sparsifier that keeps all edges of high-degree vertices.
  Rng gen(82);
  Graph g = BarabasiAlbert(600, 5, gen);
  Rng rng(83);
  Graph random_h = RandomSparsifier().Sparsify(g, 0.5, rng);
  // Degree-biased strawman: keep edges whose endpoint degree sum is top.
  std::vector<double> score(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    score[e] = static_cast<double>(g.OutDegree(ed.u)) + g.OutDegree(ed.v);
  }
  Graph biased_h =
      g.Subgraph(KeepTopScoring(score, TargetKeepCount(g.NumEdges(), 0.5)));
  EXPECT_LT(DegreeDistributionDistance(g, random_h),
            DegreeDistributionDistance(g, biased_h));
}

TEST(QuadraticFormTest, SelfSimilarityOne) {
  Rng gen(84);
  Graph g = ErdosRenyi(100, 400, false, gen);
  Rng rng(85);
  EXPECT_NEAR(QuadraticFormSimilarity(g, g, 20, rng), 1.0, 1e-12);
}

TEST(QuadraticFormTest, HalfEdgesRoughlyHalfForm) {
  Rng gen(86);
  Graph g = ErdosRenyi(300, 2000, false, gen);
  Rng rng(87);
  Graph h = RandomSparsifier().Sparsify(g, 0.5, rng);
  double sim = QuadraticFormSimilarity(g, h, 50, rng);
  EXPECT_NEAR(sim, 0.5, 0.1);
}

TEST(QuadraticFormTest, DirectedGraphsSymmetrized) {
  Rng gen(88);
  Graph g = RMat(8, 800, 0.57, 0.19, 0.19, true, gen);
  Rng rng(89);
  // Must not crash and must be ~1 for identical graphs.
  EXPECT_NEAR(QuadraticFormSimilarity(g, g, 10, rng), 1.0, 1e-12);
}

}  // namespace
}  // namespace sparsify
