// binary_io truncation/corruption round-trips: every malformed input must
// raise a clean std::runtime_error from the reader — never a partial Graph,
// never a crash. Complements the happy-path coverage in test_kcore_and_io.
#include <sstream>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/graph/binary_io.h"

namespace sparsify {
namespace {

Graph MakeWeightedGraph() {
  std::vector<Edge> edges = {{0, 1, 2.5}, {1, 2, 0.75}, {2, 3, 1.0},
                             {0, 3, 4.25}};
  return Graph::FromEdges(4, std::move(edges), /*directed=*/false,
                          /*weighted=*/true);
}

Graph MakeUnweightedGraph() {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  return Graph::FromEdges(3, std::move(edges), /*directed=*/true,
                          /*weighted=*/false);
}

std::string Serialize(const Graph& g) {
  std::ostringstream out(std::ios::binary);
  WriteBinaryGraphStream(g, out);
  return out.str();
}

Graph Deserialize(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return ReadBinaryGraphStream(in);
}

TEST(BinaryIoCorruptionTest, RoundTripSanity) {
  Graph g = MakeWeightedGraph();
  Graph h = Deserialize(Serialize(g));
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  EXPECT_TRUE(h.IsWeighted());
  EXPECT_FALSE(h.IsDirected());
}

TEST(BinaryIoCorruptionTest, HeaderCutMidMagic) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  EXPECT_THROW(Deserialize(bytes.substr(0, 0)), std::runtime_error);
  EXPECT_THROW(Deserialize(bytes.substr(0, 2)), std::runtime_error);
  EXPECT_THROW(Deserialize(bytes.substr(0, 3)), std::runtime_error);
}

TEST(BinaryIoCorruptionTest, HeaderCutMidVersionOrCounts) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  EXPECT_THROW(Deserialize(bytes.substr(0, 5)), std::runtime_error);   // version
  EXPECT_THROW(Deserialize(bytes.substr(0, 9)), std::runtime_error);   // flags
  EXPECT_THROW(Deserialize(bytes.substr(0, 12)), std::runtime_error);  // n
  EXPECT_THROW(Deserialize(bytes.substr(0, 16)), std::runtime_error);  // m
}

TEST(BinaryIoCorruptionTest, EdgeArrayCutMidRecord) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  // Header is 18 bytes (magic 4, version 4, flags 2, n 4, m 4); each edge
  // is 8. Cut inside the second edge record.
  EXPECT_THROW(Deserialize(bytes.substr(0, 18 + 8 + 3)), std::runtime_error);
}

TEST(BinaryIoCorruptionTest, WeightBlockMissingOrTruncated) {
  Graph g = MakeWeightedGraph();
  std::string bytes = Serialize(g);
  size_t weights_start = bytes.size() - 8 * g.NumEdges();
  // Weight block entirely absent.
  EXPECT_THROW(Deserialize(bytes.substr(0, weights_start)),
               std::runtime_error);
  // Weight block cut mid-double.
  EXPECT_THROW(Deserialize(bytes.substr(0, weights_start + 4)),
               std::runtime_error);
}

// Exhaustive contract: EVERY strict prefix of a valid serialization is
// rejected with std::runtime_error (reads are sequential and exact, so a
// strict prefix can never parse as a complete graph).
TEST(BinaryIoCorruptionTest, EveryStrictPrefixThrows) {
  for (const Graph& g : {MakeWeightedGraph(), MakeUnweightedGraph()}) {
    std::string bytes = Serialize(g);
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_THROW(Deserialize(bytes.substr(0, len)), std::runtime_error)
          << "prefix length " << len << " of " << bytes.size();
    }
    EXPECT_NO_THROW(Deserialize(bytes));
  }
}

TEST(BinaryIoCorruptionTest, BadMagicRejected) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  bytes[0] = 'X';
  EXPECT_THROW(Deserialize(bytes), std::runtime_error);
}

TEST(BinaryIoCorruptionTest, UnsupportedVersionRejected) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  bytes[4] = 99;  // little-endian u32 version
  EXPECT_THROW(Deserialize(bytes), std::runtime_error);
}

TEST(BinaryIoCorruptionTest, EdgeEndpointOutOfRangeRejected) {
  std::string bytes = Serialize(MakeUnweightedGraph());
  // First edge's u (offset 18): point it far outside [0, n).
  bytes[18] = static_cast<char>(0xff);
  bytes[19] = static_cast<char>(0xff);
  EXPECT_THROW(Deserialize(bytes), std::runtime_error);
}

TEST(BinaryIoCorruptionTest, TrailingGarbageIsIgnoredByStreamReader) {
  // The stream reader consumes exactly one graph; callers may concatenate.
  std::string bytes = Serialize(MakeUnweightedGraph()) + "garbage";
  EXPECT_NO_THROW(Deserialize(bytes));
}

}  // namespace
}  // namespace sparsify
