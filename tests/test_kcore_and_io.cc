// Tests for k-core decomposition, harmonic centrality, weighted
// betweenness, the LFR generator, and binary graph serialization.
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/graph/binary_io.h"
#include "src/graph/generators.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/kcore.h"
#include "src/metrics/louvain.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(KCoreTest, TriangleWithTail) {
  // Triangle (core 2) with a pendant (core 1).
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false,
                             false);
  std::vector<NodeId> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(Degeneracy(g), 2u);
}

TEST(KCoreTest, CompleteGraph) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  Graph g = Graph::FromEdges(6, edges, false, false);
  for (NodeId c : CoreNumbers(g)) EXPECT_EQ(c, 5u);
}

TEST(KCoreTest, TreeIsOneCore) {
  Rng rng(1);
  Graph g = BarabasiAlbert(100, 1, rng);
  // m=1 BA graph is a tree.
  EXPECT_EQ(Degeneracy(g), 1u);
}

TEST(KCoreTest, CoreBoundedByDegree) {
  Rng rng(2);
  Graph g = PowerLawConfiguration(200, 2.2, 1, 40, rng);
  std::vector<NodeId> core = CoreNumbers(g);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(core[v], g.OutDegree(v));
  }
}

TEST(HarmonicTest, StarCenterHighest) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 8; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(9, edges, false, false);
  std::vector<double> h = HarmonicCentrality(g);
  EXPECT_DOUBLE_EQ(h[0], 8.0);                   // 8 at distance 1
  EXPECT_DOUBLE_EQ(h[1], 1.0 + 7.0 / 2.0);       // 1 hub + 7 leaves at 2
}

TEST(HarmonicTest, HandlesDisconnected) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}}, false, false);
  std::vector<double> h = HarmonicCentrality(g);
  for (double hv : h) EXPECT_DOUBLE_EQ(hv, 1.0);
}

TEST(WeightedBetweennessTest, MatchesUnweightedOnUnitWeights) {
  Rng rng(3);
  Graph g = ErdosRenyi(60, 180, false, rng);
  std::vector<double> unweighted = BetweennessCentrality(g);
  std::vector<double> weighted = WeightedBetweennessCentrality(g);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(weighted[v], unweighted[v], 1e-6) << v;
  }
}

TEST(WeightedBetweennessTest, WeightsReroutePaths) {
  // Square 0-1-2 / 0-3-2 with a heavy edge on the 0-1 side: all 0..2
  // traffic goes via 3.
  Graph g = Graph::FromEdges(
      4, {{0, 1, 10.0}, {1, 2, 1.0}, {0, 3, 1.0}, {3, 2, 1.0}}, false,
      true);
  std::vector<double> b = WeightedBetweennessCentrality(g);
  EXPECT_GT(b[3], b[1]);
  EXPECT_DOUBLE_EQ(b[1], 0.0);
}

TEST(LfrTest, CommunitiesAndMixing) {
  Rng rng(4);
  std::vector<int> comm;
  Graph g = LfrBenchmark(600, 2.5, 4, 40, 2.0, 20, 0.15, rng, &comm);
  ASSERT_EQ(comm.size(), 600u);
  int intra = 0;
  for (const Edge& e : g.Edges()) {
    if (comm[e.u] == comm[e.v]) ++intra;
  }
  double intra_frac = static_cast<double>(intra) / g.NumEdges();
  // mu = 0.15 -> ~85% intra (stub matching adds a little noise).
  EXPECT_GT(intra_frac, 0.7);
  // Heterogeneous community sizes.
  std::map<int, int> sizes;
  for (int c : comm) ++sizes[c];
  int min_size = 1 << 30, max_size = 0;
  for (const auto& [c, s] : sizes) {
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  EXPECT_GT(max_size, 2 * min_size);
}

TEST(LfrTest, LouvainRecoversLowMixing) {
  Rng rng(5);
  std::vector<int> comm;
  Graph g = LfrBenchmark(500, 2.5, 6, 30, 2.0, 30, 0.05, rng, &comm);
  Rng lrng(6);
  Clustering c = LouvainCommunities(g, lrng);
  EXPECT_GT(ClusteringF1(c.label, comm), 0.6);
}

TEST(LfrTest, RejectsBadMu) {
  Rng rng(7);
  EXPECT_THROW(LfrBenchmark(100, 2.5, 2, 10, 2.0, 10, 1.5, rng),
               std::invalid_argument);
}

TEST(BinaryIoTest, RoundTripUnweighted) {
  Rng rng(8);
  Graph g = BarabasiAlbert(120, 3, rng);
  std::stringstream ss;
  WriteBinaryGraphStream(g, ss);
  Graph h = ReadBinaryGraphStream(ss);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.Edges(), g.Edges());
  EXPECT_EQ(h.IsDirected(), g.IsDirected());
  EXPECT_EQ(h.IsWeighted(), g.IsWeighted());
}

TEST(BinaryIoTest, RoundTripWeightedDirected) {
  Rng rng(9);
  Graph base = ErdosRenyi(80, 250, true, rng);
  Graph g = WithRandomWeights(base, 9.0, rng);
  std::stringstream ss;
  WriteBinaryGraphStream(g, ss);
  Graph h = ReadBinaryGraphStream(ss);
  EXPECT_TRUE(h.IsDirected());
  EXPECT_TRUE(h.IsWeighted());
  EXPECT_EQ(h.Edges(), g.Edges());
}

TEST(BinaryIoTest, BadMagicRejected) {
  std::stringstream ss("NOPEnotagraph");
  EXPECT_THROW(ReadBinaryGraphStream(ss), std::runtime_error);
}

TEST(BinaryIoTest, TruncationRejected) {
  Rng rng(10);
  Graph g = BarabasiAlbert(50, 2, rng);
  std::stringstream ss;
  WriteBinaryGraphStream(g, ss);
  std::string data = ss.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_THROW(ReadBinaryGraphStream(truncated), std::runtime_error);
}

TEST(BinaryIoTest, CorruptEndpointRejected) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false, false);
  std::stringstream ss;
  WriteBinaryGraphStream(g, ss);
  std::string data = ss.str();
  // num_vertices field: bytes [10, 14). Shrink the vertex count so stored
  // edges point out of range.
  data[10] = 1;
  data[11] = data[12] = data[13] = 0;
  std::stringstream corrupt(data);
  EXPECT_THROW(ReadBinaryGraphStream(corrupt), std::runtime_error);
}

TEST(BinaryIoTest, FileRoundTrip) {
  Rng rng(11);
  Graph g = WattsStrogatz(100, 3, 0.1, rng);
  std::string path = "/tmp/sparsify_binary_io_test.bin";
  WriteBinaryGraph(g, path);
  Graph h = ReadBinaryGraph(path);
  EXPECT_EQ(h.Edges(), g.Edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sparsify
