// Shard scheduler (src/engine/shard_scheduler.cc) driven in-process:
// multiple ResumableSweep instances with their own cooperative store
// handles on one directory must partition, claim, steal, and fold to
// output bit-identical to the unsharded sweep. The multi-process /
// kill -9 half of the contract lives in test_shard_torture.cc.
#include <filesystem>

#include "gtest/gtest.h"
#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/metrics/basic.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::path(::testing::TempDir()) / name).string();
  fs::remove_all(dir);
  return dir;
}

MetricFn SampledMetric() {
  return [](const Graph& g, const Graph& h, Rng& rng) {
    return QuadraticFormSimilarity(g, h, 5, rng);
  };
}

SweepConfig TestConfig() {
  SweepConfig config;
  config.sparsifiers = {"RN", "LD", "SF"};
  config.runs_nondeterministic = 3;
  config.seed = 123;
  return config;
}

void ExpectMultiBitIdentical(const std::vector<MetricSweepSeries>& a,
                             const std::vector<MetricSweepSeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].metric, b[m].metric);
    ASSERT_EQ(a[m].series.size(), b[m].series.size());
    for (size_t s = 0; s < a[m].series.size(); ++s) {
      EXPECT_EQ(a[m].series[s].sparsifier, b[m].series[s].sparsifier);
      ASSERT_EQ(a[m].series[s].points.size(), b[m].series[s].points.size());
      for (size_t p = 0; p < a[m].series[s].points.size(); ++p) {
        EXPECT_EQ(a[m].series[s].points[p].mean,
                  b[m].series[s].points[p].mean);
        EXPECT_EQ(a[m].series[s].points[p].stddev,
                  b[m].series[s].points[p].stddev);
        EXPECT_EQ(a[m].series[s].points[p].achieved_prune_rate,
                  b[m].series[s].points[p].achieved_prune_rate);
        EXPECT_EQ(a[m].series[s].points[p].runs,
                  b[m].series[s].points[p].runs);
      }
    }
  }
}

class ShardSchedulerTest : public ::testing::Test {
 protected:
  ShardSchedulerTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph), runner_(2) {}

  std::vector<SweepMetric> Metrics() {
    return {SweepMetric{"quad5", SampledMetric()}};
  }

  std::vector<MetricSweepSeries> Unsharded() {
    ResumableSweep cold(runner_, nullptr, "test-rev");
    return cold.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), nullptr);
  }

  Graph graph_;
  BatchRunner runner_;
};

TEST_F(ShardSchedulerTest, ShardRequiresStore) {
  ResumableSweep sweep(runner_, nullptr, "test-rev");
  ShardSpec spec;
  spec.index = 0;
  spec.total = 2;
  sweep.set_shard(spec);
  EXPECT_THROW(
      sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), nullptr),
      std::invalid_argument);
}

TEST_F(ShardSchedulerTest, LoneWorkerStealsAbsentPeersChunksAndCompletes) {
  // Worker 0 of 3 launched alone: phase A covers its preferred chunks,
  // phase B finds the never-started peers' chunks unclaimed and steals
  // them all. The fold must equal the unsharded sweep bit-for-bit.
  std::string dir = FreshDir("shard_lone");
  ResultStore store(ResultStore::PathInDir(dir));
  ResumableSweep sweep(runner_, &store, "test-rev");
  ShardSpec spec;
  spec.index = 0;
  spec.total = 3;
  spec.poll_seconds = 0.01;
  sweep.set_shard(spec);
  ResumableSweepStats stats;
  std::vector<MetricSweepSeries> sharded =
      sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), &stats);

  EXPECT_GT(stats.shard_chunks, 1u);
  EXPECT_GT(stats.shard_claimed, 0u);
  EXPECT_GT(stats.shard_stolen, 0u);  // absent peers' chunks were taken
  EXPECT_EQ(stats.failed_units, 0u);
  ExpectMultiBitIdentical(sharded, Unsharded());
}

TEST_F(ShardSchedulerTest, SequentialWorkersPartitionWithoutOverlap) {
  // Two workers, no stealing, run back to back with separate store
  // handles: each computes only its own chunks (no unit is computed
  // twice) and the second worker's fold — which replays the first
  // worker's records at open — matches the unsharded sweep.
  std::string dir = FreshDir("shard_seq");
  size_t first_submitted = 0;
  {
    ResultStore store(ResultStore::PathInDir(dir));
    ResumableSweep sweep(runner_, &store, "test-rev");
    ShardSpec spec;
    spec.index = 0;
    spec.total = 2;
    spec.steal = false;
    sweep.set_shard(spec);
    ResumableSweepStats stats;
    sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), &stats);
    first_submitted = stats.submitted_cells;
    EXPECT_GT(first_submitted, 0u);
    EXPECT_LT(first_submitted, stats.total_cells);  // a strict subset
    EXPECT_EQ(stats.shard_stolen, 0u);
  }
  ResultStore store(ResultStore::PathInDir(dir));
  ResumableSweep sweep(runner_, &store, "test-rev");
  ShardSpec spec;
  spec.index = 1;
  spec.total = 2;
  spec.steal = true;  // nothing left to steal; phase B just verifies
  spec.poll_seconds = 0.01;
  sweep.set_shard(spec);
  ResumableSweepStats stats;
  std::vector<MetricSweepSeries> folded =
      sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), &stats);
  EXPECT_EQ(stats.submitted_cells + first_submitted, stats.total_cells);
  // Worker 0's records replayed at worker 1's open; after worker 1
  // fills the rest, the store holds the complete grid.
  EXPECT_EQ(store.Size(), stats.total_cells);
  ExpectMultiBitIdentical(folded, Unsharded());
}

TEST_F(ShardSchedulerTest, RerunOverCompleteStoreSubmitsNothing) {
  std::string dir = FreshDir("shard_rerun");
  ShardSpec spec;
  spec.index = 0;
  spec.total = 2;
  spec.poll_seconds = 0.01;
  {
    ResultStore store(ResultStore::PathInDir(dir));
    ResumableSweep sweep(runner_, &store, "test-rev");
    sweep.set_shard(spec);
    sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), nullptr);
  }
  ResultStore store(ResultStore::PathInDir(dir));
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.set_shard(spec);
  ResumableSweepStats stats;
  std::vector<MetricSweepSeries> again =
      sweep.RunMulti(graph_, "fb@0.1", Metrics(), TestConfig(), &stats);
  EXPECT_EQ(stats.submitted_cells, 0u);
  EXPECT_EQ(stats.shard_claimed, 0u);  // complete chunks are never claimed
  EXPECT_EQ(stats.shard_stolen, 0u);
  ExpectMultiBitIdentical(again, Unsharded());
}

}  // namespace
}  // namespace sparsify
