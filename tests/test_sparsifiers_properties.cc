// Property-based tests applied uniformly to ALL registered sparsifiers via
// parameterized gtest: vertex-set preservation, edge-subset property,
// prune-rate accuracy (per each algorithm's control granularity, Table 2),
// determinism flags, and weight-change flags.
#include <numeric>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

Graph TestGraphUndirected() {
  Rng rng(77);
  return BarabasiAlbert(300, 4, rng);
}

Graph TestGraphDirected() {
  Rng rng(78);
  return RMat(9, 2500, 0.57, 0.19, 0.19, true, rng);
}

Graph TestGraphWeighted() {
  Rng rng(79);
  Graph base = ErdosRenyi(200, 900, false, rng);
  return WithRandomWeights(base, 10.0, rng);
}

bool EdgesAreSubset(const Graph& original, const Graph& sparsified) {
  for (const Edge& e : sparsified.Edges()) {
    if (!original.HasEdge(e.u, e.v)) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Sweep over (sparsifier, prune rate).

class SparsifierPruneRateTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(SparsifierPruneRateTest, VertexSetPreserved) {
  auto [name, rate] = GetParam();
  Graph g = TestGraphUndirected();
  Rng rng(1);
  Graph h = CreateSparsifier(name)->Sparsify(g, rate, rng);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
}

TEST_P(SparsifierPruneRateTest, EdgesAreSubsetOfOriginal) {
  auto [name, rate] = GetParam();
  Graph g = TestGraphUndirected();
  Rng rng(2);
  Graph h = CreateSparsifier(name)->Sparsify(g, rate, rng);
  EXPECT_TRUE(EdgesAreSubset(g, h));
}

TEST_P(SparsifierPruneRateTest, NeverAddsEdges) {
  auto [name, rate] = GetParam();
  Graph g = TestGraphUndirected();
  Rng rng(3);
  Graph h = CreateSparsifier(name)->Sparsify(g, rate, rng);
  EXPECT_LE(h.NumEdges(), g.NumEdges());
}

TEST_P(SparsifierPruneRateTest, PruneRateAccuracy) {
  auto [name, rate] = GetParam();
  auto sparsifier = CreateSparsifier(name);
  const SparsifierInfo& info = sparsifier->Info();
  Graph g = TestGraphUndirected();
  Rng rng(4);
  Graph h = sparsifier->Sparsify(g, rate, rng);
  double achieved = Sparsifier::AchievedPruneRate(g, h);
  switch (info.prune_rate_control) {
    case PruneRateControl::kFine:
      EXPECT_NEAR(achieved, rate, 0.02) << name;
      break;
    case PruneRateControl::kConstrained:
      // Coarse knob: stay within a loose band, or saturate at the
      // algorithm's max prune rate from below (paper section 3.2).
      EXPECT_GE(achieved, 0.0) << name;
      if (achieved < rate - 0.15) {
        // Saturation is only acceptable at HIGH requested rates where the
        // per-vertex floors bind (e.g. LD/KN keep >= 1 edge per vertex).
        EXPECT_GE(rate, 0.5) << name << " fell short at low prune rate";
      } else {
        EXPECT_LE(achieved, rate + 0.15) << name;
      }
      break;
    case PruneRateControl::kNone:
      break;  // output size is the algorithm's own
  }
}

TEST_P(SparsifierPruneRateTest, WeightChangeFlagHonored) {
  auto [name, rate] = GetParam();
  auto sparsifier = CreateSparsifier(name);
  Graph g = TestGraphWeighted();
  Rng rng(5);
  Graph h = sparsifier->Sparsify(g, rate, rng);
  if (!sparsifier->Info().changes_weights) {
    for (const Edge& e : h.Edges()) {
      EdgeId orig = g.FindEdge(e.u, e.v);
      ASSERT_NE(orig, kInvalidEdge);
      EXPECT_DOUBLE_EQ(e.w, g.EdgeWeight(orig)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSparsifiersAllRates, SparsifierPruneRateTest,
    ::testing::Combine(::testing::ValuesIn(SparsifierNames()),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_rate" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// --------------------------------------------------------------------------
// Per-sparsifier (single-parameter) properties.

class SparsifierTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SparsifierTest, DeterminismFlagHonored) {
  auto sparsifier = CreateSparsifier(GetParam());
  Graph g = TestGraphUndirected();
  Rng rng1(11), rng2(22);
  Graph h1 = sparsifier->Sparsify(g, 0.5, rng1);
  Graph h2 = sparsifier->Sparsify(g, 0.5, rng2);
  if (sparsifier->Info().deterministic) {
    EXPECT_EQ(h1.Edges(), h2.Edges()) << GetParam();
  }
  // Same seed must always reproduce the same output.
  Rng rng3(33), rng4(33);
  Graph h3 = sparsifier->Sparsify(g, 0.5, rng3);
  Graph h4 = sparsifier->Sparsify(g, 0.5, rng4);
  EXPECT_EQ(h3.Edges(), h4.Edges()) << GetParam();
}

TEST_P(SparsifierTest, HandlesDirectedOrThrows) {
  auto sparsifier = CreateSparsifier(GetParam());
  Graph g = TestGraphDirected();
  Rng rng(13);
  if (sparsifier->Info().supports_directed) {
    Graph h = sparsifier->Sparsify(g, 0.5, rng);
    EXPECT_TRUE(h.IsDirected());
    EXPECT_LE(h.NumEdges(), g.NumEdges());
  } else {
    EXPECT_THROW(sparsifier->Sparsify(g, 0.5, rng), std::invalid_argument)
        << GetParam();
    // And the documented workaround (symmetrize first) must succeed.
    Graph h = sparsifier->Sparsify(g.Symmetrized(), 0.5, rng);
    EXPECT_FALSE(h.IsDirected());
  }
}

TEST_P(SparsifierTest, HandlesDisconnectedGraph) {
  // Two disjoint communities.
  Rng gen(14);
  Graph a = ErdosRenyi(60, 200, false, gen);
  Graph b = ErdosRenyi(60, 200, false, gen);
  std::vector<Edge> edges = a.Edges();
  for (const Edge& e : b.Edges()) {
    edges.push_back({e.u + 60, e.v + 60, e.w});
  }
  Graph g = Graph::FromEdges(120, edges, false, false);
  Rng rng(15);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.5, rng);
  EXPECT_EQ(h.NumVertices(), 120u);
  EXPECT_TRUE(EdgesAreSubset(g, h));
}

TEST_P(SparsifierTest, HandlesWeightedGraph) {
  Graph g = TestGraphWeighted();
  Rng rng(16);
  Graph h = CreateSparsifier(GetParam())->Sparsify(g, 0.4, rng);
  EXPECT_LE(h.NumEdges(), g.NumEdges());
  EXPECT_TRUE(EdgesAreSubset(g, h));
}

TEST_P(SparsifierTest, ZeroPruneRateKeepsMostEdges) {
  auto sparsifier = CreateSparsifier(GetParam());
  if (sparsifier->Info().prune_rate_control == PruneRateControl::kNone) {
    GTEST_SKIP() << "no prune-rate control";
  }
  Graph g = TestGraphUndirected();
  Rng rng(17);
  Graph h = sparsifier->Sparsify(g, 0.0, rng);
  // Fine-control sparsifiers keep everything; constrained ones may fall
  // slightly short of a perfect 0 prune rate.
  EXPECT_GE(static_cast<double>(h.NumEdges()),
            0.9 * static_cast<double>(g.NumEdges()))
      << GetParam();
}

TEST_P(SparsifierTest, RejectsInvalidPruneRate) {
  auto sparsifier = CreateSparsifier(GetParam());
  if (sparsifier->Info().prune_rate_control == PruneRateControl::kNone) {
    GTEST_SKIP() << "prune rate unused";
  }
  Graph g = TestGraphUndirected();
  Rng rng(18);
  EXPECT_THROW(sparsifier->Sparsify(g, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(sparsifier->Sparsify(g, -0.1, rng), std::invalid_argument);
}

TEST_P(SparsifierTest, InfoIsConsistent) {
  auto sparsifier = CreateSparsifier(GetParam());
  const SparsifierInfo& info = sparsifier->Info();
  EXPECT_FALSE(info.name.empty());
  EXPECT_EQ(info.short_name, GetParam());
  EXPECT_FALSE(info.complexity.empty());
}

INSTANTIATE_TEST_SUITE_P(AllSparsifiers, SparsifierTest,
                         ::testing::ValuesIn(SparsifierNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --------------------------------------------------------------------------
// Registry-level tests.

TEST(RegistryTest, RegisteredVariantCounts) {
  // Paper set: 12 algorithms; SP-t appears at t=3,5,7 and ER in 2 variants
  // -> 15. Plus 4 extensions (TRI, SIMM, ALG, LS-MH) -> 19 total.
  EXPECT_EQ(SparsifierNames().size(), 19u);
  int paper = 0, extensions = 0;
  for (const SparsifierInfo& info : AllSparsifierInfos()) {
    (info.extension ? extensions : paper)++;
  }
  EXPECT_EQ(paper, 15);
  EXPECT_EQ(extensions, 4);
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(CreateSparsifier("nope"), std::invalid_argument);
}

TEST(RegistryTest, Table2FlagsMatchPaper) {
  auto flags = [](const std::string& name) {
    return CreateSparsifier(name)->Info();
  };
  EXPECT_TRUE(flags("RN").supports_directed);
  EXPECT_FALSE(flags("SF").supports_directed);
  EXPECT_FALSE(flags("SP-3").supports_directed);
  EXPECT_FALSE(flags("ER-w").supports_directed);
  EXPECT_TRUE(flags("ER-w").changes_weights);
  EXPECT_FALSE(flags("ER-uw").changes_weights);
  EXPECT_TRUE(flags("LD").deterministic);
  EXPECT_TRUE(flags("GS").deterministic);
  EXPECT_TRUE(flags("SCAN").deterministic);
  EXPECT_TRUE(flags("LSim").deterministic);
  EXPECT_TRUE(flags("LS").deterministic);
  EXPECT_TRUE(flags("SF").deterministic);
  EXPECT_FALSE(flags("RN").deterministic);
  EXPECT_FALSE(flags("KN").deterministic);
  EXPECT_FALSE(flags("RD").deterministic);
  EXPECT_FALSE(flags("FF").deterministic);
  EXPECT_FALSE(flags("ER-w").deterministic);
  EXPECT_EQ(flags("SF").prune_rate_control, PruneRateControl::kNone);
  EXPECT_EQ(flags("SP-5").prune_rate_control, PruneRateControl::kNone);
  EXPECT_EQ(flags("RN").prune_rate_control, PruneRateControl::kFine);
}

TEST(HelperTest, TargetKeepCount) {
  EXPECT_EQ(TargetKeepCount(100, 0.1), 90u);
  EXPECT_EQ(TargetKeepCount(100, 0.9), 10u);
  EXPECT_EQ(TargetKeepCount(100, 0.0), 100u);
  EXPECT_EQ(TargetKeepCount(0, 0.5), 0u);
  EXPECT_THROW(TargetKeepCount(10, 1.0), std::invalid_argument);
}

TEST(HelperTest, KeepTopScoringSelectsHighest) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  std::vector<uint8_t> keep = KeepTopScoring(scores, 2);
  EXPECT_EQ(keep, (std::vector<uint8_t>{0, 1, 0, 1}));
}

TEST(HelperTest, KeepTopScoringEdgeCases) {
  std::vector<double> scores = {0.3, 0.3, 0.3};
  auto count_kept = [&](EdgeId k) {
    std::vector<uint8_t> keep = KeepTopScoring(scores, k);
    return std::accumulate(keep.begin(), keep.end(), 0);
  };
  EXPECT_EQ(count_kept(2), 2);
  EXPECT_EQ(count_kept(0), 0);
  EXPECT_EQ(count_kept(99), 3);
}

}  // namespace
}  // namespace sparsify
