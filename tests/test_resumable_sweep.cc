// ResumableSweep: a sweep interrupted mid-run and resumed must reproduce
// the cold run bit-identically, submit only the missing cells to the
// engine (scheduling-count hook), and export byte-identical CSV.
#include "src/engine/resumable_sweep.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "src/cli/store_export.h"
#include "src/graph/datasets.h"
#include "src/metrics/basic.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// A metric that consumes the per-cell RNG stream, so any drift in cell
// seeding between cold and resumed runs changes the value.
MetricFn SampledMetric() {
  return [](const Graph& g, const Graph& h, Rng& rng) {
    return QuadraticFormSimilarity(g, h, 5, rng);
  };
}

SweepConfig TestConfig() {
  SweepConfig config;
  config.sparsifiers = {"RN", "LD", "SF"};
  config.runs_nondeterministic = 3;
  config.seed = 123;
  return config;
}

void ExpectSeriesBitIdentical(const std::vector<SweepSeries>& a,
                              const std::vector<SweepSeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].sparsifier, b[s].sparsifier);
    ASSERT_EQ(a[s].points.size(), b[s].points.size());
    for (size_t p = 0; p < a[s].points.size(); ++p) {
      // EXPECT_EQ, not NEAR: the contract is bit-identical doubles.
      EXPECT_EQ(a[s].points[p].requested_prune_rate,
                b[s].points[p].requested_prune_rate);
      EXPECT_EQ(a[s].points[p].achieved_prune_rate,
                b[s].points[p].achieved_prune_rate);
      EXPECT_EQ(a[s].points[p].mean, b[s].points[p].mean);
      EXPECT_EQ(a[s].points[p].stddev, b[s].points[p].stddev);
      EXPECT_EQ(a[s].points[p].runs, b[s].points[p].runs);
    }
  }
}

class ResumableSweepTest : public ::testing::Test {
 protected:
  ResumableSweepTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph), runner_(2) {}

  Graph graph_;
  BatchRunner runner_;
};

TEST_F(ResumableSweepTest, SubsetRunMatchesFullGridSeeds) {
  // Engine-level guarantee the resume path relies on: running a subset of
  // the grid (odd indices) computes the same values as the full run.
  BatchSpec spec = ToBatchSpec(TestConfig());
  MetricFn metric = SampledMetric();
  std::vector<BatchResult> full = runner_.Run(graph_, spec, metric);
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchTask> odd;
  for (size_t i = 1; i < tasks.size(); i += 2) odd.push_back(tasks[i]);
  std::vector<BatchResult> subset =
      runner_.RunTasks(graph_, odd, spec.master_seed, metric);
  ASSERT_EQ(subset.size(), odd.size());
  for (size_t j = 0; j < subset.size(); ++j) {
    EXPECT_EQ(subset[j].task.index, odd[j].index);
    EXPECT_EQ(subset[j].value, full[odd[j].index].value);
    EXPECT_EQ(subset[j].achieved_prune_rate,
              full[odd[j].index].achieved_prune_rate);
  }
}

TEST_F(ResumableSweepTest, WarmStoreSubmitsZeroCells) {
  std::string dir = TempPath("warm_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  SweepConfig config = TestConfig();
  MetricFn metric = SampledMetric();

  ResumableSweep sweep(runner_, &store, "test-rev");
  ResumableSweepStats first_stats;
  auto first = sweep.Run(graph_, "fb@0.1", "quad5", config, metric,
                         &first_stats);
  size_t total = BatchRunner::ExpandGrid(ToBatchSpec(config)).size();
  EXPECT_EQ(first_stats.total_cells, total);
  EXPECT_EQ(first_stats.cached_cells, 0u);
  EXPECT_EQ(first_stats.submitted_cells, total);

  ResumableSweepStats second_stats;
  auto second = sweep.Run(graph_, "fb@0.1", "quad5", config, metric,
                          &second_stats);
  EXPECT_EQ(second_stats.cached_cells, total);
  EXPECT_EQ(second_stats.submitted_cells, 0u);
  ExpectSeriesBitIdentical(first, second);

  // A different config dimension (seed, metric name, dataset) is a miss.
  SweepConfig other_seed = config;
  other_seed.seed = 999;
  ResumableSweepStats other_stats;
  sweep.Run(graph_, "fb@0.1", "quad5", other_seed, metric, &other_stats);
  EXPECT_EQ(other_stats.cached_cells, 0u);
}

TEST_F(ResumableSweepTest, InterruptedThenResumedIsBitIdenticalToColdRun) {
  SweepConfig config = TestConfig();
  MetricFn metric = SampledMetric();

  // Cold baseline: the same sweep with no store involved at all. (RunSweep
  // is not comparable since r3 — its metric streams seed from the
  // anonymous ""/"" MetricSeed identity, while a named sweep seeds from
  // its dataset and metric names.)
  ResumableSweep cold_sweep(runner_, nullptr, "test-rev");
  std::vector<SweepSeries> cold =
      cold_sweep.Run(graph_, "fb@0.1", "quad5", config, metric);

  // Uninterrupted store-backed run -> store A.
  std::string dir_a = TempPath("cold_store");
  fs::remove_all(dir_a);
  ResultStore store_a(ResultStore::PathInDir(dir_a));
  {
    ResumableSweep sweep(runner_, &store_a, "test-rev");
    auto series = sweep.Run(graph_, "fb@0.1", "quad5", config, metric);
    ExpectSeriesBitIdentical(cold, series);
  }

  // Simulate a crash after roughly half the cells: store B's log is store
  // A's header + first half of its records + a torn fragment of the next.
  std::string content = ReadFile(store_a.Path());
  std::vector<size_t> line_starts;
  for (size_t pos = 0; pos < content.size();) {
    line_starts.push_back(pos);
    pos = content.find('\n', pos) + 1;
  }
  size_t num_records = line_starts.size() - 1;  // minus header
  ASSERT_GT(num_records, 4u);
  size_t keep_records = num_records / 2;
  size_t keep_end = line_starts[1 + keep_records];
  std::string torn = content.substr(0, keep_end + 25);  // mid-next-record
  ASSERT_LT(keep_end + 25, content.size());

  std::string dir_b = TempPath("resume_store");
  fs::remove_all(dir_b);
  std::string path_b = ResultStore::PathInDir(dir_b);
  WriteFile(path_b, torn);

  // Resume: replay must drop the torn record, schedule exactly the missing
  // cells, and reassemble the cold-run series bit-identically.
  ResultStore store_b(path_b);
  EXPECT_EQ(store_b.Size(), keep_records);
  size_t total = BatchRunner::ExpandGrid(ToBatchSpec(config)).size();
  ResumableSweep sweep(runner_, &store_b, "test-rev");
  ResumableSweepStats stats;
  std::vector<SweepSeries> resumed =
      sweep.Run(graph_, "fb@0.1", "quad5", config, metric, &stats);
  EXPECT_EQ(stats.total_cells, total);
  EXPECT_EQ(stats.cached_cells, keep_records);
  EXPECT_EQ(stats.submitted_cells, total - keep_records);
  ExpectSeriesBitIdentical(cold, resumed);

  // The acceptance criterion: exported CSV byte-identical between the
  // uninterrupted and the interrupted+resumed store.
  std::ostringstream csv_a, csv_b;
  cli::ExportStore(store_a, csv_a, /*csv=*/true);
  cli::ExportStore(store_b, csv_b, /*csv=*/true);
  EXPECT_GT(csv_a.str().size(), 0u);
  EXPECT_EQ(csv_a.str(), csv_b.str());

  // And a second resume schedules nothing.
  ResumableSweepStats again;
  sweep.Run(graph_, "fb@0.1", "quad5", config, metric, &again);
  EXPECT_EQ(again.submitted_cells, 0u);
}

TEST_F(ResumableSweepTest, DifferentGridShapeReusesCells) {
  // Since r4 the CellKey carries no grid position: the same (sparsifier,
  // rate, run) under a different --algos list is the SAME cell. This is
  // safe because every RNG stream has been grid-shape independent
  // (GroupSeed + MetricSeed) since r3, and it is load-bearing for
  // sharding — shard workers partition different task subsets but must
  // agree on every unit's identity. This test pins the reuse contract.
  std::string dir = TempPath("gridshape_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  MetricFn metric = SampledMetric();

  SweepConfig two_algos = TestConfig();
  two_algos.sparsifiers = {"LD", "RN"};
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.Run(graph_, "fb@0.1", "quad5", two_algos, metric);

  SweepConfig rn_only = TestConfig();
  rn_only.sparsifiers = {"RN"};  // subset grid: every RN cell is cached
  ResumableSweepStats stats;
  std::vector<SweepSeries> resumed =
      sweep.Run(graph_, "fb@0.1", "quad5", rn_only, metric, &stats);
  EXPECT_EQ(stats.submitted_cells, 0u);
  EXPECT_EQ(stats.cached_cells, stats.total_cells);
  // The cached fold matches a cold RN-only sweep bit-for-bit — the
  // grid-shape-independent streams are what make the reuse sound.
  ResumableSweep cold_sweep(runner_, nullptr, "test-rev");
  ExpectSeriesBitIdentical(
      cold_sweep.Run(graph_, "fb@0.1", "quad5", rn_only, metric), resumed);

  // Re-running the superset grid is also fully cached.
  sweep.Run(graph_, "fb@0.1", "quad5", two_algos, metric, &stats);
  EXPECT_EQ(stats.submitted_cells, 0u);

  // One store cell per (sparsifier, rate, run): the export's RN series
  // folds exactly the RN-only grid's cells, run counts not inflated.
  std::vector<cli::StoreGroup> groups = cli::RebuildSeries(store);
  ASSERT_EQ(groups.size(), 1u);
  const SweepSeries* rn_series = nullptr;
  for (const SweepSeries& s : groups[0].series) {
    if (s.sparsifier == "RN") rn_series = &s;
  }
  ASSERT_NE(rn_series, nullptr);
  for (const SweepPoint& p : rn_series->points) {
    EXPECT_EQ(p.runs, 3);  // not 6
  }
  ExpectSeriesBitIdentical({resumed[0]}, {*rn_series});
}

TEST_F(ResumableSweepTest, WriteOnlyModeRecomputesButPersists) {
  std::string dir = TempPath("writeonly_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  SweepConfig config = TestConfig();
  MetricFn metric = SampledMetric();
  size_t total = BatchRunner::ExpandGrid(ToBatchSpec(config)).size();

  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.set_reuse_cached(false);
  ResumableSweepStats stats;
  sweep.Run(graph_, "fb@0.1", "quad5", config, metric, &stats);
  EXPECT_EQ(stats.submitted_cells, total);
  sweep.Run(graph_, "fb@0.1", "quad5", config, metric, &stats);
  EXPECT_EQ(stats.submitted_cells, total);  // never consults the store
  EXPECT_EQ(store.Size(), total);           // but everything is persisted
}

TEST_F(ResumableSweepTest, NullStoreRunsCold) {
  // A null store computes every cell and writes nothing — and its output
  // is bit-identical to a store-backed cold run of the same named sweep.
  ResumableSweep sweep(runner_, nullptr, "test-rev");
  SweepConfig config = TestConfig();
  MetricFn metric = SampledMetric();
  ResumableSweepStats stats;
  auto series = sweep.Run(graph_, "fb@0.1", "quad5", config, metric, &stats);
  EXPECT_EQ(stats.cached_cells, 0u);

  std::string dir = TempPath("nullstore_ref");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  ResumableSweep backed(runner_, &store, "test-rev");
  ExpectSeriesBitIdentical(
      backed.Run(graph_, "fb@0.1", "quad5", config, metric), series);
}

}  // namespace
}  // namespace sparsify
