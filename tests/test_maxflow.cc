// Tests for Dinic max-flow and the sampled flow-stretch evaluator.
#include "src/metrics/maxflow.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(MaxFlowTest, SingleEdgeCapacity) {
  Graph g = Graph::FromEdges(2, {{0, 1, 7.0}}, true, true);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 1), 7.0);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 1, 0), 0.0);  // directed: no reverse arc
}

TEST(MaxFlowTest, UndirectedEdgeBothDirections) {
  Graph g = Graph::FromEdges(2, {{0, 1, 7.0}}, false, true);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 1), 7.0);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 1, 0), 7.0);
}

TEST(MaxFlowTest, ClassicTextbookNetwork) {
  // CLRS-style: max flow 0->5 is 23.
  Graph g = Graph::FromEdges(6,
                             {{0, 1, 16.0},
                              {0, 2, 13.0},
                              {1, 2, 10.0},
                              {2, 1, 4.0},
                              {1, 3, 12.0},
                              {3, 2, 9.0},
                              {2, 4, 14.0},
                              {4, 3, 7.0},
                              {3, 5, 20.0},
                              {4, 5, 4.0}},
                             true, true);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 5), 23.0);
}

TEST(MaxFlowTest, BottleneckSeries) {
  // 0 -5- 1 -2- 2 -8- 3: min capacity on the path bounds the flow.
  Graph g = Graph::FromEdges(4, {{0, 1, 5.0}, {1, 2, 2.0}, {2, 3, 8.0}},
                             true, true);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 3), 2.0);
}

TEST(MaxFlowTest, ParallelPathsSum) {
  Graph g = Graph::FromEdges(4, {{0, 1, 3.0}, {1, 3, 3.0}, {0, 2, 4.0},
                                 {2, 3, 4.0}},
                             true, true);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 3), 7.0);
}

TEST(MaxFlowTest, DisconnectedZero) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}}, false, false);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 3), 0.0);
}

TEST(MaxFlowTest, FlowBoundedByDegreeCut) {
  // Unweighted: flow <= min(deg(s), deg(t)) -- a sampled min-cut property.
  Rng gen(71);
  Graph g = ErdosRenyi(60, 250, false, gen);
  Rng rng(72);
  for (int i = 0; i < 15; ++i) {
    NodeId s = static_cast<NodeId>(rng.NextUint(60));
    NodeId t = static_cast<NodeId>(rng.NextUint(60));
    if (s == t) continue;
    double f = MaxFlow(g, s, t);
    EXPECT_LE(f, std::min(g.OutDegree(s), g.OutDegree(t)) + 1e-9);
  }
}

TEST(MaxFlowTest, SubgraphFlowNeverLarger) {
  Rng gen(73);
  Graph g = BarabasiAlbert(80, 4, gen);
  std::vector<uint8_t> keep(g.NumEdges(), 1);
  for (EdgeId e = 0; e < g.NumEdges(); e += 2) keep[e] = 0;
  Graph h = g.Subgraph(keep);
  Rng rng(74);
  for (int i = 0; i < 10; ++i) {
    NodeId s = static_cast<NodeId>(rng.NextUint(80));
    NodeId t = static_cast<NodeId>(rng.NextUint(80));
    if (s == t) continue;
    EXPECT_LE(MaxFlow(h, s, t), MaxFlow(g, s, t) + 1e-9);
  }
}

TEST(MaxFlowStretchTest, IdenticalGraphsRatioOne) {
  Rng gen(75);
  Graph g = BarabasiAlbert(60, 3, gen);
  Rng rng(76);
  FlowStretchResult r = MaxFlowStretch(g, g, 30, rng);
  EXPECT_DOUBLE_EQ(r.mean_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.zero_flow_fraction, 0.0);
  EXPECT_GT(r.pairs_evaluated, 0);
}

TEST(MaxFlowStretchTest, SubgraphRatioAtMostOne) {
  Rng gen(77);
  Graph g = BarabasiAlbert(60, 4, gen);
  std::vector<uint8_t> keep(g.NumEdges(), 1);
  for (EdgeId e = 0; e < g.NumEdges(); e += 3) keep[e] = 0;
  Graph h = g.Subgraph(keep);
  Rng rng(78);
  FlowStretchResult r = MaxFlowStretch(g, h, 25, rng);
  EXPECT_LE(r.mean_ratio, 1.0 + 1e-9);
  EXPECT_GT(r.mean_ratio, 0.0);
}

}  // namespace
}  // namespace sparsify
