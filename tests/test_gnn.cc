// Tests for the GNN substrate: dense kernels (including a finite-difference
// gradient check through a full GraphSAGE step), aggregation adjoints,
// training convergence, and the paper's train-on-sparsified /
// test-on-full protocol.
#include <cmath>

#include <gtest/gtest.h>

#include "src/gnn/data.h"
#include "src/gnn/models.h"
#include "src/graph/generators.h"
#include "src/metrics/louvain.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(MatrixTest, MatMulKnown) {
  Matrix a(2, 3), b(3, 2);
  for (size_t i = 0; i < 6; ++i) a.data[i] = static_cast<double>(i + 1);
  for (size_t i = 0; i < 6; ++i) b.data[i] = static_cast<double>(i + 1);
  Matrix c = MatMul(a, b);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]].
  EXPECT_DOUBLE_EQ(c.At(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 64.0);
}

TEST(MatrixTest, TransposedVariantsAgree) {
  Rng rng(1);
  Matrix a(4, 3), b(4, 5);
  for (double& x : a.data) x = rng.NextGaussian();
  for (double& x : b.data) x = rng.NextGaussian();
  // A^T B via MatTMul vs explicit transpose + MatMul.
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix c1 = MatTMul(a, b);
  Matrix c2 = MatMul(at, b);
  for (size_t i = 0; i < c1.data.size(); ++i) {
    EXPECT_NEAR(c1.data[i], c2.data[i], 1e-12);
  }
}

TEST(MatrixTest, ConcatSplitRoundTrip) {
  Rng rng(2);
  Matrix a(3, 2), b(3, 4);
  for (double& x : a.data) x = rng.NextGaussian();
  for (double& x : b.data) x = rng.NextGaussian();
  Matrix ab = HConcat(a, b);
  Matrix a2, b2;
  HSplit(ab, 2, &a2, &b2);
  EXPECT_EQ(a2.data, a.data);
  EXPECT_EQ(b2.data, b.data);
}

TEST(SoftmaxTest, UniformLogitsLoss) {
  Matrix logits(2, 4);  // all zero -> uniform -> loss = ln 4
  std::vector<int> labels = {1, 3};
  Matrix grad;
  double loss = SoftmaxCrossEntropy(logits, labels, {0, 1}, &grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-12);
  // Gradient rows sum to zero.
  for (size_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < 4; ++c) s += grad.At(r, c);
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(SoftmaxTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Matrix logits(3, 5);
  for (double& x : logits.data) x = rng.NextGaussian();
  std::vector<int> labels = {2, 0, 4};
  std::vector<int> rows = {0, 1, 2};
  Matrix grad;
  double base = SoftmaxCrossEntropy(logits, labels, rows, &grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < logits.data.size(); i += 3) {
    Matrix bumped = logits;
    bumped.data[i] += eps;
    Matrix unused;
    double up = SoftmaxCrossEntropy(bumped, labels, rows, &unused);
    EXPECT_NEAR((up - base) / eps, grad.data[i], 1e-4);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||x - 3||^2 elementwise.
  Matrix x(1, 4);
  Adam opt(1, 4, 0.1);
  for (int it = 0; it < 500; ++it) {
    Matrix grad(1, 4);
    for (size_t i = 0; i < 4; ++i) grad.data[i] = 2.0 * (x.data[i] - 3.0);
    opt.Step(grad, &x);
  }
  for (double xi : x.data) EXPECT_NEAR(xi, 3.0, 1e-3);
}

TEST(AggregateTest, MeanAggregateStar) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}}, false, false);
  Matrix x(3, 1);
  x.At(0, 0) = 0.0;
  x.At(1, 0) = 2.0;
  x.At(2, 0) = 4.0;
  Matrix m = MeanAggregate(g, x);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);  // mean of neighbors 1,2
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 0.0);
}

TEST(AggregateTest, IsolatedVertexZeroRow) {
  Graph g = Graph::FromEdges(3, {{0, 1}}, false, false);
  Matrix x(3, 2);
  for (double& v : x.data) v = 1.0;
  Matrix m = MeanAggregate(g, x);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 0.0);
}

TEST(AggregateTest, AdjointIsTranspose) {
  // <Ax, y> == <x, A^T y> for random x, y.
  Rng rng(4);
  Graph g = ErdosRenyi(30, 80, false, rng);
  Matrix x(30, 3), y(30, 3);
  for (double& v : x.data) v = rng.NextGaussian();
  for (double& v : y.data) v = rng.NextGaussian();
  auto inner = [](const Matrix& a, const Matrix& b) {
    double s = 0.0;
    for (size_t i = 0; i < a.data.size(); ++i) s += a.data[i] * b.data[i];
    return s;
  };
  EXPECT_NEAR(inner(MeanAggregate(g, x), y),
              inner(x, MeanAggregateTranspose(g, y)), 1e-9);
  EXPECT_NEAR(inner(GcnAggregate(g, x), y),
              inner(x, GcnAggregateTranspose(g, y)), 1e-9);
}

TEST(AggregateTest, GcnIncludesSelf) {
  Graph g = Graph::FromEdges(2, {{0, 1}}, false, false);
  Matrix x(2, 1);
  x.At(0, 0) = 2.0;
  x.At(1, 0) = 4.0;
  Matrix m = GcnAggregate(g, x);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);  // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(DataTest, FeaturesCorrelateWithLabels) {
  Rng rng(5);
  std::vector<int> comm(200);
  for (size_t v = 0; v < comm.size(); ++v) comm[v] = v % 4;
  NodeClassificationData data =
      MakeNodeClassificationData(comm, 4, 16, 0.3, 0.5, rng);
  EXPECT_EQ(data.features.rows, 200u);
  EXPECT_EQ(data.train_rows.size() + data.test_rows.size(), 200u);
  // Nearest-centroid in feature space should beat chance by a wide margin;
  // verify via class-mean separation: same-class distance < cross-class.
  Matrix mean(4, 16);
  std::vector<int> count(4, 0);
  for (size_t v = 0; v < 200; ++v) {
    for (int j = 0; j < 16; ++j) {
      mean.At(data.labels[v], j) += data.features.At(v, j);
    }
    ++count[data.labels[v]];
  }
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 16; ++j) mean.At(k, j) /= count[k];
  }
  int correct = 0;
  for (size_t v = 0; v < 200; ++v) {
    double best = 1e300;
    int arg = -1;
    for (int k = 0; k < 4; ++k) {
      double d = 0.0;
      for (int j = 0; j < 16; ++j) {
        double diff = data.features.At(v, j) - mean.At(k, j);
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        arg = k;
      }
    }
    if (arg == data.labels[v]) ++correct;
  }
  EXPECT_GT(correct, 150);
}

TEST(AurocTest, PerfectAndRandomScores) {
  Matrix logits(4, 2);
  std::vector<int> labels = {0, 0, 1, 1};
  // Perfect separation on class-1 score.
  logits.At(0, 1) = -2.0;
  logits.At(1, 1) = -1.0;
  logits.At(2, 1) = 1.0;
  logits.At(3, 1) = 2.0;
  logits.At(0, 0) = 2.0;
  logits.At(1, 0) = 1.0;
  logits.At(2, 0) = -1.0;
  logits.At(3, 0) = -2.0;
  EXPECT_DOUBLE_EQ(MacroAuroc(logits, labels, {0, 1, 2, 3}), 1.0);
  // Constant scores -> ties -> 0.5.
  Matrix flat(4, 2);
  EXPECT_DOUBLE_EQ(MacroAuroc(flat, labels, {0, 1, 2, 3}), 0.5);
}

TEST(GraphSageTest, LossDecreasesAndLearns) {
  Rng gen(6);
  std::vector<int> comm;
  Graph g = PlantedPartition(240, 4, 0.35, 0.01, gen, &comm);
  Rng drng(7);
  NodeClassificationData data =
      MakeNodeClassificationData(comm, 4, 12, 0.8, 0.5, drng);
  Rng mrng(8);
  GraphSage model(12, 16, 4, mrng, 5e-2);
  double first = model.TrainEpoch(g, data.features, data.labels,
                                  data.train_rows);
  double last = first;
  for (int epoch = 0; epoch < 60; ++epoch) {
    last = model.TrainEpoch(g, data.features, data.labels, data.train_rows);
  }
  EXPECT_LT(last, 0.5 * first);
  std::vector<int> pred = ArgmaxRows(model.Forward(g, data.features));
  EXPECT_GT(Accuracy(pred, data.labels, data.test_rows), 0.7);
}

TEST(GraphSageTest, GraphStructureHelpsOverEmptyGraph) {
  // With noisy features, training/testing with the true graph should beat
  // the edgeless graph (the red line of paper Fig. 13).
  Rng gen(9);
  std::vector<int> comm;
  Graph g = PlantedPartition(240, 4, 0.35, 0.01, gen, &comm);
  Graph empty = Graph::FromEdges(g.NumVertices(), {}, false, false);
  Rng drng(10);
  NodeClassificationData data =
      MakeNodeClassificationData(comm, 4, 12, 1.6, 0.5, drng);
  auto run = [&](const Graph& train_graph, const Graph& eval_graph) {
    Rng mrng(11);
    GraphSage model(12, 16, 4, mrng, 5e-2);
    for (int epoch = 0; epoch < 80; ++epoch) {
      model.TrainEpoch(train_graph, data.features, data.labels,
                       data.train_rows);
    }
    std::vector<int> pred = ArgmaxRows(model.Forward(eval_graph,
                                                     data.features));
    return Accuracy(pred, data.labels, data.test_rows);
  };
  double with_graph = run(g, g);
  double without_graph = run(empty, empty);
  EXPECT_GT(with_graph, without_graph + 0.03);
}

TEST(ClusterGcnTest, TrainsOnClusterBatches) {
  Rng gen(12);
  std::vector<int> comm;
  Graph g = PlantedPartition(240, 6, 0.35, 0.01, gen, &comm);
  Rng drng(13);
  NodeClassificationData data =
      MakeNodeClassificationData(comm, 3, 12, 0.8, 0.5, drng);
  Rng lrng(14);
  Clustering clusters = LouvainCommunities(g, lrng);
  auto batches = MakeClusterBatches(clusters.label, 60);
  EXPECT_GE(batches.size(), 2u);
  Rng mrng(15);
  ClusterGcn model(12, 16, 3, mrng, 5e-2);
  double first = model.TrainEpoch(g, data.features, data.labels,
                                  data.train_rows, batches);
  double last = first;
  for (int epoch = 0; epoch < 60; ++epoch) {
    last = model.TrainEpoch(g, data.features, data.labels, data.train_rows,
                            batches);
  }
  EXPECT_LT(last, 0.6 * first);
  std::vector<int> pred = ArgmaxRows(model.Forward(g, data.features));
  EXPECT_GT(Accuracy(pred, data.labels, data.test_rows), 0.7);
}

TEST(ClusterBatchTest, BatchesPartitionVertexSet) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2, 3, 3};
  auto batches = MakeClusterBatches(labels, 3);
  std::vector<int> seen(8, 0);
  for (const auto& b : batches) {
    for (NodeId v : b) ++seen[v];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(InduceBatchTest, SubgraphSeversCrossEdges) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, false, false);
  Matrix x(4, 2);
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<uint8_t> is_train = {1, 1, 0, 0};
  InducedBatch ib = InduceBatch(g, x, labels, is_train, {0, 1});
  EXPECT_EQ(ib.graph.NumVertices(), 2u);
  EXPECT_EQ(ib.graph.NumEdges(), 1u);  // only 0-1 survives
  EXPECT_EQ(ib.labels, (std::vector<int>{0, 1}));
  EXPECT_EQ(ib.local_train_rows.size(), 2u);
}

}  // namespace
}  // namespace sparsify
