// Tests for the linear-algebra substrate: vector kernels, Laplacian
// operators, and the CG Laplacian solver.
#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/linalg/cg.h"
#include "src/linalg/laplacian.h"
#include "src/linalg/vector_ops.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  Vec a = {1.0, 2.0, 3.0};
  Vec b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
}

TEST(VectorOpsTest, AxpyScale) {
  Vec y = {1.0, 1.0};
  Axpy(2.0, {1.0, 2.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
}

TEST(VectorOpsTest, RemoveMean) {
  Vec x = {1.0, 2.0, 3.0};
  RemoveMean(&x);
  EXPECT_NEAR(Sum(x), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], -1.0);
}

TEST(LaplacianTest, MultiplyPathGraph) {
  // Path 0-1-2: L = [[1,-1,0],[-1,2,-1],[0,-1,1]].
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false, false);
  Vec x = {1.0, 0.0, -1.0};
  Vec y;
  LaplacianMultiply(g, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(LaplacianTest, QuadraticFormNonNegative) {
  Rng rng(3);
  Graph g = ErdosRenyi(60, 150, false, rng);
  for (int i = 0; i < 20; ++i) {
    Vec x(g.NumVertices());
    for (double& xi : x) xi = rng.NextGaussian();
    EXPECT_GE(QuadraticForm(g, x), 0.0);
  }
}

TEST(LaplacianTest, QuadraticFormMatchesMultiply) {
  Rng rng(4);
  Graph g = BarabasiAlbert(80, 3, rng);
  Vec x(g.NumVertices());
  for (double& xi : x) xi = rng.NextGaussian();
  Vec lx;
  LaplacianMultiply(g, x, &lx);
  EXPECT_NEAR(QuadraticForm(g, x), Dot(x, lx), 1e-9);
}

TEST(LaplacianTest, ConstantVectorInKernel) {
  Rng rng(5);
  Graph g = ErdosRenyi(40, 100, false, rng);
  Vec ones(g.NumVertices(), 1.0);
  Vec y;
  LaplacianMultiply(g, ones, &y);
  for (double yi : y) EXPECT_NEAR(yi, 0.0, 1e-12);
}

TEST(LaplacianTest, WeightedDegrees) {
  Graph g = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}}, false, true);
  Vec deg = WeightedDegrees(g);
  EXPECT_DOUBLE_EQ(deg[0], 2.0);
  EXPECT_DOUBLE_EQ(deg[1], 5.0);
  EXPECT_DOUBLE_EQ(deg[2], 3.0);
}

TEST(CgTest, SolvesPathSystem) {
  // L x = b with b orthogonal to ones has solution unique up to constants.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false, false);
  Vec b = {1.0, 0.0, -1.0};
  Vec x(3, 0.0);
  CgResult res = SolveLaplacian(g, b, &x, 1e-10);
  EXPECT_TRUE(res.converged);
  Vec lx;
  LaplacianMultiply(g, x, &lx);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(lx[i], b[i], 1e-8);
}

TEST(CgTest, SolvesRandomConnectedGraph) {
  Rng rng(6);
  Graph g = BarabasiAlbert(200, 3, rng);
  Vec b(g.NumVertices());
  for (double& bi : b) bi = rng.NextGaussian();
  RemoveMean(&b);  // consistent RHS
  Vec x(g.NumVertices(), 0.0);
  CgResult res = SolveLaplacian(g, b, &x, 1e-9);
  EXPECT_TRUE(res.converged);
  Vec lx;
  LaplacianMultiply(g, x, &lx);
  double err = 0.0;
  for (size_t i = 0; i < b.size(); ++i) err += (lx[i] - b[i]) * (lx[i] - b[i]);
  EXPECT_LT(std::sqrt(err), 1e-6 * Norm2(b) + 1e-8);
}

TEST(CgTest, DisconnectedComponentsPerComponentRhs) {
  // Two disjoint edges; RHS mean-zero per component.
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}}, false, false);
  Vec b = {1.0, -1.0, 2.0, -2.0};
  Vec x(4, 0.0);
  CgResult res = SolveLaplacian(g, b, &x, 1e-10);
  EXPECT_TRUE(res.converged);
  Vec lx;
  LaplacianMultiply(g, x, &lx);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(lx[i], b[i], 1e-8);
}

TEST(CgTest, ZeroRhsGivesZero) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false, false);
  Vec b(3, 0.0);
  Vec x = {5.0, 5.0, 5.0};
  CgResult res = SolveLaplacian(g, b, &x);
  EXPECT_TRUE(res.converged);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0);
}

TEST(CgTest, WeightedLaplacian) {
  Graph g = Graph::FromEdges(3, {{0, 1, 4.0}, {1, 2, 0.25}}, false, true);
  Vec b = {1.0, 0.0, -1.0};
  Vec x(3, 0.0);
  CgResult res = SolveLaplacian(g, b, &x, 1e-12);
  EXPECT_TRUE(res.converged);
  Vec lx;
  LaplacianMultiply(g, x, &lx);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(lx[i], b[i], 1e-8);
}

}  // namespace
}  // namespace sparsify
