// Error-tolerant sweeps: a unit that throws must not take the sweep down
// with it — the other units complete, the failure lands in the store as a
// typed error record, the next resume resubmits EXACTLY the failed units,
// and the healed sweep is bit-identical to a cold run that never failed.
// Faults are injected through the failpoint subsystem, so the engine code
// under test is the shipped code, not a test double.
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/metrics/basic.h"
#include "src/util/failpoint.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// Consumes the per-unit RNG stream: any seed drift between a cold run, a
// retried run, and a resumed run changes the value.
MetricFn SampledMetric() {
  return [](const Graph& g, const Graph& h, Rng& rng) {
    return QuadraticFormSimilarity(g, h, 5, rng);
  };
}

SweepConfig TestConfig() {
  SweepConfig config;
  config.sparsifiers = {"RN", "LD"};
  config.runs_nondeterministic = 2;
  config.seed = 321;
  return config;
}

void ExpectSeriesBitIdentical(const std::vector<SweepSeries>& a,
                              const std::vector<SweepSeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].sparsifier, b[s].sparsifier);
    ASSERT_EQ(a[s].points.size(), b[s].points.size());
    for (size_t p = 0; p < a[s].points.size(); ++p) {
      EXPECT_EQ(a[s].points[p].mean, b[s].points[p].mean);
      EXPECT_EQ(a[s].points[p].stddev, b[s].points[p].stddev);
      EXPECT_EQ(a[s].points[p].runs, b[s].points[p].runs);
    }
  }
}

class FaultTolerantSweepTest : public ::testing::Test {
 protected:
  FaultTolerantSweepTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph), runner_(2) {}
  void TearDown() override { fail::DisarmAll(); }

  std::vector<SweepMetric> TwoMetrics() {
    return {SweepMetric{"m_good", SampledMetric()},
            SweepMetric{"m_bad", SampledMetric()}};
  }

  Graph graph_;
  BatchRunner runner_;
};

TEST_F(FaultTolerantSweepTest, ResultCodeRevCurrent) {
  // Error records share CellKey identity with results. Fault tolerance
  // itself never bumps the revision (same computation, same streams);
  // the r3 -> r4 bump came from the key-schema change that dropped
  // grid_index (see cell_key.h history).
  EXPECT_STREQ(kResultCodeRev, "r4");
}

TEST_F(FaultTolerantSweepTest, FailFastModeStillThrows) {
  fail::ArmFromSpec("engine.metric_unit/m_bad=throw");
  ResumableSweep sweep(runner_, nullptr, "test-rev");
  EXPECT_THROW(
      sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), TestConfig(), nullptr),
      fail::InjectedFault);
}

TEST_F(FaultTolerantSweepTest, FailedMetricIsRecordedAndOthersComplete) {
  std::string dir = TempPath("ft_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  SweepConfig config = TestConfig();

  // Cold reference for the surviving metric, no store, no faults.
  ResumableSweep cold(runner_, nullptr, "test-rev");
  auto reference =
      cold.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, nullptr);

  fail::ArmFromSpec("engine.metric_unit/m_bad=throw");
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.set_fault_tolerant(true);
  ResumableSweepStats stats;
  auto out = sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &stats);

  const size_t cells = stats.total_cells / 2;  // two metrics
  EXPECT_EQ(stats.failed_units, cells);
  EXPECT_EQ(stats.transient_failed_units, 0u);
  EXPECT_EQ(store.ErrorCount(), cells);
  // The sweep finished: the good metric's series match the cold run even
  // though every m_bad unit on the same cells threw.
  ASSERT_EQ(out.size(), 2u);
  ExpectSeriesBitIdentical(out[0].series, reference[0].series);
  for (const StoredCell& cell : store.Cells()) {
    if (!cell.is_error) continue;
    EXPECT_EQ(cell.key.metric, "m_bad");
    EXPECT_EQ(cell.error_class, "permanent");
    EXPECT_EQ(cell.attempts, 1);  // permanent failures never retry
  }

  // Resume with the fault gone: exactly the failed units are submitted,
  // the errors heal, and the recovered series are bit-identical to the
  // cold reference.
  fail::DisarmAll();
  ResumableSweep resume(runner_, &store, "test-rev");
  resume.set_fault_tolerant(true);
  ResumableSweepStats resume_stats;
  auto healed =
      resume.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &resume_stats);
  EXPECT_EQ(resume_stats.submitted_cells, cells);
  EXPECT_EQ(resume_stats.cached_cells, cells);
  EXPECT_EQ(resume_stats.failed_units, 0u);
  EXPECT_EQ(store.ErrorCount(), 0u);
  ExpectSeriesBitIdentical(healed[0].series, reference[0].series);
  ExpectSeriesBitIdentical(healed[1].series, reference[1].series);
}

TEST_F(FaultTolerantSweepTest, TransientFailureRetriesToBitIdenticalValue) {
  SweepConfig config = TestConfig();
  ResumableSweep cold(runner_, nullptr, "test-rev");
  auto reference =
      cold.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, nullptr);

  // One transient fault on some unit's first attempt: the retry must
  // reproduce the exact value the cold run computed (the unit's RNG
  // re-derives from MetricSeed on every attempt).
  fail::ArmFromSpec("engine.metric_unit=throw-transient@1");
  ResumableSweep sweep(runner_, nullptr, "test-rev");
  sweep.set_fault_tolerant(true);
  ResumableSweepStats stats;
  auto out = sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &stats);
  EXPECT_EQ(stats.failed_units, 0u);
  EXPECT_GE(stats.retried_units, 1u);
  ExpectSeriesBitIdentical(out[0].series, reference[0].series);
  ExpectSeriesBitIdentical(out[1].series, reference[1].series);
}

TEST_F(FaultTolerantSweepTest, ExhaustedRetriesRecordTheTransientClass) {
  std::string dir = TempPath("ft_transient_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  fail::ArmFromSpec("engine.metric_unit/m_bad=throw-transient");
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.set_fault_tolerant(true);
  sweep.set_max_unit_retries(2);
  ResumableSweepStats stats;
  sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), TestConfig(), &stats);
  const size_t cells = stats.total_cells / 2;
  EXPECT_EQ(stats.failed_units, cells);
  EXPECT_EQ(stats.transient_failed_units, cells);
  EXPECT_EQ(stats.retried_units, 2 * cells);  // 2 extra attempts per unit
  for (const StoredCell& cell : store.Cells()) {
    if (!cell.is_error) continue;
    EXPECT_EQ(cell.error_class, "transient");
    EXPECT_EQ(cell.attempts, 3);  // 1 initial + max_unit_retries
  }
}

TEST_F(FaultTolerantSweepTest, SparsifierFailureFailsItsCellsWithoutRetry) {
  std::string dir = TempPath("ft_score_store");
  fs::remove_all(dir);
  ResultStore store(ResultStore::PathInDir(dir));
  // Score-group faults hit everything downstream of one sparsifier; they
  // are structural (not per-unit), so no retry — the cells just fail.
  fail::ArmFromSpec("engine.score_group/RN=throw");
  ResumableSweep sweep(runner_, &store, "test-rev");
  sweep.set_fault_tolerant(true);
  ResumableSweepStats stats;
  auto out =
      sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), TestConfig(), &stats);
  EXPECT_GT(stats.failed_units, 0u);
  EXPECT_EQ(store.ErrorCount(), stats.failed_units);
  for (const StoredCell& cell : store.Cells()) {
    if (cell.is_error) {
      EXPECT_EQ(cell.key.sparsifier, "RN");
    } else {
      EXPECT_EQ(cell.key.sparsifier, "LD");
    }
  }
  // LD series survive in both metrics.
  for (const auto& per_metric : out) {
    bool saw_ld = false;
    for (const SweepSeries& s : per_metric.series) {
      saw_ld = saw_ld || (s.sparsifier == "LD" && !s.points.empty());
    }
    EXPECT_TRUE(saw_ld);
  }
}

}  // namespace
}  // namespace sparsify
