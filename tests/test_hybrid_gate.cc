// Tests for the gated push->pull switch (src/graph/traversal.cc): on
// directed, disconnected, and low-reachability shapes the gate must keep
// the hybrid BFS on the push path (pull_rounds == 0), which bounds its
// work to push-only's plus O(1) gate arithmetic per round — the non-flaky
// form of "the gated hybrid never loses more than noise to push-only".
// The shapes below are exactly the ones where the seed's out-arc-based
// trigger fired wasted pull rounds (the committed web-Google directed
// regression). The gate must also still ENGAGE where pull pays (stars),
// and every mode must stay bit-identical on every shape.
#include "src/graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "src/graph/generators.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

std::vector<double> ReferenceQueueBfs(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId u : g.OutNeighborNodes(v)) {
      if (dist[u] == kInfDistance) {
        dist[u] = dist[v] + 1.0;
        q.push(u);
      }
    }
  }
  return dist;
}

// Asserts hybrid == push-only == reference queue BFS from `src`, returning
// the hybrid summary so callers can additionally constrain pull_rounds.
TraversalSummary ExpectModesAgree(const Graph& g, NodeId src,
                                  const std::string& what) {
  TraversalScratch scratch;
  TraversalSummary hybrid = BfsLevels(g, src, scratch);
  std::vector<double> hybrid_dist(g.NumVertices());
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    hybrid_dist[v] = scratch.DistanceOf(v);
  }
  TraversalSummary push = BfsLevels(g, src, scratch, BfsMode::kPushOnly);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(scratch.DistanceOf(v), hybrid_dist[v])
        << what << " src=" << src << " v=" << v << " (push vs hybrid)";
  }
  EXPECT_EQ(hybrid.reached, push.reached) << what << " src=" << src;
  EXPECT_EQ(hybrid.max_dist, push.max_dist) << what << " src=" << src;
  EXPECT_EQ(hybrid.farthest, push.farthest) << what << " src=" << src;
  std::vector<double> reference = ReferenceQueueBfs(g, src);
  EXPECT_EQ(hybrid_dist, reference) << what << " src=" << src;
  return hybrid;
}

// Directed "dead core": a hub fans out to 100 leaves (all of the graph's
// reachable set) while 1000 unreachable vertices chain among themselves.
// The seed gate compared the frontier's out-arcs against REMAINING
// OUT-arcs — after the hub round that denominator collapsed and two pull
// rounds scanned every dead vertex for nothing. The in-arc denominator
// plus the frontier-size floor must keep this shape pure push.
Graph DirectedDeadCore() {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 100; ++v) edges.push_back({0, v, 1.0});
  for (NodeId v = 101; v < 1100; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1), 1.0});
  }
  return Graph::FromEdges(1101, std::move(edges), /*directed=*/true,
                          /*weighted=*/false);
}

TEST(HybridGateTest, DirectedDeadCoreNeverPulls) {
  Graph g = DirectedDeadCore();
  TraversalSummary sum = ExpectModesAgree(g, 0, "dead_core");
  EXPECT_EQ(sum.pull_rounds, 0);
  EXPECT_EQ(sum.reached, 101u);
  // From inside the dead chain the frontier is a single vertex forever;
  // pull must never fire there either.
  sum = ExpectModesAgree(g, 101, "dead_core_chain");
  EXPECT_EQ(sum.pull_rounds, 0);
}

// Low reachability with a large zero-arc remainder: the hub's 100 out-arcs
// are ALL the arcs, so the seed's `scout > remaining_out/kAlpha` trigger
// fired a pull round that scanned 4899 isolated vertices to discover
// nothing it could not have pushed. The kGamma frontier-size floor
// (frontier out-arcs * 4 >= undiscovered vertices) must suppress it.
TEST(HybridGateTest, IsolatedRemainderFloorSuppressesPull) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 100; ++v) edges.push_back({0, v, 1.0});
  Graph g = Graph::FromEdges(5000, std::move(edges), /*directed=*/true,
                             /*weighted=*/false);
  TraversalSummary sum = ExpectModesAgree(g, 0, "isolated_remainder");
  EXPECT_EQ(sum.pull_rounds, 0);
  EXPECT_EQ(sum.reached, 101u);
}

// Disconnected undirected graph: the source's component is a 6-vertex
// path; the other component is dense. Its arc mass sits in the pull
// denominator for the whole traversal, so the tiny frontier never wins
// the trigger and the traversal stays push (and correct).
TEST(HybridGateTest, DisconnectedDenseRemainderNeverPulls) {
  Rng rng(31);
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 5; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1), 1.0});
  }
  Graph dense = ErdosRenyi(400, 3000, /*directed=*/false, rng);
  for (const Edge& e : dense.Edges()) {
    edges.push_back(
        {static_cast<NodeId>(e.u + 6), static_cast<NodeId>(e.v + 6), 1.0});
  }
  Graph g = Graph::FromEdges(406, std::move(edges), /*directed=*/false,
                             /*weighted=*/false);
  TraversalSummary sum = ExpectModesAgree(g, 0, "disconnected");
  EXPECT_EQ(sum.pull_rounds, 0);
  EXPECT_EQ(sum.reached, 6u);
}

// Directed low-reachability sweep over a web-shaped graph: whatever the
// gate decides per source, hybrid must equal push-only bitwise. This is
// the randomized cousin of the deterministic shapes above.
TEST(HybridGateTest, DirectedRmatAllSourcesAgree) {
  Rng rng(97);
  Graph g = RMat(10, 4000, 0.57, 0.19, 0.19, /*directed=*/true, rng);
  for (NodeId src = 0; src < g.NumVertices();
       src += std::max<NodeId>(1, g.NumVertices() / 23)) {
    ExpectModesAgree(g, src, "rmat");
  }
}

// Over-suppression guard: the gate must still take pull rounds on shapes
// where pull genuinely pays — a star traversed from a leaf (undirected)
// and from the hub (directed) reaches everything within two rounds and
// the round-2 frontier dominates the undiscovered region.
TEST(HybridGateTest, PullStillEngagesWhereItPays) {
  std::vector<Edge> star;
  for (NodeId v = 1; v < 64; ++v) star.push_back({0, v, 1.0});
  Graph undirected = Graph::FromEdges(64, star, /*directed=*/false,
                                      /*weighted=*/false);
  TraversalScratch scratch;
  TraversalSummary sum = BfsLevels(undirected, 1, scratch);
  EXPECT_GE(sum.pull_rounds, 1);
  EXPECT_EQ(sum.reached, 64u);

  Graph directed = Graph::FromEdges(64, star, /*directed=*/true,
                                    /*weighted=*/false);
  sum = BfsLevels(directed, 0, scratch);
  EXPECT_GE(sum.pull_rounds, 1);
  EXPECT_EQ(sum.reached, 64u);
  ExpectModesAgree(directed, 0, "directed_star");
}

// The same scratch must serve pull-heavy and pull-free traversals back to
// back: the lazily built visited bitmap is only valid for the epoch that
// built it, and a stale bitmap would corrupt the next pull traversal.
TEST(HybridGateTest, BitmapInvalidatedAcrossTraversals) {
  std::vector<Edge> star;
  for (NodeId v = 1; v < 64; ++v) star.push_back({0, v, 1.0});
  Graph pull_heavy = Graph::FromEdges(64, star, /*directed=*/false,
                                      /*weighted=*/false);
  Graph dead_core = DirectedDeadCore();
  TraversalScratch scratch;
  for (int round = 0; round < 4; ++round) {
    TraversalSummary sum = BfsLevels(pull_heavy, 1, scratch);
    EXPECT_GE(sum.pull_rounds, 1) << "round=" << round;
    EXPECT_EQ(sum.reached, 64u) << "round=" << round;
    for (NodeId v = 0; v < 64; ++v) {
      EXPECT_EQ(scratch.DistanceOf(v), v == 1 ? 0.0 : (v == 0 ? 1.0 : 2.0))
          << "round=" << round << " v=" << v;
    }
    sum = BfsLevels(dead_core, 0, scratch);
    EXPECT_EQ(sum.pull_rounds, 0) << "round=" << round;
    EXPECT_EQ(sum.reached, 101u) << "round=" << round;
  }
}

}  // namespace
}  // namespace sparsify
