// Tests for the extension metrics: degree assortativity, strongly
// connected components, and the spectral radius.
#include "src/metrics/extras.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/metrics/components.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(AssortativityTest, StarIsDisassortative) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 10; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(11, edges, false, false);
  // Hub (degree 10) only connects to leaves (degree 1): r = -1.
  EXPECT_NEAR(DegreeAssortativity(g), -1.0, 1e-9);
}

TEST(AssortativityTest, RegularGraphZero) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 10; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % 10)});
  }
  Graph g = Graph::FromEdges(10, edges, false, false);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(g), 0.0);
}

TEST(AssortativityTest, BoundedOnRandomGraphs) {
  Rng rng(1);
  Graph g = BarabasiAlbert(300, 4, rng);
  double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  // Preferential attachment is (weakly) disassortative.
  EXPECT_LT(r, 0.1);
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, true,
                             false);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(SccTest, DagIsAllSingletons) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 3}, {3, 2}}, true,
                             false);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(SccTest, TwoCyclesLinkedByArc) {
  // Cycle {0,1,2} -> arc -> cycle {3,4,5}.
  Graph g = Graph::FromEdges(6,
                             {{0, 1},
                              {1, 2},
                              {2, 0},
                              {2, 3},
                              {3, 4},
                              {4, 5},
                              {5, 3}},
                             true, false);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.label[0], scc.label[1]);
  EXPECT_EQ(scc.label[3], scc.label[5]);
  EXPECT_NE(scc.label[0], scc.label[3]);
}

TEST(SccTest, MatchesWeakComponentsOnSymmetricGraph) {
  Rng rng(2);
  Graph dir = ErdosRenyi(80, 200, true, rng);
  // Add every reverse arc: SCCs must equal weak components.
  std::vector<Edge> edges = dir.Edges();
  for (const Edge& e : dir.Edges()) edges.push_back({e.v, e.u, e.w});
  Graph sym = Graph::FromEdges(80, edges, true, false);
  SccResult scc = StronglyConnectedComponents(sym);
  ComponentResult weak = ConnectedComponents(sym);
  EXPECT_EQ(scc.num_components, weak.num_components);
}

TEST(SccTest, SizesSumToN) {
  Rng rng(3);
  Graph g = RMat(8, 700, 0.57, 0.19, 0.19, true, rng);
  SccResult scc = StronglyConnectedComponents(g);
  NodeId total = 0;
  for (NodeId s : scc.sizes) total += s;
  EXPECT_EQ(total, g.NumVertices());
}

TEST(SpectralRadiusTest, CompleteGraphKnownValue) {
  // K_n has spectral radius n - 1.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  Graph g = Graph::FromEdges(6, edges, false, false);
  EXPECT_NEAR(SpectralRadius(g), 5.0, 1e-6);
}

TEST(SpectralRadiusTest, StarKnownValue) {
  // Star with k leaves has spectral radius sqrt(k).
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 9; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(10, edges, false, false);
  EXPECT_NEAR(SpectralRadius(g), 3.0, 1e-6);
}

TEST(SpectralRadiusTest, SubgraphNeverLarger) {
  Rng rng(4);
  Graph g = BarabasiAlbert(200, 4, rng);
  std::vector<uint8_t> keep(g.NumEdges(), 1);
  for (EdgeId e = 0; e < g.NumEdges(); e += 2) keep[e] = 0;
  Graph h = g.Subgraph(keep);
  EXPECT_LE(SpectralRadius(h), SpectralRadius(g) + 1e-9);
}

}  // namespace
}  // namespace sparsify
