// Ingest pipeline tests (src/graph/ingest.h): SNAP text -> binary cache
// round trips must be byte-identical, a second ingest must hit the cache,
// torn cache files must be rejected by ReadGraphCache and self-healed by
// IngestGraph, the content hash must be stable under input edge order,
// and Graph::FromEdgesParallel must match the serial FromEdges bitwise at
// every thread count.
#include "src/graph/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/binary_io.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// Fresh directory per test so cache hits never leak across tests.
std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Byte-level graph equality: the binary serialization captures flags,
// counts, every canonical edge, and every weight bit.
std::string Serialize(const Graph& g) {
  std::ostringstream out(std::ios::binary);
  WriteBinaryGraphStream(g, out);
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(IngestTest, TextRoundTripIsByteIdenticalAndSecondLoadHitsCache) {
  Rng rng(3);
  Graph original =
      WithRandomWeights(ErdosRenyi(60, 180, /*directed=*/true, rng), 5.0,
                        rng);
  std::string dir = FreshDir("ingest_roundtrip");
  std::string text = (fs::path(dir) / "graph.txt").string();
  WriteEdgeList(original, text);

  IngestOptions opt;
  opt.directed = true;
  opt.weighted = true;
  opt.cache_dir = dir;
  IngestResult first = IngestGraph(text, opt);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(Serialize(first.graph), Serialize(original));
  EXPECT_EQ(first.content_hash, GraphContentHash(original));
  EXPECT_EQ(IngestDatasetKey(first.graph),
            "ingest-" + first.content_hash);
  ASSERT_FALSE(first.cache_file.empty());
  EXPECT_TRUE(fs::exists(first.cache_file));

  IngestResult second = IngestGraph(text, opt);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.cache_file, first.cache_file);
  EXPECT_EQ(Serialize(second.graph), Serialize(original));

  // The cache container itself ingests directly.
  IngestResult direct = IngestGraph(first.cache_file, opt);
  EXPECT_TRUE(direct.from_cache);
  EXPECT_EQ(Serialize(direct.graph), Serialize(original));
}

TEST(IngestTest, ParseMatchesReadEdgeListOnMessyInput) {
  // Comments, blank lines, CR line ends, duplicate and self edges: the
  // bulk parser must agree with the iostream reference reader bitwise.
  std::string dir = FreshDir("ingest_messy");
  std::string text = (fs::path(dir) / "messy.txt").string();
  {
    std::ofstream out(text);
    out << "# snap-style header\n"
        << "% matrix-market-style comment\n"
        << "\n"
        << "0 1 2.5\n"
        << "1 2\r\n"
        << "2 0 0.75\n"
        << "2 0 0.75\n"
        << "7 3 1.25\n";
  }
  for (bool weighted : {false, true}) {
    Graph reference = ReadEdgeList(text, /*directed=*/false, weighted);
    IngestOptions opt;
    opt.weighted = weighted;
    IngestResult got = IngestGraph(text, opt);  // no cache dir: pure parse
    EXPECT_EQ(Serialize(got.graph), Serialize(reference))
        << "weighted=" << weighted;
    EXPECT_TRUE(got.cache_file.empty());
  }
}

TEST(IngestTest, ContentHashStableUnderEdgeOrderAndCacheRoundTrip) {
  Rng rng(9);
  Graph g = ErdosRenyi(40, 120, /*directed=*/false, rng);
  std::string expected_hash = GraphContentHash(g);

  // Same edges, shuffled and with duplicates: the hash runs over the
  // normalized edge array, so the graph (and its store key) must match.
  std::vector<Edge> edges = g.Edges();
  edges.insert(edges.end(), edges.begin(), edges.begin() + 10);
  std::mt19937 shuffle_rng(123);
  std::shuffle(edges.begin(), edges.end(), shuffle_rng);
  Graph permuted = Graph::FromEdges(g.NumVertices(), std::move(edges),
                                    false, false);
  EXPECT_EQ(GraphContentHash(permuted), expected_hash);
  EXPECT_EQ(IngestDatasetKey(permuted), "ingest-" + expected_hash);

  // Cache round trip preserves the hash (and therefore the store key).
  std::string dir = FreshDir("ingest_hash");
  std::string cache = (fs::path(dir) / "g.spgc").string();
  WriteGraphCache(g, cache);
  EXPECT_EQ(GraphContentHash(ReadGraphCache(cache)), expected_hash);

  // A genuinely different graph gets a different hash.
  Graph other = ErdosRenyi(40, 120, /*directed=*/false, rng);
  EXPECT_NE(GraphContentHash(other), expected_hash);
}

TEST(IngestTest, EveryTornCachePrefixIsRejected) {
  Rng rng(5);
  Graph g = WithRandomWeights(BarabasiAlbert(30, 2, rng), 3.0, rng);
  std::string dir = FreshDir("ingest_torn");
  std::string cache = (fs::path(dir) / "g.spgc").string();
  WriteGraphCache(g, cache);
  std::string bytes = ReadFileBytes(cache);
  ASSERT_GT(bytes.size(), 16u);
  std::string torn = (fs::path(dir) / "torn.spgc").string();
  for (size_t len = 0; len < bytes.size(); ++len) {
    {
      std::ofstream out(torn, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    EXPECT_THROW(ReadGraphCache(torn), std::runtime_error)
        << "prefix length " << len << " of " << bytes.size();
  }
  // A flipped payload byte fails the stored content hash.
  std::string corrupt = bytes;
  corrupt[bytes.size() - 3] ^= 0x40;
  {
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_THROW(ReadGraphCache(torn), std::runtime_error);
  EXPECT_NO_THROW(ReadGraphCache(cache));
}

TEST(IngestTest, TornCacheEntrySelfHealsOnIngest) {
  Rng rng(7);
  Graph original = ErdosRenyi(50, 140, /*directed=*/true, rng);
  std::string dir = FreshDir("ingest_heal");
  std::string text = (fs::path(dir) / "graph.txt").string();
  WriteEdgeList(original, text);
  IngestOptions opt;
  opt.directed = true;
  opt.cache_dir = dir;
  IngestResult first = IngestGraph(text, opt);
  ASSERT_TRUE(fs::exists(first.cache_file));

  // Tear the cache file (simulated crash mid-write of a non-atomic copy).
  std::string bytes = ReadFileBytes(first.cache_file);
  {
    std::ofstream out(first.cache_file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  IngestResult healed = IngestGraph(text, opt);
  EXPECT_FALSE(healed.from_cache);  // the torn entry was discarded
  EXPECT_EQ(Serialize(healed.graph), Serialize(original));
  // ...and the rebuilt cache is whole again.
  IngestResult third = IngestGraph(text, opt);
  EXPECT_TRUE(third.from_cache);
  EXPECT_EQ(Serialize(third.graph), Serialize(original));
}

TEST(IngestTest, EditedInputFileKeysADifferentCacheEntry) {
  std::string dir = FreshDir("ingest_rekey");
  std::string text = (fs::path(dir) / "graph.txt").string();
  {
    std::ofstream out(text);
    out << "0 1\n1 2\n";
  }
  IngestOptions opt;
  opt.cache_dir = dir;
  IngestResult first = IngestGraph(text, opt);
  {
    std::ofstream out(text, std::ios::trunc);
    out << "0 1\n1 2\n2 3\n";
  }
  IngestResult second = IngestGraph(text, opt);
  EXPECT_FALSE(second.from_cache);  // edited bytes -> new key, no stale hit
  EXPECT_NE(second.cache_file, first.cache_file);
  EXPECT_EQ(second.graph.NumEdges(), 3u);
}

TEST(IngestTest, FromEdgesParallelMatchesSerialAtEveryThreadCount) {
  Rng rng(21);
  // Messy input: shuffled order, reversed endpoints, parallel edges with
  // distinct weights (merged by summation — floating-point order matters,
  // which is exactly what the stable parallel sort must preserve).
  Graph base = WithRandomWeights(ErdosRenyi(400, 3000, false, rng), 9.0,
                                 rng);
  std::vector<Edge> edges = base.Edges();
  for (size_t i = 0; i < 200; ++i) {
    Edge dup = edges[i * 7 % edges.size()];
    std::swap(dup.u, dup.v);
    dup.w = dup.w + 1.0;
    edges.push_back(dup);
  }
  std::mt19937 shuffle_rng(77);
  std::shuffle(edges.begin(), edges.end(), shuffle_rng);

  for (bool directed : {false, true}) {
    Graph serial = Graph::FromEdges(base.NumVertices(), edges, directed,
                                    true);
    Graph null_pool = Graph::FromEdgesParallel(base.NumVertices(), edges,
                                               directed, true, nullptr);
    EXPECT_EQ(Serialize(null_pool), Serialize(serial))
        << "directed=" << directed;
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      Graph parallel = Graph::FromEdgesParallel(base.NumVertices(), edges,
                                                directed, true, &pool);
      EXPECT_EQ(Serialize(parallel), Serialize(serial))
          << "directed=" << directed << " threads=" << threads;
    }
  }
}

TEST(IngestTest, LoadDatasetScaledCachedMatchesUncachedAndSelfHeals) {
  std::string dir = FreshDir("ingest_dataset");
  Graph direct = LoadDatasetScaledCached("ego-Facebook", 0.05, "");
  Graph cold = LoadDatasetScaledCached("ego-Facebook", 0.05, dir);
  Graph warm = LoadDatasetScaledCached("ego-Facebook", 0.05, dir);
  EXPECT_EQ(Serialize(cold), Serialize(direct));
  EXPECT_EQ(Serialize(warm), Serialize(direct));
  // Tear the cache entry; the next load must rebuild instead of failing.
  bool tore = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string bytes = ReadFileBytes(entry.path().string());
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
    tore = true;
  }
  ASSERT_TRUE(tore);
  Graph healed = LoadDatasetScaledCached("ego-Facebook", 0.05, dir);
  EXPECT_EQ(Serialize(healed), Serialize(direct));
}

}  // namespace
}  // namespace sparsify
