// Writer leases: the file format, liveness judgement, and the reaping
// rules the cooperative store protocol (src/store/result_store.cc) is
// built on. These are unit tests of src/util/lease.h; the end-to-end
// protocol — two live writers, dead-writer reaping, claim stealing — is
// covered by test_result_store.cc and test_shard_torture.cc.
#include "src/util/lease.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "gtest/gtest.h"
#include "src/store/result_store.h"
#include "src/util/errors.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(LeaseTest, WriterIdsAreUniqueAndDotFree) {
  // Segment names are `log.<writer>.<n>.jsonl` and split on dots, so a
  // writer id containing a dot would make the parse ambiguous.
  std::set<std::string> ids;
  for (int i = 0; i < 64; ++i) {
    std::string id = lease::NewWriterId();
    EXPECT_EQ(id.find('.'), std::string::npos) << id;
    EXPECT_EQ(id.front(), 'w') << id;
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 64u);
}

TEST(LeaseTest, WriteListRemoveRoundTrip) {
  std::string dir = FreshDir("lease_roundtrip");
  lease::LeaseInfo info;
  info.writer = lease::NewWriterId();
  info.pid = static_cast<long>(::getpid());
  info.heartbeat = 7;
  info.ttl_seconds = 2.5;
  info.owns_base = true;
  lease::WriteLease(dir, info);

  std::vector<lease::LeaseInfo> listed = lease::ListLeases(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].writer, info.writer);
  EXPECT_EQ(listed[0].pid, info.pid);
  EXPECT_EQ(listed[0].heartbeat, 7u);
  EXPECT_EQ(listed[0].ttl_seconds, 2.5);
  EXPECT_TRUE(listed[0].owns_base);
  EXPECT_FALSE(listed[0].path.empty());

  lease::RemoveLease(dir, info.writer);
  EXPECT_TRUE(lease::ListLeases(dir).empty());
  // Idempotent: removing a removed lease is a no-op, not an error.
  lease::RemoveLease(dir, info.writer);
}

TEST(LeaseTest, MissingDirListsNoLeases) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "lease_no_such_dir").string();
  fs::remove_all(dir);
  EXPECT_TRUE(lease::ListLeases(dir).empty());
}

TEST(LeaseTest, TornLeaseFileParsesAsReapable) {
  // A writer killed mid-rename can leave a truncated lease file. It must
  // parse (pid 0 = provably-not-live) rather than throw, so the next
  // acquirer reaps it instead of wedging.
  std::string dir = FreshDir("lease_torn");
  std::ofstream(lease::LeasePathFor(dir, "wtorn"))
      << "{\"writer\":\"wtorn\",\"pi";
  std::vector<lease::LeaseInfo> listed = lease::ListLeases(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].writer, "wtorn");
  EXPECT_EQ(listed[0].pid, 0);
}

TEST(LeaseTest, ProberJudgesDeadPidImmediately) {
  lease::LivenessProber prober;
  lease::LeaseInfo dead;
  dead.writer = "wdead";
  dead.pid = 0;  // torn lease: provably not live
  dead.heartbeat = 1;
  dead.ttl_seconds = 1000;  // TTL is irrelevant for a dead pid
  EXPECT_FALSE(prober.Alive(dead));

  lease::LeaseInfo self;
  self.writer = "wself";
  self.pid = static_cast<long>(::getpid());
  self.heartbeat = 1;
  self.ttl_seconds = 1000;
  EXPECT_TRUE(prober.Alive(self));
}

TEST(LeaseTest, ProberJudgesStalledHeartbeatStaleAfterTtl) {
  // The cross-host / wedged-process case: the pid probe is inconclusive
  // (pretend-live pid), so staleness comes from the counter sitting
  // still for longer than the TTL on the prober's own steady clock.
  lease::LivenessProber prober;
  lease::LeaseInfo info;
  info.writer = "wstall";
  info.pid = static_cast<long>(::getpid());  // "alive" as far as kill(2) knows
  info.heartbeat = 5;
  info.ttl_seconds = 0.2;
  EXPECT_TRUE(prober.Alive(info));  // first observation starts the clock
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(prober.Alive(info));  // counter never advanced past TTL

  // A renewal resurrects it: the counter moved, the clock restarts.
  info.heartbeat = 6;
  EXPECT_TRUE(prober.Alive(info));
}

TEST(LeaseTest, StoreReapsDeadWritersLeaseOnOpen) {
  // A lease whose pid is provably dead must be reaped by the next open —
  // this is what keeps a kill -9'd worker from wedging the store.
  std::string dir = FreshDir("lease_reap_store");
  {
    ResultStore store(ResultStore::PathInDir(dir));
    CellKey key;
    key.dataset = "d";
    key.sparsifier = "RN";
    key.metric = "m";
    store.Append(key, 0.1, 1.0);
  }
  lease::LeaseInfo dead;
  dead.writer = "w1x00000000000000ff";  // plausible id, dead pid
  dead.pid = 0;
  dead.heartbeat = 3;
  lease::WriteLease(dir, dead);
  ASSERT_EQ(lease::ListLeases(dir).size(), 1u);

  ResultStore reopened(ResultStore::PathInDir(dir));
  std::vector<lease::LeaseInfo> remaining = lease::ListLeases(dir);
  ASSERT_EQ(remaining.size(), 1u);  // only the live reopener's lease
  EXPECT_EQ(remaining[0].writer, reopened.WriterId());
  EXPECT_EQ(reopened.Size(), 1u);
}

TEST(LeaseTest, TtlFromEnvValidates) {
  ::setenv("SPARSIFY_LEASE_TTL", "2.5", 1);
  EXPECT_EQ(lease::TtlFromEnv(30.0), 2.5);
  ::setenv("SPARSIFY_LEASE_TTL", "not-a-number", 1);
  EXPECT_THROW(lease::TtlFromEnv(30.0), std::invalid_argument);
  ::setenv("SPARSIFY_LEASE_TTL", "-1", 1);
  EXPECT_THROW(lease::TtlFromEnv(30.0), std::invalid_argument);
  ::unsetenv("SPARSIFY_LEASE_TTL");
  EXPECT_EQ(lease::TtlFromEnv(30.0), 30.0);
}

}  // namespace
}  // namespace sparsify
