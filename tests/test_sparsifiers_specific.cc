// Algorithm-specific tests: each sparsifier's defining guarantee from the
// paper's section 2.3 (K-Neighbor's min-degree, Local Degree's >=1 edge per
// vertex, spanning forest's connectivity, the t-Spanner stretch bound, ER's
// quadratic-form preservation, similarity orderings, etc.).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/linalg/laplacian.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/sparsifiers/effective_resistance.h"
#include "src/sparsifiers/k_neighbor.h"
#include "src/sparsifiers/local_degree.h"
#include "src/sparsifiers/similarity.h"
#include "src/sparsifiers/spanning_forest.h"
#include "src/sparsifiers/t_spanner.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

Graph SocialGraph() {
  Rng rng(101);
  return BarabasiAlbert(400, 5, rng);
}

// --------------------------------------------------------------------------
// K-Neighbor

TEST(KNeighborTest, EveryVertexKeepsMinKEdges) {
  Graph g = SocialGraph();
  Rng rng(1);
  KNeighborSparsifier kn;
  Graph h = kn.SparsifyWithK(g, 3, rng);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    NodeId expect = std::min<NodeId>(3, g.OutDegree(v));
    EXPECT_GE(h.OutDegree(v), expect) << "vertex " << v;
  }
}

TEST(KNeighborTest, LargeKKeepsEverything) {
  Graph g = SocialGraph();
  Rng rng(2);
  KNeighborSparsifier kn;
  Graph h = kn.SparsifyWithK(g, g.MaxDegree(), rng);
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
}

TEST(KNeighborTest, WeightProportionalSelection) {
  // Star with one heavy edge: the heavy edge should be kept far more often.
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 20; ++v) {
    edges.push_back({0, v, v == 1 ? 100.0 : 1.0});
  }
  Graph g = Graph::FromEdges(21, edges, false, true);
  KNeighborSparsifier kn;
  int heavy_kept = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng(1000 + trial);
    Graph h = kn.SparsifyWithK(g, 1, rng);
    // Leaves keep their only edge; look at whether 0's chosen edge when
    // k=1 is the heavy one. Count how often the heavy edge survives.
    if (h.HasEdge(0, 1)) ++heavy_kept;
  }
  EXPECT_GT(heavy_kept, 40);  // ~100/119 probability per trial
}

// --------------------------------------------------------------------------
// Local Degree

TEST(LocalDegreeTest, EveryVertexKeepsAtLeastOneEdge) {
  Graph g = SocialGraph();
  LocalDegreeSparsifier ld;
  Graph h = ld.SparsifyWithAlpha(g, 0.0);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    if (g.OutDegree(v) > 0) {
      EXPECT_GE(h.OutDegree(v), 1u) << "vertex " << v;
    }
  }
}

TEST(LocalDegreeTest, AlphaOneKeepsEverything) {
  Graph g = SocialGraph();
  LocalDegreeSparsifier ld;
  Graph h = ld.SparsifyWithAlpha(g, 1.0);
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
}

TEST(LocalDegreeTest, KeepsHighDegreeNeighbors) {
  // Star + pendant: the hub is every leaf's highest-degree neighbor.
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 10; ++v) edges.push_back({0, v});
  edges.push_back({1, 2});  // low-degree side edge
  Graph g = Graph::FromEdges(11, edges, false, false);
  LocalDegreeSparsifier ld;
  Graph h = ld.SparsifyWithAlpha(g, 0.0);
  // Every leaf keeps its edge to the hub (degree 10 beats degree 2).
  for (NodeId v = 3; v <= 10; ++v) EXPECT_TRUE(h.HasEdge(0, v));
}

TEST(LocalDegreeTest, MonotoneInAlpha) {
  Graph g = SocialGraph();
  LocalDegreeSparsifier ld;
  EdgeId prev = 0;
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EdgeId count = ld.SparsifyWithAlpha(g, alpha).NumEdges();
    EXPECT_GE(count, prev);
    prev = count;
  }
}

// --------------------------------------------------------------------------
// Spanning Forest

TEST(SpanningForestTest, TreeEdgeCountOnConnectedGraph) {
  Graph g = SocialGraph();
  Rng rng(3);
  SpanningForestSparsifier sf;
  Graph h = sf.Sparsify(g, 0.0, rng);
  EXPECT_EQ(h.NumEdges(), g.NumVertices() - 1);
  EXPECT_EQ(ConnectedComponents(h).num_components, 1u);
}

TEST(SpanningForestTest, PreservesComponentsExactly) {
  Rng gen(4);
  Graph a = ErdosRenyi(50, 120, false, gen);
  Graph b = ErdosRenyi(40, 100, false, gen);
  std::vector<Edge> edges = a.Edges();
  for (const Edge& e : b.Edges()) {
    edges.push_back({e.u + 50, e.v + 50, e.w});
  }
  Graph g = Graph::FromEdges(90, edges, false, false);
  Rng rng(5);
  Graph h = SpanningForestSparsifier().Sparsify(g, 0.0, rng);
  ComponentResult co = ConnectedComponents(g);
  ComponentResult ch = ConnectedComponents(h);
  EXPECT_EQ(ch.num_components, co.num_components);
  for (NodeId u = 0; u < g.NumVertices(); ++u) {
    for (NodeId v = u + 1; v < g.NumVertices(); v += 7) {
      EXPECT_EQ(co.label[u] == co.label[v], ch.label[u] == ch.label[v]);
    }
  }
}

TEST(SpanningForestTest, AcyclicOutput) {
  Graph g = SocialGraph();
  Rng rng(6);
  Graph h = SpanningForestSparsifier().Sparsify(g, 0.0, rng);
  // A forest has |V| - #components edges -> no cycles.
  EXPECT_EQ(h.NumEdges() + ConnectedComponents(h).num_components,
            h.NumVertices());
}

TEST(SpanningForestTest, MinimumWeightOnWeightedGraph) {
  // Triangle with one heavy edge: MSF must drop the heavy edge.
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 10.0}},
                             false, true);
  Rng rng(7);
  Graph h = SpanningForestSparsifier().Sparsify(g, 0.0, rng);
  EXPECT_EQ(h.NumEdges(), 2u);
  EXPECT_FALSE(h.HasEdge(0, 2));
}

TEST(SpanningForestTest, DirectedThrows) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, true, false);
  Rng rng(8);
  EXPECT_THROW(SpanningForestSparsifier().Sparsify(g, 0.0, rng),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// t-Spanner

class TSpannerStretchTest : public ::testing::TestWithParam<double> {};

TEST_P(TSpannerStretchTest, StretchBoundHolds) {
  double t = GetParam();
  Rng gen(9);
  Graph g = ErdosRenyi(120, 600, false, gen);
  Rng rng(10);
  Graph h = TSpannerSparsifier(t).Sparsify(g, 0.0, rng);
  // Property: for sampled sources, d_H <= t * d_G for all reachable pairs.
  for (NodeId src = 0; src < g.NumVertices(); src += 13) {
    std::vector<double> dg = ShortestPathDistances(g, src);
    std::vector<double> dh = ShortestPathDistances(h, src);
    for (NodeId v = 0; v < g.NumVertices(); ++v) {
      if (dg[v] == kInfDistance) continue;
      ASSERT_NE(dh[v], kInfDistance);
      EXPECT_LE(dh[v], t * dg[v] + 1e-9);
    }
  }
}

TEST_P(TSpannerStretchTest, StretchBoundHoldsWeighted) {
  double t = GetParam();
  Rng gen(11);
  Graph g = WithRandomWeights(ErdosRenyi(80, 400, false, gen), 5.0, gen);
  Rng rng(12);
  Graph h = TSpannerSparsifier(t).Sparsify(g, 0.0, rng);
  for (NodeId src = 0; src < g.NumVertices(); src += 17) {
    std::vector<double> dg = ShortestPathDistances(g, src);
    std::vector<double> dh = ShortestPathDistances(h, src);
    for (NodeId v = 0; v < g.NumVertices(); ++v) {
      if (dg[v] == kInfDistance) continue;
      ASSERT_NE(dh[v], kInfDistance);
      EXPECT_LE(dh[v], t * dg[v] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Stretch357, TSpannerStretchTest,
                         ::testing::Values(3.0, 5.0, 7.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "t" + std::to_string(
                                            static_cast<int>(i.param));
                         });

TEST(TSpannerTest, LargerTPrunesMore) {
  Rng gen(13);
  Graph g = ErdosRenyi(150, 900, false, gen);
  Rng rng(14);
  EdgeId e3 = TSpannerSparsifier(3).Sparsify(g, 0.0, rng).NumEdges();
  EdgeId e7 = TSpannerSparsifier(7).Sparsify(g, 0.0, rng).NumEdges();
  EXPECT_LE(e7, e3);
}

TEST(TSpannerTest, PreservesConnectivity) {
  Graph g = SocialGraph();
  Rng rng(15);
  Graph h = TSpannerSparsifier(5).Sparsify(g, 0.0, rng);
  EXPECT_EQ(ConnectedComponents(h).num_components,
            ConnectedComponents(g).num_components);
}

TEST(TSpannerTest, InvalidStretchThrows) {
  EXPECT_THROW(TSpannerSparsifier(1.0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Similarity scores

TEST(JaccardTest, TriangleVsPendant) {
  // Triangle 0-1-2 plus pendant 2-3: triangle edges have Jaccard 1/3
  // (share one neighbor of union 3); pendant edge has 0.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false,
                             false);
  std::vector<double> jac = JaccardEdgeScores(g);
  EXPECT_NEAR(jac[g.FindEdge(0, 1)], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(jac[g.FindEdge(2, 3)], 0.0, 1e-12);
}

TEST(JaccardTest, CliqueEdgesHaveHighScores) {
  // K5: every edge's endpoints share the other 3 vertices;
  // union = 8 - 2*3 = ... |N(u) u N(v)| = 5 (all but none). Score 3/5.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  Graph g = Graph::FromEdges(5, edges, false, false);
  for (double s : JaccardEdgeScores(g)) EXPECT_NEAR(s, 3.0 / 5.0, 1e-12);
}

TEST(ScanScoreTest, MatchesFormula) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false,
                             false);
  std::vector<double> scan = ScanEdgeScores(g);
  // Edge (0,1): 1 common neighbor, degrees 2 and 2 -> 2/3.
  EXPECT_NEAR(scan[g.FindEdge(0, 1)], 2.0 / 3.0, 1e-12);
  // Edge (2,3): 0 common, degrees 3 and 1 -> 1/sqrt(8).
  EXPECT_NEAR(scan[g.FindEdge(2, 3)], 1.0 / std::sqrt(8.0), 1e-12);
}

TEST(GSparTest, KeepsIntraCommunityEdges) {
  Rng gen(16);
  std::vector<int> comm;
  Graph g = PlantedPartition(200, 4, 0.4, 0.02, gen, &comm);
  Rng rng(17);
  Graph h = GSparSparsifier().Sparsify(g, 0.5, rng);
  int intra_kept = 0, inter_kept = 0;
  for (const Edge& e : h.Edges()) {
    (comm[e.u] == comm[e.v] ? intra_kept : inter_kept)++;
  }
  int intra_orig = 0, inter_orig = 0;
  for (const Edge& e : g.Edges()) {
    (comm[e.u] == comm[e.v] ? intra_orig : inter_orig)++;
  }
  double intra_rate = static_cast<double>(intra_kept) / intra_orig;
  double inter_rate = static_cast<double>(inter_kept) /
                      std::max(1, inter_orig);
  EXPECT_GT(intra_rate, inter_rate + 0.2);
}

TEST(LSparTest, EveryVertexKeepsAtLeastOneEdge) {
  Graph g = SocialGraph();
  LSparSparsifier ls;
  Graph h = ls.SparsifyWithExponent(g, 0.1);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    if (g.OutDegree(v) > 0) {
      EXPECT_GE(h.OutDegree(v), 1u);
    }
  }
}

TEST(LSparTest, ExponentOneKeepsEverything) {
  Graph g = SocialGraph();
  Graph h = LSparSparsifier().SparsifyWithExponent(g, 1.0);
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
}

// --------------------------------------------------------------------------
// Effective Resistance

TEST(EffectiveResistanceTest, PathGraphResistances) {
  // On a tree, the effective resistance of every edge is exactly its
  // resistance w^{-1}... for unit weights, exactly 1.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false,
                             false);
  Rng rng(18);
  std::vector<double> r = ApproxEffectiveResistances(g, rng, 64, 1e-10);
  for (double ri : r) EXPECT_NEAR(ri, 1.0, 0.35);  // JL approximation
}

TEST(EffectiveResistanceTest, SumRule) {
  // sum_e w_e R_e = n - #components for any graph.
  Rng gen(19);
  Graph g = BarabasiAlbert(150, 3, gen);
  Rng rng(20);
  std::vector<double> r = ApproxEffectiveResistances(g, rng, 96, 1e-9);
  double sum = 0.0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) sum += g.EdgeWeight(e) * r[e];
  EXPECT_NEAR(sum, static_cast<double>(g.NumVertices() - 1),
              0.15 * g.NumVertices());
}

TEST(EffectiveResistanceTest, BridgeHasHighestResistance) {
  // Two K4 cliques joined by one bridge: the bridge has R ~ 1, clique
  // edges far less.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      edges.push_back({u, v});
      edges.push_back({u + 4, v + 4});
    }
  }
  edges.push_back({3, 4});  // bridge
  Graph g = Graph::FromEdges(8, edges, false, false);
  Rng rng(21);
  std::vector<double> r = ApproxEffectiveResistances(g, rng, 128, 1e-10);
  EdgeId bridge = g.FindEdge(3, 4);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != bridge) {
      EXPECT_GT(r[bridge], r[e]);
    }
  }
}

TEST(EffectiveResistanceTest, WeightedVariantPreservesQuadraticForm) {
  Rng gen(22);
  Graph g = BarabasiAlbert(300, 6, gen);
  Rng rng(23);
  EffectiveResistanceSparsifier er(true);
  Graph h = er.Sparsify(g, 0.5, rng);
  // Mean quadratic-form ratio over random vectors should be near 1.
  Rng probe(24);
  double ratio_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 30; ++i) {
    Vec x(g.NumVertices());
    for (double& xi : x) xi = probe.NextGaussian();
    double qo = QuadraticForm(g, x);
    if (qo <= 0.0) continue;
    ratio_sum += QuadraticForm(h, x) / qo;
    ++count;
  }
  double mean_ratio = ratio_sum / count;
  EXPECT_GT(mean_ratio, 0.6);
  EXPECT_LT(mean_ratio, 1.4);
}

TEST(EffectiveResistanceTest, UnweightedVariantDoesNotPreserveQuadraticForm) {
  Rng gen(25);
  Graph g = BarabasiAlbert(300, 6, gen);
  Rng rng(26);
  Graph h = EffectiveResistanceSparsifier(false).Sparsify(g, 0.7, rng);
  Rng probe(27);
  double ratio_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 30; ++i) {
    Vec x(g.NumVertices());
    for (double& xi : x) xi = probe.NextGaussian();
    double qo = QuadraticForm(g, x);
    if (qo <= 0.0) continue;
    ratio_sum += QuadraticForm(h, x) / qo;
    ++count;
  }
  // Without reweighting, the form shrinks roughly with the kept fraction.
  EXPECT_LT(ratio_sum / count, 0.6);
}

TEST(EffectiveResistanceTest, DirectedThrows) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, true, false);
  Rng rng(28);
  EXPECT_THROW(EffectiveResistanceSparsifier(true).Sparsify(g, 0.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sparsify
