// Cancellation, deadlines, watchdog, and graceful-shutdown plumbing:
// token semantics (flag, deadline latch, parent chain), the one-load-
// when-unarmed check macro, cooperative checks inside the traversal /
// CG / ER kernels, ThreadPool Stop(drain|abandon), the hang failpoint,
// the watchdog's dump-then-cancel escalation, the signal bridge, and
// the engine-level contracts: a timed-out unit fails ALONE as a typed
// "deadline" error record, and a run-level cancellation leaves the
// store consistent so --resume reproduces the cold run bit-identically.
#include "src/util/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/metrics/basic.h"
#include "src/sparsifiers/effective_resistance.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Token semantics
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, FreshTokenIsNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kNone);
  EXPECT_NO_THROW(token.ThrowIfCancelled());
}

TEST(CancelTokenTest, CancelIsStickyAndFirstCauseWins) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kCancelled);
  // A later Cancel with a different reason must not rewrite history.
  token.Cancel(CancelToken::Reason::kDeadline);
  EXPECT_EQ(token.reason(), CancelToken::Reason::kCancelled);
  EXPECT_THROW(token.ThrowIfCancelled(), CancelledError);
}

TEST(CancelTokenTest, ExpiredDeadlineLatchesAndThrowsTyped) {
  CancelToken token;
  token.SetDeadlineAfter(-1.0);  // already expired
  EXPECT_TRUE(token.Cancelled());
  // The first check latched the deadline into the flag.
  EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
  EXPECT_THROW(token.ThrowIfCancelled(), DeadlineExceededError);
  // DeadlineExceededError IS-A CancelledError: generic handlers see both.
  EXPECT_THROW(token.ThrowIfCancelled(), CancelledError);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotTripEarly) {
  CancelToken token;
  token.SetDeadlineAfter(3600.0);
  EXPECT_FALSE(token.Cancelled());
  EXPECT_NO_THROW(token.ThrowIfCancelled());
}

TEST(CancelTokenTest, ParentCancellationPropagatesToChild) {
  CancelToken parent, child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.Cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.Cancelled());
  // The child's OWN flag stays clean; the effective reason walks up.
  EXPECT_EQ(child.reason(), CancelToken::Reason::kNone);
  EXPECT_EQ(child.EffectiveReason(), CancelToken::Reason::kCancelled);
  EXPECT_THROW(child.ThrowIfCancelled(), CancelledError);
}

TEST(CancelTokenTest, ChildDeadlineDoesNotTripParent) {
  CancelToken parent, child;
  child.set_parent(&parent);
  child.SetDeadlineAfter(-1.0);
  EXPECT_TRUE(child.Cancelled());
  EXPECT_FALSE(parent.Cancelled());
}

// ---------------------------------------------------------------------------
// Scope + check macro
// ---------------------------------------------------------------------------

TEST(CancelScopeTest, CheckIsNoopWithoutAnInstalledScope) {
  CancelToken token;
  token.Cancel();
  // The token exists but no scope installed it anywhere: checks must
  // stay the unarmed single-load no-op.
  EXPECT_NO_THROW(SPARSIFY_CHECK_CANCELLED());
}

TEST(CancelScopeTest, ScopeInstallsAndRestoresTheAmbientToken) {
  CancelToken token;
  EXPECT_EQ(CurrentCancelToken(), nullptr);
  {
    CancelScope scope(&token);
    EXPECT_EQ(CurrentCancelToken(), &token);
    EXPECT_NO_THROW(SPARSIFY_CHECK_CANCELLED());  // not tripped yet
    token.Cancel();
    EXPECT_THROW(SPARSIFY_CHECK_CANCELLED(), CancelledError);
  }
  EXPECT_EQ(CurrentCancelToken(), nullptr);
  EXPECT_NO_THROW(SPARSIFY_CHECK_CANCELLED());
}

TEST(CancelScopeTest, NullScopeIsANoop) {
  CancelToken token;
  token.Cancel();
  CancelScope outer(&token);
  {
    // The engine installs CancelScope(nullptr) on non-cancellable units;
    // that must not mask or disturb an enclosing scope.
    CancelScope inner(nullptr);
    EXPECT_EQ(CurrentCancelToken(), &token);
  }
  EXPECT_EQ(CurrentCancelToken(), &token);
}

// ---------------------------------------------------------------------------
// Kernel checks: BFS rounds, Dijkstra buckets, CG-backed ER scoring
// ---------------------------------------------------------------------------

class KernelCancelTest : public ::testing::Test {
 protected:
  KernelCancelTest() {
    Rng rng(7);
    graph_ = WattsStrogatz(2000, 4, 0.1, rng);
  }
  Graph graph_;
  TraversalScratch scratch_;
};

TEST_F(KernelCancelTest, BfsObservesCancellationAtRoundGranularity) {
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token);
  EXPECT_THROW(BfsLevels(graph_, 0, scratch_), CancelledError);
}

TEST_F(KernelCancelTest, DijkstraObservesCancellation) {
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token);
  EXPECT_THROW(DijkstraDistances(graph_, 0, scratch_), CancelledError);
}

TEST_F(KernelCancelTest, ErScoringObservesDeadlineBeforeAnyCgSolve) {
  Rng gen(11);
  Graph g = ErdosRenyi(300, 1200, /*directed=*/false, gen);
  CancelToken token;
  token.SetDeadlineAfter(-1.0);
  CancelScope scope(&token);
  EffectiveResistanceSparsifier er(/*reweight=*/false);
  Rng rng(42);
  EXPECT_THROW(er.PrepareScores(g, rng), DeadlineExceededError);
}

TEST_F(KernelCancelTest, NestedParallelForPropagatesTheCallerToken) {
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token);
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  // Every index is checked before fn runs, on the caller AND on helper
  // workers (which re-install the caller's ambient token).
  EXPECT_THROW(NestedParallelFor(&pool, 64,
                                 [&](size_t) {
                                   executed.fetch_add(
                                       1, std::memory_order_relaxed);
                                 }),
               CancelledError);
  EXPECT_EQ(executed.load(), 0);
}

// ---------------------------------------------------------------------------
// ThreadPool Stop(drain | abandon)
// ---------------------------------------------------------------------------

TEST(ThreadPoolStopTest, DrainRunsEverythingQueued) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Stop(ThreadPool::StopMode::kDrain);
  EXPECT_EQ(counter.load(), 50);
  EXPECT_THROW(pool.Submit([] {}), std::logic_error);
}

TEST(ThreadPoolStopTest, AbandonDropsQueuedTasksUnrun) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> counter{0};
  // Block both workers so the 50 counter tasks stay queued, then Stop:
  // the queue is cleared synchronously before the workers are released,
  // so none of the queued tasks can ever run.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!release.load(std::memory_order_acquire)) SleepMs(1);
    });
  }
  SleepMs(20);  // let the workers pick the blockers up
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  std::thread releaser([&] {
    SleepMs(50);
    release.store(true, std::memory_order_release);
  });
  pool.Stop(ThreadPool::StopMode::kAbandon);
  releaser.join();
  // Once Stop returned, no task is running or will ever run.
  EXPECT_EQ(counter.load(), 0);
  EXPECT_THROW(pool.Submit([] {}), std::logic_error);
}

// ---------------------------------------------------------------------------
// hang failpoint
// ---------------------------------------------------------------------------

class HangFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(HangFailpointTest, HangReleasesWhenDisarmed) {
  fail::ArmFromSpec("test.hang_site=hang");
  std::thread disarmer([] {
    SleepMs(100);
    fail::DisarmAll();
  });
  // Blocks ~100ms, then continues as if nothing happened (no token).
  EXPECT_NO_THROW(SPARSIFY_FAILPOINT("test.hang_site"));
  disarmer.join();
}

TEST_F(HangFailpointTest, HangReleasesWhenTheAmbientTokenTrips) {
  fail::ArmFromSpec("test.hang_site=hang");
  CancelToken token;
  CancelScope scope(&token);
  std::thread canceller([&] {
    SleepMs(100);
    token.Cancel();
  });
  EXPECT_THROW(SPARSIFY_FAILPOINT("test.hang_site"), CancelledError);
  canceller.join();
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, DumpsAndCancelsAStuckActivity) {
  WatchdogOptions options;
  options.stall_seconds = 0.1;
  options.poll_seconds = 0.05;
  options.cancel_stuck = true;
  const int64_t dumps_before = WatchdogDumpCount();
  CancelToken token;
  ::testing::internal::CaptureStderr();
  StartWatchdog(options);
  {
    ActivityScope activity("test_stage", "stuck-unit", &token);
    // Wait (bounded) for the watchdog to notice the stalled activity.
    for (int i = 0; i < 100 && !token.Cancelled(); ++i) SleepMs(20);
  }
  StopWatchdog();
  std::string dump = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
  EXPECT_GT(WatchdogDumpCount(), dumps_before);
  EXPECT_NE(dump.find("sparsify watchdog: no progress"), std::string::npos);
  EXPECT_NE(dump.find("test_stage/stuck-unit"), std::string::npos);
  EXPECT_NE(dump.find("in-flight activities"), std::string::npos);
}

TEST(WatchdogTest, IdleRegistryNeverDumps) {
  WatchdogOptions options;
  options.stall_seconds = 0.05;
  options.poll_seconds = 0.02;
  const int64_t dumps_before = WatchdogDumpCount();
  StartWatchdog(options);
  SleepMs(150);  // several polls with no activity in flight
  StopWatchdog();
  EXPECT_EQ(WatchdogDumpCount(), dumps_before);
}

// ---------------------------------------------------------------------------
// Signal bridge
// ---------------------------------------------------------------------------

TEST(SignalCancelTest, FirstSignalCancelsTheToken) {
  CancelToken token;
  InstallSignalCancel(&token);
  EXPECT_EQ(SignalCancelSigno(), 0);
  ::raise(SIGTERM);  // delivered synchronously to this thread
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kCancelled);
  EXPECT_EQ(SignalCancelSigno(), SIGTERM);
  ClearSignalCancel();
}

// ---------------------------------------------------------------------------
// Engine contracts: unit deadlines and run-level cancellation
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

MetricFn SampledMetric() {
  return [](const Graph& g, const Graph& h, Rng& rng) {
    return QuadraticFormSimilarity(g, h, 5, rng);
  };
}

SweepConfig TestConfig() {
  SweepConfig config;
  config.sparsifiers = {"RN", "LD"};
  config.runs_nondeterministic = 2;
  config.seed = 321;
  return config;
}

void ExpectSeriesBitIdentical(const std::vector<SweepSeries>& a,
                              const std::vector<SweepSeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].sparsifier, b[s].sparsifier);
    ASSERT_EQ(a[s].points.size(), b[s].points.size());
    for (size_t p = 0; p < a[s].points.size(); ++p) {
      EXPECT_EQ(a[s].points[p].mean, b[s].points[p].mean);
      EXPECT_EQ(a[s].points[p].stddev, b[s].points[p].stddev);
      EXPECT_EQ(a[s].points[p].runs, b[s].points[p].runs);
    }
  }
}

class EngineCancelTest : public ::testing::Test {
 protected:
  EngineCancelTest()
      : graph_(LoadDatasetScaled("ego-Facebook", 0.1).graph), runner_(2) {}
  void TearDown() override { fail::DisarmAll(); }

  std::vector<SweepMetric> TwoMetrics() {
    return {SweepMetric{"m_good", SampledMetric()},
            SweepMetric{"m_bad", SampledMetric()}};
  }

  Graph graph_;
  BatchRunner runner_;
};

TEST_F(EngineCancelTest, UnitTimeoutFailsAloneAsDeadlineErrorRecord) {
  std::string dir = TempPath("deadline_store");
  fs::remove_all(dir);
  SweepConfig config = TestConfig();

  // Cold reference, no store, no faults.
  ResumableSweep cold(runner_, nullptr, "test-rev");
  auto reference =
      cold.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, nullptr);

  // Every m_bad unit wedges until its own deadline fires; m_good units
  // on the SAME cells must complete untouched.
  fail::ArmFromSpec("engine.metric_unit/m_bad=hang");
  auto store = std::make_unique<ResultStore>(ResultStore::PathInDir(dir));
  ResumableSweep sweep(runner_, store.get(), "test-rev");
  sweep.set_fault_tolerant(true);
  sweep.set_unit_timeout(0.05);
  ResumableSweepStats stats;
  auto out = sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &stats);

  const size_t cells = stats.total_cells / 2;  // two metrics
  EXPECT_EQ(stats.failed_units, cells);
  EXPECT_EQ(stats.deadline_exceeded_units, cells);
  EXPECT_EQ(stats.cancelled_units, 0u);
  EXPECT_EQ(stats.transient_failed_units, 0u);
  EXPECT_EQ(store->ErrorCount(), cells);
  for (const StoredCell& cell : store->Cells()) {
    if (!cell.is_error) continue;
    EXPECT_EQ(cell.key.metric, "m_bad");
    EXPECT_EQ(cell.error_class, "deadline");
    EXPECT_EQ(cell.attempts, 1);  // a deadline unit never retries
  }
  ASSERT_EQ(out.size(), 2u);
  ExpectSeriesBitIdentical(out[0].series, reference[0].series);

  // Un-wedge and resume: exactly the timed-out units are resubmitted and
  // the healed sweep is bit-identical to the cold run.
  fail::DisarmAll();
  ResumableSweep resume(runner_, store.get(), "test-rev");
  resume.set_fault_tolerant(true);
  resume.set_unit_timeout(0.05);
  ResumableSweepStats resume_stats;
  auto healed =
      resume.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &resume_stats);
  EXPECT_EQ(resume_stats.submitted_cells, cells);
  EXPECT_EQ(resume_stats.failed_units, 0u);
  EXPECT_EQ(store->ErrorCount(), 0u);
  ExpectSeriesBitIdentical(healed[0].series, reference[0].series);
  ExpectSeriesBitIdentical(healed[1].series, reference[1].series);
}

TEST_F(EngineCancelTest, RunCancellationLeavesStoreResumableBitIdentically) {
  std::string dir = TempPath("cancel_store");
  fs::remove_all(dir);
  SweepConfig config = TestConfig();

  ResumableSweep cold(runner_, nullptr, "test-rev");
  auto reference =
      cold.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, nullptr);

  // Single-threaded runner: the progress callback cancels the run token
  // after two units, so the remaining units are deterministically still
  // queued and must be skipped with NO store record.
  BatchRunner serial(1);
  auto store = std::make_unique<ResultStore>(ResultStore::PathInDir(dir));
  CancelToken run_token;
  ResumableSweep sweep(serial, store.get(), "test-rev");
  sweep.set_fault_tolerant(true);
  sweep.set_cancel_token(&run_token);
  sweep.set_progress([&](size_t done, size_t) {
    if (done >= 2) run_token.Cancel();
  });
  ResumableSweepStats stats;
  sweep.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &stats);

  EXPECT_GE(stats.cancelled_units, 1u);
  EXPECT_EQ(stats.failed_units, 0u);
  // Cancelled units are NOT failures: no error records, store replays
  // clean, and the skipped units simply read back as missing.
  EXPECT_EQ(store->ErrorCount(), 0u);
  EXPECT_LT(store->Cells().size(), stats.total_cells);

  // Resume with a fresh (untripped) run: exactly the not-yet-done units
  // are submitted and the result matches the cold run bit-for-bit.
  ResumableSweep resume(runner_, store.get(), "test-rev");
  resume.set_fault_tolerant(true);
  ResumableSweepStats resume_stats;
  auto healed =
      resume.RunMulti(graph_, "fb@0.1", TwoMetrics(), config, &resume_stats);
  EXPECT_EQ(resume_stats.cached_cells,
            stats.total_cells - stats.cancelled_units);
  EXPECT_EQ(resume_stats.submitted_cells, stats.cancelled_units);
  EXPECT_EQ(resume_stats.failed_units, 0u);
  ExpectSeriesBitIdentical(healed[0].series, reference[0].series);
  ExpectSeriesBitIdentical(healed[1].series, reference[1].series);
}

}  // namespace
}  // namespace sparsify
