// Tests for the synthetic graph generators and the dataset registry that
// stands in for the paper's Table 3.
#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/metrics/components.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

TEST(ErdosRenyiTest, EdgeCountAndRange) {
  Rng rng(1);
  Graph g = ErdosRenyi(100, 300, false, rng);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(ErdosRenyiTest, DirectedVariant) {
  Rng rng(2);
  Graph g = ErdosRenyi(50, 200, true, rng);
  EXPECT_TRUE(g.IsDirected());
  EXPECT_EQ(g.NumEdges(), 200u);
}

TEST(ErdosRenyiTest, CapsAtCompleteGraph) {
  Rng rng(3);
  Graph g = ErdosRenyi(5, 1000, false, rng);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(ErdosRenyiTest, Deterministic) {
  Rng a(7), b(7);
  Graph g1 = ErdosRenyi(60, 120, false, a);
  Graph g2 = ErdosRenyi(60, 120, false, b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(BarabasiAlbertTest, ConnectedPowerLaw) {
  Rng rng(4);
  Graph g = BarabasiAlbert(500, 3, rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  // Connected by construction.
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
  // Power-law-ish: max degree far above the mean.
  double mean_deg = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(g.MaxDegree(), 4 * mean_deg);
}

TEST(BarabasiAlbertTest, EdgesPerNode) {
  Rng rng(5);
  Graph g = BarabasiAlbert(200, 5, rng);
  // Roughly m edges per arriving vertex.
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 5.0 * 200, 60.0);
}

TEST(WattsStrogatzTest, HighClustering) {
  Rng rng(6);
  Graph g = WattsStrogatz(300, 5, 0.05, rng);
  EXPECT_EQ(g.NumVertices(), 300u);
  // Ring lattice keeps ~k*n edges.
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 5.0 * 300, 100.0);
}

TEST(WattsStrogatzTest, RejectsBadK) {
  Rng rng(7);
  EXPECT_THROW(WattsStrogatz(10, 5, 0.1, rng), std::invalid_argument);
}

TEST(RMatTest, SkewAndSize) {
  Rng rng(8);
  Graph g = RMat(10, 4000, 0.57, 0.19, 0.19, true, rng);
  EXPECT_EQ(g.NumVertices(), 1024u);
  EXPECT_EQ(g.NumEdges(), 4000u);
  EXPECT_TRUE(g.IsDirected());
  // Skewed: some vertex has a much larger out-degree than average.
  EXPECT_GT(g.MaxDegree(), 20u);
}

TEST(PlantedPartitionTest, CommunityStructure) {
  Rng rng(9);
  std::vector<int> comm;
  Graph g = PlantedPartition(400, 8, 0.3, 0.005, rng, &comm);
  ASSERT_EQ(comm.size(), 400u);
  // Most edges should be intra-community.
  int intra = 0;
  for (const Edge& e : g.Edges()) {
    if (comm[e.u] == comm[e.v]) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / g.NumEdges(), 0.7);
}

TEST(PowerLawConfigurationTest, DegreeBounds) {
  Rng rng(10);
  Graph g = PowerLawConfiguration(500, 2.2, 2, 50, rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_LE(g.MaxDegree(), 50u);
  EXPECT_GT(g.NumEdges(), 400u);
}

TEST(ForestFireModelTest, GrowsConnectedish) {
  Rng rng(11);
  Graph g = ForestFireModel(300, 0.3, true, rng);
  EXPECT_EQ(g.NumVertices(), 300u);
  EXPECT_GE(g.NumEdges(), 299u);  // at least the ambassador edges
  // Weakly connected by construction (every vertex linked on arrival).
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(WithRandomWeightsTest, WeightsInRange) {
  Rng rng(12);
  Graph base = ErdosRenyi(50, 100, false, rng);
  Graph g = WithRandomWeights(base, 10.0, rng);
  EXPECT_TRUE(g.IsWeighted());
  for (const Edge& e : g.Edges()) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, 10.0);
  }
}

// --------------------------------------------------------------------------
// Dataset registry

TEST(DatasetsTest, FourteenDatasets) {
  EXPECT_EQ(DatasetNames().size(), 14u);
  EXPECT_EQ(AllDatasetInfos().size(), 14u);
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(LoadDataset("no-such-graph"), std::invalid_argument);
}

TEST(DatasetsTest, LoadIsDeterministic) {
  Dataset a = LoadDatasetScaled("ca-HepPh", 0.1);
  Dataset b = LoadDatasetScaled("ca-HepPh", 0.1);
  EXPECT_EQ(a.graph.NumVertices(), b.graph.NumVertices());
  EXPECT_EQ(a.graph.Edges(), b.graph.Edges());
}

TEST(DatasetsTest, NoIsolatedVerticesAfterPreprocessing) {
  for (const std::string& name :
       {std::string("email-Enron"), std::string("web-Google"),
        std::string("com-DBLP")}) {
    Dataset d = LoadDatasetScaled(name, 0.1);
    EXPECT_EQ(d.graph.CountIsolated(), 0u) << name;
  }
}

TEST(DatasetsTest, FlagsMatchTable3) {
  Dataset web = LoadDatasetScaled("web-Google", 0.05);
  EXPECT_TRUE(web.graph.IsDirected());
  EXPECT_TRUE(web.info.directed);
  Dataset gene = LoadDatasetScaled("human_gene2", 0.1);
  EXPECT_TRUE(gene.graph.IsWeighted());
  EXPECT_TRUE(gene.info.weighted);
  Dataset fb = LoadDatasetScaled("ego-Facebook", 0.1);
  EXPECT_FALSE(fb.graph.IsDirected());
  EXPECT_FALSE(fb.graph.IsWeighted());
}

TEST(DatasetsTest, CommunityDatasetsCarryLabels) {
  Dataset d = LoadDatasetScaled("com-DBLP", 0.1);
  ASSERT_EQ(d.communities.size(), d.graph.NumVertices());
  Dataset r = LoadDatasetScaled("Reddit", 0.1);
  ASSERT_EQ(r.communities.size(), r.graph.NumVertices());
}

TEST(DatasetsTest, AllLoadableAtSmallScale) {
  for (const std::string& name : DatasetNames()) {
    Dataset d = LoadDatasetScaled(name, 0.05);
    EXPECT_GT(d.graph.NumVertices(), 0u) << name;
    EXPECT_GT(d.graph.NumEdges(), 0u) << name;
  }
}

}  // namespace
}  // namespace sparsify
