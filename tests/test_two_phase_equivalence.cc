// Equivalence matrix for the two-phase Sparsifier interface: for every
// registered sparsifier x a structurally diverse graph suite x all 9 sweep
// prune rates, the two-phase path (PrepareScores once, MaskForRate per
// rate) must produce the identical keep-set to the legacy single-call
// `Sparsify` entry point — exactly for deterministic algorithms, and for
// randomized ones identically under the shared per-(sparsifier, run) seed
// stream. Also covers the grouped scheduler's thread-count determinism and
// the score-sharing vs per-cell scheduling counters.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/batch_runner.h"
#include "src/graph/generators.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

const std::vector<double>& SweepRates() {
  static const std::vector<double> rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                            0.6, 0.7, 0.8, 0.9};
  return rates;
}

struct GraphCase {
  std::string name;
  Graph (*make)();
};

Graph MakePath() {
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < 9; ++i) edges.push_back({i, i + 1});
  return Graph::FromEdges(9, edges, false, false);
}

Graph MakeStar() {
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 10; ++leaf) edges.push_back({0, leaf});
  return Graph::FromEdges(11, edges, false, false);
}

Graph MakeErdosRenyi() {
  Rng rng(501);
  return ErdosRenyi(60, 180, false, rng);
}

Graph MakeWeighted() {
  Rng rng(502);
  Graph base = ErdosRenyi(50, 160, false, rng);
  return WithRandomWeights(base, 10.0, rng);
}

Graph MakeDisconnected() {
  Rng rng(503);
  Graph a = ErdosRenyi(30, 80, false, rng);
  Graph b = ErdosRenyi(30, 80, false, rng);
  std::vector<Edge> edges = a.Edges();
  for (const Edge& e : b.Edges()) edges.push_back({e.u + 30, e.v + 30, e.w});
  return Graph::FromEdges(62, edges, false, false);
}

const std::vector<GraphCase>& Cases() {
  static const std::vector<GraphCase> cases = {
      {"path", MakePath},           {"star", MakeStar},
      {"er", MakeErdosRenyi},       {"weighted", MakeWeighted},
      {"disconnected", MakeDisconnected},
  };
  return cases;
}

class TwoPhaseEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {
 protected:
  std::string Name() const { return std::get<0>(GetParam()); }
  const GraphCase& Case() const { return Cases()[std::get<1>(GetParam())]; }
};

// The contract the engine's rate-axis sharing rests on: one ScoreState
// serves every rate, and the legacy wrapper is a thin prepare+mask. Both
// paths start from the same rng seed (the shared per-group stream), so the
// keep-sets must match edge for edge — for deterministic AND randomized
// algorithms.
TEST_P(TwoPhaseEquivalenceTest, SharedStateMatchesLegacySparsifyAtAllRates) {
  auto sparsifier = CreateSparsifier(Name());
  Graph g = Case().make();

  const uint64_t seed = BatchRunner::GroupSeed(977, Name(), 0);
  Rng prepare_rng(seed);
  std::unique_ptr<ScoreState> state = sparsifier->PrepareScores(g,
                                                               prepare_rng);
  for (double rate : SweepRates()) {
    RateMask mask = sparsifier->MaskForRate(*state, rate);
    ASSERT_EQ(mask.keep.size(), g.NumEdges());
    Graph two_phase = Sparsifier::Apply(g, mask);

    Rng legacy_rng(seed);
    Graph legacy = sparsifier->Sparsify(g, rate, legacy_rng);
    EXPECT_EQ(two_phase.Edges(), legacy.Edges())
        << Name() << " on " << Case().name << " at rate " << rate;
  }
}

// A fresh PrepareScores from the same seed must reproduce the state: this
// is what makes a resumed subset run bit-identical to a cold full grid.
TEST_P(TwoPhaseEquivalenceTest, PrepareScoresIsSeedDeterministic) {
  auto sparsifier = CreateSparsifier(Name());
  Graph g = Case().make();
  Rng rng_a(4242), rng_b(4242);
  auto state_a = sparsifier->PrepareScores(g, rng_a);
  auto state_b = sparsifier->PrepareScores(g, rng_b);
  for (double rate : {0.2, 0.5, 0.8}) {
    RateMask mask_a = sparsifier->MaskForRate(*state_a, rate);
    RateMask mask_b = sparsifier->MaskForRate(*state_b, rate);
    EXPECT_EQ(mask_a.keep, mask_b.keep)
        << Name() << " on " << Case().name << " at rate " << rate;
    EXPECT_EQ(mask_a.new_weights, mask_b.new_weights)
        << Name() << " on " << Case().name << " at rate " << rate;
  }
}

// Fine-control algorithms must hit the target keep-count exactly through
// the two-phase path at every sweep rate (Table 2's PRC column).
TEST_P(TwoPhaseEquivalenceTest, FineControlHitsTargetThroughMaskForRate) {
  auto sparsifier = CreateSparsifier(Name());
  if (sparsifier->Info().prune_rate_control != PruneRateControl::kFine) {
    GTEST_SKIP() << "not a fine-control algorithm";
  }
  Graph g = Case().make();
  Rng rng(7);
  auto state = sparsifier->PrepareScores(g, rng);
  for (double rate : SweepRates()) {
    RateMask mask = sparsifier->MaskForRate(*state, rate);
    EdgeId kept = 0;
    for (uint8_t k : mask.keep) kept += k;
    EXPECT_EQ(kept, TargetKeepCount(g.NumEdges(), rate))
        << Name() << " on " << Case().name << " at rate " << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TwoPhaseEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(SparsifierNames()),
                       ::testing::Range<size_t>(0, Cases().size())),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& i) {
      std::string name = std::get<0>(i.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + Cases()[std::get<1>(i.param)].name;
    });

// Rates that round the target keep-count to zero must yield an empty (and
// for ER-w, unweighted) mask, not an out-of-bounds prefix lookup.
TEST(TwoPhaseEdgeCases, ZeroTargetKeepsNothing) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false,
                             false);
  ASSERT_EQ(TargetKeepCount(g.NumEdges(), 0.9), 0u);
  for (const char* name : {"ER-w", "ER-uw", "RN", "RD", "GS"}) {
    auto sparsifier = CreateSparsifier(name);
    Rng rng(11);
    auto state = sparsifier->PrepareScores(g, rng);
    RateMask mask = sparsifier->MaskForRate(*state, 0.9);
    EXPECT_EQ(std::count(mask.keep.begin(), mask.keep.end(), 1), 0) << name;
    EXPECT_TRUE(mask.new_weights.empty()) << name;
    EXPECT_EQ(Sparsifier::Apply(g, mask).NumEdges(), 0u) << name;
  }
}

// --------------------------------------------------------------------------
// Grouped scheduler.

std::vector<BatchResult> RunGroupedGrid(int num_threads, bool share) {
  Rng gen(88);
  Graph g = BarabasiAlbert(120, 3, gen);
  BatchSpec spec;
  spec.sparsifiers = {"RN", "LD", "KN", "SCAN", "FF", "SF", "ER-uw"};
  spec.prune_rates = SweepRates();
  spec.runs = 2;
  spec.master_seed = 31;
  BatchRunner runner(num_threads);
  runner.set_share_scores(share);
  return runner.Run(g, spec,
                    [](const Graph& orig, const Graph& sp, Rng& rng) {
                      return static_cast<double>(sp.NumEdges()) /
                                 static_cast<double>(orig.NumEdges()) +
                             1e-12 * rng.NextDouble();
                    });
}

void ExpectIdentical(const std::vector<BatchResult>& a,
                     const std::vector<BatchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task.index, b[i].task.index);
    // EXPECT_EQ on doubles is exact: the contract is bit-identical.
    EXPECT_EQ(a[i].achieved_prune_rate, b[i].achieved_prune_rate);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(GroupedSchedulerTest, BitIdenticalAcrossThreadCounts) {
  auto one = RunGroupedGrid(1, /*share=*/true);
  auto two = RunGroupedGrid(2, /*share=*/true);
  auto eight = RunGroupedGrid(8, /*share=*/true);
  ExpectIdentical(one, two);
  ExpectIdentical(one, eight);
}

TEST(GroupedSchedulerTest, DeterministicSparsifiersUnchangedBySharing) {
  // Sharing the scoring phase must not move a single bit for deterministic
  // algorithms: their cells' masks are rng-free and the metric stream still
  // derives from (master_seed, cell index).
  Rng gen(89);
  Graph g = BarabasiAlbert(120, 3, gen);
  BatchSpec spec;
  spec.sparsifiers = {"LD", "SCAN", "GS", "LSim", "LS", "SF", "SP-3", "TRI"};
  spec.prune_rates = SweepRates();
  spec.master_seed = 77;
  BatchRunner runner(2);
  runner.set_share_scores(true);
  auto shared = runner.Run(g, spec,
                           [](const Graph& orig, const Graph& sp, Rng& rng) {
                             return static_cast<double>(sp.NumEdges()) /
                                        static_cast<double>(orig.NumEdges()) +
                                    1e-12 * rng.NextDouble();
                           });
  runner.set_share_scores(false);
  auto per_cell = runner.Run(g, spec,
                             [](const Graph& orig, const Graph& sp,
                                Rng& rng) {
                               return static_cast<double>(sp.NumEdges()) /
                                          static_cast<double>(
                                              orig.NumEdges()) +
                                      1e-12 * rng.NextDouble();
                             });
  ExpectIdentical(shared, per_cell);
}

TEST(GroupedSchedulerTest, SubsetRunMatchesFullGrid) {
  // The resume path's contract under score sharing: running every third
  // cell computes bit-identical values to the full grid, because group
  // scoring seeds depend only on (master_seed, sparsifier, run).
  Rng gen(90);
  Graph g = BarabasiAlbert(100, 3, gen);
  BatchSpec spec;
  spec.sparsifiers = {"RN", "ER-uw", "LD", "FF"};
  spec.prune_rates = SweepRates();
  spec.runs = 2;
  spec.master_seed = 5;
  BatchRunner runner(2);
  auto metric = [](const Graph& orig, const Graph& sp, Rng& rng) {
    return static_cast<double>(sp.NumEdges()) /
               static_cast<double>(orig.NumEdges()) +
           1e-12 * rng.NextDouble();
  };
  auto full = runner.Run(g, spec, metric);
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  std::vector<BatchTask> subset;
  for (size_t i = 0; i < tasks.size(); i += 3) subset.push_back(tasks[i]);
  auto partial = runner.RunTasks(g, subset, spec.master_seed, metric);
  ASSERT_EQ(partial.size(), subset.size());
  for (size_t j = 0; j < partial.size(); ++j) {
    EXPECT_EQ(partial[j].value, full[subset[j].index].value);
    EXPECT_EQ(partial[j].achieved_prune_rate,
              full[subset[j].index].achieved_prune_rate);
  }
}

TEST(GroupedSchedulerTest, SharingSchedulesOneScorePassPerGroup) {
  Rng gen(91);
  Graph g = BarabasiAlbert(80, 3, gen);
  BatchSpec spec;
  spec.sparsifiers = {"LD", "RN"};
  spec.prune_rates = SweepRates();
  spec.runs = 2;
  BatchRunner runner(2);
  auto metric = [](const Graph&, const Graph& sp, Rng&) {
    return static_cast<double>(sp.NumEdges());
  };
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);
  // LD deterministic: 9 rates x 1 run; RN: 9 rates x 2 runs.
  ASSERT_EQ(tasks.size(), 9u + 18u);
  BatchRunStats stats;
  runner.RunTasks(g, tasks, spec.master_seed, metric, nullptr, &stats);
  EXPECT_EQ(stats.cells, 27u);
  EXPECT_EQ(stats.score_groups, 3u);  // (LD,0), (RN,0), (RN,1)

  runner.set_share_scores(false);
  runner.RunTasks(g, tasks, spec.master_seed, metric, nullptr, &stats);
  EXPECT_EQ(stats.score_groups, 27u);  // legacy: every cell rescored
}

TEST(GroupedSchedulerTest, GroupSeedIndependentOfGridShape) {
  EXPECT_EQ(BatchRunner::GroupSeed(42, "RN", 1),
            BatchRunner::GroupSeed(42, "RN", 1));
  EXPECT_NE(BatchRunner::GroupSeed(42, "RN", 1),
            BatchRunner::GroupSeed(42, "RN", 2));
  EXPECT_NE(BatchRunner::GroupSeed(42, "RN", 1),
            BatchRunner::GroupSeed(42, "FF", 1));
  EXPECT_NE(BatchRunner::GroupSeed(42, "RN", 1),
            BatchRunner::GroupSeed(43, "RN", 1));
}

}  // namespace
}  // namespace sparsify
