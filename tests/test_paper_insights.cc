// Shape-fidelity regression tests: the paper's section 4.7 summary claims,
// encoded as assertions at test scale. These are the contract the figure
// benches must keep satisfying — if a refactor breaks "ER-weighted
// preserves the quadratic form" or "Local Degree beats Random on distance",
// these tests catch it in seconds without running the benches.
#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

Graph Sparsify(const Graph& g, const std::string& algo, double rate,
               uint64_t seed) {
  Rng rng(seed);
  return CreateSparsifier(algo)->Sparsify(g, rate, rng);
}

// Paper 4.7 bullet "Random preserves relative properties": degree
// distribution under Random stays closer than under Local Degree.
TEST(PaperInsights, RandomPreservesDegreeDistributionBetterThanLocalDegree) {
  // Scale 0.5 / prune 0.5: the operating point verified against Fig. 2
  // (bench_degree_distribution); smaller graphs make the 100-bin
  // histograms too sparse for a stable comparison.
  Graph g = LoadDatasetScaled("ogbn-proteins", 0.5).graph;
  Graph rn = Sparsify(g, "RN", 0.5, 1);
  Graph ld = Sparsify(g, "LD", 0.5, 2);
  EXPECT_LT(DegreeDistributionDistance(g, rn),
            DegreeDistributionDistance(g, ld));
}

// Paper 4.7 bullet "K-Neighbor, SF, SP preserve connectivity".
TEST(PaperInsights, ConnectivityPreserversKeepIsolatedRatioZero) {
  Graph g = LoadDatasetScaled("ca-AstroPh", 0.25).graph;
  for (const char* algo : {"KN", "LD", "LS", "LSim"}) {
    Graph h = Sparsify(g, algo, 0.8, 3);
    EXPECT_DOUBLE_EQ(IsolatedRatio(h), 0.0) << algo;
  }
  // Spanning forest / spanner: connectivity IDENTICAL to the original.
  for (const char* algo : {"SF", "SP-3"}) {
    Graph h = Sparsify(g, algo, 0.0, 4);
    EXPECT_DOUBLE_EQ(UnreachableRatio(h), UnreachableRatio(g)) << algo;
  }
}

// Paper 4.1: G-Spar and SCAN disconnect graphs fastest.
TEST(PaperInsights, GlobalSimilarityDisconnectsWorseThanKNeighbor) {
  Graph g = LoadDatasetScaled("ca-AstroPh", 0.25).graph;
  Graph gs = Sparsify(g, "GS", 0.8, 5);
  Graph kn = Sparsify(g, "KN", 0.8, 6);
  EXPECT_GT(UnreachableRatio(gs), UnreachableRatio(kn) + 0.1);
}

// Paper 4.1 / Fig. 3: ONLY ER-weighted preserves the quadratic form.
TEST(PaperInsights, OnlyWeightedErPreservesQuadraticForm) {
  Graph g = LoadDatasetScaled("com-Amazon", 0.25).graph;
  Rng qrng(7);
  double erw = QuadraticFormSimilarity(g, Sparsify(g, "ER-w", 0.7, 8), 30,
                                       qrng);
  Rng qrng2(9);
  double rn = QuadraticFormSimilarity(g, Sparsify(g, "RN", 0.7, 10), 30,
                                      qrng2);
  Rng qrng3(11);
  double eruw = QuadraticFormSimilarity(g, Sparsify(g, "ER-uw", 0.7, 12),
                                        30, qrng3);
  EXPECT_NEAR(erw, 1.0, 0.15);
  EXPECT_NEAR(rn, 0.3, 0.1);   // tracks the kept fraction
  EXPECT_NEAR(eruw, 0.3, 0.1);
}

// Paper 4.2 / Fig. 4: LD and RD beat Random on distance preservation.
TEST(PaperInsights, HubPreserversBeatRandomOnSpsp) {
  Graph g = LoadDatasetScaled("ca-AstroPh", 0.25).graph;
  Rng m1(13), m2(14), m3(15);
  double ld = SpspStretch(g, Sparsify(g, "LD", 0.6, 16), 500, m1)
                  .mean_stretch;
  double rd = SpspStretch(g, Sparsify(g, "RD", 0.6, 17), 500, m2)
                  .mean_stretch;
  double rn = SpspStretch(g, Sparsify(g, "RN", 0.6, 18), 500, m3)
                  .mean_stretch;
  EXPECT_LT(ld, rn);
  EXPECT_LT(rd, rn);
  EXPECT_GE(ld, 1.0);
}

// Paper 4.3 / Fig. 5: LD/RD keep centrality rankings better than GS/SCAN.
TEST(PaperInsights, HubPreserversKeepClosenessRanking) {
  Graph g = LoadDatasetScaled("ca-AstroPh", 0.2).graph;
  std::vector<double> reference = ClosenessCentrality(g);
  auto precision = [&](const std::string& algo) {
    return TopKPrecision(reference,
                         ClosenessCentrality(Sparsify(g, algo, 0.6, 19)),
                         50);
  };
  EXPECT_GT(precision("LD"), precision("SCAN") + 0.2);
  EXPECT_GT(precision("RD"), precision("GS") + 0.2);
}

// Paper 4.4 / Fig. 8: LD tracks the community count; RD/GS explode it.
TEST(PaperInsights, LocalDegreeTracksCommunityCount) {
  Graph g = LoadDatasetScaled("com-DBLP", 0.3).graph;
  Rng lrng(20);
  int truth = LouvainCommunities(g, lrng).num_clusters;
  auto count = [&](const std::string& algo) {
    Rng r(21);
    return LouvainCommunities(Sparsify(g, algo, 0.8, 22), r).num_clusters;
  };
  int ld = count("LD");
  int gs = count("GS");
  EXPECT_LT(std::abs(ld - truth), std::abs(gs - truth));
  EXPECT_GT(gs, 3 * truth);  // fragmentation
}

// Paper 4.4 / Fig. 9: nobody preserves clustering coefficients, and
// spanning forests have none at all.
TEST(PaperInsights, ClusteringCoefficientsDecayForEveryone) {
  Graph g = LoadDatasetScaled("ca-HepPh", 0.25).graph;
  double full = MeanClusteringCoefficient(g);
  ASSERT_GT(full, 0.05);
  for (const char* algo : {"RN", "KN", "LD"}) {
    double mcc = MeanClusteringCoefficient(Sparsify(g, algo, 0.8, 23));
    EXPECT_LT(mcc, 0.8 * full) << algo;
  }
  EXPECT_DOUBLE_EQ(
      MeanClusteringCoefficient(Sparsify(g, "SF", 0.0, 24)), 0.0);
}

// Paper 4.4 / Fig. 10: local-similarity sparsifiers preserve clustering
// better than Random at high prune rates.
TEST(PaperInsights, LocalSimilarityPreservesClusters) {
  Dataset d = LoadDatasetScaled("com-DBLP", 0.3);
  auto ground_truth_f1 = [&](const std::string& algo) {
    Rng r(25);
    Clustering c =
        LouvainCommunities(Sparsify(d.graph, algo, 0.7, 26), r);
    return ClusteringF1(c.label, d.communities);
  };
  EXPECT_GT(ground_truth_f1("LS"), ground_truth_f1("RN"));
}

// Paper 4.5 / Fig. 12: ER-weighted dominates max-flow-style (spectral)
// metrics; verified here via the quadratic form on a weighted graph.
TEST(PaperInsights, WeightedErBeatsUnweightedOnWeightedGraphs) {
  Rng gen(27);
  Graph g = WithRandomWeights(BarabasiAlbert(400, 5, gen), 20.0, gen);
  Rng q1(28), q2(29);
  double erw = QuadraticFormSimilarity(g, Sparsify(g, "ER-w", 0.6, 30), 30,
                                       q1);
  double eruw = QuadraticFormSimilarity(g, Sparsify(g, "ER-uw", 0.6, 31),
                                        30, q2);
  EXPECT_GT(erw, eruw + 0.3);
}

// Paper 4.7 "elbow" observation: Local Degree saturates at its maximum
// prune rate — requesting more pruning yields the same graph.
TEST(PaperInsights, LocalDegreeSaturatesAtMaxPruneRate) {
  Graph g = LoadDatasetScaled("ego-Facebook", 0.2).graph;
  Graph at95 = Sparsify(g, "LD", 0.95, 32);
  Graph at99 = Sparsify(g, "LD", 0.99, 33);
  EXPECT_EQ(at95.NumEdges(), at99.NumEdges());
  // The floor is one edge per vertex: at least n/2 edges survive.
  EXPECT_GE(at99.NumEdges(), g.NumVertices() / 2);
}

// Directed reachability: weak components overstate reachability on
// directed web graphs; the directed sampler must report more unreachable
// pairs.
TEST(PaperInsights, DirectedReachabilityStricterThanWeak) {
  Graph g = LoadDatasetScaled("web-Google", 0.2).graph;
  ASSERT_TRUE(g.IsDirected());
  Rng rng(34);
  double directed = SampledDirectedUnreachableRatio(g, 2000, rng);
  double weak = UnreachableRatio(g);
  EXPECT_GE(directed, weak);
  EXPECT_GT(directed, 0.1);  // R-MAT web graphs are far from strongly
                             // connected
}

TEST(PaperInsights, DirectedSamplerMatchesExactOnUndirected) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}}, false, false);
  Rng rng(35);
  EXPECT_NEAR(SampledDirectedUnreachableRatio(g, 5000, rng),
              UnreachableRatio(g), 0.05);
}

}  // namespace
}  // namespace sparsify
