// sparsify_cli driver: strict flag validation and the sweep/export/ls
// subcommands end-to-end against a temp store (the same paths the binary
// runs — RunSparsifyCli is the binary's main).
#include "src/cli/sparsify_cli.h"

#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

int RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "sparsify_cli");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return cli::RunSparsifyCli(static_cast<int>(argv.size()), argv.data());
}

std::string StoreDir() {
  return (fs::path(::testing::TempDir()) / "cli_store").string();
}

TEST(CliTest, UnknownFlagIsAnErrorNotANoop) {
  // The classic typo: --thread instead of --threads must abort.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--thread=8"}),
            0);
  EXPECT_NE(RunCli({"export", "--stor=/tmp/x"}), 0);
  EXPECT_NE(RunCli({"nonsense"}), 0);
}

TEST(CliTest, MalformedNumericValueIsAnError) {
  // A garbage value must abort, not silently parse as 0.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--scale=abc"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--runs=3x", "--scale=0.1"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--rates=0.1,oops", "--scale=0.1"}),
            0);
}

TEST(CliTest, ValueFlagWithoutValueIsAnError) {
  // `--store` with the value forgotten must not become a directory named
  // "true".
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--scale=0.1", "--store"}),
            0);
  EXPECT_FALSE(fs::exists("true"));
}

TEST(CliTest, ListSucceeds) {
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"list"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Sparsifiers"), std::string::npos);
  EXPECT_NE(out.find("Figures"), std::string::npos);
}

TEST(CliTest, BooleanFlagDoesNotSwallowPositionalArg) {
  // `figure --csv 2` must run figure 2, not consume "2" as --csv's value.
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"figure", "--csv", "2", "--runs=1", "--scale=0.1"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Figure 2"), std::string::npos);
}

TEST(CliTest, SeedAboveIntMaxIsPreserved) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "bigseed_store").string();
  fs::remove_all(dir);
  ASSERT_EQ(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--algos=SF", "--runs=1", "--scale=0.1",
                    "--seed=5000000000", "--store=" + dir}),
            0);
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"ls", "--store=" + dir}), 0);
  std::string ls = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(ls.find("seed=5000000000"), std::string::npos);
}

TEST(CliTest, UnknownMetricAndDatasetReportErrors) {
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=nope",
                    "--scale=0.1"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=no-such-dataset", "--metric=degree",
                    "--scale=0.1"}),
            0);
}

TEST(CliTest, MetricsSubcommandListsRegistry) {
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"metrics"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("spsp"), std::string::npos);
  EXPECT_NE(out.find("sampled"), std::string::npos);
  EXPECT_NE(out.find("deterministic"), std::string::npos);
  EXPECT_NE(out.find("kcore"), std::string::npos);
}

TEST(CliTest, MultiMetricSweepSharesSubgraphs) {
  // --metrics=a,b over one grid: units = 2 x cells, but each cell's
  // subgraph is built once (RN 3x2 + LD 3x1 = 9 cells on a 3-rate grid).
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"sweep", "--dataset=ego-Facebook",
                   "--metrics=degree,kcore", "--algos=RN,LD",
                   "--rates=0.2,0.5,0.8", "--runs=2", "--scale=0.1",
                   "--csv"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("total=18"), std::string::npos);
  EXPECT_NE(out.find("submitted=18"), std::string::npos);
  EXPECT_NE(out.find("subgraph_builds=9"), std::string::npos);
  // Both metrics' series are printed.
  EXPECT_NE(out.find("# degree on ego-Facebook@0.1"), std::string::npos);
  EXPECT_NE(out.find("# kcore on ego-Facebook@0.1"), std::string::npos);
  // --metric and --metrics together is an error.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--metrics=kcore", "--scale=0.1"}),
            0);
}

TEST(CliTest, PaperPresetPinsRunsAndPerDatasetScaleOverrides) {
  // --paper defaults runs to 10 (RN alone: 9 rates x 10 runs = 90 cells);
  // the dataset/metric lists stay overridable, and --scale accepts
  // per-dataset overrides whose value lands in the dataset key.
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"sweep", "--paper", "--dataset=ego-Facebook",
                   "--metrics=kcore", "--algos=RN", "--rates=0.2,0.5",
                   "--scale=0.2,ego-Facebook=0.1", "--csv"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("ego-Facebook@0.1"), std::string::npos);  // override
  EXPECT_NE(out.find("total=20"), std::string::npos);  // 2 rates x 10 runs
  // An override naming a dataset outside the sweep is a hard error.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metrics=kcore",
                    "--scale=0.1,web-Google=0.2"}),
            0);
  // Without --paper, --dataset and --metrics stay required.
  EXPECT_NE(RunCli({"sweep", "--metrics=kcore", "--scale=0.1"}), 0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--scale=0.1"}), 0);
}

TEST(CliTest, SweepResumeExportLsEndToEnd) {
  fs::remove_all(StoreDir());
  std::vector<std::string> sweep_args = {
      "sweep",       "--dataset=ego-Facebook", "--metric=degree",
      "--algos=RN",  "--runs=2",               "--scale=0.1",
      "--store=" + StoreDir(),                 "--resume",
      "--csv"};

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(sweep_args), 0);
  std::string first = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(first.find("cached=0"), std::string::npos);
  EXPECT_NE(first.find("submitted=18"), std::string::npos);

  // Second run against the same store: everything cached, nothing
  // scheduled, identical CSV below the scheduling banner.
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(sweep_args), 0);
  std::string second = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(second.find("cached=18"), std::string::npos);
  EXPECT_NE(second.find("submitted=0"), std::string::npos);
  EXPECT_EQ(first.substr(first.find('\n')), second.substr(second.find('\n')));

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"ls", "--store=" + StoreDir()}), 0);
  std::string ls = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(ls.find("cells: 18"), std::string::npos);
  EXPECT_NE(ls.find("ego-Facebook@0.1 degree"), std::string::npos);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + StoreDir()}), 0);
  std::string exported = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(exported.find("sparsifier,prune_rate,achieved_prune_rate,value,"
                          "stddev,runs"),
            std::string::npos);
  EXPECT_NE(exported.find("RN,"), std::string::npos);

  EXPECT_NE(RunCli({"export", "--store=" + StoreDir(), "--format=bogus"}),
            0);
}

}  // namespace
}  // namespace sparsify
