// sparsify_cli driver: strict flag validation and the sweep/export/ls
// subcommands end-to-end against a temp store (the same paths the binary
// runs — RunSparsifyCli is the binary's main).
#include "src/cli/sparsify_cli.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/store/result_store.h"
#include "src/util/failpoint.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

int RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "sparsify_cli");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return cli::RunSparsifyCli(static_cast<int>(argv.size()), argv.data());
}

std::string StoreDir() {
  return (fs::path(::testing::TempDir()) / "cli_store").string();
}

TEST(CliTest, UnknownFlagIsAnErrorNotANoop) {
  // The classic typo: --thread instead of --threads must abort.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--thread=8"}),
            0);
  EXPECT_NE(RunCli({"export", "--stor=/tmp/x"}), 0);
  EXPECT_NE(RunCli({"nonsense"}), 0);
}

TEST(CliTest, MalformedNumericValueIsAnError) {
  // A garbage value must abort, not silently parse as 0.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--scale=abc"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--runs=3x", "--scale=0.1"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--rates=0.1,oops", "--scale=0.1"}),
            0);
}

TEST(CliTest, ValueFlagWithoutValueIsAnError) {
  // `--store` with the value forgotten must not become a directory named
  // "true".
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--scale=0.1", "--store"}),
            0);
  EXPECT_FALSE(fs::exists("true"));
}

TEST(CliTest, ListSucceeds) {
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"list"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Sparsifiers"), std::string::npos);
  EXPECT_NE(out.find("Figures"), std::string::npos);
}

TEST(CliTest, BooleanFlagDoesNotSwallowPositionalArg) {
  // `figure --csv 2` must run figure 2, not consume "2" as --csv's value.
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"figure", "--csv", "2", "--runs=1", "--scale=0.1"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Figure 2"), std::string::npos);
}

TEST(CliTest, SeedAboveIntMaxIsPreserved) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "bigseed_store").string();
  fs::remove_all(dir);
  ASSERT_EQ(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--algos=SF", "--runs=1", "--scale=0.1",
                    "--seed=5000000000", "--store=" + dir}),
            0);
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"ls", "--store=" + dir}), 0);
  std::string ls = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(ls.find("seed=5000000000"), std::string::npos);
}

TEST(CliTest, UnknownMetricAndDatasetReportErrors) {
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=nope",
                    "--scale=0.1"}),
            0);
  EXPECT_NE(RunCli({"sweep", "--dataset=no-such-dataset", "--metric=degree",
                    "--scale=0.1"}),
            0);
}

TEST(CliTest, MetricsSubcommandListsRegistry) {
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"metrics"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("spsp"), std::string::npos);
  EXPECT_NE(out.find("sampled"), std::string::npos);
  EXPECT_NE(out.find("deterministic"), std::string::npos);
  EXPECT_NE(out.find("kcore"), std::string::npos);
}

TEST(CliTest, MultiMetricSweepSharesSubgraphs) {
  // --metrics=a,b over one grid: units = 2 x cells, but each cell's
  // subgraph is built once (RN 3x2 + LD 3x1 = 9 cells on a 3-rate grid).
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"sweep", "--dataset=ego-Facebook",
                   "--metrics=degree,kcore", "--algos=RN,LD",
                   "--rates=0.2,0.5,0.8", "--runs=2", "--scale=0.1",
                   "--csv"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("total=18"), std::string::npos);
  EXPECT_NE(out.find("submitted=18"), std::string::npos);
  EXPECT_NE(out.find("subgraph_builds=9"), std::string::npos);
  // Both metrics' series are printed.
  EXPECT_NE(out.find("# degree on ego-Facebook@0.1"), std::string::npos);
  EXPECT_NE(out.find("# kcore on ego-Facebook@0.1"), std::string::npos);
  // --metric and --metrics together is an error.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metric=degree",
                    "--metrics=kcore", "--scale=0.1"}),
            0);
}

TEST(CliTest, PaperPresetPinsRunsAndPerDatasetScaleOverrides) {
  // --paper defaults runs to 10 (RN alone: 9 rates x 10 runs = 90 cells);
  // the dataset/metric lists stay overridable, and --scale accepts
  // per-dataset overrides whose value lands in the dataset key.
  ::testing::internal::CaptureStdout();
  int rc = RunCli({"sweep", "--paper", "--dataset=ego-Facebook",
                   "--metrics=kcore", "--algos=RN", "--rates=0.2,0.5",
                   "--scale=0.2,ego-Facebook=0.1", "--csv"});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("ego-Facebook@0.1"), std::string::npos);  // override
  EXPECT_NE(out.find("total=20"), std::string::npos);  // 2 rates x 10 runs
  // An override naming a dataset outside the sweep is a hard error.
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--metrics=kcore",
                    "--scale=0.1,web-Google=0.2"}),
            0);
  // Without --paper, --dataset and --metrics stay required.
  EXPECT_NE(RunCli({"sweep", "--metrics=kcore", "--scale=0.1"}), 0);
  EXPECT_NE(RunCli({"sweep", "--dataset=ego-Facebook", "--scale=0.1"}), 0);
}

TEST(CliTest, SweepResumeExportLsEndToEnd) {
  fs::remove_all(StoreDir());
  std::vector<std::string> sweep_args = {
      "sweep",       "--dataset=ego-Facebook", "--metric=degree",
      "--algos=RN",  "--runs=2",               "--scale=0.1",
      "--store=" + StoreDir(),                 "--resume",
      "--csv"};

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(sweep_args), 0);
  std::string first = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(first.find("cached=0"), std::string::npos);
  EXPECT_NE(first.find("submitted=18"), std::string::npos);

  // Second run against the same store: everything cached, nothing
  // scheduled, identical CSV below the scheduling banner.
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli(sweep_args), 0);
  std::string second = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(second.find("cached=18"), std::string::npos);
  EXPECT_NE(second.find("submitted=0"), std::string::npos);
  EXPECT_EQ(first.substr(first.find('\n')), second.substr(second.find('\n')));

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"ls", "--store=" + StoreDir()}), 0);
  std::string ls = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(ls.find("cells: 18"), std::string::npos);
  EXPECT_NE(ls.find("ego-Facebook@0.1 degree"), std::string::npos);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + StoreDir()}), 0);
  std::string exported = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(exported.find("sparsifier,prune_rate,achieved_prune_rate,value,"
                          "stddev,runs"),
            std::string::npos);
  EXPECT_NE(exported.find("RN,"), std::string::npos);

  EXPECT_NE(RunCli({"export", "--store=" + StoreDir(), "--format=bogus"}),
            0);
}

// Exit codes are the torture harness's (and CI's) contract: each failure
// class maps to a distinct documented code.
class CliExitCodeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("SPARSIFY_FAILPOINTS");
    fail::DisarmAll();
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = (fs::path(::testing::TempDir()) / name).string();
    fs::remove_all(dir);
    return dir;
  }

  std::vector<std::string> SweepArgs(const std::string& dir) {
    return {"sweep",      "--dataset=ego-Facebook",
            "--metrics=degree,kcore", "--algos=RN",
            "--rates=0.5", "--runs=1",
            "--scale=0.1", "--store=" + dir,
            "--resume",    "--csv"};
  }
};

TEST_F(CliExitCodeTest, BusyStoreExitsWithLockHeldCode) {
  // Appending is cooperative since the lease protocol, so `ls` (and a
  // second sweep) proceed alongside a live writer; only exclusive
  // whole-store rewrites — compact — refuse with the busy exit code.
  std::string dir = FreshDir("exit_lock_store");
  ResultStore holder(ResultStore::PathInDir(dir));
  holder.Append(
      CellKey{"ego-Facebook@0.1", "RN", 0.5, 0, 1234567u, "degree", "x"},
      0.5, 1.0);
  EXPECT_EQ(RunCli({"ls", "--store=" + dir}), cli::kExitOk);
  EXPECT_EQ(RunCli({"compact", "--store=" + dir}), cli::kExitLockHeld);
}

TEST_F(CliExitCodeTest, CorruptStoreExitsWithCorruptCode) {
  std::string dir = FreshDir("exit_corrupt_store");
  ASSERT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk);
  // Flip a digit inside the first record; the line stays terminated, so
  // replay must classify it as corruption, not a torn tail.
  std::string path = ResultStore::PathInDir(dir);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  size_t pos = bytes.find("\"value\":") + 8;
  bytes[pos] = bytes[pos] == '2' ? '3' : '2';
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_EQ(RunCli({"ls", "--store=" + dir}), cli::kExitCorruptStore);
}

TEST_F(CliExitCodeTest, PermanentUnitFailuresExitWithUnitFailureCode) {
  std::string dir = FreshDir("exit_perm_store");
  ASSERT_EQ(::setenv("SPARSIFY_FAILPOINTS",
                     "engine.metric_unit/degree=throw", 1),
            0);
  ::testing::internal::CaptureStdout();
  int rc = RunCli(SweepArgs(dir));
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, cli::kExitUnitFailures);
  EXPECT_NE(out.find("failed=1"), std::string::npos);

  // The failure-free metric completed and is in the store; the resume
  // (faults disarmed) submits only the failed unit and exits clean.
  ::unsetenv("SPARSIFY_FAILPOINTS");
  fail::DisarmAll();
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli(SweepArgs(dir)), cli::kExitOk);
  std::string healed = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(healed.find("submitted=1"), std::string::npos);
  EXPECT_NE(healed.find("cached=1"), std::string::npos);
}

TEST_F(CliExitCodeTest, AllTransientFailuresExitWithTransientCode) {
  std::string dir = FreshDir("exit_trans_store");
  ASSERT_EQ(::setenv("SPARSIFY_FAILPOINTS",
                     "engine.metric_unit=throw-transient", 1),
            0);
  EXPECT_EQ(RunCli(SweepArgs(dir)), cli::kExitTransientFailures);
}

TEST_F(CliExitCodeTest, CompactSubcommandShrinksAndKeepsExport) {
  std::string dir = FreshDir("exit_compact_store");
  // Two passes without --resume: every cell recomputed and re-appended,
  // so the log carries superseded records for compact to drop.
  std::vector<std::string> args = SweepArgs(dir);
  args.erase(std::find(args.begin(), args.end(), "--resume"));
  ASSERT_EQ(RunCli(args), cli::kExitOk);
  ASSERT_EQ(RunCli(args), cli::kExitOk);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + dir}), cli::kExitOk);
  std::string before = ::testing::internal::GetCapturedStdout();

  const auto bytes_before = fs::file_size(ResultStore::PathInDir(dir));
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"compact", "--store=" + dir}), cli::kExitOk);
  std::string compact_out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(compact_out.find("compacted"), std::string::npos);
  EXPECT_LT(fs::file_size(ResultStore::PathInDir(dir)), bytes_before);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + dir}), cli::kExitOk);
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), before);

  EXPECT_EQ(RunCli({"compact"}), cli::kExitUsage);  // --store required
}

TEST_F(CliExitCodeTest, MergeFoldsShardStoresIntoColdEquivalent) {
  // Two disjoint half-sweeps (different rates) into separate stores,
  // merged, must export exactly like one store that ran the full grid.
  std::string full = FreshDir("merge_full");
  ASSERT_EQ(RunCli({"sweep", "--dataset=ego-Facebook", "--metrics=degree",
                    "--algos=RN", "--rates=0.3,0.6", "--runs=1",
                    "--scale=0.1", "--store=" + full}),
            cli::kExitOk);
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + full}), cli::kExitOk);
  const std::string want = ::testing::internal::GetCapturedStdout();

  std::string a = FreshDir("merge_a");
  std::string b = FreshDir("merge_b");
  ASSERT_EQ(RunCli({"sweep", "--dataset=ego-Facebook", "--metrics=degree",
                    "--algos=RN", "--rates=0.3", "--runs=1", "--scale=0.1",
                    "--store=" + a}),
            cli::kExitOk);
  ASSERT_EQ(RunCli({"sweep", "--dataset=ego-Facebook", "--metrics=degree",
                    "--algos=RN", "--rates=0.6", "--runs=1", "--scale=0.1",
                    "--store=" + b}),
            cli::kExitOk);

  std::string out = FreshDir("merge_out");
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"merge", a, b, "-o", out}), cli::kExitOk);
  std::string merge_out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(merge_out.find("merged 2 store(s)"), std::string::npos);

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + out}), cli::kExitOk);
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), want);

  // Merging is idempotent: folding the same inputs again (--out flag
  // spelling) changes nothing.
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"merge", a, b, "--out=" + out}), cli::kExitOk);
  ::testing::internal::GetCapturedStdout();
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunCli({"export", "--store=" + out}), cli::kExitOk);
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), want);

  // Usage and IO errors: no inputs / missing output / absent input dir.
  EXPECT_EQ(RunCli({"merge", "-o", out}), cli::kExitUsage);
  EXPECT_EQ(RunCli({"merge", a}), cli::kExitUsage);
  EXPECT_EQ(RunCli({"merge", a + "_no_such_dir", "-o", out}), cli::kExitIo);
}

TEST_F(CliExitCodeTest, MergePrefersSuccessOverErrorRecords) {
  // Store A holds an error record for a unit that store B completed:
  // the merged store must carry B's success no matter the input order.
  std::string a = FreshDir("merge_err_a");
  ASSERT_EQ(::setenv("SPARSIFY_FAILPOINTS",
                     "engine.metric_unit/degree=throw", 1),
            0);
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli(SweepArgs(a)), cli::kExitUnitFailures);
  ::testing::internal::GetCapturedStdout();
  ::unsetenv("SPARSIFY_FAILPOINTS");
  fail::DisarmAll();

  std::string b = FreshDir("merge_err_b");
  ASSERT_EQ(RunCli(SweepArgs(b)), cli::kExitOk);

  for (const std::vector<std::string>& order :
       {std::vector<std::string>{a, b}, std::vector<std::string>{b, a}}) {
    std::string out = FreshDir("merge_err_out");
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(RunCli({"merge", order[0], order[1], "-o", out}),
              cli::kExitOk);
    std::string merge_out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(merge_out.find("unresolved error"), std::string::npos)
        << merge_out;
    ResultStoreOptions snapshot;
    snapshot.read_only = true;
    ResultStore merged(ResultStore::PathInDir(out), snapshot);
    EXPECT_EQ(merged.ErrorCount(), 0u);
    EXPECT_EQ(merged.Size(), 2u);  // degree + kcore cells, errors resolved
  }
}

}  // namespace
}  // namespace sparsify
