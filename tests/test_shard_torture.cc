// Multi-process shard torture: fork real CLI workers sharing one store,
// SIGKILL them at injected points across the coordination surface (lease
// renewal, segment rotation, mid-append), and require (a) survivors and
// restarts steal the dead workers' claims and (b) the final export is
// byte-identical to a cold single-process sweep that never crashed or
// sharded. This is the crash-convergence guarantee of the lease/segment
// store protocol end to end, through the shipped binary's entry point.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cli/sparsify_cli.h"
#include "src/store/result_store.h"
#include "src/util/failpoint.h"

namespace sparsify {
namespace {

namespace fs = std::filesystem;

int RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "sparsify_cli");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return cli::RunSparsifyCli(static_cast<int>(argv.size()), argv.data());
}

// A 4-cell x 2-metric grid: 8 units, 4 single-cell chunks under 3
// workers — small enough to finish fast, partitioned enough that every
// worker owns work and stealing has something to take.
std::vector<std::string> ShardArgs(const std::string& dir, size_t index,
                                   size_t total) {
  return {"sweep",
          "--dataset=ego-Facebook",
          "--metrics=degree,kcore",
          "--algos=RN,LD",
          "--rates=0.3,0.6",
          "--runs=1",
          "--scale=0.1",
          "--store=" + dir,
          "--shard=" + std::to_string(index) + "/" + std::to_string(total)};
}

std::vector<std::string> ColdArgs(const std::string& dir) {
  return {"sweep",       "--dataset=ego-Facebook",
          "--metrics=degree,kcore", "--algos=RN,LD",
          "--rates=0.3,0.6", "--runs=1",
          "--scale=0.1", "--store=" + dir};
}

std::string CaptureExport(const std::string& dir) {
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"export", "--store=" + dir}), cli::kExitOk);
  return ::testing::internal::GetCapturedStdout();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Extracts the "stolen=N" shard-banner counter from captured CLI output;
// 0 when the banner is absent.
size_t StolenFromBanner(const std::string& out) {
  const size_t pos = out.find("stolen=");
  if (pos == std::string::npos) return 0;
  return static_cast<size_t>(
      std::strtoull(out.c_str() + pos + 7, nullptr, 10));
}

class ShardTortureTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("SPARSIFY_FAILPOINTS");
    ::unsetenv("SPARSIFY_LEASE_TTL");
    ::unsetenv("SPARSIFY_STORE_SEGMENT_BYTES");
    fail::DisarmAll();
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = (fs::path(::testing::TempDir()) / name).string();
    fs::remove_all(dir);
    return dir;
  }

  struct WorkerSpec {
    size_t index = 0;
    std::string failpoints;     // SPARSIFY_FAILPOINTS, empty = none
    std::string segment_bytes;  // SPARSIFY_STORE_SEGMENT_BYTES override
  };

  // Forks one CLI shard worker; stdout goes to `out_path` so the parent
  // can read its banner after the wait.
  pid_t SpawnWorker(const std::string& dir, size_t total,
                    const WorkerSpec& spec, const std::string& out_path) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::freopen(out_path.c_str(), "w", stdout);
      // A short TTL so survivors judge a kill -9'd peer dead fast; the
      // watchdog of the protocol, not of this test.
      ::setenv("SPARSIFY_LEASE_TTL", "0.5", 1);
      if (!spec.failpoints.empty()) {
        ::setenv("SPARSIFY_FAILPOINTS", spec.failpoints.c_str(), 1);
      }
      if (!spec.segment_bytes.empty()) {
        ::setenv("SPARSIFY_STORE_SEGMENT_BYTES", spec.segment_bytes.c_str(),
                 1);
      }
      int rc = 1;
      try {
        rc = RunCli(ShardArgs(dir, spec.index, total));
      } catch (...) {
        rc = 99;
      }
      std::_Exit(rc);
    }
    EXPECT_GT(pid, 0);
    return pid;
  }

  // Waits for `pid`; returns true if it died by SIGKILL, false on a
  // clean exit 0. Anything else fails the test.
  bool WaitWorker(pid_t pid, const std::string& what) {
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid) << what;
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL) << what;
      return true;
    }
    EXPECT_TRUE(WIFEXITED(status)) << what;
    EXPECT_EQ(WEXITSTATUS(status), 0) << what;
    return false;
  }
};

TEST_F(ShardTortureTest, ThreeCleanWorkersConvergeToColdExport) {
  std::string cold_dir = FreshDir("shardt_cold_ref");
  ASSERT_EQ(RunCli(ColdArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);
  ASSERT_FALSE(want.empty());

  std::string dir = FreshDir("shardt_clean");
  fs::create_directories(dir);
  std::vector<pid_t> pids;
  for (size_t i = 0; i < 3; ++i) {
    WorkerSpec spec;
    spec.index = i;
    pids.push_back(
        SpawnWorker(dir, 3, spec, dir + "/worker" + std::to_string(i)));
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(WaitWorker(pids[i], "clean worker " + std::to_string(i)));
  }
  EXPECT_EQ(CaptureExport(dir), want);
}

TEST_F(ShardTortureTest, KilledWorkersAreStolenFromAndExportConverges) {
  // Cold single-process reference: never sharded, never crashed.
  std::string cold_dir = FreshDir("shardt_cold");
  ASSERT_EQ(RunCli(ColdArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);
  ASSERT_FALSE(want.empty());

  // Three workers, three kill points across the coordination surface:
  //   worker 0: mid-append — the 4th append is its SECOND claim record
  //             (claim, unit, unit, claim), so it dies holding a claimed
  //             chunk with zero units done: the must-steal case;
  //   worker 1: segment rotation (segments capped at 512 bytes, so the
  //             second-ish append rotates) — dies between segment files;
  //   worker 2: lease renewal — dies when the heartbeat thread renews.
  std::string dir = FreshDir("shardt_kill");
  fs::create_directories(dir);
  const std::vector<WorkerSpec> specs = {
      {0, "store.append=kill@4", ""},
      {1, "store.rotate=kill@1", "512"},
      {2, "store.lease.renew=kill@3", ""},
  };
  std::vector<pid_t> pids;
  for (const WorkerSpec& spec : specs) {
    pids.push_back(SpawnWorker(dir, 3, spec,
                               dir + "/worker" + std::to_string(spec.index)));
  }
  // Reap in spawn order: once a killed worker is waited on, its pid turns
  // ESRCH and survivors judge it dead immediately (no TTL wait).
  size_t killed = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (WaitWorker(pids[i], "torture worker " + std::to_string(i))) {
      ++killed;
    }
  }
  // kill@4 on worker 0's appends is deterministic as long as it reached
  // a second claim; the rotate/renew kills depend on scheduling. The
  // convergence contract below must hold for every interleaving.
  EXPECT_GT(killed, 0u);

  // A restarted worker (same shard id as dead worker 0) completes the
  // grid: every incomplete chunk's claimants are provably dead, so it
  // claims or steals whatever is left and exits clean.
  ::setenv("SPARSIFY_LEASE_TTL", "0.5", 1);
  ::testing::internal::CaptureStdout();
  int rc = RunCli(ShardArgs(dir, 0, 3));
  const std::string restart_out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, cli::kExitOk);

  // The converged store exports byte-identically to the cold reference:
  // at most in-flight units were lost, and every re-run was bit-exact.
  EXPECT_EQ(CaptureExport(dir), want);

  // The store replays clean after all the carnage — torn tails sealed,
  // orphan segments reaped — and a second restarted worker finds nothing
  // to do.
  ::testing::internal::CaptureStdout();
  rc = RunCli(ShardArgs(dir, 1, 3));
  const std::string idle_out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, cli::kExitOk);
  EXPECT_EQ(StolenFromBanner(idle_out), 0u) << idle_out;
}

TEST_F(ShardTortureTest, RestartedWorkerStealsDeadWorkersClaim) {
  // The deterministic steal case. One worker, killed at its SECOND
  // append: the first append is its claim on its first preferred chunk,
  // the second would be that chunk's first unit — so it dies leaving a
  // durable claim with zero units done. A restart under a DIFFERENT
  // shard id does not prefer that chunk; completing it (and the rest of
  // the dead worker's share) can only happen through phase-B steals.
  std::string cold_dir = FreshDir("shardt_steal_cold");
  ASSERT_EQ(RunCli(ColdArgs(cold_dir)), cli::kExitOk);
  const std::string want = CaptureExport(cold_dir);

  std::string dir = FreshDir("shardt_steal");
  fs::create_directories(dir);
  WorkerSpec spec;
  spec.index = 0;
  spec.failpoints = "store.append=kill@2";
  pid_t pid = SpawnWorker(dir, 3, spec, dir + "/worker0");
  ASSERT_TRUE(WaitWorker(pid, "claim-then-die worker"));

  // The dead worker's claim record survived in its segment.
  {
    ResultStoreOptions snapshot;
    snapshot.read_only = true;
    ResultStore peek(ResultStore::PathInDir(dir), snapshot);
    ASSERT_EQ(peek.Claims().size(), 1u);
    EXPECT_EQ(peek.Size(), 0u);  // ...with zero units done
  }

  ::setenv("SPARSIFY_LEASE_TTL", "0.5", 1);
  ::testing::internal::CaptureStdout();
  int rc = RunCli(ShardArgs(dir, 1, 3));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, cli::kExitOk);
  EXPECT_GT(StolenFromBanner(out), 0u) << out;
  EXPECT_EQ(CaptureExport(dir), want);
}

}  // namespace
}  // namespace sparsify
