// Tests for the parallel batch engine: thread-pool correctness, grid
// expansion, and the core guarantee that results are bit-identical at any
// thread count and across repeated runs with the same master seed.
#include "src/engine/batch_runner.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/util/thread_pool.h"

namespace sparsify {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor.

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, MoreTasksThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  ParallelFor(pool, 100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 50,
                           [&](size_t i) {
                             if (i == 17) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::atomic<int> count{0};
  ParallelFor(pool, 10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ParallelForAbortsEarlyOnException) {
  // Single worker makes the abort point deterministic: indices 0..3 run,
  // then the failure flag stops the chomper from pulling index 4.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  EXPECT_THROW(ParallelFor(pool, 10000,
                           [&](size_t i) {
                             count.fetch_add(1);
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.NumThreads(), 1);
}

// ---------------------------------------------------------------------------
// Grid expansion.

TEST(BatchRunnerTest, ExpandGridRespectsDeterminismAndControl) {
  BatchSpec spec;
  spec.sparsifiers = {"RN", "LD", "SF"};
  spec.prune_rates = {0.3, 0.6};
  spec.runs = 4;
  auto tasks = BatchRunner::ExpandGrid(spec);
  // RN: 2 rates x 4 runs. LD deterministic: 2 rates x 1 run. SF no
  // prune-rate control and deterministic: 1 x 1.
  ASSERT_EQ(tasks.size(), 8u + 2u + 1u);
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i) << "grid index must equal position";
  }
  EXPECT_EQ(tasks[0].sparsifier, "RN");
  EXPECT_EQ(tasks[8].sparsifier, "LD");
  EXPECT_EQ(tasks[10].sparsifier, "SF");
  EXPECT_EQ(tasks[10].prune_rate, 0.0);
}

TEST(BatchRunnerTest, TaskSeedsAreDistinctAcrossIndicesAndSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t master : {0ull, 1ull, 42ull}) {
    for (uint64_t index = 0; index < 1000; ++index) {
      seeds.insert(BatchRunner::TaskSeed(master, index));
    }
  }
  EXPECT_EQ(seeds.size(), 3000u);
}

// ---------------------------------------------------------------------------
// Determinism of the full engine.

std::vector<BatchResult> RunGrid(int num_threads, uint64_t seed) {
  Rng gen(71);
  Graph g = BarabasiAlbert(150, 3, gen);
  BatchSpec spec;
  spec.sparsifiers = {"RN", "FF", "LD", "SF", "ER-uw"};
  spec.prune_rates = {0.2, 0.5, 0.8};
  spec.runs = 3;
  spec.master_seed = seed;
  BatchRunner runner(num_threads);
  return runner.Run(g, spec, [](const Graph& orig, const Graph& sp, Rng& rng) {
    // Exercise the metric rng so stream misuse would show up as drift.
    return static_cast<double>(sp.NumEdges()) /
               static_cast<double>(orig.NumEdges()) +
           1e-12 * rng.NextDouble();
  });
}

void ExpectIdentical(const std::vector<BatchResult>& a,
                     const std::vector<BatchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task.index, b[i].task.index);
    EXPECT_EQ(a[i].task.sparsifier, b[i].task.sparsifier);
    EXPECT_DOUBLE_EQ(a[i].task.prune_rate, b[i].task.prune_rate);
    EXPECT_EQ(a[i].task.run, b[i].task.run);
    // Bit-identical, not approximately equal (EXPECT_EQ on doubles is
    // exact; EXPECT_DOUBLE_EQ would tolerate 4 ULPs of drift).
    EXPECT_EQ(a[i].achieved_prune_rate, b[i].achieved_prune_rate);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(BatchRunnerTest, BitIdenticalAcrossThreadCounts) {
  auto one = RunGrid(1, 42);
  auto two = RunGrid(2, 42);
  auto eight = RunGrid(8, 42);
  ExpectIdentical(one, two);
  ExpectIdentical(one, eight);
}

TEST(BatchRunnerTest, BitIdenticalAcrossRepeatedRuns) {
  auto a = RunGrid(4, 1234);
  auto b = RunGrid(4, 1234);
  ExpectIdentical(a, b);
}

TEST(BatchRunnerTest, DifferentMasterSeedsDiffer) {
  auto a = RunGrid(2, 1);
  auto b = RunGrid(2, 2);
  ASSERT_EQ(a.size(), b.size());
  // The RN cells sample different edge subsets under a different master
  // seed; at least one metric value must move.
  bool any_differ = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].value != b[i].value) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(BatchRunnerTest, DirectedInputRoutedThroughSymmetrization) {
  Rng gen(72);
  Graph g = RMat(8, 900, 0.57, 0.19, 0.19, true, gen);
  BatchSpec spec;
  spec.sparsifiers = {"SF", "ER-uw", "RN"};  // SF/ER undirected-only
  spec.prune_rates = {0.5};
  BatchRunner runner(4);
  auto results = runner.Run(
      g, spec, [](const Graph& orig, const Graph& sp, Rng&) {
        // Undirected-only cells must see the symmetrized pair.
        EXPECT_EQ(orig.IsDirected(), sp.IsDirected());
        return static_cast<double>(sp.NumEdges()) /
               static_cast<double>(orig.NumEdges());
      });
  ASSERT_EQ(results.size(), 3u);
  for (const BatchResult& r : results) EXPECT_GT(r.value, 0.0);
}

TEST(BatchRunnerTest, TaskExceptionPropagatesFromRun) {
  Rng gen(73);
  Graph g = RMat(7, 300, 0.57, 0.19, 0.19, true, gen);
  BatchSpec spec;
  spec.sparsifiers = {"RN"};
  spec.prune_rates = {0.5};
  BatchRunner runner(2);
  EXPECT_THROW(
      runner.Run(g, spec,
                 [](const Graph&, const Graph&, Rng&) -> double {
                   throw std::runtime_error("metric failed");
                 }),
      std::runtime_error);
}

}  // namespace
}  // namespace sparsify
