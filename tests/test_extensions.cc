// Tests for the extension sparsifiers (TRI, SIMM, ALG, LS-MH) and the
// min-wise-hash Jaccard estimator they build on.
#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/metrics/components.h"
#include "src/sparsifiers/extensions.h"
#include "src/sparsifiers/minhash.h"
#include "src/sparsifiers/similarity.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sparsify {
namespace {

TEST(MinHashTest, ExactOnIdenticalNeighborhoods) {
  // 0 and 1 both connect to {2,3,4} (and to each other): estimates for
  // (0,1) concern N(0)={1,2,3,4} vs N(1)={0,2,3,4} -> true J = 3/5.
  Graph g = Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}}, false,
      false);
  Rng rng(1);
  MinHashSignatures sig(g, 512, rng);
  EXPECT_NEAR(sig.EstimateJaccard(0, 1), 0.6, 0.1);
}

TEST(MinHashTest, DisjointNeighborhoodsNearZero) {
  // Two disjoint stars: leaves of different stars share nothing.
  Graph g = Graph::FromEdges(6, {{0, 1}, {0, 2}, {3, 4}, {3, 5}}, false,
                             false);
  Rng rng(2);
  MinHashSignatures sig(g, 256, rng);
  EXPECT_LT(sig.EstimateJaccard(1, 4), 0.05);
}

TEST(MinHashTest, IsolatedVerticesScoreZero) {
  Graph g = Graph::FromEdges(4, {{0, 1}}, false, false);
  Rng rng(3);
  MinHashSignatures sig(g, 64, rng);
  EXPECT_DOUBLE_EQ(sig.EstimateJaccard(2, 3), 0.0);
}

TEST(MinHashTest, EstimatesTrackExactJaccard) {
  Rng gen(4);
  Graph g = WattsStrogatz(300, 5, 0.1, gen);
  std::vector<double> exact = JaccardEdgeScores(g);
  Rng rng(5);
  std::vector<double> approx = MinHashJaccardEdgeScores(g, 256, rng);
  // Mean absolute error of a 256-hash estimator should be small.
  double mae = 0.0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    mae += std::abs(exact[e] - approx[e]);
  }
  mae /= g.NumEdges();
  EXPECT_LT(mae, 0.06);
}

TEST(MinHashTest, MoreHashesReduceError) {
  Rng gen(6);
  Graph g = WattsStrogatz(200, 5, 0.1, gen);
  std::vector<double> exact = JaccardEdgeScores(g);
  auto mae_for = [&](int hashes, uint64_t seed) {
    Rng rng(seed);
    std::vector<double> approx = MinHashJaccardEdgeScores(g, hashes, rng);
    double mae = 0.0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      mae += std::abs(exact[e] - approx[e]);
    }
    return mae / g.NumEdges();
  };
  // Averaged over a few seeds to keep the comparison stable.
  double coarse = (mae_for(8, 1) + mae_for(8, 2) + mae_for(8, 3)) / 3.0;
  double fine = (mae_for(128, 1) + mae_for(128, 2) + mae_for(128, 3)) / 3.0;
  EXPECT_LT(fine, coarse);
}

TEST(TriangleScoreTest, CliqueEdgesBeatBridge) {
  // Two triangles joined by a bridge.
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}, false,
      false);
  std::vector<double> tri = TriangleEdgeScores(g);
  EdgeId bridge = g.FindEdge(2, 3);
  EXPECT_DOUBLE_EQ(tri[bridge], 0.0);
  EXPECT_DOUBLE_EQ(tri[g.FindEdge(0, 1)], 1.0);
}

TEST(TriangleSparsifierTest, KeepsTriangleRichEdges) {
  Rng gen(7);
  std::vector<int> comm;
  Graph g = PlantedPartition(240, 6, 0.4, 0.01, gen, &comm);
  Rng rng(8);
  Graph h = TriangleSparsifier().Sparsify(g, 0.5, rng);
  int intra = 0;
  for (const Edge& e : h.Edges()) {
    if (comm[e.u] == comm[e.v]) ++intra;
  }
  // Triangles live inside communities.
  EXPECT_GT(static_cast<double>(intra) / h.NumEdges(), 0.9);
}

TEST(SimmelianTest, BackboneKeepsCliqueStructure) {
  // Two K5 cliques plus a few random cross edges: the backbone should
  // strongly prefer clique edges.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) {
      edges.push_back({u, v});
      edges.push_back({u + 5, v + 5});
    }
  }
  edges.push_back({0, 5});
  edges.push_back({1, 6});
  edges.push_back({2, 7});
  Graph g = Graph::FromEdges(10, edges, false, false);
  Rng rng(9);
  Graph h = SimmelianSparsifier().Sparsify(g, 0.3, rng);
  for (const Edge& e : h.Edges()) {
    bool cross = (e.u < 5) != (e.v < 5);
    EXPECT_FALSE(cross) << e.u << "-" << e.v;
  }
}

TEST(AlgebraicDistanceTest, IntraClusterCloserThanInter) {
  Rng gen(10);
  std::vector<int> comm;
  Graph g = PlantedPartition(200, 4, 0.4, 0.01, gen, &comm);
  Rng rng(11);
  std::vector<double> dist = AlgebraicDistances(g, 8, 15, rng);
  std::vector<double> intra, inter;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    (comm[ed.u] == comm[ed.v] ? intra : inter).push_back(dist[e]);
  }
  ASSERT_FALSE(intra.empty());
  ASSERT_FALSE(inter.empty());
  EXPECT_LT(Mean(intra), Mean(inter));
}

TEST(AlgebraicDistanceTest, DistancesNonNegative) {
  Rng gen(12);
  Graph g = BarabasiAlbert(150, 3, gen);
  Rng rng(13);
  for (double d : AlgebraicDistances(g, 4, 10, rng)) EXPECT_GE(d, 0.0);
}

TEST(LsMinHashTest, ApproximatesExactLSpar) {
  Rng gen(14);
  Graph g = WattsStrogatz(400, 5, 0.05, gen);
  Rng rng1(15), rng2(16);
  Graph exact = LSparSparsifier(false).Sparsify(g, 0.5, rng1);
  Graph approx = LSparSparsifier(true, 64).Sparsify(g, 0.5, rng2);
  // Both local selections should overlap substantially.
  int shared = 0;
  for (const Edge& e : approx.Edges()) {
    if (exact.HasEdge(e.u, e.v)) ++shared;
  }
  EXPECT_GT(static_cast<double>(shared) / approx.NumEdges(), 0.6);
  // And both guarantee at least one edge per vertex.
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    if (g.OutDegree(v) > 0) {
      EXPECT_GE(approx.OutDegree(v), 1u);
    }
  }
}

TEST(ExtensionsTest, FlaggedAsExtensions) {
  for (const char* name : {"TRI", "SIMM", "ALG", "LS-MH"}) {
    EXPECT_TRUE(CreateSparsifier(name)->Info().extension) << name;
  }
  for (const char* name : {"RN", "LS", "ER-w", "SP-3"}) {
    EXPECT_FALSE(CreateSparsifier(name)->Info().extension) << name;
  }
}

}  // namespace
}  // namespace sparsify
