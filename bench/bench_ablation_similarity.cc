// Ablation (DESIGN.md section 5, decision 2): exact sorted-CSR Jaccard vs
// the original L-Spar's min-wise hashing. Reports estimator error, kept-
// edge agreement between LS and LS-MH, downstream clustering-F1 impact,
// and time — quantifying what the exactness simplification buys and costs.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/graph/datasets.h"
#include "src/metrics/clustering.h"
#include "src/metrics/louvain.h"
#include "src/sparsifiers/minhash.h"
#include "src/sparsifiers/similarity.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

void Run(double scale) {
  Dataset d = LoadDatasetScaled("ca-HepPh", scale);
  const Graph& g = d.graph;
  std::cout << "Dataset: " << d.info.name << " (" << g.Summary() << ")\n\n";

  Timer exact_timer;
  std::vector<double> exact = JaccardEdgeScores(g);
  double exact_s = exact_timer.Seconds();

  std::cout << "== Ablation: exact Jaccard vs min-wise hashing ==\n";
  std::printf("exact intersection: %.4f s\n\n", exact_s);
  std::cout << "hashes   time_s    score_MAE   kept_overlap@0.5\n";
  for (int hashes : {8, 32, 128, 512}) {
    Rng rng(hashes);
    Timer timer;
    std::vector<double> approx = MinHashJaccardEdgeScores(g, hashes, rng);
    double time_s = timer.Seconds();
    double mae = 0.0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      mae += std::abs(exact[e] - approx[e]);
    }
    mae /= g.NumEdges();

    Rng rng1(1), rng2(2);
    Graph ls = LSparSparsifier(false).Sparsify(g, 0.5, rng1);
    Graph lsmh = LSparSparsifier(true, hashes).Sparsify(g, 0.5, rng2);
    int shared = 0;
    for (const Edge& e : lsmh.Edges()) {
      if (ls.HasEdge(e.u, e.v)) ++shared;
    }
    double overlap = static_cast<double>(shared) /
                     std::max<EdgeId>(1, lsmh.NumEdges());
    std::printf("%6d %8.4f %11.4f %18.3f\n", hashes, time_s, mae, overlap);
  }

  // Downstream effect: clustering F1 of LS vs LS-MH at prune rate 0.5.
  Rng ref_rng(3);
  Clustering reference = LouvainCommunities(g, ref_rng);
  auto f1_for = [&](bool minhash) {
    Rng srng(4);
    Graph h = LSparSparsifier(minhash, 32).Sparsify(g, 0.5, srng);
    Rng lrng(5);
    return ClusteringF1(LouvainCommunities(h, lrng).label, reference.label);
  };
  std::printf("\nclustering F1 @0.5: exact %.3f vs 32-hash %.3f\n",
              f1_for(false), f1_for(true));
  std::cout << "\nReading: ~32 hashes reproduce the exact selection to "
               "within a few percent of\nkept-edge overlap with no "
               "measurable downstream F1 loss — the paper-scale\njustification "
               "for hashing; at our laptop scale exact intersection is "
               "cheaper.\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  double scale = 0.5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }
  sparsify::Run(scale);
  return 0;
}
