// Regenerates paper Figure 13: (a) GraphSAGE AUROC on the ogbn-proteins
// stand-in and (b) ClusterGCN accuracy on the Reddit stand-in. The protocol
// is the paper's: TRAIN on the sparsified graph, TEST on the full graph.
// The green reference line is the full-graph-trained model; the red line is
// the empty-graph (MLP-only) model.
//
// Expected shape (paper section 4.5): RN and LSim lead GraphSAGE; GS and
// SCAN do well on ClusterGCN; LD and RD consistently under-perform both
// models (hub edges are not what message passing needs).
#include "bench/bench_common.h"
#include "src/gnn/data.h"
#include "src/gnn/models.h"
#include "src/metrics/louvain.h"

namespace sparsify {
namespace {

constexpr int kFeatureDim = 16;
constexpr int kHiddenDim = 16;
constexpr int kEpochs = 60;

double TrainSageAndScore(const Graph& train_graph, const Graph& full_graph,
                         const NodeClassificationData& data, bool auroc,
                         Rng& rng) {
  GraphSage model(kFeatureDim, kHiddenDim, data.num_classes, rng, 5e-2);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    model.TrainEpoch(train_graph, data.features, data.labels,
                     data.train_rows);
  }
  Matrix logits = model.Forward(full_graph, data.features);
  if (auroc) return MacroAuroc(logits, data.labels, data.test_rows);
  return Accuracy(ArgmaxRows(logits), data.labels, data.test_rows);
}

double TrainClusterGcnAndScore(const Graph& train_graph,
                               const Graph& full_graph,
                               const NodeClassificationData& data, Rng& rng) {
  Rng louvain_rng = rng.Fork();
  Clustering clusters = LouvainCommunities(train_graph, louvain_rng);
  auto batches = MakeClusterBatches(
      clusters.label, std::max<size_t>(64, train_graph.NumVertices() / 8));
  ClusterGcn model(kFeatureDim, kHiddenDim, data.num_classes, rng, 5e-2);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    model.TrainEpoch(train_graph, data.features, data.labels,
                     data.train_rows, batches);
  }
  Matrix logits = model.Forward(full_graph, data.features);
  return Accuracy(ArgmaxRows(logits), data.labels, data.test_rows);
}

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.35, 2);

  {
    Dataset d = LoadDatasetScaled("ogbn-proteins", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    Rng data_rng(41);
    NodeClassificationData data = MakeNodeClassificationData(
        d.communities, 8, kFeatureDim, 1.4, 0.5, data_rng);
    Rng full_rng(42);
    double full_line =
        TrainSageAndScore(d.graph, d.graph, data, /*auroc=*/true, full_rng);
    Graph empty = Graph::FromEdges(d.graph.NumVertices(), {}, false, false);
    Rng empty_rng(43);
    double empty_line =
        TrainSageAndScore(empty, empty, data, /*auroc=*/true, empty_rng);
    std::cout << "(red line, MLP only / empty graph: " << empty_line
              << ")\n";
    const Graph& full = d.graph;
    bench::RunFigure(
        "Figure 13a: GraphSAGE AUROC on ogbn-proteins "
        "(train sparsified, test full)",
        "AUROC", d.graph, {"RN", "LD", "RD", "GS", "LSim", "SCAN"}, opt,
        [&data, &full](const Graph&, const Graph& sparsified, Rng& rng) {
          return TrainSageAndScore(sparsified, full, data, /*auroc=*/true,
                                   rng);
        },
        full_line, {0.1, 0.3, 0.5, 0.7, 0.9});
  }

  {
    Dataset d = LoadDatasetScaled("Reddit", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    Rng data_rng(44);
    // Higher feature noise than 13a: Reddit's stand-in communities are
    // dense enough that the task saturates otherwise.
    NodeClassificationData data = MakeNodeClassificationData(
        d.communities, 8, kFeatureDim, 2.2, 0.5, data_rng);
    Rng full_rng(45);
    double full_line = TrainClusterGcnAndScore(d.graph, d.graph, data,
                                               full_rng);
    Graph empty = Graph::FromEdges(d.graph.NumVertices(), {}, false, false);
    Rng empty_rng(46);
    double empty_line =
        TrainClusterGcnAndScore(empty, empty, data, empty_rng);
    std::cout << "(red line, MLP only / empty graph: " << empty_line
              << ")\n";
    const Graph& full = d.graph;
    bench::RunFigure(
        "Figure 13b: ClusterGCN Accuracy on Reddit "
        "(train sparsified, test full)",
        "acc", d.graph, {"RN", "LD", "RD", "FF", "GS", "SCAN"}, opt,
        [&data, &full](const Graph&, const Graph& sparsified, Rng& rng) {
          return TrainClusterGcnAndScore(sparsified, full, data, rng);
        },
        full_line, {0.1, 0.3, 0.5, 0.7, 0.9});
  }
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
