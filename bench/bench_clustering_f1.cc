// Regenerates paper Figure 10: clustering F1 similarity between Louvain
// communities of the sparsified and the original graph, on the ca-HepPh
// stand-in (higher is better). The reference line is the F1 of two
// independent Louvain runs on the full graph (not 1.0, because Louvain is
// randomized — exactly as the paper notes).
//
// Expected shape (paper section 4.4): KN best overall; LSim / LD / LS
// strong; ER variants strong; GS and SCAN weakest.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 10`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"10"});
}
