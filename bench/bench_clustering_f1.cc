// Regenerates paper Figure 10: clustering F1 similarity between Louvain
// communities of the sparsified and the original graph, on the ca-HepPh
// stand-in (higher is better). The reference line is the F1 of two
// independent Louvain runs on the full graph (not 1.0, because Louvain is
// randomized — exactly as the paper notes).
//
// Expected shape (paper section 4.4): KN best overall; LSim / LD / LS
// strong; ER variants strong; GS and SCAN weakest.
#include "bench/bench_common.h"
#include "src/metrics/clustering.h"
#include "src/metrics/louvain.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);
  Dataset d = LoadDatasetScaled("ca-HepPh", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";

  Rng ref_rng(31);
  Clustering reference = LouvainCommunities(d.graph, ref_rng);
  // Reference line: Louvain vs Louvain on the full graph.
  Rng second_rng(32);
  Clustering second = LouvainCommunities(d.graph, second_rng);
  double self_f1 = ClusteringF1(second.label, reference.label);

  bench::RunFigure(
      "Figure 10: Clustering F1 Similarity on ca-HepPh", "F1", d.graph,
      {"RN", "KN", "LD", "LS", "GS", "LSim", "SCAN", "ER-w", "ER-uw"}, opt,
      [&reference](const Graph&, const Graph& sparsified, Rng& rng) {
        Clustering c = LouvainCommunities(sparsified, rng);
        return ClusteringF1(c.label, reference.label);
      },
      self_f1);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
