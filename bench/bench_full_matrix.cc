// The paper's headline artifact: the full N-to-N evaluation — every
// sparsifier x every (cheap-to-moderate) metric x every dataset, swept over
// prune rates 0.1..0.9 (paper section 4: "over 30,000 data points").
//
// At the default scale this produces the complete matrix in minutes on a
// laptop; the heavyweight metrics that have dedicated figure benches
// (betweenness, GNNs, max-flow) are excluded here so the matrix stays
// tractable — run their binaries for those columns.
//
//   --scale=f     dataset scale (default 0.15 for the full matrix)
//   --runs=n      runs per non-deterministic sparsifier (default 1;
//                 the paper protocol uses 10)
//   --threads=n   worker threads for the batch engine (default: hardware
//                 concurrency; output is identical at any thread count)
//   --datasets=a,b  restrict datasets; --metrics=x,y restrict metrics
//   --outdir=dir  also write one CSV per (dataset, metric) to dir
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "bench/bench_common.h"
#include "src/engine/batch_runner.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

const std::map<std::string, MetricFn>& MatrixMetrics() {
  static const std::map<std::string, MetricFn> metrics = {
      {"unreachable_ratio",
       [](const Graph&, const Graph& h, Rng&) {
         return UnreachableRatio(h);
       }},
      {"isolated_ratio",
       [](const Graph&, const Graph& h, Rng&) { return IsolatedRatio(h); }},
      {"degree_distance",
       [](const Graph& g, const Graph& h, Rng&) {
         return DegreeDistributionDistance(g, h);
       }},
      {"quadratic_form",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return QuadraticFormSimilarity(g, h, 30, rng);
       }},
      {"spsp_stretch",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return SpspStretch(g, h, 600, rng).mean_stretch;
       }},
      {"pagerank_top100",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(PageRank(g), PageRank(h), 100);
       }},
      {"eigenvector_top100",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(EigenvectorCentrality(g),
                              EigenvectorCentrality(h), 100);
       }},
      {"katz_top100",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(KatzCentrality(g), KatzCentrality(h), 100);
       }},
      {"num_communities",
       [](const Graph&, const Graph& h, Rng& rng) {
         return static_cast<double>(
             LouvainCommunities(h, rng).num_clusters);
       }},
      {"mcc",
       [](const Graph&, const Graph& h, Rng&) {
         return MeanClusteringCoefficient(h);
       }},
  };
  return metrics;
}

using bench::SplitCsvFlag;

void Run(int argc, char** argv) {
  double scale = 0.15;
  int runs = 1;
  int threads = 0;  // 0 = hardware concurrency
  std::string outdir;
  std::vector<std::string> datasets = DatasetNames();
  std::vector<std::string> metric_names;
  for (const auto& [name, fn] : MatrixMetrics()) metric_names.push_back(name);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = bench::ParseDoubleFlag(arg.c_str() + 8, "--scale");
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = static_cast<int>(bench::ParseIntFlag(arg.c_str() + 7, "--runs"));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<int>(
          bench::ParseIntFlag(arg.c_str() + 10, "--threads"));
    } else if (arg.rfind("--outdir=", 0) == 0) {
      outdir = arg.substr(9);
    } else if (arg.rfind("--datasets=", 0) == 0) {
      datasets = SplitCsvFlag(arg.substr(11));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metric_names = SplitCsvFlag(arg.substr(10));
    } else if (arg == "--help") {
      std::cout << "usage: bench_full_matrix [--scale=f] [--runs=n] "
                   "[--threads=n] [--outdir=dir] [--datasets=a,b] "
                   "[--metrics=x,y]\n";
      std::exit(0);
    } else {
      // A typo like --thread=8 must abort, not silently run the defaults.
      std::cerr << "error: unknown option '" << arg << "'\n"
                << "usage: bench_full_matrix [--scale=f] [--runs=n] "
                   "[--threads=n] [--outdir=dir] [--datasets=a,b] "
                   "[--metrics=x,y]\n";
      std::exit(2);
    }
  }
  if (!outdir.empty()) std::filesystem::create_directories(outdir);

  // One engine (and thread pool) shared across every (dataset, metric)
  // sweep; per-cell seeding keeps output identical at any --threads value.
  BatchRunner runner(threads);

  Timer total;
  size_t data_points = 0;
  std::cout << "# Full N-to-N matrix: " << datasets.size() << " datasets x "
            << metric_names.size() << " metrics x "
            << SparsifierNames().size() << " sparsifiers ("
            << runner.NumThreads() << " threads)\n";
  std::cout << "dataset,metric,sparsifier,prune_rate,achieved_prune_rate,"
               "value,stddev,runs\n";
  for (const std::string& dataset_name : datasets) {
    Dataset d = LoadDatasetScaled(dataset_name, scale);
    for (const std::string& metric_name : metric_names) {
      const MetricFn& metric = MatrixMetrics().at(metric_name);
      SweepConfig config;
      config.runs_nondeterministic = runs;
      auto series = RunSweep(d.graph, config, metric, runner);
      std::ofstream csv;
      if (!outdir.empty()) {
        csv.open(outdir + "/" + dataset_name + "_" + metric_name + ".csv");
        csv << "sparsifier,prune_rate,achieved_prune_rate,value,stddev,"
               "runs\n";
      }
      for (const SweepSeries& s : series) {
        for (const SweepPoint& p : s.points) {
          ++data_points;
          std::cout << dataset_name << "," << metric_name << ","
                    << s.sparsifier << "," << p.requested_prune_rate << ","
                    << p.achieved_prune_rate << "," << p.mean << ","
                    << p.stddev << "," << p.runs << "\n";
          if (csv.is_open()) {
            csv << s.sparsifier << "," << p.requested_prune_rate << ","
                << p.achieved_prune_rate << "," << p.mean << "," << p.stddev
                << "," << p.runs << "\n";
          }
        }
      }
    }
    std::cerr << "done " << dataset_name << " (" << total.Seconds()
              << " s elapsed)\n";
  }
  std::cerr << "total: " << data_points << " data points in "
            << total.Seconds() << " s\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
