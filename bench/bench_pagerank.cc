// Regenerates paper Figure 11: PageRank top-100 precision on (a) the
// directed web-Google stand-in and (b) the undirected ego-Facebook
// stand-in.
//
// Expected shape (paper section 4.5): on directed web graphs ER's precision
// is nearly CONSTANT across prune rates (its sampling follows the spectral
// structure of the symmetrized graph); KN and RN are strong at low prune
// rates; LD under-performs on directed graphs but is fine on undirected
// ones; GS and SCAN under-perform everywhere.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 11a 11b`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"11a", "11b"});
}
