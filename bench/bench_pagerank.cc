// Regenerates paper Figure 11: PageRank top-100 precision on (a) the
// directed web-Google stand-in and (b) the undirected ego-Facebook
// stand-in.
//
// Expected shape (paper section 4.5): on directed web graphs ER's precision
// is nearly CONSTANT across prune rates (its sampling follows the spectral
// structure of the symmetrized graph); KN and RN are strong at low prune
// rates; LD under-performs on directed graphs but is fine on undirected
// ones; GS and SCAN under-perform everywhere.
#include "bench/bench_common.h"
#include "src/metrics/centrality.h"

namespace sparsify {
namespace {

constexpr int kTopK = 100;

void RunOne(const std::string& dataset, const std::string& figure,
            const bench::BenchOptions& opt) {
  Dataset d = LoadDatasetScaled(dataset, opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";
  std::vector<double> reference = PageRank(d.graph);
  bench::RunFigure(
      figure, "prec", d.graph,
      {"RN", "KN", "LD", "RD", "GS", "SCAN", "ER-w", "ER-uw"}, opt,
      [&reference](const Graph&, const Graph& sparsified, Rng&) {
        return TopKPrecision(reference, PageRank(sparsified), kTopK);
      },
      1.0);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::bench::BenchOptions opt =
      sparsify::bench::ParseOptions(argc, argv, 0.4, 3);
  sparsify::RunOne("web-Google",
                   "Figure 11a: PageRank Top-100 Precision on web-Google "
                   "(directed)",
                   opt);
  sparsify::RunOne("ego-Facebook",
                   "Figure 11b: PageRank Top-100 Precision on ego-Facebook "
                   "(undirected)",
                   opt);
  return 0;
}
