// Ablation (DESIGN.md section 5, decision 1): prune-rate calibration
// accuracy and cost. Sparsifiers with a native coarse knob (KN's k, LD's
// alpha, LS's exponent c) are calibrated by binary search; this bench
// reports, for every sparsifier and requested rate, the achieved rate and
// the sparsification time — quantifying both the calibration error (the
// paper's "we attempt to align them", section 3.2) and its overhead.
#include <cstdio>
#include <iostream>

#include "src/graph/datasets.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

void Run(double scale) {
  Dataset d = LoadDatasetScaled("ca-AstroPh", scale);
  const Graph& g = d.graph;
  Graph sym = g;  // already undirected
  std::cout << "Dataset: " << d.info.name << " (" << g.Summary() << ")\n\n";
  std::cout << "== Ablation: prune-rate calibration accuracy (achieved "
               "rate, time) ==\n";
  std::printf("%-8s", "algo");
  for (double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::printf("      @%.1f        ", rate);
  }
  std::printf("\n");
  for (const std::string& name : SparsifierNames()) {
    auto sparsifier = CreateSparsifier(name);
    const SparsifierInfo& info = sparsifier->Info();
    if (info.prune_rate_control == PruneRateControl::kNone) continue;
    std::printf("%-8s", name.c_str());
    for (double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      Rng rng(99);
      Timer timer;
      Graph h = sparsifier->Sparsify(
          info.supports_directed || !g.IsDirected() ? g : sym, rate, rng);
      double seconds = timer.Seconds();
      std::printf("  %.3f (%6.3fs)",
                  Sparsifier::AchievedPruneRate(g, h), seconds);
    }
    std::printf("\n");
  }
  std::cout << "\nReading: fine-control sparsifiers hit the requested rate "
               "exactly; constrained\nones (KN, LD, LS, LS-MH) saturate "
               "below their per-vertex floors at high rates,\nexactly the "
               "behaviour the paper notes in section 3.2. Binary-search "
               "calibration\ncosts a handful of extra passes (LD, LS) or "
               "probe runs (KN).\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  double scale = 0.4;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }
  sparsify::Run(scale);
  return 0;
}
