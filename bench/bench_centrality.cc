// Regenerates paper Figures 5-7: top-100 precision of betweenness
// (com-DBLP), closeness (ca-AstroPh), eigenvector (email-Enron), and Katz
// (ego-Twitter) centrality rankings under sparsification.
//
// Expected shape (paper section 4.3): LD / RD / RN lead betweenness and
// closeness (hub edges preserve hub rankings); RD leads eigenvector; RN
// leads Katz (unbiased sampling keeps the hop structure); GS / SCAN trail
// everywhere; FF and KN under-perform on eigenvector.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 5a 5b 6 7`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"5a", "5b", "6", "7"});
}
