// Regenerates paper Figures 5-7: top-100 precision of betweenness
// (com-DBLP), closeness (ca-AstroPh), eigenvector (email-Enron), and Katz
// (ego-Twitter) centrality rankings under sparsification.
//
// Expected shape (paper section 4.3): LD / RD / RN lead betweenness and
// closeness (hub edges preserve hub rankings); RD leads eigenvector; RN
// leads Katz (unbiased sampling keeps the hop structure); GS / SCAN trail
// everywhere; FF and KN under-perform on eigenvector.
#include "src/metrics/centrality.h"

#include "bench/bench_common.h"

namespace sparsify {
namespace {

constexpr int kTopK = 100;

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.35, 3);

  {
    Dataset d = LoadDatasetScaled("com-DBLP", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    // Sampled betweenness (paper section 3.3.3, 500 pivots).
    Rng ref_rng(11);
    std::vector<double> reference =
        ApproxBetweennessCentrality(d.graph, 500, ref_rng);
    bench::RunFigure(
        "Figure 5a: Betweenness Centrality Top-100 Precision on com-DBLP",
        "prec", d.graph, {"RN", "LD", "RD", "FF", "LS", "GS", "SCAN"}, opt,
        [&reference](const Graph&, const Graph& sparsified, Rng& rng) {
          std::vector<double> scores =
              ApproxBetweennessCentrality(sparsified, 500, rng);
          return TopKPrecision(reference, scores, kTopK);
        },
        1.0);
  }

  {
    Dataset d = LoadDatasetScaled("ca-AstroPh", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    std::vector<double> reference = ClosenessCentrality(d.graph);
    bench::RunFigure(
        "Figure 5b: Closeness Centrality Top-100 Precision on ca-AstroPh",
        "prec", d.graph, {"RN", "LD", "RD", "FF", "LS", "GS", "SCAN"}, opt,
        [&reference](const Graph&, const Graph& sparsified, Rng&) {
          return TopKPrecision(reference, ClosenessCentrality(sparsified),
                               kTopK);
        },
        1.0);
  }

  {
    Dataset d = LoadDatasetScaled("email-Enron", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    std::vector<double> reference = EigenvectorCentrality(d.graph);
    bench::RunFigure(
        "Figure 6: Eigenvector Centrality Top-100 Precision on email-Enron",
        "prec", d.graph, {"RN", "KN", "LD", "RD", "FF"}, opt,
        [&reference](const Graph&, const Graph& sparsified, Rng&) {
          return TopKPrecision(reference, EigenvectorCentrality(sparsified),
                               kTopK);
        },
        1.0);
  }

  {
    Dataset d = LoadDatasetScaled("ego-Twitter", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    std::vector<double> reference = KatzCentrality(d.graph);
    bench::RunFigure(
        "Figure 7: Katz Centrality Top-100 Precision on ego-Twitter",
        "prec", d.graph, {"RN", "KN", "LD", "RD", "FF", "ER-uw"}, opt,
        [&reference](const Graph&, const Graph& sparsified, Rng&) {
          return TopKPrecision(reference, KatzCentrality(sparsified), kTopK);
        },
        1.0);
  }
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
