// Regenerates paper Figure 8: number of Louvain communities vs prune rate
// on the com-DBLP stand-in (closer to the full-graph count is better).
//
// Expected shape (paper section 4.4): LD and KN stay near the ground truth
// by preserving connectivity; SF / SP-t do even better (connectivity
// identical to the original); RD and GS inflate the community count as the
// graph shatters; RN drifts upward steadily.
#include "bench/bench_common.h"
#include "src/metrics/louvain.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);
  Dataset d = LoadDatasetScaled("com-DBLP", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";

  Rng ref_rng(21);
  double truth = LouvainCommunities(d.graph, ref_rng).num_clusters;
  bench::RunFigure(
      "Figure 8: Number of Communities (Louvain) on com-DBLP", "#comm",
      d.graph,
      {"RN", "KN", "LD", "RD", "SF", "SP-3", "SP-5", "SP-7", "GS"}, opt,
      [](const Graph&, const Graph& sparsified, Rng& rng) {
        return static_cast<double>(
            LouvainCommunities(sparsified, rng).num_clusters);
      },
      truth);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
