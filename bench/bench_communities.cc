// Regenerates paper Figure 8: number of Louvain communities vs prune rate
// on the com-DBLP stand-in (closer to the full-graph count is better).
//
// Expected shape (paper section 4.4): LD and KN stay near the ground truth
// by preserving connectivity; SF / SP-t do even better (connectivity
// identical to the original); RD and GS inflate the community count as the
// graph shatters; RN drifts upward steadily.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 8`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"8"});
}
