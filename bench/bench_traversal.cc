// Traversal-kernel benchmark: quantifies what the direction-optimizing
// hybrid BFS and the reusable TraversalScratch buy over the seed
// implementation, per dataset shape.
//
// Three BFS variants run from the same random sources on every graph:
//   seed:   the pre-kernel per-call implementation — a freshly allocated
//           O(n) double distance vector plus a std::deque-backed
//           std::queue frontier, every call;
//   push:   the kernel in kPushOnly mode with a shared scratch (isolates
//           the allocation/layout win from the direction win);
//   hybrid: the kernel's full push/pull direction-optimizing mode.
//
// The emitted JSON (default BENCH_traversal.json; the committed copy at
// the repo root is this benchmark's single-threaded output) reports
// per-graph seconds, speedups, and the pull-round count. CI jq-asserts
// that at least one graph records a pull-direction switch and that hybrid
// throughput is >= push-only throughput on the social-shaped default.
//
// Usage: bench_traversal [--datasets=ego-Facebook@0.5,web-Google@0.2]
//          [--sources=64] [--repeat=3] [--seed=42]
//          [--out=BENCH_traversal.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify::bench {
namespace {

struct TraversalBenchOptions {
  // name@scale entries; scale defaults to 0.3 when omitted.
  std::vector<std::string> datasets = {"ego-Facebook@0.5", "web-Google@0.2",
                                       "ca-AstroPh@0.3"};
  int sources = 64;
  int repeat = 3;
  uint64_t seed = 42;
  std::string out = "BENCH_traversal.json";
};

bool ParseTraversalArgs(int argc, char** argv, TraversalBenchOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--datasets=", 11) == 0) {
      opt->datasets = SplitCsvFlag(arg + 11);
    } else if (std::strncmp(arg, "--sources=", 10) == 0) {
      opt->sources = static_cast<int>(ParseIntFlag(arg + 10, "--sources"));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt->repeat = static_cast<int>(ParseIntFlag(arg + 9, "--repeat"));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt->seed = ParseUint64Flag(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt->out = arg + 6;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n"
                << "usage: bench_traversal [--datasets=NAME@SCALE,..] "
                   "[--sources=n] [--repeat=n] [--seed=n] [--out=FILE]\n";
      return false;
    }
  }
  if (opt->datasets.empty() || opt->sources < 1 || opt->repeat < 1) {
    std::cerr << "error: need >= 1 dataset, --sources >= 1, --repeat >= 1\n";
    return false;
  }
  return true;
}

// The seed-era ShortestPathDistances, verbatim: fresh allocations and a
// std::queue per call. This is the baseline the kernel replaced.
std::vector<double> SeedStyleBfs(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId u : g.OutNeighborNodes(v)) {
      if (dist[u] == kInfDistance) {
        dist[u] = dist[v] + 1.0;
        q.push(u);
      }
    }
  }
  return dist;
}

struct GraphResult {
  std::string name;
  NodeId vertices = 0;
  EdgeId edges = 0;
  bool directed = false;
  double seed_seconds = 0.0;
  double push_seconds = 0.0;
  double hybrid_seconds = 0.0;
  int pull_rounds = 0;       // total across the hybrid pass's sources
  uint64_t checksum = 0;     // per-mode reached-count sums must agree
};

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int TraversalBenchMain(int argc, char** argv) {
  TraversalBenchOptions opt;
  if (!ParseTraversalArgs(argc, argv, &opt)) return 2;

  std::vector<GraphResult> results;
  for (const std::string& spec : opt.datasets) {
    std::string name = spec;
    double scale = 0.3;
    if (size_t at = spec.find('@'); at != std::string::npos) {
      name = spec.substr(0, at);
      scale = ParseDoubleFlag(spec.c_str() + at + 1, "--datasets scale");
    }
    Dataset d = LoadDatasetScaled(name, scale);
    // The kernel's direction optimization targets the unweighted BFS
    // path; weighted datasets bench their unweighted view.
    Graph graph = d.graph.IsWeighted() ? d.graph.Unweighted() : d.graph;

    GraphResult r;
    r.name = spec;
    r.vertices = graph.NumVertices();
    r.edges = graph.NumEdges();
    r.directed = graph.IsDirected();

    std::vector<NodeId> sources(opt.sources);
    Rng rng(opt.seed);
    for (int i = 0; i < opt.sources; ++i) {
      sources[i] = static_cast<NodeId>(rng.NextUint(graph.NumVertices()));
    }

    TraversalScratch scratch;
    for (int rep = 0; rep < opt.repeat; ++rep) {
      uint64_t seed_check = 0, push_check = 0, hybrid_check = 0;
      int pull_rounds = 0;

      Timer seed_timer;
      for (NodeId src : sources) {
        std::vector<double> dist = SeedStyleBfs(graph, src);
        for (double x : dist) seed_check += x != kInfDistance;
      }
      double seed_s = seed_timer.Seconds();

      Timer push_timer;
      for (NodeId src : sources) {
        TraversalSummary sum =
            BfsLevels(graph, src, scratch, BfsMode::kPushOnly);
        push_check += sum.reached;
      }
      double push_s = push_timer.Seconds();

      Timer hybrid_timer;
      for (NodeId src : sources) {
        TraversalSummary sum = BfsLevels(graph, src, scratch);
        hybrid_check += sum.reached;
        pull_rounds += sum.pull_rounds;
      }
      double hybrid_s = hybrid_timer.Seconds();

      if (seed_check != push_check || push_check != hybrid_check) {
        std::cerr << "error: reached-count mismatch on " << spec << "\n";
        return 1;
      }
      if (rep == 0 || seed_s < r.seed_seconds) r.seed_seconds = seed_s;
      if (rep == 0 || push_s < r.push_seconds) r.push_seconds = push_s;
      if (rep == 0 || hybrid_s < r.hybrid_seconds) {
        r.hybrid_seconds = hybrid_s;
      }
      r.pull_rounds = pull_rounds;
      r.checksum = hybrid_check;
    }

    std::printf(
        "%-22s |V|=%u |E|=%u %s seed=%.4fs push=%.4fs hybrid=%.4fs "
        "hybrid_vs_seed=%.2fx hybrid_vs_push=%.2fx pull_rounds=%d\n",
        spec.c_str(), r.vertices, r.edges, r.directed ? "dir" : "und",
        r.seed_seconds, r.push_seconds, r.hybrid_seconds,
        r.hybrid_seconds > 0 ? r.seed_seconds / r.hybrid_seconds : 0.0,
        r.hybrid_seconds > 0 ? r.push_seconds / r.hybrid_seconds : 0.0,
        r.pull_rounds);
    results.push_back(std::move(r));
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"traversal\",\n";
  json << "  \"sources\": " << opt.sources << ",\n";
  json << "  \"repeat\": " << opt.repeat << ",\n";
  json << "  \"seed\": " << opt.seed << ",\n";
  json << "  \"graphs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    double vs_seed =
        r.hybrid_seconds > 0 ? r.seed_seconds / r.hybrid_seconds : 0.0;
    double vs_push =
        r.hybrid_seconds > 0 ? r.push_seconds / r.hybrid_seconds : 0.0;
    json << "    {\"name\": \"" << r.name << "\", \"vertices\": "
         << r.vertices << ", \"edges\": " << r.edges
         << ", \"directed\": " << (r.directed ? "true" : "false")
         << ", \"seed_seconds\": " << Json(r.seed_seconds)
         << ", \"push_seconds\": " << Json(r.push_seconds)
         << ", \"hybrid_seconds\": " << Json(r.hybrid_seconds)
         << ", \"hybrid_vs_seed\": " << Json(vs_seed)
         << ", \"hybrid_vs_push\": " << Json(vs_push)
         << ", \"pull_rounds\": " << r.pull_rounds
         << ", \"bfs_per_second_hybrid\": "
         << Json(r.hybrid_seconds > 0
                     ? static_cast<double>(opt.sources) / r.hybrid_seconds
                     : 0.0)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";

  std::ofstream out(opt.out, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << opt.out << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "# wrote " << opt.out << "\n";
  return 0;
}

}  // namespace sparsify::bench

int main(int argc, char** argv) {
  return sparsify::bench::TraversalBenchMain(argc, argv);
}
