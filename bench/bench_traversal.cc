// Traversal-kernel benchmark: quantifies what the direction-optimizing
// hybrid BFS, the delta-stepping Dijkstra, and the reusable
// TraversalScratch buy over the seed implementation, per dataset shape.
//
// Three BFS variants run from the same random sources on every graph:
//   seed:   the pre-kernel per-call implementation — a freshly allocated
//           O(n) double distance vector plus a std::deque-backed
//           std::queue frontier, every call;
//   push:   the kernel in kPushOnly mode with a shared scratch (isolates
//           the allocation/layout win from the direction win);
//   hybrid: the kernel's full push/pull direction-optimizing mode.
//
// Every variant also reports heap allocations per call (this translation
// unit overrides global operator new/delete with counting versions), so
// the scratch-reuse win and the algorithmic win are separated instead of
// conflated in hybrid_vs_seed: the seed's per-call allocations are
// visible next to the kernel's zero.
//
// Weighted datasets additionally race the two SSSP modes from the same
// sources — DijkstraDistances with SsspMode::kBinaryHeap vs
// kDeltaStepping — and report delta_vs_heap (distances are bit-identical;
// the bench cross-checks reached counts and max distances per source).
//
// The emitted JSON (default BENCH_traversal.json; the committed copy at
// the repo root is this benchmark's single-threaded output) reports
// per-graph seconds, speedups, allocation counts, and the pull-round
// count. CI jq-asserts pull switches and hybrid-vs-push floors on both an
// undirected social shape and a >=50k-vertex directed web shape.
//
// Usage: bench_traversal [--datasets=ego-Facebook@0.5,web-Google@25]
//          [--sources=64] [--repeat=3] [--seed=42] [--cache=DIR]
//          [--out=BENCH_traversal.json]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/graph/ingest.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {
// Global allocation counter, bumped by the operator new overrides below.
// The bench is single-threaded; relaxed atomics keep the probe overhead
// to one uncontended RMW per allocation.
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sparsify::bench {
namespace {

struct TraversalBenchOptions {
  // name@scale entries; scale defaults to 0.3 when omitted.
  std::vector<std::string> datasets = {"ego-Facebook@0.5", "web-Google@0.2",
                                       "ca-AstroPh@0.3"};
  int sources = 64;
  int repeat = 3;
  uint64_t seed = 42;
  std::string cache_dir;  // "" regenerates synthetics on every run
  std::string out = "BENCH_traversal.json";
  std::string trace;  // "" = spans stay disabled
};

bool ParseTraversalArgs(int argc, char** argv, TraversalBenchOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--datasets=", 11) == 0) {
      opt->datasets = SplitCsvFlag(arg + 11);
    } else if (std::strncmp(arg, "--sources=", 10) == 0) {
      opt->sources = static_cast<int>(ParseIntFlag(arg + 10, "--sources"));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt->repeat = static_cast<int>(ParseIntFlag(arg + 9, "--repeat"));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt->seed = ParseUint64Flag(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--cache=", 8) == 0) {
      opt->cache_dir = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt->out = arg + 6;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      opt->trace = arg + 8;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n"
                << "usage: bench_traversal [--datasets=NAME@SCALE,..] "
                   "[--sources=n] [--repeat=n] [--seed=n] [--cache=DIR] "
                   "[--out=FILE] [--trace=FILE]\n";
      return false;
    }
  }
  if (opt->datasets.empty() || opt->sources < 1 || opt->repeat < 1) {
    std::cerr << "error: need >= 1 dataset, --sources >= 1, --repeat >= 1\n";
    return false;
  }
  return true;
}

// The seed-era ShortestPathDistances, verbatim: fresh allocations and a
// std::queue per call. This is the baseline the kernel replaced.
std::vector<double> SeedStyleBfs(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId u : g.OutNeighborNodes(v)) {
      if (dist[u] == kInfDistance) {
        dist[u] = dist[v] + 1.0;
        q.push(u);
      }
    }
  }
  return dist;
}

struct GraphResult {
  std::string name;
  NodeId vertices = 0;
  EdgeId edges = 0;
  bool directed = false;
  bool weighted = false;
  double seed_seconds = 0.0;
  double push_seconds = 0.0;
  double hybrid_seconds = 0.0;
  int pull_rounds = 0;       // total across the hybrid pass's sources
  uint64_t checksum = 0;     // per-mode reached-count sums must agree
  // Allocations per traversal call, measured on the final repeat (scratch
  // warm), separating scratch reuse from the direction-switch win.
  double seed_allocs_per_call = 0.0;
  double push_allocs_per_call = 0.0;
  double hybrid_allocs_per_call = 0.0;
  // Weighted datasets only: binary-heap vs delta-stepping Dijkstra.
  double dijkstra_heap_seconds = 0.0;
  double dijkstra_delta_seconds = 0.0;
};

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int TraversalBenchMain(int argc, char** argv) {
  TraversalBenchOptions opt;
  if (!ParseTraversalArgs(argc, argv, &opt)) return 2;
  BenchTraceScope trace_scope(opt.trace);

  std::vector<GraphResult> results;
  for (const std::string& spec : opt.datasets) {
    // One span per dataset: the kernel itself records counters, not
    // spans (its hot loops are the thing being measured), so the trace's
    // granularity here is the per-graph measurement section.
    TRACE_SPAN(graph_span, "bench_graph");
    if (graph_span.active()) graph_span.Detail(spec);
    std::string name = spec;
    double scale = 0.3;
    if (size_t at = spec.find('@'); at != std::string::npos) {
      name = spec.substr(0, at);
      scale = ParseDoubleFlag(spec.c_str() + at + 1, "--datasets scale");
    }
    Graph loaded = LoadDatasetScaledCached(name, scale, opt.cache_dir);
    // The kernel's direction optimization targets the unweighted BFS
    // path; weighted datasets bench their unweighted view for BFS and
    // the weighted graph for the Dijkstra race below.
    Graph graph = loaded.IsWeighted() ? loaded.Unweighted() : loaded;

    GraphResult r;
    r.name = spec;
    r.vertices = graph.NumVertices();
    r.edges = graph.NumEdges();
    r.directed = graph.IsDirected();
    r.weighted = loaded.IsWeighted();

    std::vector<NodeId> sources(opt.sources);
    Rng rng(opt.seed);
    for (int i = 0; i < opt.sources; ++i) {
      sources[i] = static_cast<NodeId>(rng.NextUint(graph.NumVertices()));
    }

    TraversalScratch scratch;
    for (int rep = 0; rep < opt.repeat; ++rep) {
      uint64_t seed_check = 0, push_check = 0, hybrid_check = 0;
      int pull_rounds = 0;

      uint64_t allocs_before = g_alloc_count.load();
      Timer seed_timer;
      for (NodeId src : sources) {
        std::vector<double> dist = SeedStyleBfs(graph, src);
        for (double x : dist) seed_check += x != kInfDistance;
      }
      double seed_s = seed_timer.Seconds();
      r.seed_allocs_per_call =
          static_cast<double>(g_alloc_count.load() - allocs_before) /
          opt.sources;

      allocs_before = g_alloc_count.load();
      Timer push_timer;
      for (NodeId src : sources) {
        TraversalSummary sum =
            BfsLevels(graph, src, scratch, BfsMode::kPushOnly);
        push_check += sum.reached;
      }
      double push_s = push_timer.Seconds();
      r.push_allocs_per_call =
          static_cast<double>(g_alloc_count.load() - allocs_before) /
          opt.sources;

      allocs_before = g_alloc_count.load();
      Timer hybrid_timer;
      for (NodeId src : sources) {
        TraversalSummary sum = BfsLevels(graph, src, scratch);
        hybrid_check += sum.reached;
        pull_rounds += sum.pull_rounds;
      }
      double hybrid_s = hybrid_timer.Seconds();
      r.hybrid_allocs_per_call =
          static_cast<double>(g_alloc_count.load() - allocs_before) /
          opt.sources;

      if (seed_check != push_check || push_check != hybrid_check) {
        std::cerr << "error: reached-count mismatch on " << spec << "\n";
        return 1;
      }
      if (rep == 0 || seed_s < r.seed_seconds) r.seed_seconds = seed_s;
      if (rep == 0 || push_s < r.push_seconds) r.push_seconds = push_s;
      if (rep == 0 || hybrid_s < r.hybrid_seconds) {
        r.hybrid_seconds = hybrid_s;
      }
      r.pull_rounds = pull_rounds;
      r.checksum = hybrid_check;
    }

    if (r.weighted) {
      // Same sources, weighted graph: binary heap vs delta stepping.
      // Distances are bit-identical (unique fixed point); reached counts
      // and per-source max distances are cross-checked exactly.
      for (int rep = 0; rep < opt.repeat; ++rep) {
        uint64_t heap_reached = 0, delta_reached = 0;
        double heap_max = 0.0, delta_max = 0.0;

        Timer heap_timer;
        for (NodeId src : sources) {
          TraversalSummary sum =
              DijkstraDistances(loaded, src, scratch, SsspMode::kBinaryHeap);
          heap_reached += sum.reached;
          heap_max += sum.max_dist;
        }
        double heap_s = heap_timer.Seconds();

        Timer delta_timer;
        for (NodeId src : sources) {
          TraversalSummary sum = DijkstraDistances(loaded, src, scratch,
                                                   SsspMode::kDeltaStepping);
          delta_reached += sum.reached;
          delta_max += sum.max_dist;
        }
        double delta_s = delta_timer.Seconds();

        if (heap_reached != delta_reached || heap_max != delta_max) {
          std::cerr << "error: Dijkstra mode mismatch on " << spec << "\n";
          return 1;
        }
        if (rep == 0 || heap_s < r.dijkstra_heap_seconds) {
          r.dijkstra_heap_seconds = heap_s;
        }
        if (rep == 0 || delta_s < r.dijkstra_delta_seconds) {
          r.dijkstra_delta_seconds = delta_s;
        }
      }
    }

    std::printf(
        "%-22s |V|=%u |E|=%u %s seed=%.4fs push=%.4fs hybrid=%.4fs "
        "hybrid_vs_seed=%.2fx hybrid_vs_push=%.2fx pull_rounds=%d "
        "allocs/call seed=%.1f push=%.1f hybrid=%.1f",
        spec.c_str(), r.vertices, r.edges, r.directed ? "dir" : "und",
        r.seed_seconds, r.push_seconds, r.hybrid_seconds,
        r.hybrid_seconds > 0 ? r.seed_seconds / r.hybrid_seconds : 0.0,
        r.hybrid_seconds > 0 ? r.push_seconds / r.hybrid_seconds : 0.0,
        r.pull_rounds, r.seed_allocs_per_call, r.push_allocs_per_call,
        r.hybrid_allocs_per_call);
    if (r.weighted) {
      std::printf(" dijkstra heap=%.4fs delta=%.4fs delta_vs_heap=%.2fx",
                  r.dijkstra_heap_seconds, r.dijkstra_delta_seconds,
                  r.dijkstra_delta_seconds > 0
                      ? r.dijkstra_heap_seconds / r.dijkstra_delta_seconds
                      : 0.0);
    }
    std::printf("\n");
    results.push_back(std::move(r));
  }

  std::string joined_datasets;
  for (const std::string& spec : opt.datasets) {
    joined_datasets += joined_datasets.empty() ? spec : "," + spec;
  }
  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"traversal\",\n";
  // The kernel timing loops are single-threaded by design (the per-call
  // costs being raced are serial); meta.threads records that.
  json << "  \"meta\": " << BenchMetaJson(1, joined_datasets) << ",\n";
  json << "  \"sources\": " << opt.sources << ",\n";
  json << "  \"repeat\": " << opt.repeat << ",\n";
  json << "  \"seed\": " << opt.seed << ",\n";
  json << "  \"graphs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    double vs_seed =
        r.hybrid_seconds > 0 ? r.seed_seconds / r.hybrid_seconds : 0.0;
    double vs_push =
        r.hybrid_seconds > 0 ? r.push_seconds / r.hybrid_seconds : 0.0;
    json << "    {\"name\": \"" << r.name << "\", \"vertices\": "
         << r.vertices << ", \"edges\": " << r.edges
         << ", \"directed\": " << (r.directed ? "true" : "false")
         << ", \"weighted\": " << (r.weighted ? "true" : "false")
         << ", \"seed_seconds\": " << Json(r.seed_seconds)
         << ", \"push_seconds\": " << Json(r.push_seconds)
         << ", \"hybrid_seconds\": " << Json(r.hybrid_seconds)
         << ", \"hybrid_vs_seed\": " << Json(vs_seed)
         << ", \"hybrid_vs_push\": " << Json(vs_push)
         << ", \"pull_rounds\": " << r.pull_rounds
         << ", \"seed_allocs_per_call\": " << Json(r.seed_allocs_per_call)
         << ", \"push_allocs_per_call\": " << Json(r.push_allocs_per_call)
         << ", \"hybrid_allocs_per_call\": "
         << Json(r.hybrid_allocs_per_call)
         << ", \"bfs_per_second_hybrid\": "
         << Json(r.hybrid_seconds > 0
                     ? static_cast<double>(opt.sources) / r.hybrid_seconds
                     : 0.0);
    if (r.weighted) {
      json << ", \"dijkstra_heap_seconds\": " << Json(r.dijkstra_heap_seconds)
           << ", \"dijkstra_delta_seconds\": "
           << Json(r.dijkstra_delta_seconds)
           << ", \"delta_vs_heap\": "
           << Json(r.dijkstra_delta_seconds > 0
                       ? r.dijkstra_heap_seconds / r.dijkstra_delta_seconds
                       : 0.0);
    }
    json << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";

  std::ofstream out(opt.out, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << opt.out << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "# wrote " << opt.out << "\n";
  return 0;
}

}  // namespace sparsify::bench

int main(int argc, char** argv) {
  return sparsify::bench::TraversalBenchMain(argc, argv);
}
