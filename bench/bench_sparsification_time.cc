// Regenerates paper Figure 14: sparsification wall-clock time per
// sparsifier at prune rates 0.1 / 0.5 / 0.9 on the ogbn-proteins stand-in,
// using google-benchmark (the one figure whose measurement IS time).
//
// Expected shape (paper section 4.6): RN and KN are the cheapest; the
// similarity family (LS / GS / LSim / SCAN), LD, FF, and RD sit in a middle
// band; ER is roughly an order of magnitude above everything else because
// of its Laplacian solves. As in the paper, the ER timing here isolates the
// *sampling* cost; the one-time effective-resistance computation is
// reported separately below.
#include <benchmark/benchmark.h>

#include "src/graph/datasets.h"
#include "src/sparsifiers/effective_resistance.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

const Graph& BenchGraph() {
  static const Graph* g = [] {
    Dataset d = LoadDatasetScaled("ogbn-proteins", 0.5);
    return new Graph(d.graph);
  }();
  return *g;
}

void BM_Sparsify(benchmark::State& state, const std::string& name) {
  const Graph& g = BenchGraph();
  double prune_rate = static_cast<double>(state.range(0)) / 10.0;
  auto sparsifier = CreateSparsifier(name);
  Rng rng(12345);
  for (auto _ : state) {
    Graph h = sparsifier->Sparsify(g, prune_rate, rng);
    benchmark::DoNotOptimize(h.NumEdges());
  }
  state.counters["edges"] = static_cast<double>(g.NumEdges());
  state.counters["prune_rate"] = prune_rate;
}

void RegisterAll() {
  for (const std::string& name : SparsifierNames()) {
    auto info = CreateSparsifier(name)->Info();
    for (int64_t rate : {1, 5, 9}) {
      if (info.prune_rate_control == PruneRateControl::kNone && rate != 5) {
        continue;  // SF / SP-t: output size fixed, one timing suffices
      }
      benchmark::RegisterBenchmark(
          ("Fig14/" + name + "/rate:0." + std::to_string(rate)).c_str(),
          [name](benchmark::State& s) { BM_Sparsify(s, name); })
          ->Arg(rate)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// One-time effective-resistance computation cost (the paper reports it
// separately: 990 s for the real ogbn-proteins on a Xeon 8380).
void BM_EffectiveResistanceComputation(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(777);
  for (auto _ : state) {
    std::vector<double> r = ApproxEffectiveResistances(g, rng);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_EffectiveResistanceComputation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sparsify::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
