// Regenerates paper Figure 2: degree-distribution Bhattacharyya distance vs
// prune rate on the ogbn-proteins stand-in (lower is better).
//
// Expected shape (paper section 4.1): Random is the best (unbiased edge
// sampling keeps the distribution's shape); Local Degree, Rank Degree,
// K-Neighbor, and Forest Fire under-perform because their selection is
// biased by degree.
#include "bench/bench_common.h"
#include "src/metrics/basic.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);
  Dataset d = LoadDatasetScaled("ogbn-proteins", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";

  bench::RunFigure(
      "Figure 2: Degree Distribution Bhattacharyya Distance on "
      "ogbn-proteins",
      "Bd", d.graph, {"RN", "KN", "LD", "RD", "FF"}, opt,
      [](const Graph& original, const Graph& sparsified, Rng&) {
        return DegreeDistributionDistance(original, sparsified);
      },
      0.0);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
