// Regenerates paper Figure 2: degree-distribution Bhattacharyya distance vs
// prune rate on the ogbn-proteins stand-in (lower is better).
//
// Expected shape (paper section 4.1): Random is the best (unbiased edge
// sampling keeps the distribution's shape); Local Degree, Rank Degree,
// K-Neighbor, and Forest Fire under-perform because their selection is
// biased by degree.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 2`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"2"});
}
