// Regenerates paper Figure 3: Laplacian quadratic-form similarity vs prune
// rate on the com-Amazon stand-in (closer to 1 is better).
//
// Expected shape (paper section 4.1): ER-weighted stays near 1 at every
// prune rate — it is the only sparsifier designed to preserve the quadratic
// form. Random (and everything else) decays like the kept-edge fraction.
#include "bench/bench_common.h"
#include "src/metrics/basic.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);
  Dataset d = LoadDatasetScaled("com-Amazon", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";

  bench::RunFigure(
      "Figure 3: Laplacian Quadratic Form Similarity on com-Amazon",
      "qf_sim", d.graph, {"RN", "ER-w", "ER-uw"}, opt,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        return QuadraticFormSimilarity(original, sparsified, 50, rng);
      },
      1.0);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
