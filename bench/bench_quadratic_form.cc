// Regenerates paper Figure 3: Laplacian quadratic-form similarity vs prune
// rate on the com-Amazon stand-in (closer to 1 is better).
//
// Expected shape (paper section 4.1): ER-weighted stays near 1 at every
// prune rate — it is the only sparsifier designed to preserve the quadratic
// form. Random (and everything else) decays like the kept-edge fraction.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 3`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"3"});
}
