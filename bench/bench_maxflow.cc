// Regenerates paper Figure 12: min-cut/max-flow mean stretch factor on the
// ca-HepPh stand-in (closer to 1 is better), sampling s-t pairs connected
// in the original graph.
//
// Expected shape (paper section 4.5): ER-weighted is the clear winner (it
// preserves the Laplacian spectrum, and min-cuts are spectral objects);
// KN and FF are decent; ER-unweighted loses to ER-weighted because removed
// capacity is not compensated; GS and SCAN under-perform.
#include "bench/bench_common.h"
#include "src/metrics/maxflow.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.35, 3);
  Dataset d = LoadDatasetScaled("ca-HepPh", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n\n";

  bench::RunFigure(
      "Figure 12: Min-cut/Max-flow Mean Stretch Factor on ca-HepPh",
      "ratio", d.graph, {"RN", "KN", "FF", "ER-w", "ER-uw"}, opt,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        return MaxFlowStretch(original, sparsified, 60, rng).mean_ratio;
      },
      1.0);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
