// Regenerates paper Figure 12: min-cut/max-flow mean stretch factor on the
// ca-HepPh stand-in (closer to 1 is better), sampling s-t pairs connected
// in the original graph.
//
// Expected shape (paper section 4.5): ER-weighted is the clear winner (it
// preserves the Laplacian spectrum, and min-cuts are spectral objects);
// KN and FF are decent; ER-unweighted loses to ER-weighted because removed
// capacity is not compensated; GS and SCAN under-perform.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 12`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"12"});
}
