// Sweep-throughput benchmark: quantifies the score-once engine win.
//
// For each selected sparsifier it runs the paper's 9-rate sweep grid twice
// on the same BatchRunner —
//   cold:   share_scores(false), the pre-sharing per-cell path (every cell
//           rescoring from scratch), and
//   shared: share_scores(true), one PrepareScores per (sparsifier, run)
//           with the rate axis fanned out as MaskForRate tasks —
// and emits BENCH_sweep.json with cells/sec, the score-vs-mask wall-clock
// split, and the cold/shared speedup per algorithm. The committed
// BENCH_sweep.json at the repo root is this benchmark's single-threaded
// output; CI runs a small grid per push and asserts the shared mode
// schedules fewer score computations than cells.
//
// Usage: bench_sweep_throughput [--dataset=ego-Facebook] [--scale=0.3]
//          [--algos=LD,ER-uw,SCAN] [--runs=1] [--threads=1] [--seed=42]
//          [--repeat=1] [--out=BENCH_sweep.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/batch_runner.h"
#include "src/graph/datasets.h"
#include "src/util/timer.h"

namespace sparsify::bench {
namespace {

struct SweepBenchOptions {
  std::string dataset = "ego-Facebook";
  double scale = 0.3;
  std::vector<std::string> algos = {"LD", "ER-uw", "SCAN"};
  int runs = 1;
  int threads = 1;
  int repeat = 1;  // timing repeats; the minimum is reported
  uint64_t seed = 42;
  std::string out = "BENCH_sweep.json";
};

struct AlgoResult {
  std::string name;
  size_t cells = 0;
  size_t score_groups = 0;
  double cold_seconds = 0.0;
  double shared_seconds = 0.0;
  double score_seconds = 0.0;
  double mask_seconds = 0.0;
};

bool ParseSweepBenchArgs(int argc, char** argv, SweepBenchOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--dataset=", 10) == 0) {
      opt->dataset = arg + 10;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt->scale = ParseDoubleFlag(arg + 8, "--scale");
    } else if (std::strncmp(arg, "--algos=", 8) == 0) {
      opt->algos = SplitCsvFlag(arg + 8);
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      opt->runs = static_cast<int>(ParseIntFlag(arg + 7, "--runs"));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt->threads = static_cast<int>(ParseIntFlag(arg + 10, "--threads"));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt->repeat = static_cast<int>(ParseIntFlag(arg + 9, "--repeat"));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt->seed = ParseUint64Flag(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt->out = arg + 6;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n"
                << "usage: bench_sweep_throughput [--dataset=NAME] "
                   "[--scale=f] [--algos=A,B] [--runs=n] [--threads=n] "
                   "[--repeat=n] [--seed=n] [--out=FILE]\n";
      return false;
    }
  }
  if (opt->algos.empty() || opt->repeat < 1 || opt->runs < 1) {
    std::cerr << "error: need at least one --algos entry, --repeat >= 1, "
                 "and --runs >= 1\n";
    return false;
  }
  return true;
}

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int SweepThroughputMain(int argc, char** argv) {
  SweepBenchOptions opt;
  if (!ParseSweepBenchArgs(argc, argv, &opt)) return 2;

  Dataset d = LoadDatasetScaled(opt.dataset, opt.scale);
  std::cout << "# " << opt.dataset << " @ " << opt.scale << ": "
            << d.graph.Summary() << "\n";

  // Cheap rng-free metric: the benchmark measures the engine, not a
  // metric implementation.
  BatchMetricFn metric = [](const Graph& orig, const Graph& sp, Rng&) {
    return static_cast<double>(sp.NumEdges()) /
           static_cast<double>(std::max<EdgeId>(1, orig.NumEdges()));
  };

  BatchRunner runner(opt.threads);
  std::vector<AlgoResult> results;
  for (const std::string& algo : opt.algos) {
    BatchSpec spec;
    spec.sparsifiers = {algo};
    spec.runs = opt.runs;
    spec.master_seed = opt.seed;
    std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);

    AlgoResult r;
    r.name = algo;
    r.cells = tasks.size();
    for (int rep = 0; rep < opt.repeat; ++rep) {
      runner.set_share_scores(false);
      Timer cold_timer;
      runner.RunTasks(d.graph, tasks, spec.master_seed, metric);
      double cold = cold_timer.Seconds();

      runner.set_share_scores(true);
      BatchRunStats stats;
      Timer shared_timer;
      runner.RunTasks(d.graph, tasks, spec.master_seed, metric, nullptr,
                      &stats);
      double shared = shared_timer.Seconds();

      if (rep == 0 || cold < r.cold_seconds) r.cold_seconds = cold;
      if (rep == 0 || shared < r.shared_seconds) {
        r.shared_seconds = shared;
        r.score_seconds = stats.score_seconds;
        r.mask_seconds = stats.mask_seconds;
      }
      r.score_groups = stats.score_groups;
    }
    double speedup =
        r.shared_seconds > 0 ? r.cold_seconds / r.shared_seconds : 0.0;
    std::printf(
        "%-6s cells=%zu score_groups=%zu cold=%.3fs shared=%.3fs "
        "(score %.3fs + mask %.3fs) speedup=%.2fx %.1f cells/s\n",
        algo.c_str(), r.cells, r.score_groups, r.cold_seconds,
        r.shared_seconds, r.score_seconds, r.mask_seconds, speedup,
        r.shared_seconds > 0 ? static_cast<double>(r.cells) /
                                   r.shared_seconds
                             : 0.0);
    results.push_back(std::move(r));
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"sweep_throughput\",\n";
  json << "  \"dataset\": \"" << opt.dataset << "\",\n";
  json << "  \"scale\": " << Json(opt.scale) << ",\n";
  json << "  \"graph\": {\"vertices\": " << d.graph.NumVertices()
       << ", \"edges\": " << d.graph.NumEdges() << "},\n";
  json << "  \"threads\": " << opt.threads << ",\n";
  json << "  \"runs\": " << opt.runs << ",\n";
  json << "  \"repeat\": " << opt.repeat << ",\n";
  json << "  \"seed\": " << opt.seed << ",\n";
  json << "  \"algos\": [\n";
  double total_cold = 0.0, total_shared = 0.0;
  size_t total_cells = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const AlgoResult& r = results[i];
    total_cold += r.cold_seconds;
    total_shared += r.shared_seconds;
    total_cells += r.cells;
    json << "    {\"name\": \"" << r.name << "\", \"cells\": " << r.cells
         << ", \"score_groups\": " << r.score_groups
         << ", \"cold_seconds\": " << Json(r.cold_seconds)
         << ", \"shared_seconds\": " << Json(r.shared_seconds)
         << ", \"score_seconds\": " << Json(r.score_seconds)
         << ", \"mask_seconds\": " << Json(r.mask_seconds)
         << ", \"speedup\": "
         << Json(r.shared_seconds > 0 ? r.cold_seconds / r.shared_seconds
                                      : 0.0)
         << ", \"cells_per_second_shared\": "
         << Json(r.shared_seconds > 0
                     ? static_cast<double>(r.cells) / r.shared_seconds
                     : 0.0)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"total\": {\"cells\": " << total_cells
       << ", \"cold_seconds\": " << Json(total_cold)
       << ", \"shared_seconds\": " << Json(total_shared)
       << ", \"speedup\": "
       << Json(total_shared > 0 ? total_cold / total_shared : 0.0) << "}\n";
  json << "}\n";

  std::ofstream out(opt.out, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << opt.out << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "# wrote " << opt.out << "\n";
  return 0;
}

}  // namespace sparsify::bench

int main(int argc, char** argv) {
  return sparsify::bench::SweepThroughputMain(argc, argv);
}
