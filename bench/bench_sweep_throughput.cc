// Sweep-throughput benchmark: quantifies the two work-sharing axes of the
// batch engine.
//
// Section 1 — rate axis (score-once). For each selected sparsifier it runs
// the paper's 9-rate sweep grid twice on the same BatchRunner —
//   cold:   share_scores(false), the pre-sharing per-cell path (every cell
//           rescoring from scratch), and
//   shared: share_scores(true), one PrepareScores per (sparsifier, run)
//           with the rate axis fanned out as MaskForRate tasks —
// and reports cells/sec, the score/subgraph/metric wall-clock split, and
// the cold/shared speedup per algorithm.
//
// Section 2 — metric axis (sparsify-once). Over the full selected-algo grid
// it evaluates a multi-metric set twice —
//   per-metric: one single-metric engine pass per metric, i.e. each metric
//               re-scores and re-materializes every subgraph (what a
//               per-metric-keyed sweep loop used to do), and
//   shared:     one RunTasksMulti pass materializing each cell's subgraph
//               once and fanning the metrics out over it —
// and reports the speedup plus the subgraph_builds vs cells×metrics
// counters. CI asserts score_groups < cells and
// subgraph_builds < cells_times_metrics via jq on the emitted JSON; the
// committed BENCH_sweep.json at the repo root is this benchmark's
// single-threaded output.
//
// Section 3 — distance metrics (traversal kernel). Over the same grid it
// runs the BFS/SSSP-bound metric set (--distance_metrics, default
// spsp,eccentricity,diameter) in one RunTasksMulti pass and reports
// units/sec plus the wall-clock split. These metrics are dominated by the
// shared traversal kernel (src/graph/traversal.h) — scratch-reusing,
// direction-optimizing BFS — so this section is the regression tripwire
// for distance-metric throughput (bench_traversal isolates the kernel
// itself).
//
// Usage: bench_sweep_throughput [--dataset=ego-Facebook] [--scale=0.3]
//          [--algos=LD,ER-uw,SCAN] [--metrics=connectivity,isolated,..]
//          [--distance_metrics=spsp,eccentricity,diameter]
//          [--runs=1] [--threads=1] [--seed=42] [--repeat=1]
//          [--out=BENCH_sweep.json] [--trace=trace.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cli/metrics.h"
#include "src/engine/batch_runner.h"
#include "src/graph/datasets.h"
#include "src/util/timer.h"

namespace sparsify::bench {
namespace {

struct SweepBenchOptions {
  std::string dataset = "ego-Facebook";
  double scale = 0.3;
  std::vector<std::string> algos = {"LD", "ER-uw", "SCAN"};
  // The multi-metric section's set: cheap structural metrics, so the
  // measured win is the eliminated scoring + subgraph work (the metric
  // evaluations themselves run in both modes and dilute the ratio as they
  // grow — swap in heavier metrics to see that regime).
  std::vector<std::string> metrics = {"connectivity", "isolated", "degree",
                                      "kcore"};
  // Section 3's BFS/SSSP-bound set, evaluated through the traversal
  // kernel.
  std::vector<std::string> distance_metrics = {"spsp", "eccentricity",
                                               "diameter"};
  int runs = 1;
  int threads = 1;
  int repeat = 1;  // timing repeats; the minimum is reported
  uint64_t seed = 42;
  std::string out = "BENCH_sweep.json";
  std::string trace;  // "" = spans stay disabled
};

struct AlgoResult {
  std::string name;
  size_t cells = 0;
  size_t score_groups = 0;
  double cold_seconds = 0.0;
  double shared_seconds = 0.0;
  double score_seconds = 0.0;
  double subgraph_seconds = 0.0;
  double metric_seconds = 0.0;
};

struct MultiMetricResult {
  size_t cells = 0;
  size_t metric_units = 0;  // cells × metrics
  size_t subgraph_builds = 0;
  size_t score_groups = 0;
  double per_metric_seconds = 0.0;  // one single-metric pass per metric
  double shared_seconds = 0.0;      // one multi-metric pass
  double subgraph_seconds = 0.0;
  double metric_seconds = 0.0;
};

bool ParseSweepBenchArgs(int argc, char** argv, SweepBenchOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--dataset=", 10) == 0) {
      opt->dataset = arg + 10;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt->scale = ParseDoubleFlag(arg + 8, "--scale");
    } else if (std::strncmp(arg, "--algos=", 8) == 0) {
      opt->algos = SplitCsvFlag(arg + 8);
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      opt->metrics = SplitCsvFlag(arg + 10);
    } else if (std::strncmp(arg, "--distance_metrics=", 19) == 0) {
      opt->distance_metrics = SplitCsvFlag(arg + 19);
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      opt->runs = static_cast<int>(ParseIntFlag(arg + 7, "--runs"));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt->threads = static_cast<int>(ParseIntFlag(arg + 10, "--threads"));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt->repeat = static_cast<int>(ParseIntFlag(arg + 9, "--repeat"));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt->seed = ParseUint64Flag(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt->out = arg + 6;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      opt->trace = arg + 8;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n"
                << "usage: bench_sweep_throughput [--dataset=NAME] "
                   "[--scale=f] [--algos=A,B] [--metrics=a,b] [--runs=n] "
                   "[--threads=n] [--repeat=n] [--seed=n] [--out=FILE] "
                   "[--trace=FILE]\n";
      return false;
    }
  }
  if (opt->algos.empty() || opt->metrics.empty() ||
      opt->distance_metrics.empty() || opt->repeat < 1 || opt->runs < 1) {
    std::cerr << "error: need at least one --algos, --metrics and "
                 "--distance_metrics entry, --repeat >= 1, and --runs >= "
                 "1\n";
    return false;
  }
  return true;
}

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonStringList(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    out += "\"" + items[i] + "\"" + (i + 1 < items.size() ? ", " : "");
  }
  return out + "]";
}

}  // namespace

int SweepThroughputMain(int argc, char** argv) {
  SweepBenchOptions opt;
  if (!ParseSweepBenchArgs(argc, argv, &opt)) return 2;
  BenchTraceScope trace_scope(opt.trace);

  Dataset d = LoadDatasetScaled(opt.dataset, opt.scale);
  std::string dataset_key = cli::DatasetCellName(opt.dataset, opt.scale);
  std::cout << "# " << dataset_key << ": " << d.graph.Summary() << "\n";

  // Section 1 metric: cheap and rng-free — this section measures the
  // scoring engine, not a metric implementation.
  BatchMetricFn metric = [](const Graph& orig, const Graph& sp, Rng&) {
    return static_cast<double>(sp.NumEdges()) /
           static_cast<double>(std::max<EdgeId>(1, orig.NumEdges()));
  };

  BatchRunner runner(opt.threads);
  std::vector<AlgoResult> results;
  for (const std::string& algo : opt.algos) {
    BatchSpec spec;
    spec.sparsifiers = {algo};
    spec.runs = opt.runs;
    spec.master_seed = opt.seed;
    std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);

    AlgoResult r;
    r.name = algo;
    r.cells = tasks.size();
    for (int rep = 0; rep < opt.repeat; ++rep) {
      runner.set_share_scores(false);
      Timer cold_timer;
      runner.RunTasks(d.graph, tasks, spec.master_seed, metric);
      double cold = cold_timer.Seconds();

      runner.set_share_scores(true);
      BatchRunStats stats;
      Timer shared_timer;
      runner.RunTasks(d.graph, tasks, spec.master_seed, metric, nullptr,
                      &stats);
      double shared = shared_timer.Seconds();

      if (rep == 0 || cold < r.cold_seconds) r.cold_seconds = cold;
      if (rep == 0 || shared < r.shared_seconds) {
        r.shared_seconds = shared;
        r.score_seconds = stats.score_seconds;
        r.subgraph_seconds = stats.subgraph_seconds;
        r.metric_seconds = stats.metric_seconds;
      }
      r.score_groups = stats.score_groups;
    }
    double speedup =
        r.shared_seconds > 0 ? r.cold_seconds / r.shared_seconds : 0.0;
    std::printf(
        "%-6s cells=%zu score_groups=%zu cold=%.3fs shared=%.3fs "
        "(score %.3fs + subgraph %.3fs + metric %.3fs) speedup=%.2fx "
        "%.1f cells/s\n",
        algo.c_str(), r.cells, r.score_groups, r.cold_seconds,
        r.shared_seconds, r.score_seconds, r.subgraph_seconds,
        r.metric_seconds, speedup,
        r.shared_seconds > 0 ? static_cast<double>(r.cells) /
                                   r.shared_seconds
                             : 0.0);
    results.push_back(std::move(r));
  }

  // Section 2 — metric axis: the full selected-algo grid, every metric.
  BatchSpec multi_spec;
  multi_spec.sparsifiers = opt.algos;
  multi_spec.runs = opt.runs;
  multi_spec.master_seed = opt.seed;
  std::vector<BatchTask> multi_tasks = BatchRunner::ExpandGrid(multi_spec);
  std::vector<BatchMetric> named_metrics;
  for (const std::string& name : opt.metrics) {
    named_metrics.push_back(BatchMetric{name, cli::FindMetric(name)});
  }

  MultiMetricResult mm;
  mm.cells = multi_tasks.size();
  runner.set_share_scores(true);
  for (int rep = 0; rep < opt.repeat; ++rep) {
    // Baseline: per-metric re-sparsification — each metric runs its own
    // engine pass, re-scoring and re-materializing every subgraph (the
    // pre-multi-metric sweep loop). Scoring is still shared along the
    // rate axis, so this baseline is the post-PR-3 state of the art.
    Timer per_metric_timer;
    for (const BatchMetric& m : named_metrics) {
      runner.RunTasksMulti(d.graph, dataset_key, multi_tasks, opt.seed, {m});
    }
    double per_metric = per_metric_timer.Seconds();

    // Shared: one pass, each subgraph materialized once, metrics fanned
    // out over it.
    BatchRunStats stats;
    Timer shared_timer;
    runner.RunTasksMulti(d.graph, dataset_key, multi_tasks, opt.seed,
                         named_metrics, nullptr, &stats);
    double shared = shared_timer.Seconds();

    if (rep == 0 || per_metric < mm.per_metric_seconds) {
      mm.per_metric_seconds = per_metric;
    }
    if (rep == 0 || shared < mm.shared_seconds) {
      mm.shared_seconds = shared;
      mm.subgraph_seconds = stats.subgraph_seconds;
      mm.metric_seconds = stats.metric_seconds;
    }
    mm.metric_units = stats.metric_units;
    mm.subgraph_builds = stats.subgraph_builds;
    mm.score_groups = stats.score_groups;
  }
  // Section 3 — distance metrics: one multi-metric pass of the
  // BFS/SSSP-bound set over the same grid. All traversal work funnels
  // through the shared kernel; the reported units/sec is the number this
  // PR-lane optimizes.
  std::vector<BatchMetric> dist_metrics;
  for (const std::string& name : opt.distance_metrics) {
    dist_metrics.push_back(BatchMetric{name, cli::FindMetric(name)});
  }
  MultiMetricResult dm;
  dm.cells = multi_tasks.size();
  for (int rep = 0; rep < opt.repeat; ++rep) {
    BatchRunStats stats;
    Timer dist_timer;
    runner.RunTasksMulti(d.graph, dataset_key, multi_tasks, opt.seed,
                         dist_metrics, nullptr, &stats);
    double secs = dist_timer.Seconds();
    if (rep == 0 || secs < dm.shared_seconds) {
      dm.shared_seconds = secs;
      dm.subgraph_seconds = stats.subgraph_seconds;
      dm.metric_seconds = stats.metric_seconds;
    }
    dm.metric_units = stats.metric_units;
    dm.subgraph_builds = stats.subgraph_builds;
    dm.score_groups = stats.score_groups;
  }
  std::printf(
      "dist   cells=%zu metrics=%zu units=%zu shared=%.3fs "
      "(subgraph %.3fs + metric %.3fs) %.1f units/s\n",
      dm.cells, opt.distance_metrics.size(), dm.metric_units,
      dm.shared_seconds, dm.subgraph_seconds, dm.metric_seconds,
      dm.shared_seconds > 0
          ? static_cast<double>(dm.metric_units) / dm.shared_seconds
          : 0.0);

  double mm_speedup =
      mm.shared_seconds > 0 ? mm.per_metric_seconds / mm.shared_seconds : 0.0;
  std::printf(
      "multi  cells=%zu metrics=%zu units=%zu subgraph_builds=%zu "
      "per-metric=%.3fs shared=%.3fs (subgraph %.3fs + metric %.3fs) "
      "speedup=%.2fx %.1f units/s\n",
      mm.cells, opt.metrics.size(), mm.metric_units, mm.subgraph_builds,
      mm.per_metric_seconds, mm.shared_seconds, mm.subgraph_seconds,
      mm.metric_seconds, mm_speedup,
      mm.shared_seconds > 0
          ? static_cast<double>(mm.metric_units) / mm.shared_seconds
          : 0.0);

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"sweep_throughput\",\n";
  json << "  \"meta\": "
       << BenchMetaJson(opt.threads, opt.dataset + "@" + Json(opt.scale))
       << ",\n";
  json << "  \"dataset\": \"" << opt.dataset << "\",\n";
  json << "  \"scale\": " << Json(opt.scale) << ",\n";
  json << "  \"graph\": {\"vertices\": " << d.graph.NumVertices()
       << ", \"edges\": " << d.graph.NumEdges() << "},\n";
  json << "  \"threads\": " << opt.threads << ",\n";
  json << "  \"runs\": " << opt.runs << ",\n";
  json << "  \"repeat\": " << opt.repeat << ",\n";
  json << "  \"seed\": " << opt.seed << ",\n";
  json << "  \"algos\": [\n";
  double total_cold = 0.0, total_shared = 0.0;
  size_t total_cells = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const AlgoResult& r = results[i];
    total_cold += r.cold_seconds;
    total_shared += r.shared_seconds;
    total_cells += r.cells;
    json << "    {\"name\": \"" << r.name << "\", \"cells\": " << r.cells
         << ", \"score_groups\": " << r.score_groups
         << ", \"cold_seconds\": " << Json(r.cold_seconds)
         << ", \"shared_seconds\": " << Json(r.shared_seconds)
         << ", \"score_seconds\": " << Json(r.score_seconds)
         << ", \"subgraph_seconds\": " << Json(r.subgraph_seconds)
         << ", \"metric_seconds\": " << Json(r.metric_seconds)
         << ", \"speedup\": "
         << Json(r.shared_seconds > 0 ? r.cold_seconds / r.shared_seconds
                                      : 0.0)
         << ", \"cells_per_second_shared\": "
         << Json(r.shared_seconds > 0
                     ? static_cast<double>(r.cells) / r.shared_seconds
                     : 0.0)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"total\": {\"cells\": " << total_cells
       << ", \"cold_seconds\": " << Json(total_cold)
       << ", \"shared_seconds\": " << Json(total_shared)
       << ", \"speedup\": "
       << Json(total_shared > 0 ? total_cold / total_shared : 0.0) << "},\n";
  json << "  \"multi_metric\": {\"metrics\": "
       << JsonStringList(opt.metrics) << ", \"cells\": " << mm.cells
       << ", \"cells_times_metrics\": " << mm.metric_units
       << ", \"subgraph_builds\": " << mm.subgraph_builds
       << ", \"score_groups\": " << mm.score_groups
       << ", \"per_metric_seconds\": " << Json(mm.per_metric_seconds)
       << ", \"shared_seconds\": " << Json(mm.shared_seconds)
       << ", \"subgraph_seconds\": " << Json(mm.subgraph_seconds)
       << ", \"metric_seconds\": " << Json(mm.metric_seconds)
       << ", \"speedup\": " << Json(mm_speedup)
       << ", \"units_per_second_shared\": "
       << Json(mm.shared_seconds > 0
                   ? static_cast<double>(mm.metric_units) / mm.shared_seconds
                   : 0.0)
       << "},\n";
  json << "  \"distance_metrics\": {\"metrics\": "
       << JsonStringList(opt.distance_metrics) << ", \"cells\": " << dm.cells
       << ", \"units\": " << dm.metric_units
       << ", \"subgraph_builds\": " << dm.subgraph_builds
       << ", \"shared_seconds\": " << Json(dm.shared_seconds)
       << ", \"subgraph_seconds\": " << Json(dm.subgraph_seconds)
       << ", \"metric_seconds\": " << Json(dm.metric_seconds)
       << ", \"units_per_second\": "
       << Json(dm.shared_seconds > 0
                   ? static_cast<double>(dm.metric_units) / dm.shared_seconds
                   : 0.0)
       << "}\n";
  json << "}\n";

  std::ofstream out(opt.out, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << opt.out << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "# wrote " << opt.out << "\n";
  return 0;
}

}  // namespace sparsify::bench

int main(int argc, char** argv) {
  return sparsify::bench::SweepThroughputMain(argc, argv);
}
