// Regenerates paper Figure 4: (a) adjusted SPSP stretch factor and (b)
// adjusted eccentricity stretch on the ca-AstroPh stand-in, and (c) the
// approximate diameter on the ego-Facebook stand-in.
//
// "Adjusted" means points are only meaningful while the connectivity damage
// stays under the paper's 20% threshold; the harness reports the companion
// unreachable ratio so the reader can apply the same cut.
//
// Expected shape (paper section 4.2): LD and RD track stretch ~1 the
// longest (they keep hub edges that lie on many shortest paths); SP-t obeys
// its stretch bound but is coarser; GS and SCAN blow up early.
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 4a 4a-unreach 4b 4c`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv,
                                          {"4a", "4a-unreach", "4b", "4c"});
}
