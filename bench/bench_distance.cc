// Regenerates paper Figure 4: (a) adjusted SPSP stretch factor and (b)
// adjusted eccentricity stretch on the ca-AstroPh stand-in, and (c) the
// approximate diameter on the ego-Facebook stand-in.
//
// "Adjusted" means points are only meaningful while the connectivity damage
// stays under the paper's 20% threshold; the harness reports the companion
// unreachable ratio so the reader can apply the same cut.
//
// Expected shape (paper section 4.2): LD and RD track stretch ~1 the
// longest (they keep hub edges that lie on many shortest paths); SP-t obeys
// its stretch bound but is coarser; GS and SCAN blow up early.
#include "bench/bench_common.h"
#include "src/metrics/distance.h"

namespace sparsify {
namespace {

const std::vector<std::string> kAll = {"RN", "KN",   "RD",   "LD",  "SF",
                                       "SP-3", "SP-5", "SP-7", "FF",  "LS",
                                       "GS", "LSim", "SCAN", "ER-uw"};

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.4, 3);
  Dataset astro = LoadDatasetScaled("ca-AstroPh", opt.scale);
  std::cout << "Dataset: " << astro.info.name << " ("
            << astro.graph.Summary() << ")\n\n";

  bench::RunFigure(
      "Figure 4a: SPSP Mean Stretch Factor on ca-AstroPh", "stretch",
      astro.graph, kAll, opt,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        return SpspStretch(original, sparsified, 2000, rng).mean_stretch;
      },
      1.0);

  bench::RunFigure(
      "Figure 4a (companion): SPSP unreachable fraction", "unreach",
      astro.graph, kAll, opt,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        return SpspStretch(original, sparsified, 2000, rng).unreachable;
      },
      0.0);

  bench::RunFigure(
      "Figure 4b: Eccentricity Mean Stretch Factor on ca-AstroPh",
      "stretch", astro.graph, kAll, opt,
      [](const Graph& original, const Graph& sparsified, Rng& rng) {
        return EccentricityStretch(original, sparsified, 60, rng)
            .mean_stretch;
      },
      1.0);

  Dataset fb = LoadDatasetScaled("ego-Facebook", opt.scale);
  std::cout << "Dataset: " << fb.info.name << " (" << fb.graph.Summary()
            << ")\n\n";
  Rng diam_rng(7);
  double truth = ApproxDiameter(fb.graph, 6, diam_rng);
  bench::RunFigure(
      "Figure 4c: Diameter on ego-Facebook", "diameter", fb.graph, kAll,
      opt,
      [](const Graph&, const Graph& sparsified, Rng& rng) {
        return ApproxDiameter(sparsified, 4, rng);
      },
      truth);
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
