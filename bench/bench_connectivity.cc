// Regenerates paper Figure 1: (a) source-destination pair unreachable ratio
// and (b) vertex isolated ratio vs prune rate, on the ca-AstroPh stand-in.
//
// Expected shape (paper section 4.1): KN / LD / LSim / ER keep both ratios
// low; SF and SP-t preserve connectivity exactly; RN degrades steadily;
// GS and SCAN are the worst because they keep intra-community edges.
//
// Thin wrapper: the figure specs live in src/cli/figures.cc; the same
// sweeps run via `sparsify_cli figure 1a 1b` (optionally against a
// persistent --store).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"1a", "1b"});
}
