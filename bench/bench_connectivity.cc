// Regenerates paper Figure 1: (a) source-destination pair unreachable ratio
// and (b) vertex isolated ratio vs prune rate, on the ca-AstroPh stand-in.
//
// Expected shape (paper section 4.1): KN / LD / LSim / ER keep both ratios
// low; SF and SP-t preserve connectivity exactly; RN degrades steadily;
// GS and SCAN are the worst because they keep intra-community edges.
#include "bench/bench_common.h"
#include "src/metrics/components.h"

namespace sparsify {
namespace {

const std::vector<std::string> kAll = {"RN", "KN",   "RD",   "LD",  "SF",
                                       "SP-3", "SP-5", "SP-7", "FF",  "LS",
                                       "GS", "LSim", "SCAN", "ER-uw"};

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);
  Dataset d = LoadDatasetScaled("ca-AstroPh", opt.scale);
  std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
            << ")\n";
  std::cout << "Stand-in: " << d.info.standin << "\n\n";

  bench::RunFigure(
      "Figure 1a: Pair Unreachable Ratio on ca-AstroPh", "unreach", d.graph,
      kAll, opt,
      [](const Graph&, const Graph& sparsified, Rng&) {
        return UnreachableRatio(sparsified);
      },
      UnreachableRatio(d.graph));

  bench::RunFigure(
      "Figure 1b: Vertex Isolated Ratio on ca-AstroPh", "isolated", d.graph,
      kAll, opt,
      [](const Graph&, const Graph& sparsified, Rng&) {
        return IsolatedRatio(sparsified);
      },
      IsolatedRatio(d.graph));
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
