// Regenerates paper Figure 9: (a) mean clustering coefficient on the
// com-Amazon stand-in and (b) global clustering coefficient on the
// human_gene2 stand-in (closer to the full-graph green line is better).
//
// Expected shape (paper section 4.4): NO sparsifier preserves clustering
// coefficients — they all decay roughly linearly with the prune rate;
// LSim / GS / SCAN may bump MCC slightly at low prune rates; SF and SP-t
// pin MCC at 0 (forests and sparse spanners have few or no triangles).
//
// Thin wrapper over the figure registry (src/cli/figures.cc); equivalent
// to `sparsify_cli figure 9a 9b`.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return sparsify::bench::FigureBenchMain(argc, argv, {"9a", "9b"});
}
