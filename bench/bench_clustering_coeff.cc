// Regenerates paper Figure 9: (a) mean clustering coefficient on the
// com-Amazon stand-in and (b) global clustering coefficient on the
// human_gene2 stand-in (closer to the full-graph green line is better).
//
// Expected shape (paper section 4.4): NO sparsifier preserves clustering
// coefficients — they all decay roughly linearly with the prune rate;
// LSim / GS / SCAN may bump MCC slightly at low prune rates; SF and SP-t
// pin MCC at 0 (forests and sparse spanners have few or no triangles).
#include "bench/bench_common.h"
#include "src/metrics/clustering.h"

namespace sparsify {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseOptions(argc, argv, 0.5, 3);

  {
    Dataset d = LoadDatasetScaled("com-Amazon", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    bench::RunFigure(
        "Figure 9a: Mean Clustering Coefficient on com-Amazon", "MCC",
        d.graph,
        {"RN", "KN", "SF", "SP-3", "SP-5", "SP-7", "LSim", "GS", "SCAN"},
        opt,
        [](const Graph&, const Graph& sparsified, Rng&) {
          return MeanClusteringCoefficient(sparsified);
        },
        MeanClusteringCoefficient(d.graph));
  }

  {
    Dataset d = LoadDatasetScaled("human_gene2", opt.scale);
    std::cout << "Dataset: " << d.info.name << " (" << d.graph.Summary()
              << ")\n\n";
    bench::RunFigure(
        "Figure 9b: Global Clustering Coefficient on human_gene2", "GCC",
        d.graph, {"RN", "KN", "LSim", "GS", "SCAN", "ER-w"}, opt,
        [](const Graph&, const Graph& sparsified, Rng&) {
          return GlobalClusteringCoefficient(sparsified);
        },
        GlobalClusteringCoefficient(d.graph));
  }
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  sparsify::Run(argc, argv);
  return 0;
}
