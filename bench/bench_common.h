// Shared helpers for the figure-regeneration benches.
//
// Every bench binary accepts:
//   --scale=<f>   dataset size multiplier (default per bench; smaller =
//                 faster); datasets are synthetic stand-ins, see DESIGN.md
//   --runs=<n>    runs per non-deterministic sparsifier (paper: 10)
//   --threads=<n> worker threads for the batch engine (default: hardware
//                 concurrency; output is identical at any thread count)
//   --csv         emit CSV rows instead of pivot tables
#ifndef SPARSIFY_BENCH_BENCH_COMMON_H_
#define SPARSIFY_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/engine/batch_runner.h"
#include "src/eval/experiment.h"
#include "src/graph/datasets.h"

namespace sparsify::bench {

struct BenchOptions {
  double scale = 0.5;
  int runs = 3;
  int threads = 0;  // <= 0 selects hardware concurrency
  bool csv = false;
};

inline BenchOptions ParseOptions(int argc, char** argv,
                                 double default_scale = 0.5,
                                 int default_runs = 3) {
  BenchOptions opt;
  opt.scale = default_scale;
  opt.runs = default_runs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--runs=", 0) == 0) {
      opt.runs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help") {
      std::cout << "usage: bench [--scale=f] [--runs=n] [--threads=n] "
                   "[--csv]\n";
      std::exit(0);
    }
  }
  return opt;
}

/// Runs one figure's sweep and prints it in the requested format.
inline void RunFigure(const std::string& title, const std::string& value_name,
                      const Graph& g, const std::vector<std::string>& sparsifiers,
                      const BenchOptions& opt, const MetricFn& metric,
                      std::optional<double> reference = std::nullopt,
                      std::vector<double> rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                                   0.6, 0.7, 0.8, 0.9}) {
  SweepConfig config;
  config.sparsifiers = sparsifiers;
  config.prune_rates = std::move(rates);
  config.runs_nondeterministic = opt.runs;
  // One engine per bench process (figures run several sweeps and would
  // otherwise pay pool setup/teardown for each); sized by the first call's
  // --threads, which is constant within a bench run.
  static BatchRunner runner(opt.threads);
  auto series = RunSweep(g, config, metric, runner);
  if (opt.csv) {
    PrintSeriesCsv(std::cout, title, series);
  } else {
    PrintSeriesTable(std::cout, title, value_name, series, reference);
  }
}

}  // namespace sparsify::bench

#endif  // SPARSIFY_BENCH_BENCH_COMMON_H_
