// Shared helpers for the figure-regeneration benches.
//
// Every bench binary accepts:
//   --scale=<f>   dataset size multiplier (default per bench; smaller =
//                 faster); datasets are synthetic stand-ins, see DESIGN.md
//   --runs=<n>    runs per non-deterministic sparsifier (paper: 10)
//   --threads=<n> worker threads for the batch engine (default: hardware
//                 concurrency; output is identical at any thread count)
//   --seed=<n>    master seed of the sweep grid (default 42)
//   --csv         emit CSV rows instead of pivot tables
//   --store=<dir> persist every completed cell to dir/results.jsonl
//   --resume      consult the store first; schedule only missing cells
//
// Unknown --flags are an error, not a silent no-op: a typo like
// `--thread=8` must abort instead of quietly running a default config.
#ifndef SPARSIFY_BENCH_BENCH_COMMON_H_
#define SPARSIFY_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/figures.h"
#include "src/engine/batch_runner.h"
#include "src/eval/experiment.h"
#include "src/graph/datasets.h"
#include "src/obs/trace.h"

namespace sparsify::bench {

/// Attribution `meta` object for the BENCH_*.json emitters, so the perf
/// trajectory is attributable run-to-run. Environment-passed fields (CI
/// sets SPARSIFY_GIT_REV to the commit sha and SPARSIFY_BENCH_TIMESTAMP
/// to an ISO-8601 UTC stamp) default to "unknown" locally — the bench
/// itself never reads a clock or shells out to git, keeping its output a
/// pure function of inputs + environment.
inline std::string BenchMetaJson(int threads, const std::string& datasets) {
  auto escape = [](const char* s) {
    std::string out;
    for (; s != nullptr && *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(*s) >= 0x20) out.push_back(*s);
    }
    return out;
  };
  std::ostringstream meta;
  meta << "{\"threads\": " << threads << ", \"git_rev\": \""
       << escape(std::getenv("SPARSIFY_GIT_REV")) << "\", \"timestamp\": \""
       << escape(std::getenv("SPARSIFY_BENCH_TIMESTAMP"))
       << "\", \"datasets\": \"" << escape(datasets.c_str()) << "\"}";
  return meta.str();
}

/// Shared --trace=FILE handling: arms the span tracer for the bench run
/// and writes the drained spans as Chrome trace JSON on destruction.
/// Inert (one relaxed load per span site) when the path is empty.
class BenchTraceScope {
 public:
  explicit BenchTraceScope(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) obs::StartTracing();
  }
  ~BenchTraceScope() {
    if (path_.empty()) return;
    obs::StopTracing();
    std::vector<obs::TraceEvent> events = obs::DrainTrace();
    if (obs::WriteChromeTraceFile(events, path_)) {
      std::cout << "# trace: " << events.size() << " spans -> " << path_
                << "\n";
    } else {
      std::cerr << "error: cannot write trace file " << path_ << "\n";
    }
  }

  BenchTraceScope(const BenchTraceScope&) = delete;
  BenchTraceScope& operator=(const BenchTraceScope&) = delete;

 private:
  std::string path_;
};

struct BenchOptions {
  double scale = 0.5;
  int runs = 3;
  int threads = 0;  // <= 0 selects hardware concurrency
  uint64_t seed = 42;
  bool csv = false;
  std::string store;  // empty = no persistence
  bool resume = false;
  std::string trace;  // empty = spans stay disabled
};

inline void PrintBenchUsage(std::ostream& os) {
  os << "usage: bench [--scale=f] [--runs=n] [--threads=n] [--seed=n] "
        "[--csv] [--store=dir] [--resume] [--trace=file]\n";
}

/// Strict numeric flag values: `--runs=3x` or `--scale=abc` must abort,
/// not silently run with 0 (same discipline as unknown flag names).
inline double ParseDoubleFlag(const char* value, const char* flag) {
  char* end = nullptr;
  double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::cerr << "error: invalid number for " << flag << ": '" << value
              << "'\n";
    std::exit(2);
  }
  return v;
}

inline long ParseIntFlag(const char* value, const char* flag) {
  char* end = nullptr;
  long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::cerr << "error: invalid integer for " << flag << ": '" << value
              << "'\n";
    std::exit(2);
  }
  return v;
}

inline uint64_t ParseUint64Flag(const char* value, const char* flag) {
  char* end = nullptr;
  uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || value[0] == '-') {
    std::cerr << "error: invalid integer for " << flag << ": '" << value
              << "'\n";
    std::exit(2);
  }
  return v;
}

/// Splits a comma-separated flag value; empty tokens are dropped.
inline std::vector<std::string> SplitCsvFlag(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

inline BenchOptions ParseOptions(int argc, char** argv,
                                 double default_scale = 0.5,
                                 int default_runs = 3) {
  BenchOptions opt;
  opt.scale = default_scale;
  opt.runs = default_runs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = ParseDoubleFlag(arg.c_str() + 8, "--scale");
    } else if (arg.rfind("--runs=", 0) == 0) {
      opt.runs = static_cast<int>(ParseIntFlag(arg.c_str() + 7, "--runs"));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads =
          static_cast<int>(ParseIntFlag(arg.c_str() + 10, "--threads"));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = ParseUint64Flag(arg.c_str() + 7, "--seed");
    } else if (arg.rfind("--store=", 0) == 0) {
      opt.store = arg.substr(8);
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace = arg.substr(8);
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help") {
      PrintBenchUsage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      PrintBenchUsage(std::cerr);
      std::exit(2);
    }
  }
  return opt;
}

/// Runs one figure's sweep and prints it in the requested format. Used by
/// benches whose metrics need bench-local state (e.g. the GNN training
/// protocol); registry figures go through FigureBenchMain instead.
inline void RunFigure(const std::string& title, const std::string& value_name,
                      const Graph& g, const std::vector<std::string>& sparsifiers,
                      const BenchOptions& opt, const MetricFn& metric,
                      std::optional<double> reference = std::nullopt,
                      std::vector<double> rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                                   0.6, 0.7, 0.8, 0.9}) {
  SweepConfig config;
  config.sparsifiers = sparsifiers;
  config.prune_rates = std::move(rates);
  config.runs_nondeterministic = opt.runs;
  config.seed = opt.seed;
  // One engine per bench process (figures run several sweeps and would
  // otherwise pay pool setup/teardown for each); sized by the first call's
  // --threads, which is constant within a bench run.
  static BatchRunner runner(opt.threads);
  auto series = RunSweep(g, config, metric, runner);
  if (opt.csv) {
    PrintSeriesCsv(std::cout, title, series);
  } else {
    PrintSeriesTable(std::cout, title, value_name, series, reference);
  }
}

/// Main body of the thin per-figure bench wrappers: parses the standard
/// bench flags and runs the listed registry figures (src/cli/figures.h)
/// through the resumable sweep engine. --scale defaults to each figure's
/// own default, so converted benches keep their historical sizing.
inline int FigureBenchMain(int argc, char** argv,
                           const std::vector<std::string>& figure_ids) {
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.0);
  cli::FigureRunOptions fopt;
  fopt.scale = opt.scale;
  fopt.runs = opt.runs;
  fopt.threads = opt.threads;
  fopt.seed = opt.seed;
  fopt.csv = opt.csv;
  fopt.store_dir = opt.store;
  fopt.resume = opt.resume;
  return cli::RunFigures(figure_ids, fopt, std::cout);
}

}  // namespace sparsify::bench

#endif  // SPARSIFY_BENCH_BENCH_COMMON_H_
