// Extension bench (paper section 5, related work): DropEdge vs static
// random sparsification for GNN training at the same edge budget.
//
// DropEdge (Rong et al.) redraws a random edge subset EVERY epoch instead
// of fixing one sparsified graph up front. Per-epoch cost is identical at
// a given prune rate; the question is whether resampling recovers the
// accuracy a static subsample loses. Protocol as in Fig. 13: train on
// reduced graph(s), test on the full graph.
#include <cstdio>
#include <iostream>

#include "src/gnn/data.h"
#include "src/gnn/models.h"
#include "src/graph/datasets.h"
#include "src/sparsifiers/random_sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {
namespace {

constexpr int kFeatureDim = 16;
constexpr int kEpochs = 60;

void Run(double scale) {
  Dataset d = LoadDatasetScaled("Reddit", scale);
  const Graph& g = d.graph;
  std::cout << "Dataset: " << d.info.name << " (" << g.Summary() << ")\n\n";
  Rng data_rng(51);
  NodeClassificationData data = MakeNodeClassificationData(
      d.communities, 8, kFeatureDim, 2.2, 0.5, data_rng);

  auto eval = [&](GraphSage& model) {
    std::vector<int> pred = ArgmaxRows(model.Forward(g, data.features));
    return Accuracy(pred, data.labels, data.test_rows);
  };

  std::cout << "== Ablation: static Random sparsification vs per-epoch "
               "DropEdge ==\n";
  std::cout << "prune   static_acc   dropedge_acc\n";
  RandomSparsifier random;
  for (double rate : {0.3, 0.5, 0.7, 0.9}) {
    // Static: sparsify once, train on the fixed subgraph.
    Rng static_rng(60);
    Graph fixed = random.Sparsify(g, rate, static_rng);
    Rng m1(61);
    GraphSage static_model(kFeatureDim, 16, data.num_classes, m1, 5e-2);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      static_model.TrainEpoch(fixed, data.features, data.labels,
                              data.train_rows);
    }

    // DropEdge: fresh random subgraph every epoch, same prune rate.
    Rng drop_rng(62);
    Rng m2(61);  // same init as static for a controlled comparison
    GraphSage dropedge_model(kFeatureDim, 16, data.num_classes, m2, 5e-2);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      Graph epoch_graph = random.Sparsify(g, rate, drop_rng);
      dropedge_model.TrainEpoch(epoch_graph, data.features, data.labels,
                                data.train_rows);
    }
    std::printf("%.1f %12.3f %14.3f\n", rate, eval(static_model),
                eval(dropedge_model));
  }
  std::cout << "\nReading: at moderate prune rates the two match; at 0.9 "
               "DropEdge recovers\naccuracy because every edge eventually "
               "participates in some epoch — the\neffect Rong et al. "
               "report, and a cheap upgrade whenever the downstream task\n"
               "is GNN training rather than a one-shot graph analysis.\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  double scale = 0.35;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }
  sparsify::Run(scale);
  return 0;
}
