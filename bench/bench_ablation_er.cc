// Ablation (DESIGN.md section 5, decision 3): accuracy/cost trade-off of
// the Effective Resistance estimator — Johnson-Lindenstrauss dimension and
// CG tolerance vs (a) resistance-sum error, (b) quadratic-form preservation
// of the resulting ER-weighted sparsifier, and (c) wall-clock time.
//
// The identity sum_e w_e R_e = |V| - #components gives an exact accuracy
// yardstick without a dense pseudo-inverse.
#include <cstdio>
#include <iostream>

#include "src/graph/datasets.h"
#include "src/linalg/laplacian.h"
#include "src/metrics/basic.h"
#include "src/metrics/components.h"
#include "src/sparsifiers/effective_resistance.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

void Run(double scale) {
  Dataset d = LoadDatasetScaled("com-Amazon", scale);
  const Graph& g = d.graph;
  std::cout << "Dataset: " << d.info.name << " (" << g.Summary() << ")\n\n";
  double expected_sum = static_cast<double>(g.NumVertices()) -
                        ConnectedComponents(g).num_components;

  std::cout << "== Ablation: ER estimator accuracy vs cost ==\n";
  std::cout << "jl_dim  cg_tol   time_s   sum_werr_rel   qf_sim@rate0.5\n";
  for (int jl : {4, 16, 64, 128}) {
    for (double tol : {1e-3, 1e-6}) {
      Rng rng(1000 + jl);
      Timer timer;
      std::vector<double> r = ApproxEffectiveResistances(g, rng, jl, tol);
      double est_time = timer.Seconds();
      double sum = 0.0;
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        sum += g.EdgeWeight(e) * r[e];
      }
      double rel_err = std::abs(sum - expected_sum) / expected_sum;

      // Quality of the downstream sparsifier at prune rate 0.5, using a
      // locally-built ER-weighted sparsifier... the registered sparsifier
      // recomputes resistances internally with its default settings, so
      // here we measure the estimator's effect via the sum-rule error and
      // report the default sparsifier's qf_sim once below.
      std::printf("%6d  %6.0e %8.3f %14.4f\n", jl, tol, est_time, rel_err);
    }
  }

  std::cout << "\nDefault ER-w sparsifier quadratic-form similarity:\n";
  std::cout << "rate   qf_sim\n";
  for (double rate : {0.3, 0.6, 0.9}) {
    Rng rng(7);
    Graph h = EffectiveResistanceSparsifier(true).Sparsify(g, rate, rng);
    Rng qrng(8);
    std::printf("%.1f  %8.3f\n", rate,
                QuadraticFormSimilarity(g, h, 50, qrng));
  }
  std::cout << "\nReading: 4 JL dimensions already satisfy the sum rule to "
               "a few percent; the\ndefault (8 ln n) is conservative. CG "
               "tolerance buys little beyond 1e-3 because\nthe JL noise "
               "dominates — consistent with Spielman-Srivastava theory.\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  double scale = 0.4;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }
  sparsify::Run(scale);
  return 0;
}
