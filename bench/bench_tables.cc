// Regenerates the paper's three tables from the code's own registries:
//   Table 1 - metric applicability to graph types
//   Table 2 - sparsifier applicability and characteristics
//   Table 3 - dataset inventory (synthetic stand-ins, DESIGN.md section 3)
#include <iomanip>
#include <iostream>

#include "src/eval/metric_info.h"
#include "src/graph/datasets.h"
#include "src/sparsifiers/sparsifier.h"

namespace sparsify {
namespace {

void PrintTable1() {
  std::cout << "== Table 1: Metrics' applicability to types of graphs ==\n";
  std::cout << std::left << std::setw(20) << "Metric" << std::setw(12)
            << "Group" << std::setw(10) << "Directed" << std::setw(10)
            << "Weighted" << std::setw(12) << "Unconnected"
            << "Note\n";
  for (const MetricInfo& m : AllMetricInfos()) {
    std::cout << std::left << std::setw(20) << m.name << std::setw(12)
              << m.group << std::setw(10)
              << ApplicabilityToString(m.directed) << std::setw(10)
              << ApplicabilityToString(m.weighted) << std::setw(12)
              << ApplicabilityToString(m.unconnected) << m.note << "\n";
  }
  std::cout << "\n";
}

std::string PrcToString(PruneRateControl prc) {
  switch (prc) {
    case PruneRateControl::kFine:
      return "fine";
    case PruneRateControl::kConstrained:
      return "constrained";
    case PruneRateControl::kNone:
      return "none";
  }
  return "?";
}

void PrintTable2() {
  std::cout << "== Table 2: Sparsifiers' applicability and characteristics "
               "==\n";
  std::cout << std::left << std::setw(34) << "Sparsifier" << std::setw(7)
            << "Short" << std::setw(10) << "Directed" << std::setw(10)
            << "Weighted" << std::setw(13) << "Unconnected" << std::setw(13)
            << "PruneCtl" << std::setw(11) << "WeightChg" << std::setw(8)
            << "Determ"
            << "Complexity\n";
  auto print_row = [](const SparsifierInfo& s) {
    std::cout << std::left << std::setw(34) << s.name << std::setw(7)
              << s.short_name << std::setw(10)
              << (s.supports_directed ? "yes" : "no") << std::setw(10)
              << (s.supports_weighted ? "yes" : "no") << std::setw(13)
              << (s.supports_unconnected ? "yes" : "no") << std::setw(13)
              << PrcToString(s.prune_rate_control) << std::setw(11)
              << (s.changes_weights ? "yes" : "no") << std::setw(8)
              << (s.deterministic ? "yes" : "no") << s.complexity << "\n";
  };
  for (const SparsifierInfo& s : AllSparsifierInfos()) {
    if (!s.extension) print_row(s);
  }
  std::cout << "-- extensions beyond the paper --\n";
  for (const SparsifierInfo& s : AllSparsifierInfos()) {
    if (s.extension) print_row(s);
  }
  std::cout << "\n";
}

void PrintTable3(double scale) {
  std::cout << "== Table 3: Graph datasets (synthetic stand-ins at scale "
            << scale << ") ==\n";
  std::cout << std::left << std::setw(16) << "Name" << std::setw(20)
            << "Category" << std::setw(10) << "Directed" << std::setw(10)
            << "Weighted" << std::setw(8) << "#Nodes" << std::setw(9)
            << "#Edges" << std::setw(12) << "Density"
            << "Stand-in\n";
  for (const std::string& name : DatasetNames()) {
    Dataset d = LoadDatasetScaled(name, scale);
    double n = d.graph.NumVertices();
    double density = d.graph.IsDirected()
                         ? d.graph.NumEdges() / (n * (n - 1.0))
                         : 2.0 * d.graph.NumEdges() / (n * (n - 1.0));
    std::cout << std::left << std::setw(16) << d.info.name << std::setw(20)
              << d.info.category << std::setw(10)
              << (d.info.directed ? "yes" : "no") << std::setw(10)
              << (d.info.weighted ? "yes" : "no") << std::setw(8)
              << d.graph.NumVertices() << std::setw(9) << d.graph.NumEdges()
              << std::setw(12) << std::scientific << std::setprecision(2)
              << density << std::defaultfloat << d.info.standin << "\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  double scale = 0.5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }
  sparsify::PrintTable1();
  sparsify::PrintTable2();
  sparsify::PrintTable3(scale);
  return 0;
}
