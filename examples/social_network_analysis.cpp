// Scenario: influencer detection on a social network, accelerated by
// sparsification (the paper's centrality use case, sections 2.2.3/4.3).
//
// We must find the top-100 most central users. Computing exact centrality
// on the full graph is expensive; we sparsify first and quantify how much
// of the true top-100 each algorithm retains at increasing prune rates.
#include <cstdio>
#include <iostream>

#include "src/graph/datasets.h"
#include "src/metrics/centrality.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace sparsify;

  Dataset d = LoadDatasetScaled("ego-Facebook", 0.5);
  const Graph& g = d.graph;
  std::cout << "Social network: " << g.Summary() << "\n\n";

  // Ground truth on the full graph.
  Timer full_timer;
  Rng bt_rng(7);
  std::vector<double> betweenness_full =
      ApproxBetweennessCentrality(g, 500, bt_rng);
  std::vector<double> eigen_full = EigenvectorCentrality(g);
  double full_seconds = full_timer.Seconds();
  std::cout << "Full-graph centrality time: " << full_seconds << " s\n\n";

  std::cout << "sparsifier  prune  sparsify_s  centrality_s  btw_top100  "
               "eig_top100\n";
  Rng rng(13);
  for (const char* name : {"RN", "RD", "LD", "FF"}) {
    for (double rate : {0.5, 0.8}) {
      auto sparsifier = CreateSparsifier(name);
      Timer sparsify_timer;
      Rng run_rng = rng.Fork();
      Graph h = sparsifier->Sparsify(g, rate, run_rng);
      double sparsify_s = sparsify_timer.Seconds();

      Timer metric_timer;
      Rng m_rng = rng.Fork();
      std::vector<double> btw = ApproxBetweennessCentrality(h, 500, m_rng);
      std::vector<double> eig = EigenvectorCentrality(h);
      double metric_s = metric_timer.Seconds();

      std::printf("%-11s %5.1f %11.3f %13.3f %11.2f %11.2f\n", name,
                  rate, sparsify_s, metric_s,
                  TopKPrecision(betweenness_full, btw, 100),
                  TopKPrecision(eigen_full, eig, 100));
    }
  }
  std::cout << "\nRank Degree / Local Degree keep hub edges, so the "
               "influencer ranking survives\naggressive pruning while "
               "centrality time shrinks with the edge count.\n";
  return 0;
}
