// Command-line front end for the sparsification framework — the tool a
// downstream user actually runs. Subcommands:
//
//   list                          enumerate sparsifiers, datasets, metrics
//   sparsify  --algo LD --rate 0.5 --input g.txt --output h.txt
//             [--directed] [--weighted] [--seed 42]
//   evaluate  --metric pagerank --input g.txt --sparsified h.txt
//             [--directed] [--weighted] [--seed 42]
//   sweep     --dataset ca-AstroPh --algos RN,LD,GS --metric connectivity
//             [--runs 3] [--scale 0.5] [--csv]
//
// Example session:
//   $ sparsify_cli sparsify --algo LD --rate 0.6
//         --input facebook.txt --output facebook_ld.txt
//   $ sparsify_cli evaluate --metric spsp
//         --input facebook.txt --sparsified facebook_ld.txt
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/eval/experiment.h"
#include "src/graph/datasets.h"
#include "src/graph/io.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/metrics/maxflow.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

struct Args {
  std::map<std::string, std::string> named;
  bool Has(const std::string& key) const { return named.contains(key); }
  std::string Get(const std::string& key, const std::string& fallback = "")
      const {
    auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : std::atoi(it->second.c_str());
  }
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      args.named[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "true";  // boolean flag
    }
  }
  return args;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

// Named metric registry for `evaluate` and `sweep`.
const std::map<std::string, MetricFn>& MetricRegistry() {
  static const std::map<std::string, MetricFn> registry = {
      {"connectivity",
       [](const Graph&, const Graph& h, Rng&) {
         return UnreachableRatio(h);
       }},
      {"isolated",
       [](const Graph&, const Graph& h, Rng&) { return IsolatedRatio(h); }},
      {"degree",
       [](const Graph& g, const Graph& h, Rng&) {
         return DegreeDistributionDistance(g, h);
       }},
      {"quadratic",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return QuadraticFormSimilarity(g, h, 50, rng);
       }},
      {"spsp",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return SpspStretch(g, h, 2000, rng).mean_stretch;
       }},
      {"eccentricity",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return EccentricityStretch(g, h, 50, rng).mean_stretch;
       }},
      {"diameter",
       [](const Graph&, const Graph& h, Rng& rng) {
         return ApproxDiameter(h, 4, rng);
       }},
      {"betweenness",
       [](const Graph& g, const Graph& h, Rng& rng) {
         Rng ref_rng = rng.Fork();
         auto ref = ApproxBetweennessCentrality(g, 300, ref_rng);
         return TopKPrecision(ref, ApproxBetweennessCentrality(h, 300, rng),
                              100);
       }},
      {"closeness",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(ClosenessCentrality(g), ClosenessCentrality(h),
                              100);
       }},
      {"eigenvector",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(EigenvectorCentrality(g),
                              EigenvectorCentrality(h), 100);
       }},
      {"katz",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(KatzCentrality(g), KatzCentrality(h), 100);
       }},
      {"pagerank",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(PageRank(g), PageRank(h), 100);
       }},
      {"communities",
       [](const Graph&, const Graph& h, Rng& rng) {
         return static_cast<double>(
             LouvainCommunities(h, rng).num_clusters);
       }},
      {"mcc",
       [](const Graph&, const Graph& h, Rng&) {
         return MeanClusteringCoefficient(h);
       }},
      {"gcc",
       [](const Graph&, const Graph& h, Rng&) {
         return GlobalClusteringCoefficient(h);
       }},
      {"f1",
       [](const Graph& g, const Graph& h, Rng& rng) {
         Rng ref_rng = rng.Fork();
         Clustering ref = LouvainCommunities(g, ref_rng);
         return ClusteringF1(LouvainCommunities(h, rng).label, ref.label);
       }},
      {"maxflow",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return MaxFlowStretch(g, h, 50, rng).mean_ratio;
       }},
  };
  return registry;
}

int CmdList() {
  std::cout << "Sparsifiers (paper Table 2 + extensions):\n";
  for (const SparsifierInfo& info : AllSparsifierInfos()) {
    std::cout << "  " << info.short_name << "\t" << info.name
              << (info.extension ? "  [extension]" : "") << "\n";
  }
  std::cout << "\nDatasets (synthetic stand-ins for paper Table 3):\n";
  for (const std::string& name : DatasetNames()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "\nMetrics:\n";
  for (const auto& [name, fn] : MetricRegistry()) {
    std::cout << "  " << name << "\n";
  }
  return 0;
}

Graph LoadInput(const Args& args, const std::string& key) {
  return ReadEdgeList(args.Get(key), args.Has("directed"),
                      args.Has("weighted"));
}

int CmdSparsify(const Args& args) {
  if (!args.Has("algo") || !args.Has("input") || !args.Has("output")) {
    std::cerr << "sparsify requires --algo, --input, --output\n";
    return 1;
  }
  Graph g = LoadInput(args, "input");
  auto sparsifier = CreateSparsifier(args.Get("algo"));
  const SparsifierInfo& info = sparsifier->Info();
  if (g.IsDirected() && !info.supports_directed) {
    std::cerr << "note: " << info.name
              << " needs undirected input; symmetrizing (paper sec 3.1)\n";
    g = g.Symmetrized();
  }
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  Timer timer;
  Graph h = sparsifier->Sparsify(g, args.GetDouble("rate", 0.5), rng);
  std::cout << "sparsified in " << timer.Seconds() << " s: " << h.Summary()
            << " (achieved prune rate "
            << Sparsifier::AchievedPruneRate(g, h) << ")\n";
  WriteEdgeList(h, args.Get("output"));
  return 0;
}

int CmdEvaluate(const Args& args) {
  if (!args.Has("metric") || !args.Has("input") || !args.Has("sparsified")) {
    std::cerr << "evaluate requires --metric, --input, --sparsified\n";
    return 1;
  }
  auto it = MetricRegistry().find(args.Get("metric"));
  if (it == MetricRegistry().end()) {
    std::cerr << "unknown metric " << args.Get("metric")
              << " (see `sparsify_cli list`)\n";
    return 1;
  }
  Graph g = LoadInput(args, "input");
  Graph h = LoadInput(args, "sparsified");
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  double value = it->second(g, h, rng);
  std::cout << args.Get("metric") << " = " << value << "\n";
  return 0;
}

int CmdSweep(const Args& args) {
  if (!args.Has("dataset") || !args.Has("metric")) {
    std::cerr << "sweep requires --dataset, --metric\n";
    return 1;
  }
  auto it = MetricRegistry().find(args.Get("metric"));
  if (it == MetricRegistry().end()) {
    std::cerr << "unknown metric " << args.Get("metric") << "\n";
    return 1;
  }
  Dataset d = LoadDatasetScaled(args.Get("dataset"),
                                args.GetDouble("scale", 0.5));
  SweepConfig config;
  if (args.Has("algos")) config.sparsifiers = SplitCsv(args.Get("algos"));
  config.runs_nondeterministic = args.GetInt("runs", 3);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  auto series = RunSweep(d.graph, config, it->second);
  std::string title = args.Get("metric") + " on " + d.info.name;
  if (args.Has("csv")) {
    PrintSeriesCsv(std::cout, title, series);
  } else {
    PrintSeriesTable(std::cout, title, args.Get("metric"), series);
  }
  return 0;
}

int Usage() {
  std::cout << "usage: sparsify_cli <list|sparsify|evaluate|sweep> "
               "[--key value ...]\n"
               "run `sparsify_cli list` to see algorithms, datasets, and "
               "metrics\n";
  return 1;
}

}  // namespace
}  // namespace sparsify

int main(int argc, char** argv) {
  using namespace sparsify;
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  try {
    if (cmd == "list") return CmdList();
    if (cmd == "sparsify") return CmdSparsify(args);
    if (cmd == "evaluate") return CmdEvaluate(args);
    if (cmd == "sweep") return CmdSweep(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
