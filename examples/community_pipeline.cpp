// Scenario: community detection on a co-purchase network under
// sparsification (the paper's clustering use case, section 4.4).
//
// A recommendation pipeline clusters the product graph nightly. We check
// which sparsifier lets Louvain run on a much smaller graph while still
// producing (a) a similar number of communities and (b) assignments similar
// to the full-graph clustering (clustering F1).
#include <cstdio>
#include <iostream>

#include "src/graph/datasets.h"
#include "src/metrics/clustering.h"
#include "src/metrics/louvain.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

int main() {
  using namespace sparsify;

  Dataset d = LoadDatasetScaled("com-Amazon", 0.6);
  const Graph& g = d.graph;
  std::cout << "Co-purchase network: " << g.Summary() << "\n";

  Rng ref_rng(3);
  Clustering reference = LouvainCommunities(g, ref_rng);
  std::cout << "Full graph: " << reference.num_clusters
            << " communities, modularity " << reference.modularity << "\n";
  // Louvain is randomized; its self-agreement bounds what any sparsifier
  // can achieve.
  Rng again_rng(4);
  Clustering again = LouvainCommunities(g, again_rng);
  std::printf("Louvain self-agreement F1: %.3f\n\n",
              ClusteringF1(again.label, reference.label));

  std::cout << "sparsifier          prune  #communities  f1_vs_full  "
               "ground_truth_f1\n";
  Rng rng(5);
  for (const char* name : {"KN", "LS", "LSim", "RN", "GS"}) {
    auto sparsifier = CreateSparsifier(name);
    for (double rate : {0.5, 0.8}) {
      Rng run_rng = rng.Fork();
      Graph h = sparsifier->Sparsify(g, rate, run_rng);
      Rng l_rng = rng.Fork();
      Clustering c = LouvainCommunities(h, l_rng);
      double f1 = ClusteringF1(c.label, reference.label);
      // The stand-in dataset has planted ground-truth communities too.
      double gt = ClusteringF1(c.label, d.communities);
      std::printf("%-19s %5.1f %13d %11.3f %16.3f\n",
                  sparsifier->Info().name.c_str(), rate, c.num_clusters, f1,
                  gt);
    }
  }
  std::cout << "\nLocal similarity-based sparsifiers (L-Spar, Local "
               "Similarity) and K-Neighbor\nretain intra-community edges, "
               "so Louvain output stays stable; G-Spar keeps\nonly globally "
               "top-similarity edges and fragments the clustering.\n";
  return 0;
}
