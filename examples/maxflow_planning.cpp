// Scenario: capacity planning on a weighted infrastructure network (the
// paper's min-cut/max-flow use case, sections 2.2.5/4.5).
//
// A water/road/electricity planner needs s-t max-flow values between many
// terminal pairs. We sparsify the network and compare flow fidelity:
// ER-weighted compensates removed capacity by reweighting, so flows stay
// close; unweighted sparsifiers lose capacity roughly proportionally.
#include <cstdio>
#include <iostream>

#include "src/graph/generators.h"
#include "src/metrics/maxflow.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

int main() {
  using namespace sparsify;

  // Weighted infrastructure-like network: power-law with Zipf capacities.
  Rng gen(11);
  Graph base = BarabasiAlbert(800, 6, gen);
  Graph g = WithRandomWeights(base, 50.0, gen);
  std::cout << "Capacity network: " << g.Summary() << "\n\n";

  std::cout << "sparsifier                         prune  mean_flow_ratio  "
               "zero_flow_pairs\n";
  Rng rng(12);
  for (const char* name : {"ER-w", "ER-uw", "RN", "KN"}) {
    auto sparsifier = CreateSparsifier(name);
    for (double rate : {0.3, 0.6}) {
      Rng run_rng = rng.Fork();
      Graph h = sparsifier->Sparsify(g, rate, run_rng);
      Rng m_rng = rng.Fork();
      FlowStretchResult r = MaxFlowStretch(g, h, 40, m_rng);
      std::printf("%-34s %5.1f %16.3f %16.3f\n",
                  sparsifier->Info().name.c_str(), rate, r.mean_ratio,
                  r.zero_flow_fraction);
    }
  }
  std::cout << "\nEffective Resistance (weighted) is the only sparsifier "
               "that reweights kept\nedges, making the sparsified Laplacian "
               "an unbiased estimate of the original -\nmax-flow values "
               "follow (paper Fig. 12).\n";
  return 0;
}
