// Quickstart: generate (or load) a graph, sparsify it with a few
// algorithms, and measure what each one preserved.
//
//   $ ./quickstart [path/to/edgelist.txt]
//
// Without an argument a Barabasi-Albert social-network-like graph is
// generated; with one, the file is read as a SNAP-style "u v" edge list.
#include <iostream>

#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace sparsify;

  // 1. Get a graph.
  Rng rng(42);
  Graph g = argc > 1 ? ReadEdgeList(argv[1], /*directed=*/false,
                                    /*weighted=*/false)
                     : BarabasiAlbert(2000, 8, rng);
  g = RemoveIsolatedVertices(g);
  std::cout << "Input: " << g.Summary() << "\n\n";

  // Reference metrics on the full graph.
  std::vector<double> pagerank_full = PageRank(g);

  // 2. Sparsify at prune rate 0.6 with three very different algorithms and
  //    compare what survives.
  std::cout << "prune rate 0.6:\n";
  std::cout << "sparsifier      kept_edges  unreachable  spsp_stretch  "
               "pagerank_top100\n";
  for (const char* name : {"RN", "LD", "GS"}) {
    auto sparsifier = CreateSparsifier(name);
    Rng run_rng = rng.Fork();
    Graph h = sparsifier->Sparsify(g, 0.6, run_rng);

    Rng metric_rng = rng.Fork();
    StretchResult spsp = SpspStretch(g, h, 1000, metric_rng);
    double precision = TopKPrecision(pagerank_full, PageRank(h), 100);

    std::printf("%-15s %9u %12.3f %13.3f %16.2f\n",
                sparsifier->Info().name.c_str(), h.NumEdges(),
                UnreachableRatio(h), spsp.mean_stretch, precision);
  }

  std::cout << "\nTakeaway (the paper's core finding): no single sparsifier "
               "wins everywhere -\n"
               "Local Degree keeps distances and rankings, Random keeps "
               "distributions,\n"
               "G-Spar keeps local similarity but shatters connectivity.\n";
  return 0;
}
