// Scenario: accelerating GNN training by sparsifying the training graph
// (the paper's GNN use case, sections 3.3.4/4.5).
//
// Training dominates GNN cost; we train GraphSAGE on sparsified graphs and
// evaluate on the FULL graph, exactly the paper's protocol. Edge count
// drives per-epoch cost, so the prune rate is the speedup knob; the
// question is how much accuracy each sparsifier gives up.
#include <cstdio>
#include <iostream>

#include "src/gnn/data.h"
#include "src/gnn/models.h"
#include "src/graph/datasets.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace sparsify;

  Dataset d = LoadDatasetScaled("Reddit", 0.4);
  const Graph& g = d.graph;
  std::cout << "GNN dataset: " << g.Summary() << "\n";

  Rng data_rng(21);
  NodeClassificationData data =
      MakeNodeClassificationData(d.communities, 8, 16, 1.8, 0.5, data_rng);

  auto train_and_eval = [&](const Graph& train_graph, double* train_s) {
    Rng mrng(22);
    GraphSage model(16, 16, data.num_classes, mrng, 5e-2);
    Timer t;
    for (int epoch = 0; epoch < 50; ++epoch) {
      model.TrainEpoch(train_graph, data.features, data.labels,
                       data.train_rows);
    }
    *train_s = t.Seconds();
    std::vector<int> pred = ArgmaxRows(model.Forward(g, data.features));
    return Accuracy(pred, data.labels, data.test_rows);
  };

  double full_s = 0.0;
  double full_acc = train_and_eval(g, &full_s);
  std::printf("Full graph:  accuracy %.3f, train time %.2f s\n\n", full_acc,
              full_s);

  std::cout << "sparsifier  prune  accuracy  train_s  speedup\n";
  Rng rng(23);
  for (const char* name : {"RN", "LSim", "LD"}) {
    auto sparsifier = CreateSparsifier(name);
    for (double rate : {0.5, 0.9}) {
      Rng run_rng = rng.Fork();
      Graph h = sparsifier->Sparsify(g, rate, run_rng);
      double train_s = 0.0;
      double acc = train_and_eval(h, &train_s);
      std::printf("%-11s %5.1f %9.3f %8.2f %8.2fx\n", name, rate,
                  acc, train_s, full_s / train_s);
    }
  }
  std::cout << "\nRandom and Local Similarity keep GNN accuracy close to "
               "the full graph even\nat prune rate 0.9 (paper Fig. 13a); "
               "Local Degree's hub bias costs accuracy -\nthe edges GNN "
               "message passing needs are not the hub edges.\n";
  return 0;
}
