#include "src/engine/resumable_sweep.h"

#include <utility>

namespace sparsify {

ResumableSweep::ResumableSweep(BatchRunner& runner, ResultStore* store,
                               std::string code_rev)
    : runner_(runner), store_(store), code_rev_(std::move(code_rev)) {}

std::vector<SweepSeries> ResumableSweep::Run(const Graph& g,
                                             const std::string& dataset,
                                             const std::string& metric_name,
                                             const SweepConfig& config,
                                             const MetricFn& metric,
                                             ResumableSweepStats* stats) {
  BatchSpec spec = ToBatchSpec(config);
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);

  auto key_of = [&](const BatchTask& task) {
    CellKey key;
    key.dataset = dataset;
    key.sparsifier = task.sparsifier;
    key.prune_rate = task.prune_rate;
    key.run = task.run;
    key.grid_index = task.index;
    key.master_seed = spec.master_seed;
    key.metric = metric_name;
    key.code_rev = code_rev_;
    return key;
  };

  // Partition the grid: cells already in the store become results
  // directly; the rest are submitted to the engine with their original
  // grid indices, so their RNG streams match a cold run's.
  std::vector<BatchResult> results(tasks.size());
  std::vector<BatchTask> missing;
  std::vector<size_t> missing_pos;  // grid position of each missing task
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::optional<StoredCell> cached;
    if (store_ != nullptr && reuse_cached_) {
      cached = store_->Lookup(key_of(tasks[i]));
    }
    if (cached.has_value()) {
      results[i].task = tasks[i];
      results[i].achieved_prune_rate = cached->achieved_prune_rate;
      results[i].value = cached->value;
    } else {
      missing.push_back(tasks[i]);
      missing_pos.push_back(i);
    }
  }

  if (stats != nullptr) {
    stats->total_cells = tasks.size();
    stats->cached_cells = tasks.size() - missing.size();
    stats->submitted_cells = missing.size();
    stats->score_groups = 0;  // overwritten below when cells are submitted
  }

  if (!missing.empty()) {
    // Append as each cell completes: the store flushes per record, so a
    // crash loses at most the in-flight line (see store/README.md). The
    // callback runs on worker threads; Append serializes internally.
    BatchRunner::ResultCallback on_result = nullptr;
    if (store_ != nullptr) {
      on_result = [&](const BatchResult& r) {
        store_->Append(key_of(r.task), r.achieved_prune_rate, r.value);
      };
    }
    BatchRunStats run_stats;
    std::vector<BatchResult> fresh = runner_.RunTasks(
        g, missing, spec.master_seed, metric, on_result, &run_stats);
    for (size_t j = 0; j < fresh.size(); ++j) {
      results[missing_pos[j]] = fresh[j];
    }
    if (stats != nullptr) stats->score_groups = run_stats.score_groups;
  }

  return FoldSweepResults(config, results);
}

}  // namespace sparsify
