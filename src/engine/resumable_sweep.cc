#include "src/engine/resumable_sweep.h"

#include <atomic>
#include <utility>

namespace sparsify {

ResumableSweep::ResumableSweep(BatchRunner& runner, ResultStore* store,
                               std::string code_rev)
    : runner_(runner), store_(store), code_rev_(std::move(code_rev)) {}

std::vector<MetricSweepSeries> ResumableSweep::RunMulti(
    const Graph& g, const std::string& dataset,
    const std::vector<SweepMetric>& metrics, const SweepConfig& config,
    ResumableSweepStats* stats) {
  if (shard_.total > 1) {
    return RunShardedMulti(g, dataset, metrics, config, stats);
  }
  BatchSpec spec = ToBatchSpec(config);
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);

  auto key_of = [&](const BatchTask& task, const std::string& metric_name) {
    CellKey key;
    key.dataset = dataset;
    key.sparsifier = task.sparsifier;
    key.prune_rate = task.prune_rate;
    key.run = task.run;
    key.master_seed = spec.master_seed;
    key.metric = metric_name;
    key.code_rev = code_rev_;
    return key;
  };

  // Partition the (cell × metric) product: units already in the store
  // become results directly; each cell with at least one missing metric is
  // submitted ONCE, carrying exactly its missing metric ids, so the engine
  // materializes its subgraph once for all of them. Submitted tasks keep
  // their original grid indices, and every RNG stream derives from
  // grid-shape-independent identities, so the values match a cold run's.
  std::vector<std::vector<BatchResult>> results(metrics.size());
  for (auto& per_metric : results) per_metric.resize(tasks.size());
  size_t cached_units = 0;
  std::vector<BatchTask> missing;
  std::vector<size_t> missing_pos;  // grid position of each missing task
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::vector<uint32_t> missing_ids;
    for (uint32_t m = 0; m < metrics.size(); ++m) {
      std::optional<StoredCell> cached;
      if (store_ != nullptr && reuse_cached_) {
        cached = store_->Lookup(key_of(tasks[i], metrics[m].name));
        // An error record is a unit that FAILED, not one that completed:
        // it reads back as missing so this resume resubmits it.
        if (cached.has_value() && cached->is_error) cached.reset();
      }
      if (cached.has_value()) {
        ++cached_units;
        results[m][i].task = tasks[i];
        results[m][i].achieved_prune_rate = cached->achieved_prune_rate;
        results[m][i].value = cached->value;
      } else {
        missing_ids.push_back(m);
      }
    }
    if (!missing_ids.empty()) {
      BatchTask task = tasks[i];
      task.metrics = std::move(missing_ids);
      missing.push_back(std::move(task));
      missing_pos.push_back(i);
    }
  }

  size_t total_units = tasks.size() * metrics.size();
  if (stats != nullptr) {
    *stats = ResumableSweepStats{};
    stats->total_cells = total_units;
    stats->cached_cells = cached_units;
    stats->submitted_cells = total_units - cached_units;
  }

  if (!missing.empty()) {
    // Append as each unit completes: the store flushes per record, so a
    // crash loses at most the in-flight line (see store/README.md). The
    // callback runs on worker threads; Append serializes internally.
    std::vector<BatchMetric> engine_metrics;
    engine_metrics.reserve(metrics.size());
    for (const SweepMetric& m : metrics) {
      engine_metrics.push_back(BatchMetric{m.name, m.fn});
    }
    BatchRunner::MetricResultCallback on_unit = nullptr;
    std::atomic<size_t> completed_units{0};
    size_t submitted_units = total_units - cached_units;
    if (store_ != nullptr || progress_) {
      on_unit = [&](const BatchTask& task, double achieved, uint32_t m,
                    double value) {
        if (store_ != nullptr) {
          store_->Append(key_of(task, metrics[m].name), achieved, value);
        }
        if (progress_) {
          size_t done =
              completed_units.fetch_add(1, std::memory_order_relaxed) + 1;
          progress_(done, submitted_units);
        }
      };
    }
    // Fault policy: in tolerant mode a permanently-failed unit lands in
    // the store as a typed error record (same CellKey — the next resume
    // sees it as missing and resubmits it) and counts as completed for
    // progress purposes; everything else runs to the end.
    FaultPolicy faults;
    faults.tolerate = fault_tolerant_;
    faults.max_unit_retries = max_unit_retries_;
    faults.cancel = cancel_;
    faults.unit_timeout_seconds = unit_timeout_seconds_;
    if (fault_tolerant_ && (store_ != nullptr || progress_)) {
      faults.on_unit_failure = [&](const BatchTask& task, uint32_t m,
                                   const std::string& error_class,
                                   const std::string& error_message,
                                   int attempts) {
        if (store_ != nullptr) {
          store_->AppendError(key_of(task, metrics[m].name), error_class,
                              error_message, attempts);
        }
        if (progress_) {
          size_t done =
              completed_units.fetch_add(1, std::memory_order_relaxed) + 1;
          progress_(done, submitted_units);
        }
      };
    }
    BatchRunStats run_stats;
    std::vector<BatchMultiResult> fresh = runner_.RunTasksMulti(
        g, dataset, missing, spec.master_seed, engine_metrics, on_unit,
        &run_stats, faults);
    for (size_t j = 0; j < fresh.size(); ++j) {
      size_t i = missing_pos[j];
      for (size_t slot = 0; slot < fresh[j].values.size(); ++slot) {
        // Failed units (tolerant mode) keep the default-constructed slot:
        // the returned series are complete minus the failures, and the
        // store carries the error records for the next resume.
        if (fresh[j].values[slot].failed) continue;
        uint32_t m = fresh[j].values[slot].metric;
        results[m][i].task = tasks[i];
        results[m][i].achieved_prune_rate = fresh[j].achieved_prune_rate;
        results[m][i].value = fresh[j].values[slot].value;
      }
    }
    if (stats != nullptr) {
      stats->score_groups = run_stats.score_groups;
      stats->subgraph_builds = run_stats.subgraph_builds;
      stats->failed_units = run_stats.failed_units;
      stats->transient_failed_units = run_stats.transient_failed_units;
      stats->retried_units = run_stats.retried_units;
      stats->deadline_exceeded_units = run_stats.deadline_exceeded_units;
      stats->cancelled_units = run_stats.cancelled_units;
      stats->score_seconds = run_stats.score_seconds;
      stats->subgraph_seconds = run_stats.subgraph_seconds;
      stats->metric_seconds = run_stats.metric_seconds;
    }
  }

  std::vector<MetricSweepSeries> out(metrics.size());
  for (size_t m = 0; m < metrics.size(); ++m) {
    out[m].metric = metrics[m].name;
    out[m].series = FoldSweepResults(config, results[m]);
  }
  return out;
}

std::vector<SweepSeries> ResumableSweep::Run(const Graph& g,
                                             const std::string& dataset,
                                             const std::string& metric_name,
                                             const SweepConfig& config,
                                             const MetricFn& metric,
                                             ResumableSweepStats* stats) {
  std::vector<SweepMetric> metrics;
  metrics.push_back(SweepMetric{metric_name, metric});
  std::vector<MetricSweepSeries> out =
      RunMulti(g, dataset, metrics, config, stats);
  return std::move(out[0].series);
}

}  // namespace sparsify
