// Multi-process shard scheduler: the claim/steal half of ResumableSweep.
//
// N worker processes (`sparsify_cli sweep --shard=i/N`) share one store
// directory. The FULL grid — never the missing subset, which differs per
// worker — is partitioned into contiguous chunks of cells in task order,
// so every worker derives the identical partition regardless of what its
// store replay happened to contain. Chunk c's preferred owner is worker
// c % N. A worker announces work by appending a claim record (scoped by
// a hash of the partition, so claims from incompatible grids are
// ignored) to its OWN segment, runs the chunk's missing units, then
// turns to stealing: any incomplete chunk whose claimants are all dead
// (lease reaped or heartbeat stale) is re-claimed and its unrecorded
// units recomputed. Since every unit's RNG stream derives from
// grid-shape-independent identities (GroupSeed / MetricSeed), a stolen
// unit recomputes bit-identically on any worker — which is what makes
// the crash-convergence guarantee byte-level: kill -9 any worker and the
// survivors converge to the same store a cold single-process sweep
// writes.
//
// Liveness caveat: a claimant that renews its lease but never finishes
// (wedged compute, live heartbeat) blocks its chunks indefinitely —
// steal only fires for provably-dead writers. --deadline / SIGINT are
// the escape hatch, exactly as for a wedged single-process sweep.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/engine/resumable_sweep.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/failpoint.h"

namespace sparsify {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<MetricSweepSeries> ResumableSweep::RunShardedMulti(
    const Graph& g, const std::string& dataset,
    const std::vector<SweepMetric>& metrics, const SweepConfig& config,
    ResumableSweepStats* stats) {
  TRACE_SPAN(span, "shard_sweep");
  if (store_ == nullptr) {
    throw std::invalid_argument(
        "sharded sweep: --shard requires a result store (workers "
        "coordinate through it)");
  }
  static obs::Counter& claim_count = obs::GetCounter("engine.shard_claims");
  static obs::Counter& steal_count = obs::GetCounter("engine.shard_steals");

  BatchSpec spec = ToBatchSpec(config);
  std::vector<BatchTask> tasks = BatchRunner::ExpandGrid(spec);

  auto key_of = [&](const BatchTask& task, const std::string& metric_name) {
    CellKey key;
    key.dataset = dataset;
    key.sparsifier = task.sparsifier;
    key.prune_rate = task.prune_rate;
    key.run = task.run;
    key.master_seed = spec.master_seed;
    key.metric = metric_name;
    key.code_rev = code_rev_;
    return key;
  };

  // ~8 chunks per worker: coarse enough that claim records stay few,
  // fine enough that a dead worker's unfinished work spreads over the
  // survivors instead of landing on one.
  const size_t chunk_cells =
      std::max<size_t>(1, tasks.size() / (8 * shard_.total));
  const size_t num_chunks = (tasks.size() + chunk_cells - 1) / chunk_cells;

  // Claim scope: a hash of everything two workers must agree on for
  // their chunk ids to mean the same units. Replayed claims from an
  // older grid (different rates list, different shard count, ...) hash
  // differently and are ignored.
  std::string scope_src = dataset;
  scope_src.push_back('\x1f');
  scope_src += std::to_string(spec.master_seed);
  scope_src.push_back('\x1f');
  scope_src += code_rev_;
  scope_src.push_back('\x1f');
  scope_src += std::to_string(shard_.total);
  scope_src.push_back('\x1f');
  scope_src += std::to_string(chunk_cells);
  for (const BatchTask& task : tasks) {
    scope_src.push_back('\x1f');
    scope_src += task.sparsifier;
    scope_src.push_back(':');
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.17g", task.prune_rate);
    scope_src += rate;
    scope_src.push_back(':');
    scope_src += std::to_string(task.run);
  }
  for (const SweepMetric& m : metrics) {
    scope_src.push_back('\x1f');
    scope_src += m.name;
  }
  char scope_hex[17];
  std::snprintf(scope_hex, sizeof(scope_hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a(scope_src)));
  const std::string scope = scope_hex;

  const size_t total_units = tasks.size() * metrics.size();
  ResumableSweepStats accum;
  accum.total_cells = total_units;
  accum.shard_chunks = num_chunks;

  std::vector<BatchMetric> engine_metrics;
  engine_metrics.reserve(metrics.size());
  for (const SweepMetric& m : metrics) {
    engine_metrics.push_back(BatchMetric{m.name, m.fn});
  }

  auto cancelled = [&] { return cancel_ != nullptr && cancel_->Cancelled(); };

  // `errors_count` = an error record satisfies the unit. Phase A (a
  // worker's own chunks) says no — resume semantics, stale errors are
  // retried; phase B completeness says yes, or two survivors would
  // ping-pong a deterministically failing unit forever.
  auto unit_present = [&](size_t i, size_t m, bool errors_count) {
    std::optional<StoredCell> cached =
        store_->Lookup(key_of(tasks[i], metrics[m].name));
    if (!cached.has_value()) return false;
    return errors_count || !cached->is_error;
  };

  auto chunk_missing = [&](size_t c, bool errors_count) {
    std::vector<BatchTask> missing;
    const size_t begin = c * chunk_cells;
    const size_t end = std::min(tasks.size(), begin + chunk_cells);
    for (size_t i = begin; i < end; ++i) {
      std::vector<uint32_t> missing_ids;
      for (uint32_t m = 0; m < metrics.size(); ++m) {
        if (!unit_present(i, m, errors_count)) missing_ids.push_back(m);
      }
      if (!missing_ids.empty()) {
        BatchTask task = tasks[i];
        task.metrics = std::move(missing_ids);
        missing.push_back(std::move(task));
      }
    }
    return missing;
  };

  // True when some OTHER live writer has claimed chunk `c` — its work is
  // coming, this worker must neither duplicate nor steal it.
  auto claimed_by_live_other = [&](size_t c) {
    for (const StoredClaim& claim : store_->Claims()) {
      if (claim.scope != scope || claim.chunk != c) continue;
      if (claim.writer == store_->WriterId()) continue;
      if (store_->WriterAlive(claim.writer)) return true;
    }
    return false;
  };

  std::atomic<size_t> completed_units{0};
  auto run_units = [&](std::vector<BatchTask> missing) {
    if (missing.empty() || cancelled()) return;
    size_t submitted = 0;
    for (const BatchTask& task : missing) submitted += task.metrics.size();
    accum.submitted_cells += submitted;
    BatchRunner::MetricResultCallback on_unit =
        [&](const BatchTask& task, double achieved, uint32_t m,
            double value) {
          store_->Append(key_of(task, metrics[m].name), achieved, value);
          if (progress_) {
            size_t done =
                completed_units.fetch_add(1, std::memory_order_relaxed) + 1;
            // Denominator = the full grid: a shard worker cannot know
            // its final share up front (it grows with every steal).
            progress_(done, total_units);
          }
        };
    FaultPolicy faults;
    faults.tolerate = fault_tolerant_;
    faults.max_unit_retries = max_unit_retries_;
    faults.cancel = cancel_;
    faults.unit_timeout_seconds = unit_timeout_seconds_;
    if (fault_tolerant_) {
      faults.on_unit_failure = [&](const BatchTask& task, uint32_t m,
                                   const std::string& error_class,
                                   const std::string& error_message,
                                   int attempts) {
        store_->AppendError(key_of(task, metrics[m].name), error_class,
                            error_message, attempts);
        if (progress_) {
          size_t done =
              completed_units.fetch_add(1, std::memory_order_relaxed) + 1;
          progress_(done, total_units);
        }
      };
    }
    BatchRunStats run_stats;
    runner_.RunTasksMulti(g, dataset, missing, spec.master_seed,
                          engine_metrics, on_unit, &run_stats, faults);
    accum.score_groups += run_stats.score_groups;
    accum.subgraph_builds += run_stats.subgraph_builds;
    accum.failed_units += run_stats.failed_units;
    accum.transient_failed_units += run_stats.transient_failed_units;
    accum.retried_units += run_stats.retried_units;
    accum.deadline_exceeded_units += run_stats.deadline_exceeded_units;
    accum.cancelled_units += run_stats.cancelled_units;
    accum.score_seconds += run_stats.score_seconds;
    accum.subgraph_seconds += run_stats.subgraph_seconds;
    accum.metric_seconds += run_stats.metric_seconds;
  };

  // --- Phase A: this worker's preferred chunks -------------------------
  for (size_t c = shard_.index % shard_.total; c < num_chunks;
       c += shard_.total) {
    if (cancelled()) break;
    accum.peer_units += store_->RefreshPeers();
    std::vector<BatchTask> missing =
        chunk_missing(c, /*errors_count=*/false);
    if (missing.empty()) continue;  // chunk already complete
    if (claimed_by_live_other(c)) continue;  // a stealer beat us to it
    store_->AppendClaim(scope, c);
    ++accum.shard_claimed;
    claim_count.Add();
    run_units(std::move(missing));
  }

  // --- Phase B: steal dead workers's incomplete chunks -----------------
  if (shard_.steal) {
    while (!cancelled()) {
      accum.peer_units += store_->RefreshPeers();
      bool all_complete = true;
      size_t stealable = num_chunks;  // sentinel: none
      for (size_t c = 0; c < num_chunks; ++c) {
        bool incomplete = false;
        const size_t begin = c * chunk_cells;
        const size_t end = std::min(tasks.size(), begin + chunk_cells);
        for (size_t i = begin; i < end && !incomplete; ++i) {
          for (size_t m = 0; m < metrics.size(); ++m) {
            if (!unit_present(i, m, /*errors_count=*/true)) {
              incomplete = true;
              break;
            }
          }
        }
        if (!incomplete) continue;
        all_complete = false;
        if (stealable == num_chunks && !claimed_by_live_other(c)) {
          stealable = c;
        }
      }
      if (all_complete) break;
      if (stealable != num_chunks) {
        SPARSIFY_FAILPOINT("engine.claim.steal");
        store_->AppendClaim(scope, stealable);
        ++accum.shard_stolen;
        steal_count.Add();
        run_units(chunk_missing(stealable, /*errors_count=*/true));
      } else {
        // Every incomplete chunk is owned by a live worker: wait for it
        // to finish or die.
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.01, shard_.poll_seconds)));
      }
    }
  }

  // --- Reassembly: fold own + peer records into the output series -----
  accum.peer_units += store_->RefreshPeers();
  std::vector<std::vector<BatchResult>> results(metrics.size());
  for (auto& per_metric : results) per_metric.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (size_t m = 0; m < metrics.size(); ++m) {
      std::optional<StoredCell> cell =
          store_->Lookup(key_of(tasks[i], metrics[m].name));
      // Unresolved units (cancelled mid-run, or a failed unit's error
      // record) keep the default slot, exactly like the unsharded
      // fault-tolerant path.
      if (!cell.has_value() || cell->is_error) continue;
      results[m][i].task = tasks[i];
      results[m][i].achieved_prune_rate = cell->achieved_prune_rate;
      results[m][i].value = cell->value;
    }
  }
  accum.cached_cells = total_units - accum.submitted_cells;
  if (stats != nullptr) *stats = accum;

  std::vector<MetricSweepSeries> out(metrics.size());
  for (size_t m = 0; m < metrics.size(); ++m) {
    out[m].metric = metrics[m].name;
    out[m].series = FoldSweepResults(config, results[m]);
  }
  return out;
}

}  // namespace sparsify
