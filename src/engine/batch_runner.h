// Parallel batch-sparsification engine.
//
// Expands an {algorithm x prune_rate x run} grid over one shared immutable
// Graph and evaluates every cell concurrently on a ThreadPool. Work is
// shared along two axes:
//   - the RATE axis: cells are grouped by (sparsifier, run), each group's
//     expensive ScoreState (degree rankings, similarity scores, effective
//     resistances) is computed ONCE, and the rate cells fan out as
//     near-free MaskForRate tasks;
//   - the METRIC axis: each cell's sparsified Subgraph is materialized
//     ONCE, and the cell's metrics fan out as independent evaluation units
//     over the shared read-only subgraph (RunTasksMulti).
// Every RNG stream derives from a stable identity — group scoring from
// (master_seed, sparsifier, run) and each (cell, metric) unit from
// (master_seed, dataset, sparsifier, rate, run, metric) — so the numeric
// output is bit-identical at any thread count, for any submitted subset of
// the grid, and for any metric-set composition. See README.md in this
// directory for the design rationale.
#ifndef SPARSIFY_ENGINE_BATCH_RUNNER_H_
#define SPARSIFY_ENGINE_BATCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/cancel.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace sparsify {

/// Metric evaluated on (original, sparsified); identical shape to
/// eval::MetricFn so sweep metrics pass through unchanged.
using BatchMetricFn =
    std::function<double(const Graph& original, const Graph& sparsified,
                         Rng& rng)>;

/// One named metric of a multi-metric run. The name participates in each
/// (cell, metric) unit's RNG stream (MetricSeed) and is what a result
/// store keys cells by, so it must be the stable registry name of the
/// computation — not a display label.
struct BatchMetric {
  std::string name;
  BatchMetricFn fn;
};

/// One expanded cell of the grid.
struct BatchTask {
  uint64_t index = 0;        // position in the expanded grid; legacy
                             // per-cell seeds derive from this, never from
                             // execution order
  std::string sparsifier;    // short name (see SparsifierNames)
  double prune_rate = 0.0;   // requested rate passed to MaskForRate
  int run = 0;               // 0-based repeat index for this cell
  // RunTasksMulti only: indices into its metric list to evaluate on this
  // cell; empty means every metric. The resumable sweep submits the
  // per-cell subset missing from its store. Ignored by single-metric
  // RunTasks. Ids must be distinct and in range.
  std::vector<uint32_t> metrics;
};

/// Result of one task, in the same grid position.
struct BatchResult {
  BatchTask task;
  double achieved_prune_rate = 0.0;
  double value = 0.0;  // metric output
};

/// One metric's output on one cell of a multi-metric run. Under a
/// tolerant FaultPolicy a unit that failed (after retries) reports
/// `failed` with its classification instead of a value.
struct BatchMetricValue {
  uint32_t metric = 0;  // index into RunTasksMulti's metric list
  double value = 0.0;
  bool failed = false;
  std::string error_class;    // "transient" | "permanent" (failed only)
  std::string error_message;  // what() of the final attempt's failure
  int attempts = 0;           // tries consumed (failed only)
};

/// All requested metric outputs of one task, in the same grid position.
struct BatchMultiResult {
  BatchTask task;
  double achieved_prune_rate = 0.0;
  std::vector<BatchMetricValue> values;  // in the task's metric-id order
};

/// Grid specification. Expansion mirrors the paper's sweep protocol:
/// deterministic sparsifiers contribute one run per rate regardless of
/// `runs`, and sparsifiers without prune-rate control (SF, SP-t) collapse
/// the rate axis to a single entry.
struct BatchSpec {
  std::vector<std::string> sparsifiers;  // short names; empty = all
  std::vector<double> prune_rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9};
  int runs = 1;              // repeats per non-deterministic sparsifier
  uint64_t master_seed = 42;
};

/// Scheduling counters of one RunTasks/RunTasksMulti call: how much work
/// the rate-axis (scoring) and metric-axis (subgraph) sharing saved, and
/// where the time went. The CI perf smoke asserts score_groups < cells on
/// a multi-rate grid and subgraph_builds < metric_units on a multi-metric
/// one. The timings are summed task durations across workers
/// (single-threaded they equal wall clock). With share_scores(false)
/// every cell re-runs scoring fused into its Sparsify call: score_groups
/// reports one group per cell and score_seconds stays zero (the fused
/// time lands in subgraph_seconds).
struct BatchRunStats {
  size_t cells = 0;            // tasks executed
  size_t metric_units = 0;     // (cell, metric) evaluations scheduled
  size_t score_groups = 0;     // PrepareScores computations scheduled
  size_t subgraph_builds = 0;  // sparsified Subgraphs materialized (== cells;
                               // the banner/bench contrast it with
                               // metric_units)
  size_t failed_units = 0;     // units that ended in failure (tolerant mode)
  size_t transient_failed_units = 0;  // failed_units whose final class was
                                      // "transient" (retries exhausted)
  size_t deadline_exceeded_units = 0;  // failed_units whose final class was
                                       // "deadline" (--unit-timeout or
                                       // watchdog escalation)
  size_t cancelled_units = 0;  // units skipped or interrupted by run-level
                               // cancellation: NOT failures, nothing is
                               // recorded, a resume resubmits them
  size_t retried_units = 0;    // transient-failure retries performed
  double score_seconds = 0;     // summed duration of group scoring tasks
  double subgraph_seconds = 0;  // summed mask + Apply (or fused Sparsify)
                                // durations
  double metric_seconds = 0;    // summed metric evaluation durations
};

/// How RunTasksMulti treats failures inside units of work. The default is
/// the legacy contract: the first exception anywhere poisons the batch and
/// propagates out of the run (fail-fast). With `tolerate` set, a failing
/// metric unit no longer sinks its siblings: TransientError-classed
/// failures are retried up to `max_unit_retries` extra attempts with
/// capped exponential backoff (the unit's Rng is re-created from
/// MetricSeed each attempt, so a retried success is bit-identical to a
/// first-try success); anything else — and transient failures that
/// exhaust their retries — is reported through `on_unit_failure` and in
/// the result slot, and the rest of the batch runs to completion. A
/// score-group or subgraph failure fails that cell's (or group's cells')
/// units without retry, since re-running scoring wholesale is what a
/// resumed sweep is for.
struct FaultPolicy {
  bool tolerate = false;
  int max_unit_retries = 2;
  /// Invoked once per permanently-failed unit, from the worker thread
  /// (concurrently across workers — must synchronize like the result
  /// callback). error_class is "transient" (retries exhausted),
  /// "permanent", "deadline" (unit timeout / watchdog escalation), or
  /// "cancelled" (a CancelledError thrown while the run itself was NOT
  /// cancelled).
  std::function<void(const BatchTask& task, uint32_t metric,
                     const std::string& error_class,
                     const std::string& error_message, int attempts)>
      on_unit_failure;
  /// Whole-run cooperative cancellation. When the token trips, queued
  /// work is skipped and in-flight units are interrupted at their next
  /// check; affected units are counted as cancelled_units, NOT failures,
  /// and nothing is recorded for them (a resumed sweep resubmits them).
  /// Must outlive the run. Null = no run-level cancellation.
  const CancelToken* cancel = nullptr;
  /// Per-(cell, metric) unit deadline in seconds (0 = none). Each
  /// attempt gets a fresh deadline; a unit that exceeds it fails alone
  /// with error_class "deadline" (no retry — the same computation would
  /// time out again) and the rest of the batch completes.
  double unit_timeout_seconds = 0;
};

/// Evaluates batch grids on a fixed-size thread pool.
///
/// The input Graph is shared read-only across all workers (Graph is
/// immutable after construction); each group creates its own Sparsifier
/// instance and ScoreState, each cell forks private Rng streams, and
/// MaskForRate is const and re-entrant, so no worker state is shared.
class BatchRunner {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency.
  explicit BatchRunner(int num_threads = 0);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  int NumThreads() const;

  /// Always-on accounting of the underlying pool (per-worker busy time,
  /// tasks executed, queue high-water). `sparsify_cli profile` derives
  /// utilization as busy_seconds / (wall x NumThreads()).
  ThreadPoolStats PoolStats() const;

  /// Zeroes the pool counters so a profile run measures only itself.
  void ResetPoolStats();

  /// When false, every cell recomputes its scores with the legacy
  /// per-cell RNG scheme (seed = (master_seed, cell index)) instead of
  /// sharing one ScoreState per (sparsifier, run). This is the pre-sharing
  /// execution model, kept for the throughput benchmark's baseline and for
  /// A/B debugging; note randomized sparsifiers produce different (equally
  /// valid) samples in the two modes. Default true.
  void set_share_scores(bool share);
  bool share_scores() const;

  /// Expands `spec` into the task grid. Deterministic and thread-free;
  /// exposed so callers can inspect or shard the grid.
  static std::vector<BatchTask> ExpandGrid(const BatchSpec& spec);

  /// Seed of task `index` under `master_seed` (SplitMix64 of the pair).
  /// Independent of thread count and execution order by construction.
  /// Since the r3 pipeline revision this only feeds the per-cell sparsify
  /// streams of the share_scores(false) baseline; metric streams come from
  /// MetricSeed.
  static uint64_t TaskSeed(uint64_t master_seed, uint64_t index);

  /// Seed of the shared scoring stream of group (sparsifier, run) under
  /// `master_seed`. Depends only on these three values — not on the grid
  /// shape or on which cells are submitted — so a subset run prepares
  /// bit-identical ScoreStates to the full grid's.
  static uint64_t GroupSeed(uint64_t master_seed,
                            const std::string& sparsifier, int run);

  /// Seed of one (cell, metric) evaluation unit. Depends only on the
  /// listed identities — not on the grid shape, the submitted subset, or
  /// which OTHER metrics are evaluated on the cell — so a multi-metric run
  /// draws bit-identical metric samples to a single-metric run of each of
  /// its metrics, which is what makes their store cells interchangeable.
  static uint64_t MetricSeed(uint64_t master_seed, const std::string& dataset,
                             const std::string& sparsifier, double prune_rate,
                             int run, const std::string& metric);

  /// Invoked as each task finishes, from the worker thread that ran it
  /// (concurrently across workers — the callback must synchronize its own
  /// state; ResultStore::Append already does).
  using ResultCallback = std::function<void(const BatchResult&)>;

  /// Runs every task of `spec` on `g`, returning results in grid order.
  ///
  /// When `g` is directed, sparsifiers whose SparsifierInfo does not
  /// support directed input receive the symmetrized graph (computed once,
  /// shared), and the metric's `original` is then also the symmetrized
  /// graph — the same routing the sequential sweep performs (paper
  /// sections 3.1, 4.5). Exceptions from any task propagate.
  ///
  /// Thread-safe: concurrent Run calls on one runner serialize against
  /// each other (the pool's completion tracking is batch-global).
  std::vector<BatchResult> Run(const Graph& g, const BatchSpec& spec,
                               const BatchMetricFn& metric) const;

  /// Runs an explicit task list — typically a subset of ExpandGrid's
  /// output. A thin wrapper over RunTasksMulti with one anonymous metric
  /// (dataset "" and metric name "" in MetricSeed), kept for callers that
  /// sweep a single unnamed metric (RunSweep, benches, tests); any
  /// task.metrics subsets are ignored. Group scoring streams derive from
  /// (master_seed, sparsifier, run) and metric streams from MetricSeed, so
  /// a subset run computes bit-identical values to the full grid. Results
  /// are returned in `tasks` order; `on_result` (optional) fires per
  /// completed cell; `stats` (optional) receives the scheduling counters.
  std::vector<BatchResult> RunTasks(
      const Graph& g, const std::vector<BatchTask>& tasks,
      uint64_t master_seed, const BatchMetricFn& metric,
      const ResultCallback& on_result = nullptr,
      BatchRunStats* stats = nullptr) const;

  /// Invoked as each (cell, metric) unit finishes, from the worker thread
  /// that ran it (concurrently across workers — the callback must
  /// synchronize its own state). `metric` indexes the metric list.
  using MetricResultCallback =
      std::function<void(const BatchTask& task, double achieved_prune_rate,
                         uint32_t metric, double value)>;

  /// Multi-metric task runner: materializes each task's sparsified
  /// Subgraph exactly once and fans the task's metrics out as independent
  /// units of work on the pool. Pipelined like the score→mask sharing:
  /// the moment a cell's subgraph lands its metric units jump the queue
  /// (SubmitUrgent) and the last unit frees the subgraph, so peak subgraph
  /// residency stays bounded by the cells in flight, not the grid.
  ///
  /// `dataset` is the caller's stable graph identity (the store's dataset
  /// key, e.g. "ego-Facebook@0.5"); it only feeds MetricSeed. Each unit's
  /// metric RNG stream derives from MetricSeed(master_seed, dataset,
  /// sparsifier, rate, run, metric-name), so values are bit-identical at
  /// any thread count, for any submitted subset, and for any metric-set
  /// composition — a {a,b} run computes exactly the {a}-run and {b}-run
  /// values. During each evaluation the engine's pool is exposed as
  /// CurrentSubtaskPool(), so sampled metrics fan their BFS batches out as
  /// subtasks (see eval::MetricFn's thread-safety contract).
  ///
  /// Results are returned in `tasks` order with one value per requested
  /// metric id (task.metrics; empty = all) in that order. Throws
  /// std::invalid_argument when `metrics` is empty or a task names an
  /// out-of-range metric id. `faults` selects fail-fast (default) or
  /// error-tolerant execution; see FaultPolicy.
  std::vector<BatchMultiResult> RunTasksMulti(
      const Graph& g, const std::string& dataset,
      const std::vector<BatchTask>& tasks, uint64_t master_seed,
      const std::vector<BatchMetric>& metrics,
      const MetricResultCallback& on_result = nullptr,
      BatchRunStats* stats = nullptr,
      const FaultPolicy& faults = FaultPolicy()) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sparsify

#endif  // SPARSIFY_ENGINE_BATCH_RUNNER_H_
