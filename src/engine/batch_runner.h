// Parallel batch-sparsification engine.
//
// Expands an {algorithm x prune_rate x run} grid over one shared immutable
// Graph and evaluates every cell concurrently on a ThreadPool. Scoring is
// shared along the rate axis: cells are grouped by (sparsifier, run), each
// group's expensive ScoreState (degree rankings, similarity scores,
// effective resistances) is computed ONCE on the pool, and the rate cells
// fan out as near-free MaskForRate tasks. Each cell's metric RNG stream
// derives purely from (master_seed, cell index) and each group's scoring
// RNG from (master_seed, sparsifier, run), so the numeric output is
// bit-identical at any thread count and for any submitted subset of the
// grid. See README.md in this directory for the design rationale.
#ifndef SPARSIFY_ENGINE_BATCH_RUNNER_H_
#define SPARSIFY_ENGINE_BATCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {

/// Metric evaluated on (original, sparsified); identical shape to
/// eval::MetricFn so sweep metrics pass through unchanged.
using BatchMetricFn =
    std::function<double(const Graph& original, const Graph& sparsified,
                         Rng& rng)>;

/// One expanded cell of the grid.
struct BatchTask {
  uint64_t index = 0;        // position in the expanded grid; metric seeds
                             // derive from this, never from execution order
  std::string sparsifier;    // short name (see SparsifierNames)
  double prune_rate = 0.0;   // requested rate passed to MaskForRate
  int run = 0;               // 0-based repeat index for this cell
};

/// Result of one task, in the same grid position.
struct BatchResult {
  BatchTask task;
  double achieved_prune_rate = 0.0;
  double value = 0.0;  // metric output
};

/// Grid specification. Expansion mirrors the paper's sweep protocol:
/// deterministic sparsifiers contribute one run per rate regardless of
/// `runs`, and sparsifiers without prune-rate control (SF, SP-t) collapse
/// the rate axis to a single entry.
struct BatchSpec {
  std::vector<std::string> sparsifiers;  // short names; empty = all
  std::vector<double> prune_rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9};
  int runs = 1;              // repeats per non-deterministic sparsifier
  uint64_t master_seed = 42;
};

/// Scheduling counters of one RunTasks call: how much scoring work the
/// rate-axis sharing saved, and where the time went. The CI perf smoke
/// asserts score_groups < cells on a multi-rate grid. The timings are
/// summed task durations across workers (single-threaded they equal wall
/// clock) and exist only in shared-score mode; with share_scores(false)
/// scoring and masking are fused inside each cell and both stay zero.
struct BatchRunStats {
  size_t cells = 0;          // tasks executed
  size_t score_groups = 0;   // PrepareScores computations scheduled
  double score_seconds = 0;  // summed duration of group scoring tasks
  double mask_seconds = 0;   // summed duration of mask + metric tasks
};

/// Evaluates batch grids on a fixed-size thread pool.
///
/// The input Graph is shared read-only across all workers (Graph is
/// immutable after construction); each group creates its own Sparsifier
/// instance and ScoreState, each cell forks private Rng streams, and
/// MaskForRate is const and re-entrant, so no worker state is shared.
class BatchRunner {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency.
  explicit BatchRunner(int num_threads = 0);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  int NumThreads() const;

  /// When false, every cell recomputes its scores with the legacy
  /// per-cell RNG scheme (seed = (master_seed, cell index)) instead of
  /// sharing one ScoreState per (sparsifier, run). This is the pre-sharing
  /// execution model, kept for the throughput benchmark's baseline and for
  /// A/B debugging; note randomized sparsifiers produce different (equally
  /// valid) samples in the two modes. Default true.
  void set_share_scores(bool share);
  bool share_scores() const;

  /// Expands `spec` into the task grid. Deterministic and thread-free;
  /// exposed so callers can inspect or shard the grid.
  static std::vector<BatchTask> ExpandGrid(const BatchSpec& spec);

  /// Seed of task `index` under `master_seed` (SplitMix64 of the pair).
  /// Independent of thread count and execution order by construction.
  static uint64_t TaskSeed(uint64_t master_seed, uint64_t index);

  /// Seed of the shared scoring stream of group (sparsifier, run) under
  /// `master_seed`. Depends only on these three values — not on the grid
  /// shape or on which cells are submitted — so a subset run prepares
  /// bit-identical ScoreStates to the full grid's.
  static uint64_t GroupSeed(uint64_t master_seed,
                            const std::string& sparsifier, int run);

  /// Invoked as each task finishes, from the worker thread that ran it
  /// (concurrently across workers — the callback must synchronize its own
  /// state; ResultStore::Append already does).
  using ResultCallback = std::function<void(const BatchResult&)>;

  /// Runs every task of `spec` on `g`, returning results in grid order.
  ///
  /// When `g` is directed, sparsifiers whose SparsifierInfo does not
  /// support directed input receive the symmetrized graph (computed once,
  /// shared), and the metric's `original` is then also the symmetrized
  /// graph — the same routing the sequential sweep performs (paper
  /// sections 3.1, 4.5). Exceptions from any task propagate.
  ///
  /// Thread-safe: concurrent Run calls on one runner serialize against
  /// each other (the pool's completion tracking is batch-global).
  std::vector<BatchResult> Run(const Graph& g, const BatchSpec& spec,
                               const BatchMetricFn& metric) const;

  /// Runs an explicit task list — typically a subset of ExpandGrid's output
  /// (the resumable sweep submits only the cells missing from its store).
  /// Cell metric streams derive from (master_seed, task.index) and group
  /// scoring streams from (master_seed, sparsifier, run), so a subset run
  /// computes bit-identical values to the full grid. Results are returned
  /// in `tasks` order; `on_result` (optional) fires per completed cell;
  /// `stats` (optional) receives the scheduling counters.
  std::vector<BatchResult> RunTasks(
      const Graph& g, const std::vector<BatchTask>& tasks,
      uint64_t master_seed, const BatchMetricFn& metric,
      const ResultCallback& on_result = nullptr,
      BatchRunStats* stats = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sparsify

#endif  // SPARSIFY_ENGINE_BATCH_RUNNER_H_
