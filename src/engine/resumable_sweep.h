// Crash-resumable sweep orchestration on top of BatchRunner + ResultStore.
//
// Expands the sweep grid, looks every cell up in a persistent store,
// submits only the missing cells to the engine, appends each fresh result
// to the store as it completes (flushed per record), and reassembles the
// full SweepSeries from stored + fresh cells. Because every cell's RNG
// streams derive from (master_seed, grid index), a resumed sweep is
// bit-identical to a cold one.
#ifndef SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_
#define SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_

#include <string>
#include <vector>

#include "src/engine/batch_runner.h"
#include "src/eval/experiment.h"
#include "src/store/result_store.h"

namespace sparsify {

/// Scheduling counters of one resumable run — the test/CI hook asserting
/// that a warm store leads to zero submitted cells.
struct ResumableSweepStats {
  size_t total_cells = 0;      // full grid size
  size_t cached_cells = 0;     // served from the store
  size_t submitted_cells = 0;  // scheduled on the BatchRunner
  // Scoring work the engine actually scheduled for the submitted cells:
  // with rate-axis sharing this is one PrepareScores per (sparsifier, run)
  // group, strictly fewer than submitted_cells on a multi-rate grid.
  size_t score_groups = 0;
};

/// One sweep of one (dataset graph, metric) pair against a store.
///
/// The store may be null, in which case every cell is computed (a cold,
/// non-persistent run — identical output, nothing written).
class ResumableSweep {
 public:
  /// `code_rev` tags the cell keys (see kResultCodeRev); override it in
  /// tests to isolate stores.
  ResumableSweep(BatchRunner& runner, ResultStore* store,
                 std::string code_rev = kResultCodeRev);

  /// When false, the store is only written, never consulted: every cell is
  /// recomputed and re-appended (last write wins on replay). This is the
  /// CLI's `--store` without `--resume`. Default true.
  void set_reuse_cached(bool reuse) { reuse_cached_ = reuse; }

  /// Runs `metric` over the sweep grid of `config` on `g`. `dataset` and
  /// `metric_name` become CellKey fields — callers must pick names that
  /// uniquely identify the graph (include the scale) and the metric
  /// function. Fresh cells are appended to the store as they complete; the
  /// returned series are folded exactly like RunSweep's.
  std::vector<SweepSeries> Run(const Graph& g, const std::string& dataset,
                               const std::string& metric_name,
                               const SweepConfig& config,
                               const MetricFn& metric,
                               ResumableSweepStats* stats = nullptr);

 private:
  BatchRunner& runner_;
  ResultStore* store_;  // not owned; may be null
  std::string code_rev_;
  bool reuse_cached_ = true;
};

}  // namespace sparsify

#endif  // SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_
