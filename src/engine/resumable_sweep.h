// Crash-resumable sweep orchestration on top of BatchRunner + ResultStore.
//
// Expands the sweep grid as the (cell × metric) product, looks every unit
// up in a persistent store, submits only the missing units to the engine
// (each cell carrying exactly its missing metric subset, so its subgraph
// is materialized once for all of them), appends each fresh result to the
// store as it completes (flushed per record), and reassembles the full
// per-metric SweepSeries from stored + fresh units. Because every RNG
// stream derives from stable identities (GroupSeed for scoring, MetricSeed
// for metric samples), a resumed sweep is bit-identical to a cold one, and
// a sweep resumed with MORE metrics submits only the new metrics' units.
#ifndef SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_
#define SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/engine/batch_runner.h"
#include "src/eval/experiment.h"
#include "src/store/result_store.h"

namespace sparsify {

/// One named metric of a resumable sweep; the name is the store's (and
/// MetricSeed's) identity for the computation — see cli::NamedMetrics.
struct SweepMetric {
  std::string name;
  MetricFn fn;
};

/// One metric's folded sweep output.
struct MetricSweepSeries {
  std::string metric;
  std::vector<SweepSeries> series;
};

/// Shard-worker configuration for multi-process sweeps (set_shard). The
/// full grid is partitioned into contiguous chunks of cells in task
/// order; chunk c's preferred owner is worker c % total. Each worker
/// claims and runs its preferred chunks first, then (with `steal` on)
/// takes over incomplete chunks whose claimants died — guaranteeing a
/// `kill -9` of any worker loses at most its in-flight units. Because
/// every unit's RNG stream derives from grid-shape-independent
/// identities, any worker recomputes a stolen unit bit-identically.
struct ShardSpec {
  size_t index = 0;  // this worker's 0-based shard id
  size_t total = 1;  // worker count; <= 1 disables sharding
  bool steal = true;           // take over dead workers' chunks
  double poll_seconds = 0.25;  // peer-refresh cadence while waiting
};

/// Scheduling counters of one resumable run — the test/CI hook asserting
/// that a warm store leads to zero submitted units. A "unit" is one
/// (cell, metric) evaluation; for a single-metric sweep units == cells.
struct ResumableSweepStats {
  size_t total_cells = 0;      // full (cell × metric) product size
  size_t cached_cells = 0;     // units served from the store
  size_t submitted_cells = 0;  // units scheduled on the BatchRunner
  // Work the engine actually scheduled for the submitted units, counting
  // the two sharing axes: one PrepareScores per (sparsifier, run) group
  // (strictly fewer than submitted cells on a multi-rate grid) and one
  // materialized subgraph per cell with any missing metric (strictly
  // fewer than submitted units on a multi-metric grid).
  size_t score_groups = 0;
  size_t subgraph_builds = 0;
  // Fault-tolerant mode only: units that ended in failure (recorded as
  // error records when a store is attached), the subset whose final
  // failure was transient (retries exhausted — a re-run may succeed),
  // and transient retries spent.
  size_t failed_units = 0;
  size_t transient_failed_units = 0;
  size_t retried_units = 0;
  // Units that hit their --unit-timeout (or were watchdog-escalated):
  // a subset of failed_units, recorded as "deadline" error records.
  size_t deadline_exceeded_units = 0;
  // Units skipped or interrupted by run-level cancellation (SIGINT/
  // SIGTERM or --deadline): not failures, nothing recorded, the next
  // --resume resubmits them.
  size_t cancelled_units = 0;
  // Summed task durations from BatchRunStats: where the submitted units'
  // time went (score = PrepareScores groups, subgraph = mask + Apply,
  // metric = evaluations).
  double score_seconds = 0;
  double subgraph_seconds = 0;
  double metric_seconds = 0;
  // Sharded scheduling only (set_shard): chunks in the partition, chunks
  // this worker claimed as preferred owner, chunks it stole from dead
  // workers, and units whose results came from peer workers' records.
  size_t shard_chunks = 0;
  size_t shard_claimed = 0;
  size_t shard_stolen = 0;
  size_t peer_units = 0;
};

/// One sweep of one (dataset graph, metric) pair against a store.
///
/// The store may be null, in which case every cell is computed (a cold,
/// non-persistent run — identical output, nothing written).
class ResumableSweep {
 public:
  /// `code_rev` tags the cell keys (see kResultCodeRev); override it in
  /// tests to isolate stores.
  ResumableSweep(BatchRunner& runner, ResultStore* store,
                 std::string code_rev = kResultCodeRev);

  /// When false, the store is only written, never consulted: every cell is
  /// recomputed and re-appended (last write wins on replay). This is the
  /// CLI's `--store` without `--resume`. Default true.
  void set_reuse_cached(bool reuse) { reuse_cached_ = reuse; }

  /// Per-unit progress callback: invoked as each SUBMITTED (cell, metric)
  /// unit completes, with the running completed count and the submitted
  /// total (cached units are excluded — they were never work). Fires on
  /// worker threads, concurrently; the callback must synchronize its own
  /// state and stay cheap. Drives the CLI's --progress heartbeat.
  using ProgressFn = std::function<void(size_t completed, size_t submitted)>;
  void set_progress(ProgressFn progress) { progress_ = std::move(progress); }

  /// Error-tolerant execution (default off = legacy fail-fast). When on,
  /// a unit that throws no longer aborts the sweep: TransientError-classed
  /// failures retry up to max_unit_retries extra attempts (bit-identical
  /// on success — the unit's RNG re-derives from MetricSeed), and a unit
  /// that still fails is recorded in the store as a typed ERROR record
  /// under its CellKey. Error records read back as missing, so the next
  /// --resume resubmits exactly the failed units; a later success
  /// overwrites the error (last write wins).
  void set_fault_tolerant(bool on) { fault_tolerant_ = on; }
  void set_max_unit_retries(int retries) { max_unit_retries_ = retries; }

  /// Whole-run cooperative cancellation token (see FaultPolicy::cancel).
  /// When it trips — SIGINT/SIGTERM via the CLI's signal bridge, or a
  /// --deadline — queued units are skipped, in-flight units interrupted
  /// at their next check, completed units are already appended, and
  /// nothing is recorded for the rest: the next --resume picks up where
  /// the cancelled run stopped, bit-identically. Must outlive RunMulti.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Per-(cell, metric) deadline in seconds (0 = off). A unit exceeding
  /// it fails alone with a "deadline" error record; see FaultPolicy.
  void set_unit_timeout(double seconds) { unit_timeout_seconds_ = seconds; }

  /// Runs this sweep as shard `spec.index` of `spec.total` cooperating
  /// worker processes sharing one store directory (implemented in
  /// shard_scheduler.cc). Requires a store; the store is always consulted
  /// (sharding IS resume semantics — each worker runs only units nobody
  /// has completed). With spec.total <= 1 this is a no-op and RunMulti
  /// behaves exactly as unsharded.
  void set_shard(const ShardSpec& spec) { shard_ = spec; }

  /// Runs every metric of `metrics` over the sweep grid of `config` on
  /// `g`, sparsifying each (sparsifier, rate, run) cell exactly once and
  /// evaluating all of the cell's missing metrics on that one subgraph.
  /// `dataset` and the metric names become CellKey fields AND seed the
  /// (cell, metric) RNG streams — callers must pick names that uniquely
  /// identify the graph (include the scale) and the metric functions.
  /// Fresh units are appended to the store as they complete; the returned
  /// per-metric series (in `metrics` order) are folded exactly like
  /// RunSweep's.
  std::vector<MetricSweepSeries> RunMulti(const Graph& g,
                                          const std::string& dataset,
                                          const std::vector<SweepMetric>& metrics,
                                          const SweepConfig& config,
                                          ResumableSweepStats* stats = nullptr);

  /// Single-metric convenience wrapper over RunMulti. A single-metric
  /// sweep is cache-compatible with any multi-metric sweep that includes
  /// `metric_name`: both key and seed the unit by (dataset, sparsifier,
  /// rate, run, metric_name), never by the metric-set composition.
  std::vector<SweepSeries> Run(const Graph& g, const std::string& dataset,
                               const std::string& metric_name,
                               const SweepConfig& config,
                               const MetricFn& metric,
                               ResumableSweepStats* stats = nullptr);

 private:
  // The multi-process claim/steal scheduler (shard_scheduler.cc); RunMulti
  // delegates here when shard_.total > 1.
  std::vector<MetricSweepSeries> RunShardedMulti(
      const Graph& g, const std::string& dataset,
      const std::vector<SweepMetric>& metrics, const SweepConfig& config,
      ResumableSweepStats* stats);

  BatchRunner& runner_;
  ResultStore* store_;  // not owned; may be null
  std::string code_rev_;
  bool reuse_cached_ = true;
  bool fault_tolerant_ = false;
  int max_unit_retries_ = 2;
  const CancelToken* cancel_ = nullptr;  // not owned; may be null
  double unit_timeout_seconds_ = 0;
  ProgressFn progress_;
  ShardSpec shard_;
};

}  // namespace sparsify

#endif  // SPARSIFY_ENGINE_RESUMABLE_SWEEP_H_
