#include "src/engine/batch_runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace sparsify {
namespace {

// Engine stage counters/latencies. Function-local static references so
// the registry mutex is paid once per process, not per task.
struct EngineObs {
  obs::Counter& score_groups = obs::GetCounter("engine.score_groups");
  obs::Counter& subgraph_builds = obs::GetCounter("engine.subgraph_builds");
  obs::Counter& metric_units = obs::GetCounter("engine.metric_units");
  obs::Histogram& score_ns = obs::GetHistogram("engine.score_ns");
  obs::Histogram& subgraph_ns = obs::GetHistogram("engine.subgraph_ns");
  obs::Histogram& metric_unit_ns = obs::GetHistogram("engine.metric_unit_ns");
};

EngineObs& GetEngineObs() {
  static EngineObs* e = new EngineObs();
  return *e;
}

std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

// Backoff before transient-failure retry `attempt` (1-based count of
// attempts already made): 1ms doubling, capped at 100ms. A transient
// fault (contended resource, injected flake) usually clears fast; the
// cap keeps a retried batch from stalling a worker for long.
std::chrono::milliseconds RetryBackoff(int attempt) {
  uint64_t ms = 1ULL << std::min(attempt - 1, 20);
  return std::chrono::milliseconds(std::min<uint64_t>(ms, 100));
}

}  // namespace

struct BatchRunner::Impl {
  explicit Impl(int num_threads) : pool(num_threads) {}
  // Serializes Run: the pool's completion tracking is batch-global, so two
  // concurrent batches would wait on (and steal errors from) each other.
  std::mutex run_mu;
  mutable ThreadPool pool;
  bool share_scores = true;
};

BatchRunner::BatchRunner(int num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchRunner::~BatchRunner() = default;

int BatchRunner::NumThreads() const { return impl_->pool.NumThreads(); }

ThreadPoolStats BatchRunner::PoolStats() const { return impl_->pool.Stats(); }

void BatchRunner::ResetPoolStats() { impl_->pool.ResetStats(); }

void BatchRunner::set_share_scores(bool share) {
  impl_->share_scores = share;
}

bool BatchRunner::share_scores() const { return impl_->share_scores; }

namespace {

uint64_t SplitMix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BatchRunner::TaskSeed(uint64_t master_seed, uint64_t index) {
  // SplitMix64 over the combined pair. The golden-ratio stride separates
  // consecutive indices far apart in the seed space; Rng's own seed mixing
  // then decorrelates the streams.
  return SplitMix(master_seed + (index + 1) * 0x9e3779b97f4a7c15ULL);
}

uint64_t BatchRunner::GroupSeed(uint64_t master_seed,
                                const std::string& sparsifier, int run) {
  // FNV-1a over the name, folded with the run index, then the same
  // SplitMix finalizer as TaskSeed. Intentionally independent of grid
  // shape and cell indices: any subset of a group's rate cells prepares
  // the same ScoreState.
  uint64_t h = 1469598103934665603ULL;
  for (char c : sparsifier) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h += (static_cast<uint64_t>(run) + 1) * 0x9e3779b97f4a7c15ULL;
  return SplitMix(master_seed ^ SplitMix(h));
}

uint64_t BatchRunner::MetricSeed(uint64_t master_seed,
                                 const std::string& dataset,
                                 const std::string& sparsifier,
                                 double prune_rate, int run,
                                 const std::string& metric) {
  // FNV-1a over every identity component. Each string is closed with a
  // fold of its LENGTH — a boundary no byte content can forge, so
  // ("ab", "c") never collides with ("a", "bc") even for names holding
  // arbitrary bytes; the rate enters via its IEEE-754 bits (grid rates
  // are exact values, so bitwise identity is the right equality). Like
  // GroupSeed, this is intentionally independent of grid shape, of the
  // submitted subset, and of the metric-set composition.
  uint64_t h = 1469598103934665603ULL;
  auto fold_string = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= s.size() + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  };
  fold_string(dataset);
  fold_string(sparsifier);
  fold_string(metric);
  uint64_t rate_bits = 0;
  static_assert(sizeof(rate_bits) == sizeof(prune_rate));
  std::memcpy(&rate_bits, &prune_rate, sizeof(rate_bits));
  h ^= SplitMix(rate_bits);
  h *= 1099511628211ULL;
  h += (static_cast<uint64_t>(run) + 1) * 0x9e3779b97f4a7c15ULL;
  return SplitMix(master_seed ^ SplitMix(h));
}

std::vector<BatchTask> BatchRunner::ExpandGrid(const BatchSpec& spec) {
  std::vector<std::string> names =
      spec.sparsifiers.empty() ? SparsifierNames() : spec.sparsifiers;
  std::vector<BatchTask> tasks;
  for (const std::string& name : names) {
    SparsifierInfo info = CreateSparsifier(name)->Info();
    bool fixed_output = info.prune_rate_control == PruneRateControl::kNone;
    std::vector<double> rates =
        fixed_output ? std::vector<double>{0.0} : spec.prune_rates;
    int runs = info.deterministic ? 1 : std::max(1, spec.runs);
    for (double rate : rates) {
      for (int run = 0; run < runs; ++run) {
        BatchTask task;
        task.index = tasks.size();
        task.sparsifier = name;
        task.prune_rate = rate;
        task.run = run;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

std::vector<BatchResult> BatchRunner::Run(const Graph& g,
                                          const BatchSpec& spec,
                                          const BatchMetricFn& metric) const {
  return RunTasks(g, ExpandGrid(spec), spec.master_seed, metric);
}

std::vector<BatchResult> BatchRunner::RunTasks(
    const Graph& g, const std::vector<BatchTask>& tasks, uint64_t master_seed,
    const BatchMetricFn& metric, const ResultCallback& on_result,
    BatchRunStats* stats) const {
  // Thin wrapper over the multi-metric path: one anonymous metric, every
  // task evaluating it (per-task subsets are a multi-metric concept).
  std::vector<BatchTask> plain = tasks;
  for (BatchTask& task : plain) task.metrics.clear();
  std::vector<BatchMetric> metrics;
  metrics.push_back(BatchMetric{std::string(), metric});
  MetricResultCallback on_unit = nullptr;
  if (on_result) {
    on_unit = [&on_result](const BatchTask& task, double achieved, uint32_t,
                           double value) {
      BatchResult r;
      r.task = task;
      r.achieved_prune_rate = achieved;
      r.value = value;
      on_result(r);
    };
  }
  std::vector<BatchMultiResult> multi =
      RunTasksMulti(g, std::string(), plain, master_seed, metrics, on_unit,
                    stats);
  std::vector<BatchResult> results(multi.size());
  for (size_t i = 0; i < multi.size(); ++i) {
    results[i].task = std::move(multi[i].task);
    results[i].achieved_prune_rate = multi[i].achieved_prune_rate;
    results[i].value = multi[i].values[0].value;
  }
  return results;
}

std::vector<BatchMultiResult> BatchRunner::RunTasksMulti(
    const Graph& g, const std::string& dataset,
    const std::vector<BatchTask>& tasks, uint64_t master_seed,
    const std::vector<BatchMetric>& metrics,
    const MetricResultCallback& on_result, BatchRunStats* stats,
    const FaultPolicy& faults) const {
  if (metrics.empty()) {
    throw std::invalid_argument("RunTasksMulti: metric list is empty");
  }
  std::lock_guard<std::mutex> run_lock(impl_->run_mu);

  // Symmetrize once if any selected sparsifier will need it; the copy is
  // shared read-only across workers like the original.
  Graph sym_holder;
  const Graph* symmetrized = nullptr;
  std::unordered_map<std::string, const Graph*> input_for;
  for (const BatchTask& task : tasks) {
    if (input_for.contains(task.sparsifier)) continue;
    SparsifierInfo info = CreateSparsifier(task.sparsifier)->Info();
    if (g.IsDirected() && !info.supports_directed) {
      if (symmetrized == nullptr) {
        sym_holder = g.Symmetrized();
        symmetrized = &sym_holder;
      }
      input_for[task.sparsifier] = symmetrized;
    } else {
      input_for[task.sparsifier] = &g;
    }
  }

  // Resolve each task's metric-id list (empty = every metric) and size the
  // result slots so metric units can write them without synchronization.
  std::vector<uint32_t> all_ids(metrics.size());
  for (uint32_t m = 0; m < metrics.size(); ++m) all_ids[m] = m;
  std::vector<const std::vector<uint32_t>*> ids_of(tasks.size());
  size_t metric_units = 0;
  std::vector<BatchMultiResult> results(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const std::vector<uint32_t>& ids =
        tasks[i].metrics.empty() ? all_ids : tasks[i].metrics;
    for (uint32_t m : ids) {
      if (m >= metrics.size()) {
        throw std::invalid_argument(
            "RunTasksMulti: task names out-of-range metric id");
      }
    }
    ids_of[i] = &ids;
    metric_units += ids.size();
    results[i].task = tasks[i];
    results[i].values.resize(ids.size());
  }

  // Per-cell shared state for the metric fan-out: the materialized
  // subgraph, freed by the cell's last metric unit.
  std::vector<std::optional<Graph>> cell_graph(tasks.size());
  std::vector<std::atomic<size_t>> units_left(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    units_left[i].store(ids_of[i]->size(), std::memory_order_relaxed);
  }

  std::atomic<bool> failed{false};
  std::mutex stats_mu;
  double score_seconds = 0.0, subgraph_seconds = 0.0, metric_seconds = 0.0;
  const bool tolerate = faults.tolerate;
  std::atomic<size_t> failed_units{0};
  std::atomic<size_t> transient_failed_units{0};
  std::atomic<size_t> deadline_units{0};
  std::atomic<size_t> cancelled_units{0};
  std::atomic<size_t> retried_units{0};

  // Run-level cancellation: once the caller's token trips, tasks still
  // queued skip their work entirely and in-flight units are interrupted
  // at their next cooperative check.
  const CancelToken* run_cancel = faults.cancel;
  auto run_cancelled = [run_cancel] {
    return run_cancel != nullptr && run_cancel->Cancelled();
  };

  // Tolerant-mode handling of a failed score-group or subgraph stage:
  // every dependent unit of cell i is marked failed (no retry — scoring
  // is re-run wholesale by a resumed sweep, not per unit). Only the
  // worker owning cell i calls this, so the result slots need no lock.
  auto fail_cell = [&](size_t i, const std::string& error_class,
                       const std::string& error_message) {
    const BatchTask& task = results[i].task;
    for (size_t slot = 0; slot < ids_of[i]->size(); ++slot) {
      BatchMetricValue v;
      v.metric = (*ids_of[i])[slot];
      v.failed = true;
      v.error_class = error_class;
      v.error_message = error_message;
      v.attempts = 1;
      results[i].values[slot] = std::move(v);
      failed_units.fetch_add(1, std::memory_order_relaxed);
      if (error_class == "transient") {
        transient_failed_units.fetch_add(1, std::memory_order_relaxed);
      }
      if (error_class == "deadline") {
        deadline_units.fetch_add(1, std::memory_order_relaxed);
      }
      if (faults.on_unit_failure) {
        faults.on_unit_failure(task, (*ids_of[i])[slot], error_class,
                               error_message, 1);
      }
    }
  };

  // Run-level cancellation of cell i's units. The slots are still marked
  // failed (a default slot would fold as metric-0 value 0.0) but this is
  // NOT a failure: on_unit_failure is not invoked and nothing is
  // recorded, so a resumed sweep resubmits exactly these units. Only the
  // worker owning cell i calls this.
  auto cancel_cell = [&](size_t i) {
    for (size_t slot = 0; slot < ids_of[i]->size(); ++slot) {
      BatchMetricValue v;
      v.metric = (*ids_of[i])[slot];
      v.failed = true;
      v.error_class = "cancelled";
      v.error_message = "run cancelled";
      results[i].values[slot] = std::move(v);
      cancelled_units.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Fans cell i's metrics out as independent evaluation units. Called from
  // the task that materialized the cell's subgraph; SubmitUrgent puts the
  // units ahead of every queued subgraph build and scoring task, so the
  // subgraph is consumed and freed before more subgraphs pile up.
  auto submit_metric_units = [&](size_t i) {
    for (size_t slot = 0; slot < ids_of[i]->size(); ++slot) {
      impl_->pool.SubmitUrgent([&, i, slot] {
        if (failed.load(std::memory_order_relaxed)) return;
        const BatchTask& task = results[i].task;
        uint32_t m = (*ids_of[i])[slot];
        if (run_cancelled()) {
          // Skipped before starting. Still release the subgraph chain.
          BatchMetricValue v;
          v.metric = m;
          v.failed = true;
          v.error_class = "cancelled";
          v.error_message = "run cancelled";
          results[i].values[slot] = std::move(v);
          cancelled_units.fetch_add(1, std::memory_order_relaxed);
          if (units_left[i].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            cell_graph[i].reset();
          }
          return;
        }
        // One span per (cell x metric) evaluation unit — the unit CI
        // counts against the sweep banner. The detail key is the metric
        // registry name; the cell identity rides in the args.
        TRACE_SPAN(span, "metric_unit");
        if (span.active()) {
          span.Detail(metrics[m].name.empty() ? "metric" : metrics[m].name);
          span.Arg("sparsifier", task.sparsifier);
          span.Arg("rate", FormatRate(task.prune_rate));
          span.Arg("run", std::to_string(task.run));
        }
        Timer unit_timer;
        bool ok = false;
        bool cancelled = false;  // run-level: skip, don't fail
        std::string error_class, error_message;
        int attempts = 0;
        const bool cancellable =
            run_cancel != nullptr || faults.unit_timeout_seconds > 0;
        while (true) {
          ++attempts;
          // Per-attempt unit token: parented under the run token so a
          // run-level cancel interrupts the unit at its next check, with
          // a fresh --unit-timeout deadline each attempt. Declared
          // before the activity scope so the watchdog (which cancels the
          // token of a stuck activity while holding its slot lock) can
          // never observe a destroyed token.
          CancelToken unit_token;
          unit_token.set_parent(run_cancel);
          if (faults.unit_timeout_seconds > 0) {
            unit_token.SetDeadlineAfter(faults.unit_timeout_seconds);
          }
          CancelScope cancel_scope(cancellable ? &unit_token : nullptr);
          ActivityScope activity(
              "metric_unit",
              metrics[m].name.empty() ? "metric" : metrics[m].name,
              cancellable ? &unit_token : nullptr);
          try {
            // The Rng is re-created from MetricSeed on every attempt, so
            // a retried success draws the exact samples a first-try
            // success would — retries are invisible in the numbers.
            // (Cancellation checks never touch this stream either: an
            // interrupted-then-resumed unit is bit-identical.)
            Rng metric_rng(MetricSeed(master_seed, dataset, task.sparsifier,
                                      task.prune_rate, task.run,
                                      metrics[m].name));
            SPARSIFY_FAILPOINT_SCOPED("engine.metric_unit",
                                      metrics[m].name.c_str());
            // Expose the pool for the metric's own BFS-batch fan-out.
            SubtaskPoolScope subtasks(&impl_->pool);
            double value = metrics[m].fn(*input_for.at(task.sparsifier),
                                         *cell_graph[i], metric_rng);
            results[i].values[slot] = BatchMetricValue{m, value};
            ok = true;
            if (on_result) {
              on_result(task, results[i].achieved_prune_rate, m, value);
            }
            break;
          } catch (const DeadlineExceededError& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;  // recorded as the pool's first error, rethrown by Wait
            }
            if (run_cancelled()) {
              cancelled = true;  // the whole run is going down, not just us
            } else {
              error_class = "deadline";  // no retry: it would time out again
            }
            error_message = e.what();
            break;
          } catch (const CancelledError& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            if (run_cancelled()) {
              cancelled = true;
            } else {
              error_class = "cancelled";
            }
            error_message = e.what();
            break;
          } catch (const TransientError& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;  // recorded as the pool's first error, rethrown by Wait
            }
            error_class = "transient";
            error_message = e.what();
            if (attempts > faults.max_unit_retries) break;
            retried_units.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(RetryBackoff(attempts));
          } catch (const std::exception& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            error_class = "permanent";
            error_message = e.what();
            break;
          } catch (...) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            error_class = "permanent";
            error_message = "unknown error";
            break;
          }
        }
        if (!ok) {
          BatchMetricValue v;
          v.metric = m;
          v.failed = true;
          v.error_class = cancelled ? "cancelled" : error_class;
          v.error_message = error_message;
          v.attempts = attempts;
          results[i].values[slot] = std::move(v);
          if (cancelled) {
            // Not a failure: nothing recorded, resume resubmits the unit.
            cancelled_units.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed_units.fetch_add(1, std::memory_order_relaxed);
            if (error_class == "transient") {
              transient_failed_units.fetch_add(1, std::memory_order_relaxed);
            }
            if (error_class == "deadline") {
              deadline_units.fetch_add(1, std::memory_order_relaxed);
            }
            if (faults.on_unit_failure) {
              faults.on_unit_failure(task, m, error_class, error_message,
                                     attempts);
            }
          }
        }
        double unit_seconds = unit_timer.Seconds();
        EngineObs& eobs = GetEngineObs();
        eobs.metric_units.Add();
        eobs.metric_unit_ns.Record(
            static_cast<uint64_t>(unit_seconds * 1e9));
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          metric_seconds += unit_seconds;
        }
        if (units_left[i].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          cell_graph[i].reset();  // last metric frees the subgraph
        }
      });
    }
  };

  if (!impl_->share_scores) {
    // Legacy per-cell scoring: every cell re-sparsifies from scratch with
    // its own (master_seed, index)-derived stream. Kept as the throughput
    // benchmark's baseline and for A/B debugging; the metric fan-out (and
    // its MetricSeed streams) is identical to the shared path, so
    // deterministic sparsifiers stay bit-identical across modes.
    for (size_t i = 0; i < tasks.size(); ++i) {
      impl_->pool.Submit([&, i] {
        if (failed.load(std::memory_order_relaxed)) return;
        if (run_cancelled()) {
          cancel_cell(i);
          return;
        }
        TRACE_SPAN(span, "subgraph");
        if (span.active()) {
          span.Detail(results[i].task.sparsifier);
          span.Arg("rate", FormatRate(results[i].task.prune_rate));
        }
        CancelScope cancel_scope(run_cancel);
        ActivityScope activity("subgraph", results[i].task.sparsifier,
                               run_cancel);
        Timer build_timer;
        bool built = false;
        try {
          const BatchTask& task = results[i].task;
          const Graph& input = *input_for.at(task.sparsifier);
          SPARSIFY_FAILPOINT_SCOPED("engine.subgraph",
                                    task.sparsifier.c_str());
          Rng task_rng(TaskSeed(master_seed, task.index));
          Rng sparsify_rng = task_rng.Fork();
          std::unique_ptr<Sparsifier> sparsifier =
              CreateSparsifier(task.sparsifier);
          Graph sparsified =
              sparsifier->Sparsify(input, task.prune_rate, sparsify_rng);
          results[i].achieved_prune_rate =
              Sparsifier::AchievedPruneRate(input, sparsified);
          cell_graph[i].emplace(std::move(sparsified));
          built = true;
        } catch (const CancelledError& e) {
          if (!tolerate) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
          if (run_cancelled()) {
            cancel_cell(i);
          } else {
            fail_cell(i, "cancelled", e.what());
          }
        } catch (const TransientError& e) {
          if (!tolerate) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
          fail_cell(i, "transient", e.what());
        } catch (const std::exception& e) {
          if (!tolerate) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
          fail_cell(i, "permanent", e.what());
        } catch (...) {
          if (!tolerate) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
          fail_cell(i, "permanent", "unknown error");
        }
        double build_seconds = build_timer.Seconds();
        EngineObs& eobs = GetEngineObs();
        eobs.subgraph_builds.Add();
        eobs.subgraph_ns.Record(static_cast<uint64_t>(build_seconds * 1e9));
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          subgraph_seconds += build_seconds;
        }
        if (built) submit_metric_units(i);
      });
    }
    impl_->pool.Wait();
    if (stats != nullptr) {
      *stats = BatchRunStats{};
      stats->cells = tasks.size();
      stats->metric_units = metric_units;
      stats->score_groups = tasks.size();  // every cell rescored
      stats->subgraph_builds = tasks.size();
      stats->failed_units = failed_units.load(std::memory_order_relaxed);
      stats->transient_failed_units =
          transient_failed_units.load(std::memory_order_relaxed);
      stats->deadline_exceeded_units =
          deadline_units.load(std::memory_order_relaxed);
      stats->cancelled_units =
          cancelled_units.load(std::memory_order_relaxed);
      stats->retried_units = retried_units.load(std::memory_order_relaxed);
      stats->subgraph_seconds = subgraph_seconds;
      stats->metric_seconds = metric_seconds;
    }
    return results;
  }

  // Group the cells by (sparsifier, run): one ScoreState per group, shared
  // read-only across that group's rate cells. std::map keeps group order
  // deterministic (not that it matters numerically — every group's RNG
  // stream derives from its own GroupSeed).
  struct Group {
    std::string sparsifier;
    int run = 0;
    const Graph* input = nullptr;
    std::unique_ptr<Sparsifier> instance;
    std::unique_ptr<ScoreState> state;
  };
  std::vector<Group> groups;
  std::vector<size_t> group_of(tasks.size());
  std::map<std::pair<std::string, int>, size_t> group_index;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto key = std::make_pair(tasks[i].sparsifier, tasks[i].run);
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      Group group;
      group.sparsifier = tasks[i].sparsifier;
      group.run = tasks[i].run;
      group.input = input_for.at(tasks[i].sparsifier);
      group.instance = CreateSparsifier(tasks[i].sparsifier);
      groups.push_back(std::move(group));
    }
    group_of[i] = it->second;
  }
  std::vector<std::vector<size_t>> cells_of(groups.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    cells_of[group_of[i]].push_back(i);
  }

  // Pipelined execution — no barrier between the three stages. Every
  // group's scoring task is queued up front; the moment a group's state is
  // ready, its cells' subgraph builds jump the queue (SubmitUrgent), and
  // the moment a subgraph lands its metric units jump the queue in turn.
  // Consequences:
  //   - peak ScoreState residency is bounded by the groups actually in
  //     flight (~thread count), not the whole grid (ER's state alone is
  //     three |E|-length arrays per run), and peak Subgraph residency by
  //     the cells in flight: the last cell of a group frees the group's
  //     state, the last metric unit of a cell frees the cell's subgraph;
  //   - cheap groups' cells never stall behind an expensive group's
  //     scoring (ER's CG solves), a single-group grid still fans its
  //     cells across all workers, and a single-cell grid still fans its
  //     metrics (and their BFS-batch subtasks) across all workers.
  // Determinism is untouched by any of this scheduling: group scoring
  // streams derive from (master_seed, sparsifier, run) — deterministic
  // sparsifiers ignore them entirely, keeping their cells bit-identical
  // to the per-cell path — and each (cell, metric) unit's stream derives
  // from MetricSeed. MaskForRate is const and re-entrant, so one group's
  // cells can threshold the shared state concurrently; the subgraph is
  // immutable once built, so one cell's metrics can read it concurrently.
  std::vector<std::atomic<size_t>> cells_left(groups.size());
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    cells_left[gi].store(cells_of[gi].size(), std::memory_order_relaxed);
  }

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    impl_->pool.Submit([&, gi] {
      if (failed.load(std::memory_order_relaxed)) return;
      if (run_cancelled()) {
        for (size_t i : cells_of[gi]) cancel_cell(i);
        return;
      }
      Group& group = groups[gi];
      TRACE_SPAN(span, "score_group");
      if (span.active()) {
        span.Detail(group.sparsifier);
        span.Arg("run", std::to_string(group.run));
      }
      // The run token is ambient while scoring so PrepareScores' own
      // checks (ER's CG iterations, JL dimensions) observe cancellation.
      CancelScope cancel_scope(run_cancel);
      ActivityScope activity("score_group", group.sparsifier, run_cancel);
      Timer score_timer;
      bool scored = false;
      try {
        SPARSIFY_FAILPOINT_SCOPED("engine.score_group",
                                  group.sparsifier.c_str());
        Rng group_rng(GroupSeed(master_seed, group.sparsifier, group.run));
        group.state = group.instance->PrepareScores(*group.input, group_rng);
        scored = true;
      } catch (const CancelledError& e) {
        if (!tolerate) {
          failed.store(true, std::memory_order_relaxed);
          throw;
        }
        if (run_cancelled()) {
          for (size_t i : cells_of[gi]) cancel_cell(i);
        } else {
          for (size_t i : cells_of[gi]) fail_cell(i, "cancelled", e.what());
        }
      } catch (const TransientError& e) {
        if (!tolerate) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // recorded as the pool's first error, rethrown by Wait
        }
        for (size_t i : cells_of[gi]) fail_cell(i, "transient", e.what());
      } catch (const std::exception& e) {
        if (!tolerate) {
          failed.store(true, std::memory_order_relaxed);
          throw;
        }
        for (size_t i : cells_of[gi]) fail_cell(i, "permanent", e.what());
      } catch (...) {
        if (!tolerate) {
          failed.store(true, std::memory_order_relaxed);
          throw;
        }
        for (size_t i : cells_of[gi]) {
          fail_cell(i, "permanent", "unknown error");
        }
      }
      double group_seconds = score_timer.Seconds();
      EngineObs& eobs = GetEngineObs();
      eobs.score_groups.Add();
      eobs.score_ns.Record(static_cast<uint64_t>(group_seconds * 1e9));
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        score_seconds += group_seconds;
      }
      if (!scored) return;  // tolerant mode: the group's cells are failed
      for (size_t i : cells_of[gi]) {
        impl_->pool.SubmitUrgent([&, gi, i] {
          Group& cell_group = groups[gi];
          if (failed.load(std::memory_order_relaxed)) return;
          if (run_cancelled()) {
            cancel_cell(i);
            if (cells_left[gi].fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
              cell_group.state.reset();
            }
            return;
          }
          TRACE_SPAN(span, "subgraph");
          if (span.active()) {
            span.Detail(results[i].task.sparsifier);
            span.Arg("rate", FormatRate(results[i].task.prune_rate));
            span.Arg("run", std::to_string(results[i].task.run));
          }
          CancelScope cancel_scope(run_cancel);
          ActivityScope activity("subgraph", results[i].task.sparsifier,
                                 run_cancel);
          Timer build_timer;
          bool built = false;
          try {
            const BatchTask& task = results[i].task;
            SPARSIFY_FAILPOINT_SCOPED("engine.subgraph",
                                      task.sparsifier.c_str());
            RateMask mask = cell_group.instance->MaskForRate(
                *cell_group.state, task.prune_rate);
            Graph sparsified = Sparsifier::Apply(*cell_group.input, mask);
            results[i].achieved_prune_rate =
                Sparsifier::AchievedPruneRate(*cell_group.input, sparsified);
            cell_graph[i].emplace(std::move(sparsified));
            built = true;
          } catch (const CancelledError& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            if (run_cancelled()) {
              cancel_cell(i);
            } else {
              fail_cell(i, "cancelled", e.what());
            }
          } catch (const TransientError& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            fail_cell(i, "transient", e.what());
          } catch (const std::exception& e) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            fail_cell(i, "permanent", e.what());
          } catch (...) {
            if (!tolerate) {
              failed.store(true, std::memory_order_relaxed);
              throw;
            }
            fail_cell(i, "permanent", "unknown error");
          }
          double build_seconds = build_timer.Seconds();
          EngineObs& eobs = GetEngineObs();
          eobs.subgraph_builds.Add();
          eobs.subgraph_ns.Record(
              static_cast<uint64_t>(build_seconds * 1e9));
          {
            std::lock_guard<std::mutex> lock(stats_mu);
            subgraph_seconds += build_seconds;
          }
          if (built) submit_metric_units(i);
          if (cells_left[gi].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            cell_group.state.reset();  // last cell frees the score state
          }
        });
      }
    });
  }
  impl_->pool.Wait();

  if (stats != nullptr) {
    *stats = BatchRunStats{};
    stats->cells = tasks.size();
    stats->metric_units = metric_units;
    stats->score_groups = groups.size();
    stats->subgraph_builds = tasks.size();
    stats->failed_units = failed_units.load(std::memory_order_relaxed);
    stats->transient_failed_units =
        transient_failed_units.load(std::memory_order_relaxed);
    stats->deadline_exceeded_units =
        deadline_units.load(std::memory_order_relaxed);
    stats->cancelled_units = cancelled_units.load(std::memory_order_relaxed);
    stats->retried_units = retried_units.load(std::memory_order_relaxed);
    stats->score_seconds = score_seconds;
    stats->subgraph_seconds = subgraph_seconds;
    stats->metric_seconds = metric_seconds;
  }
  return results;
}

}  // namespace sparsify
