#include "src/engine/batch_runner.h"

#include <mutex>
#include <unordered_map>

#include "src/util/thread_pool.h"

namespace sparsify {

struct BatchRunner::Impl {
  explicit Impl(int num_threads) : pool(num_threads) {}
  // Serializes Run: the pool's completion tracking is batch-global, so two
  // concurrent batches would wait on (and steal errors from) each other.
  std::mutex run_mu;
  mutable ThreadPool pool;
};

BatchRunner::BatchRunner(int num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchRunner::~BatchRunner() = default;

int BatchRunner::NumThreads() const { return impl_->pool.NumThreads(); }

uint64_t BatchRunner::TaskSeed(uint64_t master_seed, uint64_t index) {
  // SplitMix64 over the combined pair. The golden-ratio stride separates
  // consecutive indices far apart in the seed space; Rng's own seed mixing
  // then decorrelates the streams.
  uint64_t z = master_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<BatchTask> BatchRunner::ExpandGrid(const BatchSpec& spec) {
  std::vector<std::string> names =
      spec.sparsifiers.empty() ? SparsifierNames() : spec.sparsifiers;
  std::vector<BatchTask> tasks;
  for (const std::string& name : names) {
    SparsifierInfo info = CreateSparsifier(name)->Info();
    bool fixed_output = info.prune_rate_control == PruneRateControl::kNone;
    std::vector<double> rates =
        fixed_output ? std::vector<double>{0.0} : spec.prune_rates;
    int runs = info.deterministic ? 1 : std::max(1, spec.runs);
    for (double rate : rates) {
      for (int run = 0; run < runs; ++run) {
        BatchTask task;
        task.index = tasks.size();
        task.sparsifier = name;
        task.prune_rate = rate;
        task.run = run;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

std::vector<BatchResult> BatchRunner::Run(const Graph& g,
                                          const BatchSpec& spec,
                                          const BatchMetricFn& metric) const {
  return RunTasks(g, ExpandGrid(spec), spec.master_seed, metric);
}

std::vector<BatchResult> BatchRunner::RunTasks(
    const Graph& g, const std::vector<BatchTask>& tasks, uint64_t master_seed,
    const BatchMetricFn& metric, const ResultCallback& on_result) const {
  std::lock_guard<std::mutex> run_lock(impl_->run_mu);

  // Symmetrize once if any selected sparsifier will need it; the copy is
  // shared read-only across workers like the original.
  Graph sym_holder;
  const Graph* symmetrized = nullptr;
  std::unordered_map<std::string, const Graph*> input_for;
  for (const BatchTask& task : tasks) {
    if (input_for.contains(task.sparsifier)) continue;
    SparsifierInfo info = CreateSparsifier(task.sparsifier)->Info();
    if (g.IsDirected() && !info.supports_directed) {
      if (symmetrized == nullptr) {
        sym_holder = g.Symmetrized();
        symmetrized = &sym_holder;
      }
      input_for[task.sparsifier] = symmetrized;
    } else {
      input_for[task.sparsifier] = &g;
    }
  }

  std::vector<BatchResult> results(tasks.size());
  ParallelFor(impl_->pool, tasks.size(), [&](size_t i) {
    const BatchTask& task = tasks[i];
    const Graph& input = *input_for.at(task.sparsifier);
    // All randomness flows from (master_seed, index): identical output at
    // any thread count, and any single cell can be re-run in isolation.
    Rng task_rng(TaskSeed(master_seed, task.index));
    Rng sparsify_rng = task_rng.Fork();
    Rng metric_rng = task_rng.Fork();
    std::unique_ptr<Sparsifier> sparsifier = CreateSparsifier(task.sparsifier);
    Graph sparsified = sparsifier->Sparsify(input, task.prune_rate,
                                            sparsify_rng);
    BatchResult& r = results[i];
    r.task = task;
    r.achieved_prune_rate = Sparsifier::AchievedPruneRate(input, sparsified);
    r.value = metric(input, sparsified, metric_rng);
    if (on_result) on_result(r);
  });
  return results;
}

}  // namespace sparsify
