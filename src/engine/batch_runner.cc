#include "src/engine/batch_runner.h"

#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace sparsify {

struct BatchRunner::Impl {
  explicit Impl(int num_threads) : pool(num_threads) {}
  // Serializes Run: the pool's completion tracking is batch-global, so two
  // concurrent batches would wait on (and steal errors from) each other.
  std::mutex run_mu;
  mutable ThreadPool pool;
  bool share_scores = true;
};

BatchRunner::BatchRunner(int num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchRunner::~BatchRunner() = default;

int BatchRunner::NumThreads() const { return impl_->pool.NumThreads(); }

void BatchRunner::set_share_scores(bool share) {
  impl_->share_scores = share;
}

bool BatchRunner::share_scores() const { return impl_->share_scores; }

namespace {

uint64_t SplitMix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BatchRunner::TaskSeed(uint64_t master_seed, uint64_t index) {
  // SplitMix64 over the combined pair. The golden-ratio stride separates
  // consecutive indices far apart in the seed space; Rng's own seed mixing
  // then decorrelates the streams.
  return SplitMix(master_seed + (index + 1) * 0x9e3779b97f4a7c15ULL);
}

uint64_t BatchRunner::GroupSeed(uint64_t master_seed,
                                const std::string& sparsifier, int run) {
  // FNV-1a over the name, folded with the run index, then the same
  // SplitMix finalizer as TaskSeed. Intentionally independent of grid
  // shape and cell indices: any subset of a group's rate cells prepares
  // the same ScoreState.
  uint64_t h = 1469598103934665603ULL;
  for (char c : sparsifier) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h += (static_cast<uint64_t>(run) + 1) * 0x9e3779b97f4a7c15ULL;
  return SplitMix(master_seed ^ SplitMix(h));
}

std::vector<BatchTask> BatchRunner::ExpandGrid(const BatchSpec& spec) {
  std::vector<std::string> names =
      spec.sparsifiers.empty() ? SparsifierNames() : spec.sparsifiers;
  std::vector<BatchTask> tasks;
  for (const std::string& name : names) {
    SparsifierInfo info = CreateSparsifier(name)->Info();
    bool fixed_output = info.prune_rate_control == PruneRateControl::kNone;
    std::vector<double> rates =
        fixed_output ? std::vector<double>{0.0} : spec.prune_rates;
    int runs = info.deterministic ? 1 : std::max(1, spec.runs);
    for (double rate : rates) {
      for (int run = 0; run < runs; ++run) {
        BatchTask task;
        task.index = tasks.size();
        task.sparsifier = name;
        task.prune_rate = rate;
        task.run = run;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

std::vector<BatchResult> BatchRunner::Run(const Graph& g,
                                          const BatchSpec& spec,
                                          const BatchMetricFn& metric) const {
  return RunTasks(g, ExpandGrid(spec), spec.master_seed, metric);
}

std::vector<BatchResult> BatchRunner::RunTasks(
    const Graph& g, const std::vector<BatchTask>& tasks, uint64_t master_seed,
    const BatchMetricFn& metric, const ResultCallback& on_result,
    BatchRunStats* stats) const {
  std::lock_guard<std::mutex> run_lock(impl_->run_mu);

  // Symmetrize once if any selected sparsifier will need it; the copy is
  // shared read-only across workers like the original.
  Graph sym_holder;
  const Graph* symmetrized = nullptr;
  std::unordered_map<std::string, const Graph*> input_for;
  for (const BatchTask& task : tasks) {
    if (input_for.contains(task.sparsifier)) continue;
    SparsifierInfo info = CreateSparsifier(task.sparsifier)->Info();
    if (g.IsDirected() && !info.supports_directed) {
      if (symmetrized == nullptr) {
        sym_holder = g.Symmetrized();
        symmetrized = &sym_holder;
      }
      input_for[task.sparsifier] = symmetrized;
    } else {
      input_for[task.sparsifier] = &g;
    }
  }

  std::vector<BatchResult> results(tasks.size());

  if (!impl_->share_scores) {
    // Legacy per-cell execution: every cell rescoring from scratch with
    // its own (master_seed, index)-derived stream. Kept as the throughput
    // benchmark's baseline.
    ParallelFor(impl_->pool, tasks.size(), [&](size_t i) {
      const BatchTask& task = tasks[i];
      const Graph& input = *input_for.at(task.sparsifier);
      Rng task_rng(TaskSeed(master_seed, task.index));
      Rng sparsify_rng = task_rng.Fork();
      Rng metric_rng = task_rng.Fork();
      std::unique_ptr<Sparsifier> sparsifier =
          CreateSparsifier(task.sparsifier);
      Graph sparsified =
          sparsifier->Sparsify(input, task.prune_rate, sparsify_rng);
      BatchResult& r = results[i];
      r.task = task;
      r.achieved_prune_rate = Sparsifier::AchievedPruneRate(input, sparsified);
      r.value = metric(input, sparsified, metric_rng);
      if (on_result) on_result(r);
    });
    if (stats != nullptr) {
      // No phase split exists in this mode: scoring and masking are fused
      // inside each cell's Sparsify call, so both timings stay zero.
      *stats = BatchRunStats{};
      stats->cells = tasks.size();
      stats->score_groups = tasks.size();
    }
    return results;
  }

  // Group the cells by (sparsifier, run): one ScoreState per group, shared
  // read-only across that group's rate cells. std::map keeps group order
  // deterministic (not that it matters numerically — every group's RNG
  // stream derives from its own GroupSeed).
  struct Group {
    std::string sparsifier;
    int run = 0;
    const Graph* input = nullptr;
    std::unique_ptr<Sparsifier> instance;
    std::unique_ptr<ScoreState> state;
  };
  std::vector<Group> groups;
  std::vector<size_t> group_of(tasks.size());
  std::map<std::pair<std::string, int>, size_t> group_index;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto key = std::make_pair(tasks[i].sparsifier, tasks[i].run);
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      Group group;
      group.sparsifier = tasks[i].sparsifier;
      group.run = tasks[i].run;
      group.input = input_for.at(tasks[i].sparsifier);
      group.instance = CreateSparsifier(tasks[i].sparsifier);
      groups.push_back(std::move(group));
    }
    group_of[i] = it->second;
  }
  std::vector<std::vector<size_t>> cells_of(groups.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    cells_of[group_of[i]].push_back(i);
  }

  // Pipelined execution — no barrier between scoring and masking. Every
  // group's scoring task is queued up front; the moment a group's state is
  // ready, its cells are pushed to the FRONT of the queue (SubmitUrgent)
  // so they drain before further groups start scoring. Consequences:
  //   - peak ScoreState residency is bounded by the groups actually in
  //     flight (~thread count), not the whole grid (ER's state alone is
  //     three |E|-length arrays per run);
  //   - cheap groups' cells never stall behind an expensive group's
  //     scoring (ER's CG solves), and a single-group grid still fans its
  //     cells across all workers;
  //   - the last cell of each group frees the group's state.
  // Determinism is untouched by any of this scheduling: group scoring
  // streams derive from (master_seed, sparsifier, run) — deterministic
  // sparsifiers ignore them entirely, keeping their cells bit-identical
  // to the per-cell path — and each cell's metric stream derives from
  // (master_seed, cell index) exactly as before (the sparsify fork is
  // consumed to keep the per-cell stream layout). MaskForRate is const
  // and re-entrant, so one group's cells can threshold the shared state
  // concurrently.
  std::vector<std::atomic<size_t>> cells_left(groups.size());
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    cells_left[gi].store(cells_of[gi].size(), std::memory_order_relaxed);
  }
  std::atomic<bool> failed{false};
  std::mutex stats_mu;
  double score_seconds = 0.0, mask_seconds = 0.0;

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    impl_->pool.Submit([&, gi] {
      if (failed.load(std::memory_order_relaxed)) return;
      Group& group = groups[gi];
      Timer score_timer;
      try {
        Rng group_rng(GroupSeed(master_seed, group.sparsifier, group.run));
        group.state = group.instance->PrepareScores(*group.input, group_rng);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;  // recorded as the pool's first error, rethrown by Wait
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        score_seconds += score_timer.Seconds();
      }
      for (size_t i : cells_of[gi]) {
        impl_->pool.SubmitUrgent([&, gi, i] {
          if (failed.load(std::memory_order_relaxed)) return;
          Group& cell_group = groups[gi];
          Timer cell_timer;
          try {
            const BatchTask& task = tasks[i];
            Rng task_rng(TaskSeed(master_seed, task.index));
            Rng sparsify_rng = task_rng.Fork();
            (void)sparsify_rng;
            Rng metric_rng = task_rng.Fork();
            RateMask mask = cell_group.instance->MaskForRate(
                *cell_group.state, task.prune_rate);
            Graph sparsified = Sparsifier::Apply(*cell_group.input, mask);
            BatchResult& r = results[i];
            r.task = task;
            r.achieved_prune_rate =
                Sparsifier::AchievedPruneRate(*cell_group.input, sparsified);
            r.value = metric(*cell_group.input, sparsified, metric_rng);
            if (on_result) on_result(r);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
          {
            std::lock_guard<std::mutex> lock(stats_mu);
            mask_seconds += cell_timer.Seconds();
          }
          if (cells_left[gi].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            cell_group.state.reset();
          }
        });
      }
    });
  }
  impl_->pool.Wait();

  if (stats != nullptr) {
    *stats = BatchRunStats{};
    stats->cells = tasks.size();
    stats->score_groups = groups.size();
    stats->score_seconds = score_seconds;
    stats->mask_seconds = mask_seconds;
  }
  return results;
}

}  // namespace sparsify
