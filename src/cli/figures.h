// Registry of the paper's sweep-shaped figures: dataset, sparsifier list,
// metric, and reference line for each, extracted from the former per-figure
// bench mains so that one driver (RunFigures) serves both the bench
// binaries (now thin wrappers) and `sparsify_cli figure`.
//
// Figures whose metric needs a full-graph reference (centrality top-100
// precision, clustering F1) precompute it once per dataset via
// `make_metric`, exactly as the original benches did — including their
// fixed reference seeds, so converted benches reproduce the same numbers.
#ifndef SPARSIFY_CLI_FIGURES_H_
#define SPARSIFY_CLI_FIGURES_H_

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/eval/experiment.h"
#include "src/graph/datasets.h"

namespace sparsify::cli {

/// One figure of the paper (or a companion panel).
struct FigureSpec {
  std::string id;          // e.g. "1a", "4a-unreach"
  std::string title;       // full figure title
  std::string value_name;  // pivot-table row-header label
  std::string dataset;     // dataset name (datasets.h)
  double default_scale = 0.5;  // the original bench's default --scale
  std::vector<std::string> sparsifiers;
  std::string metric;  // NamedMetrics name, or the label of a custom metric
  // Builds the metric on the loaded dataset; null means look `metric` up in
  // NamedMetrics(). Used by figures that precompute a reference ranking.
  std::function<MetricFn(const Dataset&)> make_metric;
  // Full-graph reference value (the figures' green dashed line); null for
  // figures without one.
  std::function<double(const Dataset&)> reference;
};

/// The store's dataset identity for a scaled stand-in: "name@scale". The
/// scale is part of the name because scaled stand-ins are different graphs.
std::string DatasetCellName(const std::string& dataset, double scale);

/// All figures, paper order.
const std::vector<FigureSpec>& AllFigures();

/// Looks a figure up by id; nullptr when absent.
const FigureSpec* FindFigure(const std::string& id);

/// Options for RunFigures, mirroring the bench flags.
struct FigureRunOptions {
  double scale = 0.0;  // <= 0 selects each figure's default_scale
  int runs = 3;
  int threads = 0;
  uint64_t seed = 42;
  bool csv = false;
  std::string store_dir;  // non-empty: persist cells under this directory
  bool resume = false;    // consult the store before scheduling
};

/// Runs the listed figures through the (resumable) sweep engine and prints
/// each as a pivot table or CSV. Returns a process exit code; unknown ids
/// report an error listing the known ones.
int RunFigures(const std::vector<std::string>& ids,
               const FigureRunOptions& opt, std::ostream& os);

}  // namespace sparsify::cli

#endif  // SPARSIFY_CLI_FIGURES_H_
