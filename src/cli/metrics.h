// Named metric registry shared by the CLI driver, the bench figure specs,
// and any store-backed sweep: a stable metric NAME is what a CellKey
// records AND what seeds the (cell, metric) RNG stream
// (BatchRunner::MetricSeed), so every consumer must agree on what that
// name computes.
//
// Sample counts are fixed canonical values (documented per metric in the
// .cc); changing one changes numeric output and therefore requires a
// kResultCodeRev bump.
#ifndef SPARSIFY_CLI_METRICS_H_
#define SPARSIFY_CLI_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/eval/experiment.h"

namespace sparsify::cli {

/// One registered metric: the computation plus the metadata the `metrics`
/// subcommand lists.
struct NamedMetric {
  MetricFn fn;
  std::string description;  // one line, paper-figure reference included
  // True when the metric consumes its per-cell RNG stream (sampled pairs,
  // pivots, or visit orders); deterministic metrics ignore the stream and
  // are numerically identical across pipeline RNG revisions.
  bool sampled = false;
};

/// All named metrics, keyed by registry name.
const std::map<std::string, NamedMetric>& NamedMetrics();

/// Names only, registry order (alphabetical — std::map iteration).
std::vector<std::string> MetricNames();

/// Looks a metric up; throws std::invalid_argument with the known names
/// listed when `name` is absent.
const MetricFn& FindMetric(const std::string& name);

}  // namespace sparsify::cli

#endif  // SPARSIFY_CLI_METRICS_H_
