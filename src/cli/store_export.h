// Rebuilds sweep series from a persisted ResultStore and renders them
// through the existing printers — the `sparsify_cli export` / `ls`
// backends, kept as a library so tests can assert byte-identical output.
#ifndef SPARSIFY_CLI_STORE_EXPORT_H_
#define SPARSIFY_CLI_STORE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/eval/experiment.h"
#include "src/store/result_store.h"

namespace sparsify::cli {

/// One exported (dataset, metric, master_seed, code_rev) group.
struct StoreGroup {
  std::string dataset;
  std::string metric;
  uint64_t master_seed = 0;
  std::string code_rev;
  size_t cells = 0;  // result cells folded into this group's series
  std::vector<SweepSeries> series;
};

/// Rebuilds series from the store's cells. Deterministic regardless of the
/// log's append order: groups sort by (dataset, metric, seed, rev), series
/// by sparsifier registry order (unknown names after, alphabetical), points
/// by (prune_rate, run). Statistics therefore fold from the same values in
/// the same order whether the store was filled cold, across resumed runs,
/// or by a fleet of shard workers. Fixed-output algorithms get their
/// requested rate replaced by the achieved mean, mirroring
/// FoldSweepResults. Since r4 a (sparsifier, rate, run) triple IS the
/// cell's identity within a group, so the sort is a total order over
/// distinct cells. Empty filters match all.
std::vector<StoreGroup> RebuildSeries(const ResultStore& store,
                                      const std::string& dataset_filter = "",
                                      const std::string& metric_filter = "");

/// Prints every group as CSV (csv=true, PrintSeriesCsv) or pivot tables.
void ExportStore(const ResultStore& store, std::ostream& os, bool csv,
                 const std::string& dataset_filter = "",
                 const std::string& metric_filter = "");

/// One-line-per-group summary of the store's contents.
void SummarizeStore(const ResultStore& store, std::ostream& os);

}  // namespace sparsify::cli

#endif  // SPARSIFY_CLI_STORE_EXPORT_H_
