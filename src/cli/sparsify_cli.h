// The unified command-line driver (built as the `sparsify_cli` binary).
//
// Subcommands:
//   list      enumerate sparsifiers, datasets, metrics, figures
//   sparsify  one graph through one algorithm (file in, file out)
//   evaluate  one metric on an (original, sparsified) file pair
//   sweep     {sparsifier x prune-rate x run} grids, optionally persisted
//             to a result store (--store=DIR) and resumable (--resume)
//   export    result store -> CSV or pivot tables
//   ls        summarize a result store
//   figure    regenerate paper figures by id (same engine, same store flags)
//
// Kept as a library entry point so tests can drive the exact CLI paths.
#ifndef SPARSIFY_CLI_SPARSIFY_CLI_H_
#define SPARSIFY_CLI_SPARSIFY_CLI_H_

namespace sparsify::cli {

/// argv-level entry point; returns the process exit code. Unknown
/// subcommands and unknown --flags print an error plus usage and return
/// nonzero instead of being silently ignored.
int RunSparsifyCli(int argc, char** argv);

}  // namespace sparsify::cli

#endif  // SPARSIFY_CLI_SPARSIFY_CLI_H_
