// The unified command-line driver (built as the `sparsify_cli` binary).
//
// Subcommands:
//   list      enumerate sparsifiers, datasets, metrics, figures
//   sparsify  one graph through one algorithm (file in, file out)
//   evaluate  one metric on an (original, sparsified) file pair
//   sweep     {sparsifier x prune-rate x run} grids, optionally persisted
//             to a result store (--store=DIR) and resumable (--resume)
//   export    result store -> CSV or pivot tables
//   ls        summarize a result store
//   figure    regenerate paper figures by id (same engine, same store flags)
//
// Kept as a library entry point so tests can drive the exact CLI paths.
#ifndef SPARSIFY_CLI_SPARSIFY_CLI_H_
#define SPARSIFY_CLI_SPARSIFY_CLI_H_

namespace sparsify::cli {

// Exit codes. Distinct codes per failure class so scripts (and the
// crash-torture harness) can branch on WHY a run failed without parsing
// stderr. Every code is stable API; tests pin each one.
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;        // bad usage / unclassified error
inline constexpr int kExitIo = 2;           // filesystem failure (IoError)
inline constexpr int kExitLockHeld = 3;     // store busy: other live writers
inline constexpr int kExitCorruptStore = 4; // store failed replay validation
inline constexpr int kExitUnitFailures = 5; // sweep finished, but >=1 unit
                                            // failed permanently
inline constexpr int kExitTransientFailures = 6;  // sweep finished; every
                                                  // failure was transient
                                                  // (retries exhausted) or a
                                                  // unit deadline —
                                                  // re-running may succeed
inline constexpr int kExitInterrupted = 7;  // SIGINT/SIGTERM: in-flight units
                                            // drained, completed units
                                            // persisted; --resume continues
inline constexpr int kExitDeadline = 8;     // --deadline expired: same drain
                                            // + persist contract as a signal

/// argv-level entry point; returns the process exit code. Unknown
/// subcommands and unknown --flags print an error plus usage and return
/// nonzero instead of being silently ignored. Reads SPARSIFY_FAILPOINTS
/// (fault-injection spec; see util/failpoint.h) at entry, so torture
/// harnesses can inject faults into an unmodified binary.
int RunSparsifyCli(int argc, char** argv);

}  // namespace sparsify::cli

#endif  // SPARSIFY_CLI_SPARSIFY_CLI_H_
