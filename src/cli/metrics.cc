#include "src/cli/metrics.h"

#include <stdexcept>

#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/metrics/maxflow.h"

namespace sparsify::cli {

const std::map<std::string, MetricFn>& NamedMetrics() {
  static const std::map<std::string, MetricFn> registry = {
      // Connectivity damage (paper fig 1).
      {"connectivity",
       [](const Graph&, const Graph& h, Rng&) {
         return UnreachableRatio(h);
       }},
      {"isolated",
       [](const Graph&, const Graph& h, Rng&) { return IsolatedRatio(h); }},
      // Degree-distribution Bhattacharyya distance (fig 2).
      {"degree",
       [](const Graph& g, const Graph& h, Rng&) {
         return DegreeDistributionDistance(g, h);
       }},
      // Laplacian quadratic-form similarity, 50 probe vectors (fig 3).
      {"quadratic",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return QuadraticFormSimilarity(g, h, 50, rng);
       }},
      // SPSP stretch over 2000 sampled pairs (fig 4a).
      {"spsp",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return SpspStretch(g, h, 2000, rng).mean_stretch;
       }},
      {"spsp_unreachable",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return SpspStretch(g, h, 2000, rng).unreachable;
       }},
      // Eccentricity stretch over 50 sampled vertices (fig 4b).
      {"eccentricity",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return EccentricityStretch(g, h, 50, rng).mean_stretch;
       }},
      // 4-sweep approximate diameter of the sparsified graph (fig 4c).
      {"diameter",
       [](const Graph&, const Graph& h, Rng& rng) {
         return ApproxDiameter(h, 4, rng);
       }},
      // Centrality top-100 precisions (figs 5-7, 11). The reference is
      // recomputed on `original` per cell; the figure registry precomputes
      // it instead where the paper's protocol allows.
      {"betweenness",
       [](const Graph& g, const Graph& h, Rng& rng) {
         Rng ref_rng = rng.Fork();
         auto ref = ApproxBetweennessCentrality(g, 300, ref_rng);
         return TopKPrecision(ref, ApproxBetweennessCentrality(h, 300, rng),
                              100);
       }},
      {"closeness",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(ClosenessCentrality(g), ClosenessCentrality(h),
                              100);
       }},
      {"eigenvector",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(EigenvectorCentrality(g),
                              EigenvectorCentrality(h), 100);
       }},
      {"katz",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(KatzCentrality(g), KatzCentrality(h), 100);
       }},
      {"pagerank",
       [](const Graph& g, const Graph& h, Rng&) {
         return TopKPrecision(PageRank(g), PageRank(h), 100);
       }},
      // Community structure (figs 8, 10).
      {"communities",
       [](const Graph&, const Graph& h, Rng& rng) {
         return static_cast<double>(LouvainCommunities(h, rng).num_clusters);
       }},
      {"f1",
       [](const Graph& g, const Graph& h, Rng& rng) {
         Rng ref_rng = rng.Fork();
         Clustering ref = LouvainCommunities(g, ref_rng);
         return ClusteringF1(LouvainCommunities(h, rng).label, ref.label);
       }},
      // Clustering coefficients (fig 9).
      {"mcc",
       [](const Graph&, const Graph& h, Rng&) {
         return MeanClusteringCoefficient(h);
       }},
      {"gcc",
       [](const Graph&, const Graph& h, Rng&) {
         return GlobalClusteringCoefficient(h);
       }},
      // Min-cut/max-flow stretch over 50 sampled pairs (fig 12).
      {"maxflow",
       [](const Graph& g, const Graph& h, Rng& rng) {
         return MaxFlowStretch(g, h, 50, rng).mean_ratio;
       }},
  };
  return registry;
}

std::vector<std::string> MetricNames() {
  std::vector<std::string> names;
  for (const auto& [name, fn] : NamedMetrics()) names.push_back(name);
  return names;
}

const MetricFn& FindMetric(const std::string& name) {
  auto it = NamedMetrics().find(name);
  if (it == NamedMetrics().end()) {
    std::string known;
    for (const auto& [n, fn] : NamedMetrics()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("unknown metric '" + name + "' (known: " +
                                known + ")");
  }
  return it->second;
}

}  // namespace sparsify::cli
