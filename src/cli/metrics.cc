#include "src/cli/metrics.h"

#include <stdexcept>

#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/kcore.h"
#include "src/metrics/louvain.h"
#include "src/metrics/maxflow.h"

namespace sparsify::cli {
namespace {

NamedMetric Deterministic(MetricFn fn, std::string description) {
  return NamedMetric{std::move(fn), std::move(description), /*sampled=*/false};
}

NamedMetric Sampled(MetricFn fn, std::string description) {
  return NamedMetric{std::move(fn), std::move(description), /*sampled=*/true};
}

}  // namespace

const std::map<std::string, NamedMetric>& NamedMetrics() {
  static const std::map<std::string, NamedMetric> registry = {
      // Connectivity damage (paper fig 1).
      {"connectivity",
       Deterministic(
           [](const Graph&, const Graph& h, Rng&) {
             return UnreachableRatio(h);
           },
           "pair unreachable ratio of the sparsified graph (fig 1a)")},
      {"isolated",
       Deterministic(
           [](const Graph&, const Graph& h, Rng&) { return IsolatedRatio(h); },
           "isolated-vertex ratio of the sparsified graph (fig 1b)")},
      // Degree-distribution Bhattacharyya distance (fig 2).
      {"degree",
       Deterministic(
           [](const Graph& g, const Graph& h, Rng&) {
             return DegreeDistributionDistance(g, h);
           },
           "degree-distribution Bhattacharyya distance vs original (fig 2)")},
      // Laplacian quadratic-form similarity, 50 probe vectors (fig 3).
      {"quadratic",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             return QuadraticFormSimilarity(g, h, 50, rng);
           },
           "Laplacian quadratic-form similarity, 50 probe vectors (fig 3)")},
      // SPSP stretch over 2000 sampled pairs (fig 4a).
      {"spsp",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             return SpspStretch(g, h, 2000, rng).mean_stretch;
           },
           "mean SPSP stretch over 2000 sampled pairs (fig 4a)")},
      {"spsp_unreachable",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             return SpspStretch(g, h, 2000, rng).unreachable;
           },
           "fraction of sampled SPSP pairs made unreachable (fig 4a)")},
      // Eccentricity stretch over 50 sampled vertices (fig 4b).
      {"eccentricity",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             return EccentricityStretch(g, h, 50, rng).mean_stretch;
           },
           "mean eccentricity stretch over 50 sampled vertices (fig 4b)")},
      // 4-sweep approximate diameter of the sparsified graph (fig 4c).
      {"diameter",
       Sampled(
           [](const Graph&, const Graph& h, Rng& rng) {
             return ApproxDiameter(h, 4, rng);
           },
           "4-sweep approximate diameter of the sparsified graph (fig 4c)")},
      // Centrality top-100 precisions (figs 5-7, 11). The reference is
      // recomputed on `original` per cell; the figure registry precomputes
      // it instead where the paper's protocol allows.
      {"betweenness",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             Rng ref_rng = rng.Fork();
             auto ref = ApproxBetweennessCentrality(g, 300, ref_rng);
             return TopKPrecision(ref,
                                  ApproxBetweennessCentrality(h, 300, rng),
                                  100);
           },
           "top-100 betweenness precision, 300 sampled pivots (fig 5a)")},
      {"closeness",
       Deterministic(
           [](const Graph& g, const Graph& h, Rng&) {
             return TopKPrecision(ClosenessCentrality(g),
                                  ClosenessCentrality(h), 100);
           },
           "top-100 closeness-centrality precision (fig 5b)")},
      {"eigenvector",
       Deterministic(
           [](const Graph& g, const Graph& h, Rng&) {
             return TopKPrecision(EigenvectorCentrality(g),
                                  EigenvectorCentrality(h), 100);
           },
           "top-100 eigenvector-centrality precision (fig 6)")},
      {"katz",
       Deterministic(
           [](const Graph& g, const Graph& h, Rng&) {
             return TopKPrecision(KatzCentrality(g), KatzCentrality(h), 100);
           },
           "top-100 Katz-centrality precision (fig 7)")},
      {"pagerank",
       Deterministic(
           [](const Graph& g, const Graph& h, Rng&) {
             return TopKPrecision(PageRank(g), PageRank(h), 100);
           },
           "top-100 PageRank precision (fig 11)")},
      // Community structure (figs 8, 10).
      {"communities",
       Sampled(
           [](const Graph&, const Graph& h, Rng& rng) {
             return static_cast<double>(
                 LouvainCommunities(h, rng).num_clusters);
           },
           "Louvain community count, randomized visit order (fig 8)")},
      {"f1",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             Rng ref_rng = rng.Fork();
             Clustering ref = LouvainCommunities(g, ref_rng);
             return ClusteringF1(LouvainCommunities(h, rng).label, ref.label);
           },
           "Louvain clustering F1 vs full-graph reference (fig 10)")},
      // Structural robustness (extension — kcore.h was written for the
      // registry; linear-time bucket peeling, so it is also the
      // representative "cheap structural metric" of the multi-metric
      // throughput bench).
      {"kcore",
       Deterministic(
           [](const Graph&, const Graph& h, Rng&) {
             return static_cast<double>(Degeneracy(h));
           },
           "degeneracy (largest k-core) of the sparsified graph "
           "[extension]")},
      // Clustering coefficients (fig 9).
      {"mcc",
       Deterministic(
           [](const Graph&, const Graph& h, Rng&) {
             return MeanClusteringCoefficient(h);
           },
           "mean local clustering coefficient (fig 9a)")},
      {"gcc",
       Deterministic(
           [](const Graph&, const Graph& h, Rng&) {
             return GlobalClusteringCoefficient(h);
           },
           "global clustering coefficient (fig 9b)")},
      // Min-cut/max-flow stretch over 50 sampled pairs (fig 12).
      {"maxflow",
       Sampled(
           [](const Graph& g, const Graph& h, Rng& rng) {
             return MaxFlowStretch(g, h, 50, rng).mean_ratio;
           },
           "mean max-flow stretch over 50 sampled s-t pairs (fig 12)")},
  };
  return registry;
}

std::vector<std::string> MetricNames() {
  std::vector<std::string> names;
  for (const auto& [name, metric] : NamedMetrics()) names.push_back(name);
  return names;
}

const MetricFn& FindMetric(const std::string& name) {
  auto it = NamedMetrics().find(name);
  if (it == NamedMetrics().end()) {
    std::string known;
    for (const auto& [n, metric] : NamedMetrics()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("unknown metric '" + name + "' (known: " +
                                known + ")");
  }
  return it->second.fn;
}

}  // namespace sparsify::cli
