#include "src/cli/sparsify_cli.h"

int main(int argc, char** argv) {
  return sparsify::cli::RunSparsifyCli(argc, argv);
}
