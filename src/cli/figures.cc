#include "src/cli/figures.h"

#include <charconv>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "src/cli/metrics.h"
#include "src/engine/resumable_sweep.h"
#include "src/metrics/basic.h"
#include "src/metrics/centrality.h"
#include "src/metrics/clustering.h"
#include "src/metrics/components.h"
#include "src/metrics/distance.h"
#include "src/metrics/louvain.h"
#include "src/metrics/maxflow.h"

namespace sparsify::cli {

namespace {

// The 14-sparsifier set most full-grid figures sweep (paper Table 2 minus
// the weighted ER variant, plus ER-uw).
const std::vector<std::string> kAll14 = {
    "RN", "KN",  "RD",   "LD",   "SF",  "SP-3", "SP-5",
    "SP-7", "FF", "LS", "GS", "LSim", "SCAN", "ER-uw"};

constexpr int kTopK = 100;

FigureSpec Fig(std::string id, std::string title, std::string value_name,
               std::string dataset, double default_scale,
               std::vector<std::string> sparsifiers, std::string metric) {
  FigureSpec spec;
  spec.id = std::move(id);
  spec.title = std::move(title);
  spec.value_name = std::move(value_name);
  spec.dataset = std::move(dataset);
  spec.default_scale = default_scale;
  spec.sparsifiers = std::move(sparsifiers);
  spec.metric = std::move(metric);
  return spec;
}

std::vector<FigureSpec> BuildFigures() {
  std::vector<FigureSpec> figures;

  // Figure 1: connectivity damage on ca-AstroPh.
  {
    FigureSpec f = Fig("1a", "Figure 1a: Pair Unreachable Ratio on ca-AstroPh",
                       "unreach", "ca-AstroPh", 0.5, kAll14, "connectivity");
    f.reference = [](const Dataset& d) { return UnreachableRatio(d.graph); };
    figures.push_back(std::move(f));

    f = Fig("1b", "Figure 1b: Vertex Isolated Ratio on ca-AstroPh",
            "isolated", "ca-AstroPh", 0.5, kAll14, "isolated");
    f.reference = [](const Dataset& d) { return IsolatedRatio(d.graph); };
    figures.push_back(std::move(f));
  }

  // Figure 2: degree-distribution distance on ogbn-proteins.
  {
    FigureSpec f = Fig("2",
                       "Figure 2: Degree Distribution Bhattacharyya Distance "
                       "on ogbn-proteins",
                       "Bd", "ogbn-proteins", 0.5,
                       {"RN", "KN", "LD", "RD", "FF"}, "degree");
    f.reference = [](const Dataset&) { return 0.0; };
    figures.push_back(std::move(f));
  }

  // Figure 3: Laplacian quadratic-form similarity on com-Amazon.
  {
    FigureSpec f = Fig("3",
                       "Figure 3: Laplacian Quadratic Form Similarity on "
                       "com-Amazon",
                       "qf_sim", "com-Amazon", 0.5, {"RN", "ER-w", "ER-uw"},
                       "quadratic");
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));
  }

  // Figure 4: distance preservation on ca-AstroPh / ego-Facebook.
  {
    FigureSpec f = Fig("4a",
                       "Figure 4a: SPSP Mean Stretch Factor on ca-AstroPh",
                       "stretch", "ca-AstroPh", 0.4, kAll14, "spsp");
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));

    f = Fig("4a-unreach", "Figure 4a (companion): SPSP unreachable fraction",
            "unreach", "ca-AstroPh", 0.4, kAll14, "spsp_unreachable");
    f.reference = [](const Dataset&) { return 0.0; };
    figures.push_back(std::move(f));

    // The original bench samples 60 eccentricity pivots (the generic
    // "eccentricity" metric samples 50), hence the distinct metric name.
    f = Fig("4b",
            "Figure 4b: Eccentricity Mean Stretch Factor on ca-AstroPh",
            "stretch", "ca-AstroPh", 0.4, kAll14, "eccentricity60");
    f.make_metric = [](const Dataset&) -> MetricFn {
      return [](const Graph& g, const Graph& h, Rng& rng) {
        return EccentricityStretch(g, h, 60, rng).mean_stretch;
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));

    f = Fig("4c", "Figure 4c: Diameter on ego-Facebook", "diameter",
            "ego-Facebook", 0.4, kAll14, "diameter");
    f.reference = [](const Dataset& d) {
      Rng diam_rng(7);
      return ApproxDiameter(d.graph, 6, diam_rng);
    };
    figures.push_back(std::move(f));
  }

  // Figures 5-7: centrality top-100 precision with a reference ranking
  // precomputed on the full graph (fixed seeds from the original benches).
  {
    FigureSpec f = Fig("5a",
                       "Figure 5a: Betweenness Centrality Top-100 Precision "
                       "on com-DBLP",
                       "prec", "com-DBLP", 0.35,
                       {"RN", "LD", "RD", "FF", "LS", "GS", "SCAN"},
                       "betweenness500_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      Rng ref_rng(11);
      auto reference = std::make_shared<std::vector<double>>(
          ApproxBetweennessCentrality(d.graph, 500, ref_rng));
      return [reference](const Graph&, const Graph& h, Rng& rng) {
        return TopKPrecision(*reference,
                             ApproxBetweennessCentrality(h, 500, rng), kTopK);
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));

    f = Fig("5b",
            "Figure 5b: Closeness Centrality Top-100 Precision on ca-AstroPh",
            "prec", "ca-AstroPh", 0.35,
            {"RN", "LD", "RD", "FF", "LS", "GS", "SCAN"}, "closeness_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      auto reference = std::make_shared<std::vector<double>>(
          ClosenessCentrality(d.graph));
      return [reference](const Graph&, const Graph& h, Rng&) {
        return TopKPrecision(*reference, ClosenessCentrality(h), kTopK);
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));

    f = Fig("6",
            "Figure 6: Eigenvector Centrality Top-100 Precision on "
            "email-Enron",
            "prec", "email-Enron", 0.35, {"RN", "KN", "LD", "RD", "FF"},
            "eigenvector_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      auto reference = std::make_shared<std::vector<double>>(
          EigenvectorCentrality(d.graph));
      return [reference](const Graph&, const Graph& h, Rng&) {
        return TopKPrecision(*reference, EigenvectorCentrality(h), kTopK);
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));

    f = Fig("7",
            "Figure 7: Katz Centrality Top-100 Precision on ego-Twitter",
            "prec", "ego-Twitter", 0.35,
            {"RN", "KN", "LD", "RD", "FF", "ER-uw"}, "katz_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      auto reference =
          std::make_shared<std::vector<double>>(KatzCentrality(d.graph));
      return [reference](const Graph&, const Graph& h, Rng&) {
        return TopKPrecision(*reference, KatzCentrality(h), kTopK);
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));
  }

  // Figure 8: Louvain community count on com-DBLP.
  {
    FigureSpec f = Fig("8",
                       "Figure 8: Number of Communities (Louvain) on "
                       "com-DBLP",
                       "#comm", "com-DBLP", 0.5,
                       {"RN", "KN", "LD", "RD", "SF", "SP-3", "SP-5", "SP-7",
                        "GS"},
                       "communities");
    f.reference = [](const Dataset& d) {
      Rng ref_rng(21);
      return static_cast<double>(
          LouvainCommunities(d.graph, ref_rng).num_clusters);
    };
    figures.push_back(std::move(f));
  }

  // Figure 9: clustering coefficients on com-Amazon / human_gene2.
  {
    FigureSpec f = Fig("9a",
                       "Figure 9a: Mean Clustering Coefficient on com-Amazon",
                       "MCC", "com-Amazon", 0.5,
                       {"RN", "KN", "SF", "SP-3", "SP-5", "SP-7", "LSim",
                        "GS", "SCAN"},
                       "mcc");
    f.reference = [](const Dataset& d) {
      return MeanClusteringCoefficient(d.graph);
    };
    figures.push_back(std::move(f));

    f = Fig("9b",
            "Figure 9b: Global Clustering Coefficient on human_gene2", "GCC",
            "human_gene2", 0.5, {"RN", "KN", "LSim", "GS", "SCAN", "ER-w"},
            "gcc");
    f.reference = [](const Dataset& d) {
      return GlobalClusteringCoefficient(d.graph);
    };
    figures.push_back(std::move(f));
  }

  // Figure 10: clustering F1 against a fixed full-graph Louvain reference;
  // the green line is the F1 of two independent full-graph runs.
  {
    FigureSpec f = Fig("10", "Figure 10: Clustering F1 Similarity on ca-HepPh",
                       "F1", "ca-HepPh", 0.5,
                       {"RN", "KN", "LD", "LS", "GS", "LSim", "SCAN", "ER-w",
                        "ER-uw"},
                       "f1_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      Rng ref_rng(31);
      auto reference = std::make_shared<Clustering>(
          LouvainCommunities(d.graph, ref_rng));
      return [reference](const Graph&, const Graph& h, Rng& rng) {
        Clustering c = LouvainCommunities(h, rng);
        return ClusteringF1(c.label, reference->label);
      };
    };
    f.reference = [](const Dataset& d) {
      Rng ref_rng(31);
      Clustering reference = LouvainCommunities(d.graph, ref_rng);
      Rng second_rng(32);
      Clustering second = LouvainCommunities(d.graph, second_rng);
      return ClusteringF1(second.label, reference.label);
    };
    figures.push_back(std::move(f));
  }

  // Figure 11: PageRank top-100 precision, directed and undirected.
  for (const auto& [id, dataset, variant] :
       {std::tuple{"11a", "web-Google", " (directed)"},
        std::tuple{"11b", "ego-Facebook", " (undirected)"}}) {
    FigureSpec f = Fig(id,
                       std::string("Figure ") + id +
                           ": PageRank Top-100 Precision on " + dataset +
                           variant,
                       "prec", dataset, 0.4,
                       {"RN", "KN", "LD", "RD", "GS", "SCAN", "ER-w",
                        "ER-uw"},
                       "pagerank_ref");
    f.make_metric = [](const Dataset& d) -> MetricFn {
      auto reference =
          std::make_shared<std::vector<double>>(PageRank(d.graph));
      return [reference](const Graph&, const Graph& h, Rng&) {
        return TopKPrecision(*reference, PageRank(h), kTopK);
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));
  }

  // Figure 12: min-cut/max-flow stretch on ca-HepPh (60 sampled pairs, vs
  // the generic "maxflow" metric's 50 — hence the distinct name).
  {
    FigureSpec f = Fig("12",
                       "Figure 12: Min-cut/Max-flow Mean Stretch Factor on "
                       "ca-HepPh",
                       "ratio", "ca-HepPh", 0.35,
                       {"RN", "KN", "FF", "ER-w", "ER-uw"}, "maxflow60");
    f.make_metric = [](const Dataset&) -> MetricFn {
      return [](const Graph& g, const Graph& h, Rng& rng) {
        return MaxFlowStretch(g, h, 60, rng).mean_ratio;
      };
    };
    f.reference = [](const Dataset&) { return 1.0; };
    figures.push_back(std::move(f));
  }

  return figures;
}

// Defers an expensive make_metric (full-graph reference rankings) until a
// cell actually needs evaluating: a fully-cached --resume run never calls
// the metric, so it should not pay for the reference either. Thread-safe —
// the engine invokes metrics from worker threads concurrently.
MetricFn LazyMetric(std::function<MetricFn()> make) {
  struct State {
    std::once_flag once;
    MetricFn fn;
  };
  auto state = std::make_shared<State>();
  return [state, make = std::move(make)](const Graph& g, const Graph& h,
                                         Rng& rng) {
    std::call_once(state->once, [&] { state->fn = make(); });
    return state->fn(g, h, rng);
  };
}

}  // namespace

std::string DatasetCellName(const std::string& dataset, double scale) {
  // Shortest round-trip formatting: distinct scales are different graphs
  // and must never collide into one store key ("0.2" stays "0.2", but
  // 0.1250001 no longer truncates to 0.125's key).
  char buf[32];
  auto result = std::to_chars(buf, buf + sizeof(buf), scale);
  return dataset + "@" + std::string(buf, result.ptr);
}

const std::vector<FigureSpec>& AllFigures() {
  static const std::vector<FigureSpec> figures = BuildFigures();
  return figures;
}

const FigureSpec* FindFigure(const std::string& id) {
  for (const FigureSpec& f : AllFigures()) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

int RunFigures(const std::vector<std::string>& ids,
               const FigureRunOptions& opt, std::ostream& os) {
  std::vector<const FigureSpec*> specs;
  for (const std::string& id : ids) {
    const FigureSpec* spec = FindFigure(id);
    if (spec == nullptr) {
      std::cerr << "unknown figure '" << id << "' (known:";
      for (const FigureSpec& f : AllFigures()) std::cerr << " " << f.id;
      std::cerr << ")\n";
      return 1;
    }
    specs.push_back(spec);
  }

  BatchRunner runner(opt.threads);
  std::unique_ptr<ResultStore> store;
  if (!opt.store_dir.empty()) {
    store =
        std::make_unique<ResultStore>(ResultStore::PathInDir(opt.store_dir));
  }

  // Datasets are cached across figures (1a/1b, 4a/4b share one).
  std::map<std::string, Dataset> datasets;
  std::string last_announced;
  for (const FigureSpec* spec : specs) {
    double scale = opt.scale > 0.0 ? opt.scale : spec->default_scale;
    std::string dataset_key = DatasetCellName(spec->dataset, scale);
    auto [it, inserted] = datasets.try_emplace(dataset_key);
    if (inserted) it->second = LoadDatasetScaled(spec->dataset, scale);
    const Dataset& d = it->second;
    if (dataset_key != last_announced) {
      os << "Dataset: " << d.info.name << " (" << d.graph.Summary()
         << ")\n\n";
      last_announced = dataset_key;
    }

    MetricFn metric =
        spec->make_metric
            ? LazyMetric([spec, &d] { return spec->make_metric(d); })
            : FindMetric(spec->metric);
    SweepConfig config;
    config.sparsifiers = spec->sparsifiers;
    config.runs_nondeterministic = opt.runs;
    config.seed = opt.seed;

    ResumableSweep sweep(runner, store.get());
    sweep.set_reuse_cached(opt.resume);
    ResumableSweepStats stats;
    std::vector<SweepSeries> series = sweep.Run(
        d.graph, dataset_key, spec->metric, config, metric, &stats);
    if (store != nullptr) {
      os << "# store " << store->Path() << ": total=" << stats.total_cells
         << " cached=" << stats.cached_cells
         << " submitted=" << stats.submitted_cells << "\n";
    }

    if (opt.csv) {
      PrintSeriesCsv(os, spec->title, series);
    } else {
      std::optional<double> reference;
      if (spec->reference) reference = spec->reference(d);
      PrintSeriesTable(os, spec->title, spec->value_name, series, reference);
    }
  }
  return 0;
}

}  // namespace sparsify::cli
