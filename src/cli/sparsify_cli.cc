#include "src/cli/sparsify_cli.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cli/figures.h"
#include "src/cli/metrics.h"
#include "src/cli/store_export.h"
#include "src/engine/resumable_sweep.h"
#include "src/graph/datasets.h"
#include "src/graph/ingest.h"
#include "src/graph/io.h"
#include "src/obs/counters.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/cancel.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/store/result_store.h"
#include "src/util/timer.h"

namespace sparsify::cli {
namespace {

// Strict numeric parsing: a malformed value must abort the run, not
// silently become 0 (the same discipline as unknown flag names). Each
// throws std::invalid_argument, which RunSparsifyCli reports as an error.
double ParseDoubleValue(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("invalid number for --" + key + ": '" +
                                value + "'");
  }
  return v;
}

long ParseIntValue(const std::string& key, const std::string& value) {
  char* end = nullptr;
  long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("invalid integer for --" + key + ": '" +
                                value + "'");
  }
  return v;
}

uint64_t ParseUint64Value(const std::string& key, const std::string& value) {
  char* end = nullptr;
  if (value.empty() || value[0] == '-') {
    throw std::invalid_argument("invalid seed for --" + key + ": '" + value +
                                "'");
  }
  uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("invalid integer for --" + key + ": '" +
                                value + "'");
  }
  return v;
}

struct Args {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;

  bool Has(const std::string& key) const { return named.contains(key); }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : ParseDoubleValue(key, it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = named.find(key);
    return it == named.end()
               ? fallback
               : static_cast<int>(ParseIntValue(key, it->second));
  }
  uint64_t GetUint64(const std::string& key, uint64_t fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : ParseUint64Value(key, it->second);
  }
};

// Flags that never take a value. They must not consume a following token
// (`figure --resume 1a` would otherwise silently swallow the figure id).
const std::set<std::string>& BooleanKeys() {
  static const std::set<std::string> keys = {
      "csv",   "resume",   "directed", "weighted",
      "paper", "progress", "no-steal"};
  return keys;
}

/// Parses `--key=value`, `--key value`, and bare `--flag` forms. Any key
/// not in `allowed` is an error (typos must not silently change a run).
bool ParseArgs(int argc, char** argv, int first,
               const std::set<std::string>& allowed, Args* args,
               std::string* error) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args->positional.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    bool has_value = false;
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    }
    if (!allowed.contains(key)) {
      *error = "unknown option '--" + key + "' (allowed:";
      for (const std::string& k : allowed) *error += " --" + k;
      *error += ")";
      return false;
    }
    if (!has_value) {
      if (BooleanKeys().contains(key)) {
        value = "true";
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        // `--store` with the value forgotten must not silently become the
        // string "true" (and, say, write a store directory named true/).
        *error = "option '--" + key + "' requires a value";
        return false;
      }
    }
    args->named[key] = value;
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

std::vector<double> SplitCsvDoubles(const std::string& s) {
  std::vector<double> parts;
  for (const std::string& p : SplitCsv(s)) {
    parts.push_back(ParseDoubleValue("rates", p));
  }
  return parts;
}

// `--scale` value: a default scale and/or per-dataset overrides, e.g.
// "0.5", "web-Google=0.2", or "0.5,web-Google=0.2,ego-Twitter=0.1". The
// paper's datasets span orders of magnitude, so one global scale either
// starves the small graphs or drowns in the big ones — the `--paper`
// preset relies on the overrides.
struct ScaleSpec {
  double default_scale = 0.5;
  std::map<std::string, double> overrides;  // dataset name -> scale
};

ScaleSpec ParseScaleSpec(const std::string& value) {
  ScaleSpec spec;
  bool have_default = false;
  for (const std::string& part : SplitCsv(value)) {
    auto eq = part.find('=');
    if (eq == std::string::npos) {
      if (have_default) {
        throw std::invalid_argument("--scale lists more than one default "
                                    "scale: '" + value + "'");
      }
      spec.default_scale = ParseDoubleValue("scale", part);
      have_default = true;
    } else {
      std::string name = part.substr(0, eq);
      if (name.empty()) {
        throw std::invalid_argument("--scale override missing a dataset "
                                    "name: '" + part + "'");
      }
      spec.overrides[name] = ParseDoubleValue("scale", part.substr(eq + 1));
    }
  }
  return spec;
}

int Usage() {
  std::cout
      << "usage: sparsify_cli <command> [--key=value ...]\n"
         "\n"
         "  list                       sparsifiers, datasets, metrics, "
         "figures\n"
         "  metrics                    metric registry with descriptions\n"
         "  sparsify   --algo=LD --rate=0.5 --input=g.txt --output=h.txt\n"
         "             [--directed] [--weighted] [--seed=42]\n"
         "  evaluate   --metric=pagerank --input=g.txt --sparsified=h.txt\n"
         "             [--directed] [--weighted] [--seed=42]\n"
         "  sweep      --dataset=ca-AstroPh[,..] --metrics=connectivity[,..]"
         "|all\n"
         "             [--paper] [--algos=RN,LD,..] [--rates=0.1,..]\n"
         "             [--runs=3] [--scale=0.5[,web-Google=0.2,..]]\n"
         "             [--seed=42] [--threads=0] [--csv] [--store=DIR]\n"
         "             [--resume] [--trace=FILE] [--progress]\n"
         "             [--max-unit-retries=2] [--deadline=SECS]\n"
         "             [--unit-timeout=SECS] [--watchdog-stall=SECS]\n"
         "             [--shard=i/N] [--no-steal] [--lease-ttl=SECS]\n"
         "  profile    (same flags as sweep) run a sweep and print the\n"
         "             per-stage/per-metric breakdown (p50/p95/max,\n"
         "             units/s, pool utilization)\n"
         "  ingest     --input=g.txt [--directed] [--weighted]\n"
         "             [--cache=DIR] [--threads=0]\n"
         "  export     --store=DIR [--format=csv|table] [--dataset=..]\n"
         "             [--metric=..]\n"
         "  ls         --store=DIR\n"
         "  compact    --store=DIR  rewrite the log to one record per\n"
         "             live cell (drops superseded duplicates; atomic)\n"
         "  merge      DIR [DIR ...] -o OUT  fold stores (e.g. from\n"
         "             --no-steal shard workers on different machines)\n"
         "             into OUT, last-write-wins per cell (atomic)\n"
         "  figure     <id ...> [--scale=f] [--runs=3] [--threads=0]\n"
         "             [--seed=42] [--csv] [--store=DIR] [--resume]\n"
         "\n"
         "A multi-metric sweep sparsifies each (sparsifier, rate, run)\n"
         "cell ONCE and evaluates every listed metric on that subgraph.\n"
         "--paper presets the paper's full protocol (all datasets, all\n"
         "metrics, runs=10); explicit flags override it, and --scale\n"
         "accepts per-dataset overrides (--scale=0.5,web-Google=0.2).\n"
         "A sweep with --store appends every completed (cell, metric)\n"
         "unit to DIR/results.jsonl (one flushed JSONL record each); with\n"
         "--resume it first replays the store and schedules only the\n"
         "missing units — resuming with MORE metrics schedules only the\n"
         "new metrics' cells — reproducing the uninterrupted output\n"
         "bit-identically. `ingest` parses a SNAP edge list once, builds\n"
         "the CSR in parallel, and (with --cache=DIR) writes a\n"
         "content-addressed binary cache that later runs load in one bulk\n"
         "read; its dataset key is ingest-<hash>. --trace=FILE exports the\n"
         "run's spans as Chrome trace_event JSON (chrome://tracing /\n"
         "ui.perfetto.dev); --progress prints a ~1s heartbeat to stderr\n"
         "(completed/total units, ETA). Run `sparsify_cli list` for names.\n"
         "\n"
         "Sweeps are error-tolerant: a failing (cell, metric) unit is\n"
         "retried (transient failures, --max-unit-retries extra attempts)\n"
         "or recorded as a typed error record in the store; the rest of\n"
         "the sweep completes, and --resume resubmits exactly the failed\n"
         "units. --deadline cancels the whole run after SECS (like a\n"
         "signal: in-flight units drain, completed units persist);\n"
         "--unit-timeout fails any single (cell, metric) unit exceeding\n"
         "SECS (recorded as a 'deadline' error record, the rest of the\n"
         "sweep unaffected); --watchdog-stall dumps in-flight activities\n"
         "and counters to stderr when a unit makes no progress for SECS\n"
         "(default 300) and then cancels it. SIGINT/SIGTERM cancel the\n"
         "run cooperatively: queued units are skipped, in-flight units\n"
         "drain, and --resume continues bit-identically; a second signal\n"
         "aborts immediately.\n"
         "\n"
         "Multi-process sweeps: any number of workers may share one\n"
         "--store directory (each appends to its own lease-guarded log\n"
         "segment). --shard=i/N runs this process as worker i of N: the\n"
         "grid is split into chunks, each worker claims and runs its own\n"
         "share, then steals chunks whose claimants died (kill -9 a\n"
         "worker and the survivors converge to the complete store,\n"
         "bit-identical to a cold run). --no-steal exits after the own\n"
         "share instead — use it for disjoint stores on separate\n"
         "machines, then fold them with `merge`. --lease-ttl tunes how\n"
         "fast a dead worker is declared stale (default 30s). Exit\n"
         "codes: 0 ok, 1 usage/unclassified error, 2 I/O failure,\n"
         "3 store has other live writers (compact/merge need\n"
         "exclusivity), 4 corrupt store, 5 permanent unit failures,\n"
         "6 transient/deadline unit failures only, 7 interrupted by\n"
         "signal, 8 --deadline expired.\n";
  return 1;
}

int CmdMetrics() {
  std::cout << "Metrics (sparsify_cli sweep --metrics=a,b,.. or "
               "--metrics=all):\n";
  for (const auto& [name, metric] : NamedMetrics()) {
    std::printf("  %-18s %-13s %s\n", name.c_str(),
                metric.sampled ? "sampled" : "deterministic",
                metric.description.c_str());
  }
  std::cout << "\nsampled = consumes the per-cell metric RNG stream "
               "(MetricSeed);\ndeterministic = rng-free, unchanged across "
               "RNG revisions.\n";
  return 0;
}

int CmdList() {
  std::cout << "Sparsifiers (paper Table 2 + extensions):\n";
  for (const SparsifierInfo& info : AllSparsifierInfos()) {
    std::cout << "  " << info.short_name << "\t" << info.name
              << (info.extension ? "  [extension]" : "") << "\n";
  }
  std::cout << "\nDatasets (synthetic stand-ins for paper Table 3):\n";
  for (const std::string& name : DatasetNames()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "\nMetrics (details: sparsify_cli metrics):\n";
  for (const std::string& name : MetricNames()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "\nFigures (sparsify_cli figure <id>):\n";
  for (const FigureSpec& f : AllFigures()) {
    std::cout << "  " << f.id << "\t" << f.title << "\n";
  }
  return 0;
}

Graph LoadInput(const Args& args, const std::string& key) {
  return ReadEdgeList(args.Get(key), args.Has("directed"),
                      args.Has("weighted"));
}

int CmdSparsify(const Args& args) {
  if (!args.Has("algo") || !args.Has("input") || !args.Has("output")) {
    std::cerr << "sparsify requires --algo, --input, --output\n";
    return 1;
  }
  Graph g = LoadInput(args, "input");
  auto sparsifier = CreateSparsifier(args.Get("algo"));
  const SparsifierInfo& info = sparsifier->Info();
  if (g.IsDirected() && !info.supports_directed) {
    std::cerr << "note: " << info.name
              << " needs undirected input; symmetrizing (paper sec 3.1)\n";
    g = g.Symmetrized();
  }
  Rng rng(args.GetUint64("seed", 42));
  Timer timer;
  Graph h = sparsifier->Sparsify(g, args.GetDouble("rate", 0.5), rng);
  std::cout << "sparsified in " << timer.Seconds() << " s: " << h.Summary()
            << " (achieved prune rate "
            << Sparsifier::AchievedPruneRate(g, h) << ")\n";
  WriteEdgeList(h, args.Get("output"));
  return 0;
}

int CmdEvaluate(const Args& args) {
  if (!args.Has("metric") || !args.Has("input") || !args.Has("sparsified")) {
    std::cerr << "evaluate requires --metric, --input, --sparsified\n";
    return 1;
  }
  const MetricFn& metric = FindMetric(args.Get("metric"));
  Graph g = LoadInput(args, "input");
  Graph h = LoadInput(args, "sparsified");
  Rng rng(args.GetUint64("seed", 42));
  std::cout << args.Get("metric") << " = " << metric(g, h, rng) << "\n";
  return 0;
}

int CmdIngest(const Args& args) {
  if (!args.Has("input")) {
    std::cerr << "ingest requires --input=FILE (SNAP edge list or .spgc "
                 "cache)\n";
    return 1;
  }
  IngestOptions opt;
  opt.directed = args.Has("directed");
  opt.weighted = args.Has("weighted");
  opt.cache_dir = args.Get("cache");
  ThreadPool pool(args.GetInt("threads", 0));
  opt.pool = &pool;
  Timer timer;
  IngestResult result = IngestGraph(args.Get("input"), opt);
  double seconds = timer.Seconds();
  std::cout << "ingested " << args.Get("input") << " in " << seconds
            << " s (" << (result.from_cache ? "binary cache" : "text parse")
            << ")\n"
            << "  graph:        " << result.graph.Summary() << "\n"
            << "  content hash: " << result.content_hash << "\n"
            << "  dataset key:  " << IngestDatasetKey(result.graph) << "\n";
  if (!result.cache_file.empty()) {
    std::cout << "  cache file:   " << result.cache_file << "\n";
  } else {
    std::cout << "  cache file:   (none; pass --cache=DIR to enable)\n";
  }
  return 0;
}

// Shared body of `sweep` and `profile`. The profile mode runs the exact
// same sweep (same seeds, same store behaviour — output values are
// byte-identical) with span tracing forced on, suppresses the per-metric
// series tables, and prints the per-stage breakdown instead.
int CmdSweep(const Args& args, bool profile_mode) {
  const char* cmd_name = profile_mode ? "profile" : "sweep";
  bool paper = args.Has("paper");
  if (args.Has("metric") && args.Has("metrics")) {
    std::cerr << cmd_name << " takes either --metric or --metrics, not both\n";
    return 1;
  }

  // --paper presets the paper's full protocol; explicit flags override it.
  std::vector<std::string> datasets;
  if (args.Has("dataset")) {
    datasets = SplitCsv(args.Get("dataset"));
  } else if (paper) {
    datasets = DatasetNames();
  } else {
    std::cerr << cmd_name
              << " requires --dataset (or --paper; comma-separated "
                 "lists accepted)\n";
    return 1;
  }
  std::string metric_arg =
      args.Has("metrics") ? args.Get("metrics") : args.Get("metric");
  std::vector<std::string> metric_names;
  if (metric_arg == "all" || (metric_arg.empty() && paper)) {
    metric_names = MetricNames();
  } else if (!metric_arg.empty()) {
    metric_names = SplitCsv(metric_arg);
  } else {
    std::cerr << cmd_name
              << " requires --metrics (or --paper; comma-separated "
                 "lists accepted, or --metrics=all)\n";
    return 1;
  }
  // Resolve every metric up front: an unknown name aborts with the
  // registry listed before any work is scheduled.
  std::vector<SweepMetric> metrics;
  for (const std::string& name : metric_names) {
    metrics.push_back(SweepMetric{name, FindMetric(name)});
  }

  ScaleSpec scales = ParseScaleSpec(args.Get("scale", "0.5"));
  for (const auto& [name, scale] : scales.overrides) {
    if (std::find(datasets.begin(), datasets.end(), name) ==
        datasets.end()) {
      std::cerr << "error: --scale override for '" << name
                << "', which is not in this sweep's dataset list\n";
      return 1;
    }
  }
  bool csv = args.Has("csv");
  bool resume = args.Has("resume");
  bool progress = args.Has("progress");
  std::string trace_path = args.Get("trace");
  // Spans are recorded whenever the profile table needs them or a trace
  // file was requested; otherwise the span sites stay one relaxed load.
  bool tracing = profile_mode || !trace_path.empty();
  // Robustness knobs. Strictly positive: zero or negative is a config
  // mistake, not "off" (omit the flag for off).
  double run_deadline = args.GetDouble("deadline", 0);
  double unit_timeout = args.GetDouble("unit-timeout", 0);
  double watchdog_stall = args.GetDouble("watchdog-stall", 0);
  if (args.Has("deadline") && run_deadline <= 0) {
    std::cerr << "error: --deadline must be > 0 seconds\n";
    return 1;
  }
  if (args.Has("unit-timeout") && unit_timeout <= 0) {
    std::cerr << "error: --unit-timeout must be > 0 seconds\n";
    return 1;
  }
  if (args.Has("watchdog-stall") && watchdog_stall <= 0) {
    std::cerr << "error: --watchdog-stall must be > 0 seconds\n";
    return 1;
  }
  double lease_ttl = args.GetDouble("lease-ttl", 30.0);
  if (args.Has("lease-ttl") && lease_ttl <= 0) {
    std::cerr << "error: --lease-ttl must be > 0 seconds\n";
    return 1;
  }
  // --shard=i/N: run as worker i of N cooperating processes sharing the
  // store directory (see ShardSpec). Without a store there is nothing to
  // coordinate through.
  ShardSpec shard;
  if (args.Has("shard")) {
    const std::string spec = args.Get("shard");
    const size_t slash = spec.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < spec.size();
    if (ok) {
      try {
        shard.index = static_cast<size_t>(
            ParseUint64Value("shard", spec.substr(0, slash)));
        shard.total = static_cast<size_t>(
            ParseUint64Value("shard", spec.substr(slash + 1)));
      } catch (const std::invalid_argument&) {
        ok = false;
      }
    }
    if (!ok || shard.total == 0 || shard.index >= shard.total) {
      std::cerr << "error: --shard expects i/N with 0 <= i < N, got '"
                << spec << "'\n";
      return 1;
    }
    if (!args.Has("store")) {
      std::cerr << "error: --shard requires --store (workers coordinate "
                   "through the store directory)\n";
      return 1;
    }
  }
  shard.steal = !args.Has("no-steal");

  SweepConfig config;
  if (args.Has("algos")) config.sparsifiers = SplitCsv(args.Get("algos"));
  if (args.Has("rates")) {
    config.prune_rates = SplitCsvDoubles(args.Get("rates"));
  }
  config.runs_nondeterministic = args.GetInt("runs", paper ? 10 : 3);
  config.seed = args.GetUint64("seed", 42);

  BatchRunner runner(args.GetInt("threads", 0));
  if (profile_mode) {
    // Scope the registry and pool counters to this run so the breakdown
    // reports this sweep, not process history.
    obs::ResetAllStats();
    runner.ResetPoolStats();
  }
  // Whole-run cancellation: one token shared by the signal bridge, the
  // --deadline, and (as parent) every submitted unit's own token.
  // Installed before the store opens so a signal during a long replay
  // still drains cleanly; a second signal aborts immediately.
  CancelToken run_token;
  if (run_deadline > 0) run_token.SetDeadlineAfter(run_deadline);
  InstallSignalCancel(&run_token);
  // The watchdog samples in-flight activities and dumps the obs counter/
  // histogram state to stderr when one stalls, then cancels it (the unit
  // fails alone as a "deadline" error record). Default threshold 5min;
  // with a --unit-timeout the engine usually fires first, so the watchdog
  // trails it as a backstop.
  WatchdogOptions wd;
  wd.stall_seconds =
      watchdog_stall > 0
          ? watchdog_stall
          : (unit_timeout > 0 ? std::max(30.0, 4.0 * unit_timeout) : 300.0);
  StartWatchdog(wd);
  struct CancelGuard {
    ~CancelGuard() {
      StopWatchdog();
      ClearSignalCancel();
    }
  } cancel_guard;
  // Start before the store opens so its replay span is captured too.
  if (tracing) obs::StartTracing();
  std::unique_ptr<ResultStore> store;
  if (args.Has("store")) {
    ResultStoreOptions store_options;
    store_options.lease_ttl_seconds = lease_ttl;
    store = std::make_unique<ResultStore>(
        ResultStore::PathInDir(args.Get("store")), store_options);
  }

  std::string joined_metrics;
  for (const SweepMetric& m : metrics) {
    joined_metrics += joined_metrics.empty() ? m.name : "," + m.name;
  }

  size_t total_submitted_units = 0;
  size_t total_failed_units = 0;
  size_t total_transient_failed = 0;
  size_t total_deadline_units = 0;
  size_t total_cancelled_units = 0;
  Timer run_timer;
  for (const std::string& dataset_name : datasets) {
    // A tripped run token (signal or --deadline) skips every remaining
    // dataset; the one in flight already drained inside RunMulti.
    if (run_token.Cancelled()) break;
    auto override_it = scales.overrides.find(dataset_name);
    double scale = override_it != scales.overrides.end()
                       ? override_it->second
                       : scales.default_scale;
    Dataset d = LoadDatasetScaled(dataset_name, scale);
    std::string dataset_key = DatasetCellName(dataset_name, scale);
    // One multi-metric sweep per dataset: each (sparsifier, rate, run)
    // cell is sparsified once and every missing metric evaluates on that
    // one subgraph.
    ResumableSweep sweep(runner, store.get());
    sweep.set_reuse_cached(resume);
    // Error-tolerant: a failing (cell, metric) unit is recorded as a typed
    // error record (transient failures retry first) instead of sinking the
    // whole sweep; the exit code reports the failure class and a later
    // --resume resubmits exactly the failed units.
    sweep.set_fault_tolerant(true);
    sweep.set_max_unit_retries(args.GetInt("max-unit-retries", 2));
    sweep.set_cancel_token(&run_token);
    sweep.set_unit_timeout(unit_timeout);
    sweep.set_shard(shard);
    if (progress) {
      // ~1s heartbeat on stderr. Fires on worker threads; the CAS on the
      // last-print time elects one printer per interval. The final unit
      // always prints, so a finished sweep never ends mid-heartbeat.
      auto started = Timer::Now();
      auto last_print = std::make_shared<std::atomic<int64_t>>(0);
      sweep.set_progress([started, last_print,
                          dataset_key](size_t done, size_t submitted) {
        int64_t now_ns = Timer::NowNanos();
        if (done < submitted) {
          int64_t prev = last_print->load(std::memory_order_relaxed);
          if (now_ns - prev < 1'000'000'000) return;
          if (!last_print->compare_exchange_strong(prev, now_ns)) return;
        }
        double elapsed = Timer::SecondsBetween(started, Timer::Now());
        double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
        double eta =
            rate > 0 ? static_cast<double>(submitted - done) / rate : 0;
        char line[192];
        std::snprintf(line, sizeof(line),
                      "# progress %s: %zu/%zu units (%.1f units/s, ETA "
                      "%.1fs)\n",
                      dataset_key.c_str(), done, submitted, rate, eta);
        std::cerr << line;
      });
    }
    ResumableSweepStats stats;
    Timer sweep_timer;
    std::vector<MetricSweepSeries> per_metric =
        sweep.RunMulti(d.graph, dataset_key, metrics, config, &stats);
    double seconds = sweep_timer.Seconds();
    total_submitted_units += stats.submitted_cells;
    total_failed_units += stats.failed_units;
    total_transient_failed += stats.transient_failed_units;
    total_deadline_units += stats.deadline_exceeded_units;
    total_cancelled_units += stats.cancelled_units;
    // Wall clock, throughput, and the score/subgraph/metric time split in
    // the banner make resumed-vs-cold and shared-vs-rebuilt speedups
    // visible without a profiler. The rate counts only SUBMITTED units:
    // cells served from the store are lookups, not work, and a fully
    // resumed sweep reports "all cached" instead of a meaningless rate.
    // Formatted into a buffer so the stream's float formatting state
    // stays untouched.
    char timing[112];
    if (stats.submitted_cells > 0) {
      std::snprintf(
          timing, sizeof(timing),
          "%.1fs, %.1f units/s (score %.1fs, subgraph %.1fs, metric %.1fs)",
          seconds,
          seconds > 0 ? static_cast<double>(stats.submitted_cells) / seconds
                      : 0.0,
          stats.score_seconds, stats.subgraph_seconds, stats.metric_seconds);
    } else {
      std::snprintf(timing, sizeof(timing), "%.1fs, all units cached",
                    seconds);
    }
    std::cout << "# sweep " << dataset_key << " metrics=" << joined_metrics
              << ": total=" << stats.total_cells
              << " cached=" << stats.cached_cells
              << " submitted=" << stats.submitted_cells
              << " subgraph_builds=" << stats.subgraph_builds
              << " score_groups=" << stats.score_groups;
    if (shard.total > 1) {
      // Shard accounting: how much of the grid this worker claimed as
      // its own share and how much it took over from dead workers.
      std::cout << " shard=" << shard.index << "/" << shard.total
                << " claimed=" << stats.shard_claimed
                << " stolen=" << stats.shard_stolen;
    }
    if (stats.failed_units > 0 || stats.retried_units > 0 ||
        stats.cancelled_units > 0) {
      // ok / failed / retried accounting, only when there is anything to
      // report (the usual all-green banner stays byte-stable).
      std::cout << " ok="
                << (stats.submitted_cells - stats.failed_units -
                    stats.cancelled_units)
                << " failed=" << stats.failed_units
                << " retried=" << stats.retried_units;
      if (stats.deadline_exceeded_units > 0) {
        std::cout << " deadline_exceeded=" << stats.deadline_exceeded_units;
      }
      if (stats.cancelled_units > 0) {
        std::cout << " cancelled=" << stats.cancelled_units;
      }
    }
    std::cout << ", " << timing << "\n";
    if (profile_mode) continue;  // breakdown table instead of series
    for (const MetricSweepSeries& m : per_metric) {
      std::string title = m.metric + " on " + dataset_key;
      if (csv) {
        PrintSeriesCsv(std::cout, title, m.series);
      } else {
        PrintSeriesTable(std::cout, title, m.metric, m.series);
      }
    }
  }
  double run_seconds = run_timer.Seconds();

  if (tracing) {
    obs::StopTracing();
    std::vector<obs::TraceEvent> events = obs::DrainTrace();
    if (!trace_path.empty()) {
      if (obs::WriteChromeTraceFile(events, trace_path)) {
        std::cerr << "# trace: " << events.size() << " spans -> "
                  << trace_path << " (load in chrome://tracing or "
                  << "ui.perfetto.dev)\n";
      } else {
        std::cerr << "error: cannot write trace file " << trace_path << "\n";
        return 1;
      }
    }
    if (profile_mode) {
      obs::ProfileSummary summary;
      summary.wall_seconds = run_seconds;
      summary.threads = static_cast<size_t>(runner.NumThreads());
      summary.pool_busy_seconds = runner.PoolStats().busy_seconds;
      PrintProfile(obs::BuildProfile(events), summary, std::cout);
      // Cross-check against the scheduler: one metric_unit span per
      // submitted (cell x metric) unit, across every dataset swept.
      size_t unit_spans = 0;
      for (const obs::TraceEvent& ev : events) {
        if (std::string_view(ev.name) == "metric_unit") ++unit_spans;
      }
      std::cout << "# profile check: metric_unit spans=" << unit_spans
                << " submitted units=" << total_submitted_units
                << (unit_spans == total_submitted_units ? " (match)"
                                                        : " (MISMATCH)")
                << "\n";
    }
  }
  // A cancelled run dominates every other exit class: what completed is
  // persisted, nothing was recorded for the rest, and --resume picks up
  // exactly where this run stopped.
  if (run_token.Cancelled()) {
    const bool signalled = SignalCancelSigno() != 0;
    std::cerr << "# " << cmd_name
              << (signalled ? " interrupted by signal"
                            : " stopped at --deadline")
              << ": " << total_cancelled_units
              << " unit(s) cancelled; completed units"
              << (store ? " are persisted -- re-run with --resume to continue"
                        : " were printed (no --store: nothing persisted)")
              << "\n";
    return signalled ? kExitInterrupted : kExitDeadline;
  }
  if (total_failed_units > 0) {
    std::cerr << "# " << cmd_name << " finished with " << total_failed_units
              << " failed unit(s) (" << total_transient_failed
              << " transient, " << total_deadline_units
              << " deadline); recorded as error records"
              << (store ? "" : " (no --store: failures not persisted)")
              << " -- re-run with --store/--resume to retry just those\n";
    // Permanent failures dominate the exit code: they will not clear on
    // their own, while a transient or deadline-exceeded unit may succeed
    // if simply re-run (the latter with a larger --unit-timeout).
    return total_failed_units > total_transient_failed + total_deadline_units
               ? kExitUnitFailures
               : kExitTransientFailures;
  }
  return 0;
}

int CmdExport(const Args& args) {
  if (!args.Has("store")) {
    std::cerr << "export requires --store=DIR\n";
    return 1;
  }
  std::string format = args.Get("format", "csv");
  if (format != "csv" && format != "table") {
    std::cerr << "unknown --format '" << format << "' (csv or table)\n";
    return 1;
  }
  // Read-only snapshot: no lease, nothing mutated — a live sweep's store
  // can be exported mid-run.
  ResultStoreOptions snapshot;
  snapshot.read_only = true;
  ResultStore store(ResultStore::PathInDir(args.Get("store")), snapshot);
  ExportStore(store, std::cout, format == "csv", args.Get("dataset"),
              args.Get("metric"));
  return 0;
}

int CmdLs(const Args& args) {
  if (!args.Has("store")) {
    std::cerr << "ls requires --store=DIR\n";
    return 1;
  }
  ResultStoreOptions snapshot;
  snapshot.read_only = true;
  ResultStore store(ResultStore::PathInDir(args.Get("store")), snapshot);
  SummarizeStore(store, std::cout);
  return 0;
}

int CmdCompact(const Args& args) {
  if (!args.Has("store")) {
    std::cerr << "compact requires --store=DIR\n";
    return 1;
  }
  ResultStore store(ResultStore::PathInDir(args.Get("store")));
  CompactStats stats = store.Compact();
  std::cout << "compacted " << store.Path() << ": " << stats.records_before
            << " -> " << stats.records_after << " records, "
            << stats.bytes_before << " -> " << stats.bytes_after
            << " bytes\n";
  if (store.ErrorCount() > 0) {
    std::cout << "  kept " << store.ErrorCount()
              << " error record(s) (unresolved failed units; a resumed "
                 "sweep retries them)\n";
  }
  return 0;
}

int CmdMerge(const Args& args) {
  // `merge A B -o OUT`: "-o" is not a --flag, so it and the directory
  // after it arrive as positionals; --out=DIR works too.
  std::vector<std::string> inputs;
  std::string out_dir = args.Get("out");
  for (size_t i = 0; i < args.positional.size(); ++i) {
    const std::string& p = args.positional[i];
    if (p == "-o") {
      if (i + 1 >= args.positional.size()) {
        std::cerr << "merge: -o requires an output store directory\n";
        return 1;
      }
      out_dir = args.positional[++i];
    } else {
      inputs.push_back(p);
    }
  }
  if (out_dir.empty() || inputs.empty()) {
    std::cerr << "usage: sparsify_cli merge DIR [DIR ...] -o OUT\n";
    return 1;
  }
  for (const std::string& dir : inputs) {
    if (!std::filesystem::is_directory(dir)) {
      std::cerr << "merge: input store directory not found: " << dir << "\n";
      return kExitIo;
    }
  }

  // The output opens WRITABLE first (a cooperative lease like any
  // writer); the commit itself demands sole-writer exclusivity and
  // throws StoreLockHeldError -> exit 3 while a sweep is running there.
  ResultStore out(ResultStore::PathInDir(out_dir));

  // Fold order: OUT's own cells first, then each input in argv order, so
  // later inputs win ties. Cross-store, a success always beats an error
  // record for the same key — equal keys compute bit-identical values,
  // so any success IS the value and the error just records a worker's
  // failed attempt elsewhere.
  std::vector<StoredCell> merged = out.Cells();
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < merged.size(); ++i) {
    index.emplace(merged[i].key.Canonical(), i);
  }
  auto fold = [&](const StoredCell& cell) {
    std::string canonical = cell.key.Canonical();
    auto it = index.find(canonical);
    if (it == index.end()) {
      index.emplace(std::move(canonical), merged.size());
      merged.push_back(cell);
      return;
    }
    StoredCell& slot = merged[it->second];
    if (cell.is_error && !slot.is_error) return;
    slot = cell;
  };
  size_t input_records = 0;
  for (const std::string& dir : inputs) {
    ResultStoreOptions snapshot;
    snapshot.read_only = true;
    ResultStore in(ResultStore::PathInDir(dir), snapshot);
    for (const StoredCell& cell : in.Cells()) {
      fold(cell);
      ++input_records;
    }
  }
  out.ReplaceWithMerged(std::move(merged));

  std::cout << "merged " << inputs.size() << " store(s), " << input_records
            << " cell(s) -> " << out.Path() << ": " << out.Size()
            << " cell(s)";
  if (out.ErrorCount() > 0) {
    std::cout << " (" << out.ErrorCount()
              << " unresolved error record(s); a resumed sweep retries "
                 "them)";
  }
  std::cout << "\n";
  return 0;
}

int CmdFigure(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "figure requires at least one figure id (see "
                 "`sparsify_cli list`)\n";
    return 1;
  }
  FigureRunOptions opt;
  opt.scale = args.GetDouble("scale", 0.0);
  opt.runs = args.GetInt("runs", 3);
  opt.threads = args.GetInt("threads", 0);
  opt.seed = args.GetUint64("seed", 42);
  opt.csv = args.Has("csv");
  opt.store_dir = args.Get("store");
  opt.resume = args.Has("resume");
  return RunFigures(args.positional, opt, std::cout);
}

const std::map<std::string, std::set<std::string>>& AllowedKeys() {
  static const std::map<std::string, std::set<std::string>> allowed = {
      {"list", {}},
      {"metrics", {}},
      {"sparsify",
       {"algo", "rate", "input", "output", "directed", "weighted", "seed"}},
      {"evaluate",
       {"metric", "input", "sparsified", "directed", "weighted", "seed"}},
      {"sweep",
       {"dataset", "metric", "metrics", "paper", "algos", "rates", "runs",
        "scale", "seed", "threads", "csv", "store", "resume", "trace",
        "progress", "max-unit-retries", "deadline", "unit-timeout",
        "watchdog-stall", "shard", "no-steal", "lease-ttl"}},
      {"profile",
       {"dataset", "metric", "metrics", "paper", "algos", "rates", "runs",
        "scale", "seed", "threads", "csv", "store", "resume", "trace",
        "progress", "max-unit-retries", "deadline", "unit-timeout",
        "watchdog-stall", "shard", "no-steal", "lease-ttl"}},
      {"ingest", {"input", "directed", "weighted", "cache", "threads"}},
      {"export", {"store", "format", "dataset", "metric"}},
      {"ls", {"store"}},
      {"compact", {"store"}},
      {"merge", {"out"}},
      {"figure",
       {"scale", "runs", "threads", "seed", "csv", "store", "resume"}},
  };
  return allowed;
}

}  // namespace

int RunSparsifyCli(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    Usage();
    return 0;
  }
  auto allowed_it = AllowedKeys().find(cmd);
  if (allowed_it == AllowedKeys().end()) {
    std::cerr << "unknown command '" << cmd << "'\n";
    return Usage();
  }
  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, 2, allowed_it->second, &args, &error)) {
    std::cerr << "error: " << error << "\n";
    return Usage();
  }
  try {
    // Torture-harness hook: arm fault injection from the environment
    // before any command touches the store or the engine. A malformed
    // spec aborts loudly (invalid_argument -> usage) instead of silently
    // running un-faulted.
    fail::ArmFromEnv();
    if (cmd == "list") return CmdList();
    if (cmd == "metrics") return CmdMetrics();
    if (cmd == "sparsify") return CmdSparsify(args);
    if (cmd == "evaluate") return CmdEvaluate(args);
    if (cmd == "sweep") return CmdSweep(args, /*profile_mode=*/false);
    if (cmd == "profile") return CmdSweep(args, /*profile_mode=*/true);
    if (cmd == "ingest") return CmdIngest(args);
    if (cmd == "export") return CmdExport(args);
    if (cmd == "ls") return CmdLs(args);
    if (cmd == "compact") return CmdCompact(args);
    if (cmd == "merge") return CmdMerge(args);
    if (cmd == "figure") return CmdFigure(args);
  } catch (const StoreLockHeldError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitLockHeld;
  } catch (const StoreCorruptError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitCorruptStore;
  } catch (const DeadlineExceededError& e) {
    // Safety net for cancellation escaping a non-tolerant path (e.g. a
    // figure run); sweeps normally classify and exit via CmdSweep.
    std::cerr << "error: " << e.what() << "\n";
    return kExitDeadline;
  } catch (const CancelledError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitInterrupted;
  } catch (const IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitIo;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  }
  return Usage();
}

}  // namespace sparsify::cli
