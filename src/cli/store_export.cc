#include "src/cli/store_export.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <tuple>

#include "src/sparsifiers/sparsifier.h"
#include "src/util/stats.h"

namespace sparsify::cli {

namespace {

// Registry rank for deterministic series order; unknown names (from a
// different code revision) sort after all known ones, alphabetically.
size_t SparsifierRank(const std::string& short_name) {
  static const std::vector<std::string> names = SparsifierNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == short_name) return i;
  }
  return names.size();
}

bool IsFixedOutput(const std::string& short_name) {
  try {
    return CreateSparsifier(short_name)->Info().prune_rate_control ==
           PruneRateControl::kNone;
  } catch (const std::invalid_argument&) {
    return false;  // unknown sparsifier: leave stored rates untouched
  }
}

}  // namespace

std::vector<StoreGroup> RebuildSeries(const ResultStore& store,
                                      const std::string& dataset_filter,
                                      const std::string& metric_filter) {
  using GroupKey = std::tuple<std::string, std::string, uint64_t, std::string>;
  std::map<GroupKey, std::vector<StoredCell>> groups;
  for (const StoredCell& cell : store.Cells()) {
    // Error records are failed units, not results: exporting them would
    // fold zeros into the series means. `ls` reports their count.
    if (cell.is_error) continue;
    if (!dataset_filter.empty() && cell.key.dataset != dataset_filter) {
      continue;
    }
    if (!metric_filter.empty() && cell.key.metric != metric_filter) continue;
    groups[{cell.key.dataset, cell.key.metric, cell.key.master_seed,
            cell.key.code_rev}]
        .push_back(cell);
  }

  std::vector<StoreGroup> out;
  for (auto& [key, cells] : groups) {
    StoreGroup group;
    std::tie(group.dataset, group.metric, group.master_seed, group.code_rev) =
        key;

    // Since r4 a (sparsifier, rate, run) triple IS the cell's identity
    // within a group — grid position is no longer part of the key — so
    // the sort is a total order over distinct cells; nothing to dedup.
    std::sort(cells.begin(), cells.end(),
              [](const StoredCell& a, const StoredCell& b) {
                size_t ra = SparsifierRank(a.key.sparsifier);
                size_t rb = SparsifierRank(b.key.sparsifier);
                return std::tie(ra, a.key.sparsifier, a.key.prune_rate,
                                a.key.run) <
                       std::tie(rb, b.key.sparsifier, b.key.prune_rate,
                                b.key.run);
              });
    group.cells = cells.size();

    size_t i = 0;
    while (i < cells.size()) {
      SweepSeries series;
      series.sparsifier = cells[i].key.sparsifier;
      bool fixed_output = IsFixedOutput(series.sparsifier);
      while (i < cells.size() &&
             cells[i].key.sparsifier == series.sparsifier) {
        double rate = cells[i].key.prune_rate;
        std::vector<double> values;
        std::vector<double> achieved;
        while (i < cells.size() &&
               cells[i].key.sparsifier == series.sparsifier &&
               cells[i].key.prune_rate == rate) {
          values.push_back(cells[i].value);
          achieved.push_back(cells[i].achieved_prune_rate);
          ++i;
        }
        SweepPoint point;
        point.requested_prune_rate = rate;
        point.mean = Mean(values);
        point.stddev = StdDev(values);
        point.achieved_prune_rate = Mean(achieved);
        point.runs = static_cast<int>(values.size());
        if (fixed_output) {
          point.requested_prune_rate = point.achieved_prune_rate;
        }
        series.points.push_back(point);
      }
      group.series.push_back(std::move(series));
    }
    out.push_back(std::move(group));
  }
  return out;
}

void ExportStore(const ResultStore& store, std::ostream& os, bool csv,
                 const std::string& dataset_filter,
                 const std::string& metric_filter) {
  for (const StoreGroup& group : RebuildSeries(store, dataset_filter,
                                               metric_filter)) {
    std::string title = group.metric + " on " + group.dataset + " (seed=" +
                        std::to_string(group.master_seed) + ", rev=" +
                        group.code_rev + ")";
    if (csv) {
      PrintSeriesCsv(os, title, group.series);
    } else {
      PrintSeriesTable(os, title, group.metric, group.series);
    }
  }
}

void SummarizeStore(const ResultStore& store, std::ostream& os) {
  os << "store: " << store.Path() << "\n";
  os << "cells: " << store.Size();
  if (store.ErrorCount() > 0) {
    os << " (" << store.ErrorCount()
       << " error record(s): failed units a resumed sweep will retry)";
  }
  if (store.DroppedTailBytes() > 0) {
    os << " (dropped " << store.DroppedTailBytes()
       << " bytes of torn tail from a crashed append)";
  }
  os << "\n";
  for (const StoreGroup& group : RebuildSeries(store)) {
    std::set<std::string> sparsifiers;
    std::set<double> rates;
    int max_runs = 0;
    for (const SweepSeries& s : group.series) {
      sparsifiers.insert(s.sparsifier);
      for (const SweepPoint& p : s.points) {
        rates.insert(p.requested_prune_rate);
        max_runs = std::max(max_runs, p.runs);
      }
    }
    os << "  " << group.dataset << " " << group.metric << " seed="
       << group.master_seed << " rev=" << group.code_rev << ": "
       << group.cells << " cells, " << sparsifiers.size()
       << " sparsifiers, " << rates.size() << " rates, runs<=" << max_runs
       << "\n";
  }
}

}  // namespace sparsify::cli
