// Rank Degree sparsifier (paper section 2.3.3, Voudigari et al.): grows the
// sparsified edge set from random seed vertices, each time keeping the edges
// to a seed's top-degree neighbors; those neighbors become the next seeds.
// Biased toward hub vertices, so it excels at distance and centrality
// metrics. Fine-grained control: growth stops at the target edge count.
//
// Two-phase form: the growth process is prefix-consistent — the first T
// edges it keeps do not depend on the target T — so PrepareScores runs the
// growth to exhaustion once, recording the keep ORDER, and MaskForRate for
// any rate keeps the first TargetKeepCount edges of that order.
#ifndef SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_
#define SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// ScoreState of Rank Degree: every canonical edge id, in the order the
/// growth process kept it (growth edges first, then the deterministic
/// fallback fill).
class KeepOrderState : public ScoreState {
 public:
  explicit KeepOrderState(std::vector<EdgeId> order)
      : order_(std::move(order)) {}
  const std::vector<EdgeId>& order() const { return order_; }

 private:
  std::vector<EdgeId> order_;
};

class RankDegreeSparsifier : public Sparsifier {
 public:
  /// `seed_fraction`: share of vertices used as the initial seed set.
  /// `top_fraction`: share of each seed's neighbors (by degree rank) whose
  /// edges are kept per expansion step (at least 1).
  explicit RankDegreeSparsifier(double seed_fraction = 0.01,
                                double top_fraction = 0.10)
      : seed_fraction_(seed_fraction), top_fraction_(top_fraction) {}

  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

 private:
  double seed_fraction_;
  double top_fraction_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_
