// Rank Degree sparsifier (paper section 2.3.3, Voudigari et al.): grows the
// sparsified edge set from random seed vertices, each time keeping the edges
// to a seed's top-degree neighbors; those neighbors become the next seeds.
// Biased toward hub vertices, so it excels at distance and centrality
// metrics. Fine-grained control: growth stops at the target edge count.
#ifndef SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_
#define SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class RankDegreeSparsifier : public Sparsifier {
 public:
  /// `seed_fraction`: share of vertices used as the initial seed set.
  /// `top_fraction`: share of each seed's neighbors (by degree rank) whose
  /// edges are kept per expansion step (at least 1).
  explicit RankDegreeSparsifier(double seed_fraction = 0.01,
                                double top_fraction = 0.10)
      : seed_fraction_(seed_fraction), top_fraction_(top_fraction) {}

  const SparsifierInfo& Info() const override;
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

 private:
  double seed_fraction_;
  double top_fraction_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_RANK_DEGREE_H_
