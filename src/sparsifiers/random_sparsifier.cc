#include "src/sparsifiers/random_sparsifier.h"

#include <memory>

namespace sparsify {

const SparsifierInfo& RandomSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Random",
      .short_name = "RN",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(rho |E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> RandomSparsifier::PrepareScores(const Graph& g,
                                                            Rng& rng) const {
  std::vector<double> priority(g.NumEdges());
  for (double& p : priority) p = rng.NextDouble();
  return std::make_unique<EdgeScoreState>(std::move(priority));
}

RateMask RandomSparsifier::MaskForRate(const ScoreState& state,
                                       double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Random"), prune_rate);
}

}  // namespace sparsify
