#include "src/sparsifiers/random_sparsifier.h"

namespace sparsify {

const SparsifierInfo& RandomSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Random",
      .short_name = "RN",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(rho |E|)",
  };
  return info;
}

Graph RandomSparsifier::Sparsify(const Graph& g, double prune_rate,
                                 Rng& rng) const {
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  for (uint64_t e : rng.SampleWithoutReplacement(g.NumEdges(), target)) {
    keep[e] = 1;
  }
  return g.Subgraph(keep);
}

}  // namespace sparsify
