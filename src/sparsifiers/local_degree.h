// Local Degree sparsifier (paper section 2.3.4, Hamann et al.): for every
// vertex v, deterministically keeps the edges to its ceil(deg(v)^alpha)
// highest-degree neighbors. Guarantees >= 1 incident edge per non-isolated
// vertex, so it preserves both connectivity and hub edges. alpha in [0, 1]
// is calibrated to the requested prune rate by binary search.
//
// Two-phase split: PrepareScores ranks every vertex's neighborhood by
// neighbor degree ONCE and folds the ranks into sorted per-edge alpha
// thresholds (vertex_ranked.h); MaskForRate binary-searches alpha with
// each kept-count probe a single O(log |E|) lower_bound, caching the
// endpoint counts it observes instead of rebuilding masks afterwards.
#ifndef SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_
#define SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class LocalDegreeSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

  /// Single deterministic pass with a fixed alpha; exposed for tests.
  Graph SparsifyWithAlpha(const Graph& g, double alpha) const;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_
