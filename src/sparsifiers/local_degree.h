// Local Degree sparsifier (paper section 2.3.4, Hamann et al.): for every
// vertex v, deterministically keeps the edges to its ceil(deg(v)^alpha)
// highest-degree neighbors. Guarantees >= 1 incident edge per non-isolated
// vertex, so it preserves both connectivity and hub edges. alpha in [0, 1]
// is calibrated to the requested prune rate by binary search.
#ifndef SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_
#define SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class LocalDegreeSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

  /// Single deterministic pass with a fixed alpha; exposed for tests.
  Graph SparsifyWithAlpha(const Graph& g, double alpha) const;

 private:
  std::vector<uint8_t> KeepMaskForAlpha(const Graph& g, double alpha) const;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_LOCAL_DEGREE_H_
