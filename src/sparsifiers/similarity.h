// Similarity-based sparsifiers (paper section 2.3.8).
//
// All four algorithms score each edge by a neighborhood-overlap similarity
// of its endpoints and keep high-scoring edges, differing in the score and
// in whether the selection is global or per-vertex:
//
//   G-Spar (GS):           global top edges by Jaccard similarity.
//   SCAN:                  global top edges by SCAN structural similarity
//                          (|N(u) n N(v)| + 1) / sqrt((d(u)+1)(d(v)+1)).
//   L-Spar (LS):           per vertex, top ceil(deg(v)^c) edges by Jaccard
//                          (Satuluri et al.; we compute exact Jaccard via
//                          sorted-CSR intersection instead of min-wise
//                          hashing — see DESIGN.md section 5).
//   Local Similarity (LSim): per endpoint, edges ranked by Jaccard; edge
//                          score = max over endpoints of
//                          1 - log(rank)/log(deg); global top by score
//                          (Hamann et al.).
//
// These preserve local structure and clustering; global variants (GS, SCAN)
// aggressively keep intra-community edges and therefore disconnect graphs
// quickly, which is exactly the behaviour the paper's figures show.
//
// All four score once: the neighborhood intersections (the O(k |E|) part)
// happen in PrepareScores; MaskForRate is a global top-k (GS, SCAN, LSim)
// or a cheap exponent binary search over precomputed per-vertex rankings
// (LS), so a 9-rate sweep pays for the intersections once.
#ifndef SPARSIFY_SPARSIFIERS_SIMILARITY_H_
#define SPARSIFY_SPARSIFIERS_SIMILARITY_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// Exact Jaccard similarity of every canonical edge's endpoint
/// neighborhoods (out-neighborhoods for directed graphs).
std::vector<double> JaccardEdgeScores(const Graph& g);

/// SCAN structural similarity of every canonical edge.
std::vector<double> ScanEdgeScores(const Graph& g);

/// Number of common neighbors of every canonical edge's endpoints.
std::vector<double> CommonNeighborCounts(const Graph& g);

class GSparSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

class ScanSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

class LSparSparsifier : public Sparsifier {
 public:
  /// With `use_minhash` the per-edge Jaccard scores are estimated by
  /// `num_hashes` min-wise hashes, as in the original Satuluri et al.
  /// algorithm, instead of exact intersection (registered separately as
  /// the "LS-MH" extension variant; see DESIGN.md section 5, decision 2).
  explicit LSparSparsifier(bool use_minhash = false, int num_hashes = 32)
      : use_minhash_(use_minhash), num_hashes_(num_hashes) {}

  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

  /// Single deterministic pass keeping ceil(deg(v)^c) edges per vertex
  /// (always exact-Jaccard).
  Graph SparsifyWithExponent(const Graph& g, double c) const;

 private:
  bool use_minhash_;
  int num_hashes_;
};

class LocalSimilaritySparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_SIMILARITY_H_
