#include "src/sparsifiers/k_neighbor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace sparsify {

const SparsifierInfo& KNeighborSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "K-Neighbor",
      .short_name = "KN",
      .supports_directed = true,  // uses out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(|E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> KNeighborSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  const EdgeId m = g.NumEdges();
  const NodeId max_degree = g.MaxDegree();
  std::vector<NodeId> best_rank(m, std::numeric_limits<NodeId>::max());
  // Weighted sampling without replacement per vertex via
  // Efraimidis-Spirakis keys u^(1/w): one key per adjacency entry, drawn
  // once; the per-vertex key-descending order then serves every k.
  std::vector<std::pair<double, EdgeId>> keys;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborEdges(v);
    if (nbrs.empty()) continue;
    keys.clear();
    keys.reserve(nbrs.size());
    for (EdgeId e : nbrs) {
      double w = g.IsWeighted() ? g.EdgeWeight(e) : 1.0;
      double u = rng.NextDouble();
      keys.emplace_back(std::pow(u, 1.0 / w), e);
    }
    std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (size_t r = 0; r < keys.size(); ++r) {
      EdgeId e = keys[r].second;
      best_rank[e] = std::min(best_rank[e], static_cast<NodeId>(r));
    }
  }
  // Histogram -> prefix sums: count_at_k[k] = #edges with best_rank < k.
  std::vector<EdgeId> count_at_k(static_cast<size_t>(max_degree) + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    // Every edge appears in at least one adjacency list, so its rank is
    // < max_degree.
    ++count_at_k[best_rank[e] + 1];
  }
  for (size_t k = 1; k < count_at_k.size(); ++k) {
    count_at_k[k] += count_at_k[k - 1];
  }
  return std::make_unique<KNeighborState>(std::move(best_rank),
                                          std::move(count_at_k));
}

RateMask KNeighborSparsifier::MaskForRate(const ScoreState& state,
                                          double prune_rate) const {
  const auto& kn = StateAs<KNeighborState>(state, "K-Neighbor");
  const std::vector<EdgeId>& count = kn.count_at_k();
  const EdgeId m = static_cast<EdgeId>(kn.best_rank().size());
  EdgeId target = TargetKeepCount(m, prune_rate);
  RateMask mask;
  mask.keep.assign(m, 0);
  if (m == 0) return mask;
  // Smallest k whose kept count reaches the target (kept count is monotone
  // in k and count[max_degree] == m >= target), then the closer of k, k-1.
  NodeId max_k = static_cast<NodeId>(count.size() - 1);
  NodeId lo = 1, hi = std::max<NodeId>(1, max_k);
  while (lo < hi) {
    NodeId mid = lo + (hi - lo) / 2;
    if (count[mid] >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // k-1 is taken only when it is strictly closer AND undershoots by at
  // most one edge: constrained control promises to never prune (much)
  // more than requested, only less.
  NodeId best = lo;
  if (lo > 1) {
    EdgeId above = count[lo];
    EdgeId below = count[lo - 1];
    if (below + 1 >= target &&
        target - std::min(target, below) <
            std::max(above, target) - target) {
      best = lo - 1;
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (kn.best_rank()[e] < best) mask.keep[e] = 1;
  }
  return mask;
}

std::vector<uint8_t> KNeighborSparsifier::KeepMaskForK(const Graph& g,
                                                       NodeId k,
                                                       Rng& rng) const {
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  std::vector<std::pair<double, EdgeId>> keys;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborEdges(v);
    if (nbrs.empty()) continue;
    if (nbrs.size() <= k) {
      for (EdgeId e : nbrs) keep[e] = 1;
      continue;
    }
    keys.clear();
    keys.reserve(nbrs.size());
    for (EdgeId e : nbrs) {
      double w = g.IsWeighted() ? g.EdgeWeight(e) : 1.0;
      double u = rng.NextDouble();
      keys.emplace_back(std::pow(u, 1.0 / w), e);
    }
    std::nth_element(keys.begin(), keys.begin() + (k - 1), keys.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (NodeId i = 0; i < k; ++i) keep[keys[i].second] = 1;
  }
  return keep;
}

Graph KNeighborSparsifier::SparsifyWithK(const Graph& g, NodeId k,
                                         Rng& rng) const {
  return g.Subgraph(KeepMaskForK(g, k, rng));
}

}  // namespace sparsify
