#include "src/sparsifiers/k_neighbor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sparsify {

const SparsifierInfo& KNeighborSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "K-Neighbor",
      .short_name = "KN",
      .supports_directed = true,  // uses out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(|E|)",
  };
  return info;
}

std::vector<uint8_t> KNeighborSparsifier::KeepMaskForK(const Graph& g,
                                                       NodeId k,
                                                       Rng& rng) const {
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  // Weighted sampling without replacement per vertex via
  // Efraimidis-Spirakis keys: top-k of u^(1/w).
  std::vector<std::pair<double, EdgeId>> keys;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighbors(v);
    if (nbrs.empty()) continue;
    if (nbrs.size() <= k) {
      for (const AdjEntry& a : nbrs) keep[a.edge] = 1;
      continue;
    }
    keys.clear();
    keys.reserve(nbrs.size());
    for (const AdjEntry& a : nbrs) {
      double w = g.IsWeighted() ? g.EdgeWeight(a.edge) : 1.0;
      double u = rng.NextDouble();
      keys.emplace_back(std::pow(u, 1.0 / w), a.edge);
    }
    std::nth_element(keys.begin(), keys.begin() + (k - 1), keys.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (NodeId i = 0; i < k; ++i) keep[keys[i].second] = 1;
  }
  return keep;
}

Graph KNeighborSparsifier::SparsifyWithK(const Graph& g, NodeId k,
                                         Rng& rng) const {
  return g.Subgraph(KeepMaskForK(g, k, rng));
}

Graph KNeighborSparsifier::Sparsify(const Graph& g, double prune_rate,
                                    Rng& rng) const {
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  // Kept count is monotone nondecreasing in k; binary search the smallest k
  // whose kept count reaches the target, then return the closer of k, k-1.
  // Calibration probes use a forked rng so the final pass is independent.
  NodeId lo = 1, hi = std::max<NodeId>(1, g.MaxDegree());
  auto count_for = [&](NodeId k) -> EdgeId {
    Rng probe = rng.Fork();
    std::vector<uint8_t> keep = KeepMaskForK(g, k, probe);
    return static_cast<EdgeId>(
        std::accumulate(keep.begin(), keep.end(), uint64_t{0}));
  };
  while (lo < hi) {
    NodeId mid = lo + (hi - lo) / 2;
    if (count_for(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  NodeId best = lo;
  if (lo > 1) {
    EdgeId above = count_for(lo);
    EdgeId below = count_for(lo - 1);
    if (target - std::min(target, below) <
        std::max(above, target) - target) {
      best = lo - 1;
    }
  }
  return SparsifyWithK(g, best, rng);
}

}  // namespace sparsify
