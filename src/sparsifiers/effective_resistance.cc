#include "src/sparsifiers/effective_resistance.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "src/linalg/cg.h"
#include "src/util/cancel.h"

namespace sparsify {

std::vector<double> ApproxEffectiveResistances(const Graph& g, Rng& rng,
                                               int jl_dimension, double tol) {
  const size_t n = g.NumVertices();
  const EdgeId m = g.NumEdges();
  int k = jl_dimension > 0
              ? jl_dimension
              : std::max(8, static_cast<int>(std::ceil(
                                8.0 * std::log(std::max<size_t>(2, n)))));
  std::vector<double> resistance(m, 0.0);
  Vec b(n), z(n);
  for (int i = 0; i < k; ++i) {
    SPARSIFY_CHECK_CANCELLED();  // once per JL dimension (one CG solve)
    // b = B^T W^{1/2} q_i where q_i has +-1/sqrt(k) entries: each edge e
    // contributes q_i[e] * sqrt(w_e) * (e_u - e_v).
    std::fill(b.begin(), b.end(), 0.0);
    std::vector<double> q(m);
    double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k));
    for (EdgeId e = 0; e < m; ++e) {
      q[e] = rng.NextBernoulli(0.5) ? inv_sqrt_k : -inv_sqrt_k;
      const Edge& ed = g.CanonicalEdge(e);
      double c = q[e] * std::sqrt(ed.w);
      b[ed.u] += c;
      b[ed.v] -= c;
    }
    z.assign(n, 0.0);
    SolveLaplacian(g, b, &z, tol);
    // Row i of Z evaluated at the edge endpoints.
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& ed = g.CanonicalEdge(e);
      double diff = z[ed.u] - z[ed.v];
      resistance[e] += diff * diff;
    }
  }
  return resistance;
}

EffectiveResistanceSparsifier::EffectiveResistanceSparsifier(bool reweight)
    : reweight_(reweight) {
  info_ = SparsifierInfo{
      .name = reweight ? "Effective Resistance (weighted)"
                       : "Effective Resistance (unweighted)",
      .short_name = reweight ? "ER-w" : "ER-uw",
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = reweight,
      .deterministic = false,
      .complexity = "O(|E| log(|V|)^3)",
  };
}

const SparsifierInfo& EffectiveResistanceSparsifier::Info() const {
  return info_;
}

Graph EffectiveResistanceSparsifier::Sparsify(const Graph& g,
                                              double prune_rate,
                                              Rng& rng) const {
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Effective Resistance requires an undirected graph; symmetrize "
        "first");
  }
  // TargetKeepCount first: an out-of-range rate must throw even when the
  // keep-everything fast path (which also covers m == 0) would apply.
  const EdgeId m = g.NumEdges();
  if (TargetKeepCount(m, prune_rate) >= m) return g;
  return Sparsifier::Sparsify(g, prune_rate, rng);
}

std::unique_ptr<ScoreState> EffectiveResistanceSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Effective Resistance requires an undirected graph; symmetrize "
        "first");
  }
  const EdgeId m = g.NumEdges();
  if (m == 0) {
    return std::make_unique<ErSampleState>(&g, std::vector<EdgeId>{},
                                           std::vector<uint64_t>{},
                                           std::vector<double>{});
  }

  std::vector<double> resistance = ApproxEffectiveResistances(g, rng);
  // Sampling probabilities p_e proportional to w_e * R_e (Spielman &
  // Srivastava). For a connected graph sum_e w_e R_e = n - 1.
  std::vector<double> p(m);
  double total = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    p[e] = std::max(1e-300, g.EdgeWeight(e) * resistance[e]);
    total += p[e];
  }
  for (double& pe : p) pe /= total;

  // Sample with replacement until every edge has been hit once, recording
  // the first-hit order and the draw count at each prefix. The draw
  // sequence does not depend on any prune rate, so the first T entries of
  // the order are exactly the distinct set a run stopped at target T would
  // have kept.
  std::vector<double> cum(m);
  double acc = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    acc += p[e];
    cum[e] = acc;
  }
  std::vector<uint8_t> hit(m, 0);
  std::vector<EdgeId> hit_order;
  std::vector<uint64_t> draws_at;
  hit_order.reserve(m);
  draws_at.reserve(m);
  EdgeId distinct = 0;
  uint64_t draws = 0;
  const uint64_t max_draws = 400ULL * m + 1000000ULL;
  while (distinct < m && draws < max_draws) {
    // Poll rarely: the check must not perturb the RNG stream, and the
    // draw loop is hot (one binary search per draw).
    if ((draws & 0xFFFFu) == 0) SPARSIFY_CHECK_CANCELLED();
    double r = rng.NextDouble() * acc;
    auto it = std::lower_bound(cum.begin(), cum.end(), r);
    EdgeId e = static_cast<EdgeId>(it - cum.begin());
    if (e >= m) e = m - 1;
    ++draws;
    if (!hit[e]) {
      hit[e] = 1;
      hit_order.push_back(e);
      draws_at.push_back(draws);
      ++distinct;
    }
  }
  // Extremely skewed p can stall the race before every edge is hit; top up
  // with the remaining edges by descending probability (ties by id).
  if (distinct < m) {
    std::vector<EdgeId> rest;
    for (EdgeId e = 0; e < m; ++e) {
      if (!hit[e]) rest.push_back(e);
    }
    std::sort(rest.begin(), rest.end(), [&](EdgeId a, EdgeId b) {
      return p[a] != p[b] ? p[a] > p[b] : a < b;
    });
    for (EdgeId e : rest) {
      ++draws;
      hit_order.push_back(e);
      draws_at.push_back(draws);
    }
  }
  return std::make_unique<ErSampleState>(&g, std::move(hit_order),
                                         std::move(draws_at), std::move(p));
}

RateMask EffectiveResistanceSparsifier::MaskForRate(const ScoreState& state,
                                                    double prune_rate) const {
  const auto& er = StateAs<ErSampleState>(state, "Effective Resistance");
  const EdgeId m = static_cast<EdgeId>(er.hit_order().size());
  EdgeId target = TargetKeepCount(m, prune_rate);
  RateMask mask;
  mask.keep.assign(m, 0);
  if (m == 0 || target == 0) return mask;
  if (target >= m) {
    // Keeping everything is the identity: original weights survive even in
    // the reweighted variant (matching the legacy fast path).
    std::fill(mask.keep.begin(), mask.keep.end(), 1);
    return mask;
  }
  for (EdgeId i = 0; i < target; ++i) mask.keep[er.hit_order()[i]] = 1;
  if (!reweight_) return mask;

  // Horvitz-Thompson weights over the with-replacement race: the prefix of
  // `target` distinct edges took s draws, and edge e's chance of being hit
  // within s draws is pi_e = 1 - (1 - p_e)^s; w'_e = w_e / pi_e makes the
  // sparsified Laplacian estimate the original without bias over the
  // sampling marginal.
  const Graph& g = er.graph();
  const uint64_t s = er.draws_at()[target - 1];
  mask.new_weights.assign(m, 0.0);
  for (EdgeId i = 0; i < target; ++i) {
    EdgeId e = er.hit_order()[i];
    double pi = -std::expm1(static_cast<double>(s) *
                            std::log1p(-std::min(er.p()[e], 1.0 - 1e-16)));
    pi = std::clamp(pi, 1e-12, 1.0);
    mask.new_weights[e] = g.EdgeWeight(e) / pi;
  }
  return mask;
}

}  // namespace sparsify
