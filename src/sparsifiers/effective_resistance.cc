#include "src/sparsifiers/effective_resistance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/linalg/cg.h"

namespace sparsify {

std::vector<double> ApproxEffectiveResistances(const Graph& g, Rng& rng,
                                               int jl_dimension, double tol) {
  const size_t n = g.NumVertices();
  const EdgeId m = g.NumEdges();
  int k = jl_dimension > 0
              ? jl_dimension
              : std::max(8, static_cast<int>(std::ceil(
                                8.0 * std::log(std::max<size_t>(2, n)))));
  std::vector<double> resistance(m, 0.0);
  Vec b(n), z(n);
  for (int i = 0; i < k; ++i) {
    // b = B^T W^{1/2} q_i where q_i has +-1/sqrt(k) entries: each edge e
    // contributes q_i[e] * sqrt(w_e) * (e_u - e_v).
    std::fill(b.begin(), b.end(), 0.0);
    std::vector<double> q(m);
    double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k));
    for (EdgeId e = 0; e < m; ++e) {
      q[e] = rng.NextBernoulli(0.5) ? inv_sqrt_k : -inv_sqrt_k;
      const Edge& ed = g.CanonicalEdge(e);
      double c = q[e] * std::sqrt(ed.w);
      b[ed.u] += c;
      b[ed.v] -= c;
    }
    z.assign(n, 0.0);
    SolveLaplacian(g, b, &z, tol);
    // Row i of Z evaluated at the edge endpoints.
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& ed = g.CanonicalEdge(e);
      double diff = z[ed.u] - z[ed.v];
      resistance[e] += diff * diff;
    }
  }
  return resistance;
}

EffectiveResistanceSparsifier::EffectiveResistanceSparsifier(bool reweight)
    : reweight_(reweight) {
  info_ = SparsifierInfo{
      .name = reweight ? "Effective Resistance (weighted)"
                       : "Effective Resistance (unweighted)",
      .short_name = reweight ? "ER-w" : "ER-uw",
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = reweight,
      .deterministic = false,
      .complexity = "O(|E| log(|V|)^3)",
  };
}

const SparsifierInfo& EffectiveResistanceSparsifier::Info() const {
  return info_;
}

Graph EffectiveResistanceSparsifier::Sparsify(const Graph& g,
                                              double prune_rate,
                                              Rng& rng) const {
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Effective Resistance requires an undirected graph; symmetrize "
        "first");
  }
  const EdgeId m = g.NumEdges();
  EdgeId target = TargetKeepCount(m, prune_rate);
  if (target >= m || m == 0) return g;

  std::vector<double> resistance = ApproxEffectiveResistances(g, rng);
  // Sampling probabilities p_e proportional to w_e * R_e (Spielman &
  // Srivastava). For a connected graph sum_e w_e R_e = n - 1.
  std::vector<double> p(m);
  double total = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    p[e] = std::max(1e-300, g.EdgeWeight(e) * resistance[e]);
    total += p[e];
  }
  for (double& pe : p) pe /= total;

  // Sample with replacement until `target` distinct edges are hit,
  // accumulating per-edge hit counts; the weighted variant then assigns
  // w'_e = c_e * w_e / (q p_e), the unbiased Horvitz-Thompson weight of the
  // with-replacement estimator (q = total draws).
  std::vector<double> cum(m);
  double acc = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    acc += p[e];
    cum[e] = acc;
  }
  std::vector<uint32_t> hits(m, 0);
  std::vector<uint8_t> keep(m, 0);
  EdgeId distinct = 0;
  uint64_t draws = 0;
  const uint64_t max_draws = 400ULL * m + 1000000ULL;
  while (distinct < target && draws < max_draws) {
    double r = rng.NextDouble() * acc;
    auto it = std::lower_bound(cum.begin(), cum.end(), r);
    EdgeId e = static_cast<EdgeId>(it - cum.begin());
    if (e >= m) e = m - 1;
    ++draws;
    ++hits[e];
    if (!keep[e]) {
      keep[e] = 1;
      ++distinct;
    }
  }
  // Extremely skewed p can stall the distinct count; top up with the
  // highest-probability unkept edges.
  if (distinct < target) {
    std::vector<double> topup(m, 0.0);
    for (EdgeId e = 0; e < m; ++e) topup[e] = keep[e] ? -1.0 : p[e];
    std::vector<uint8_t> extra = KeepTopScoring(topup, target - distinct);
    for (EdgeId e = 0; e < m; ++e) {
      if (extra[e] && !keep[e]) {
        keep[e] = 1;
        ++hits[e];
        ++draws;
      }
    }
  }

  if (!reweight_) return g.Subgraph(keep);

  std::vector<double> new_w(m, 0.0);
  for (EdgeId e = 0; e < m; ++e) {
    if (keep[e]) {
      new_w[e] = static_cast<double>(hits[e]) * g.EdgeWeight(e) /
                 (static_cast<double>(draws) * p[e]);
    }
  }
  return g.ReweightedSubgraph(keep, new_w);
}

}  // namespace sparsify
