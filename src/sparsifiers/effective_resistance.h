// Effective Resistance spectral sparsifier (paper section 2.3.9, Spielman &
// Srivastava 2011).
//
// The effective resistance R_e of edge e = (u, v) is (e_u - e_v)^T L^+
// (e_u - e_v). Edges are sampled with probability proportional to w_e R_e;
// the weighted variant reassigns kept edge weights so that the sparsified
// Laplacian is an unbiased estimator of the original, which is what makes
// ER-weighted the only sparsifier that preserves the Laplacian quadratic
// form (paper Fig. 3).
//
// Resistances are approximated with the Johnson-Lindenstrauss projection of
// Spielman & Srivastava: R_e ~ ||Z (e_u - e_v)||^2 with Z = Q W^{1/2} B L^+
// and Q a (k x m) random +-1/sqrt(k) matrix; each of the k rows costs one
// Laplacian solve, done here with Jacobi-preconditioned CG (the paper uses
// Laplacians.jl's approxchol solver — see DESIGN.md section 3).
#ifndef SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_
#define SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// Approximate effective resistance of every canonical edge.
/// `jl_dimension` = number of random projections (0 picks ~8 ln n);
/// `tol` = CG relative tolerance.
std::vector<double> ApproxEffectiveResistances(const Graph& g, Rng& rng,
                                               int jl_dimension = 0,
                                               double tol = 1e-6);

class EffectiveResistanceSparsifier : public Sparsifier {
 public:
  /// `reweight` selects the ER-weighted variant (Table 2's only
  /// weight-changing sparsifier); false gives ER-unweighted, which keeps
  /// original weights.
  explicit EffectiveResistanceSparsifier(bool reweight);

  const SparsifierInfo& Info() const override;
  /// Throws std::invalid_argument for directed graphs (symmetrize first,
  /// as the paper does in section 4.5).
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

 private:
  bool reweight_;
  SparsifierInfo info_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_
