// Effective Resistance spectral sparsifier (paper section 2.3.9, Spielman &
// Srivastava 2011).
//
// The effective resistance R_e of edge e = (u, v) is (e_u - e_v)^T L^+
// (e_u - e_v). Edges are sampled with probability proportional to w_e R_e;
// the weighted variant reassigns kept edge weights so that the sparsified
// Laplacian estimates the original, which is what makes ER-weighted the
// only sparsifier that preserves the Laplacian quadratic form (paper
// Fig. 3).
//
// Resistances are approximated with the Johnson-Lindenstrauss projection of
// Spielman & Srivastava: R_e ~ ||Z (e_u - e_v)||^2 with Z = Q W^{1/2} B L^+
// and Q a (k x m) random +-1/sqrt(k) matrix; each of the k rows costs one
// Laplacian solve, done here with Jacobi-preconditioned CG (the paper uses
// Laplacians.jl's approxchol solver — see DESIGN.md section 3).
//
// Two-phase split: PrepareScores pays for the k Laplacian solves AND runs
// the with-replacement sampling race once to exhaustion, recording the
// order in which distinct edges are first hit plus the draw count at every
// prefix length. MaskForRate(rho) then keeps the first TargetKeepCount
// edges of the hit order — exactly the set a run stopped at that target
// would have kept, since the draw sequence is target-independent — and the
// weighted variant assigns Horvitz-Thompson weights w_e / pi_e with
// pi_e = 1 - (1 - p_e)^s, the probability of edge e being hit within the
// s draws the prefix took (an unbiased Laplacian estimator over the
// sampling marginal).
#ifndef SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_
#define SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// Approximate effective resistance of every canonical edge.
/// `jl_dimension` = number of random projections (0 picks ~8 ln n);
/// `tol` = CG relative tolerance.
std::vector<double> ApproxEffectiveResistances(const Graph& g, Rng& rng,
                                               int jl_dimension = 0,
                                               double tol = 1e-6);

/// ScoreState of the ER family: the exhausted sampling race.
class ErSampleState : public ScoreState {
 public:
  ErSampleState(const Graph* g, std::vector<EdgeId> hit_order,
                std::vector<uint64_t> draws_at, std::vector<double> p)
      : graph_(g),
        hit_order_(std::move(hit_order)),
        draws_at_(std::move(draws_at)),
        p_(std::move(p)) {}

  const Graph& graph() const { return *graph_; }
  /// All |E| edge ids, ordered by first hit in the sampling race (edges
  /// never hit before the draw cap are appended by descending p).
  const std::vector<EdgeId>& hit_order() const { return hit_order_; }
  /// draws_at()[t] = total with-replacement draws made when the (t+1)-th
  /// distinct edge was hit.
  const std::vector<uint64_t>& draws_at() const { return draws_at_; }
  /// Normalized sampling probabilities p_e ~ w_e R_e.
  const std::vector<double>& p() const { return p_; }

 private:
  const Graph* graph_;
  std::vector<EdgeId> hit_order_;
  std::vector<uint64_t> draws_at_;
  std::vector<double> p_;
};

class EffectiveResistanceSparsifier : public Sparsifier {
 public:
  /// `reweight` selects the ER-weighted variant (Table 2's only
  /// weight-changing sparsifier); false gives ER-unweighted, which keeps
  /// original weights.
  explicit EffectiveResistanceSparsifier(bool reweight);

  const SparsifierInfo& Info() const override;
  /// Throws std::invalid_argument for directed graphs (symmetrize first,
  /// as the paper does in section 4.5).
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
  /// Keeps the legacy keep-everything fast path: when the target keeps
  /// every edge, returns `g` without paying for the Laplacian solves.
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

 private:
  bool reweight_;
  SparsifierInfo info_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_EFFECTIVE_RESISTANCE_H_
