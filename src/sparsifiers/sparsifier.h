// Sparsifier interface and registry.
//
// A sparsifier maps a graph G = (V, E) to a subgraph H = (V, E') with
// |E'| = (1 - rho) |E| for a requested prune rate rho (paper Definition 1).
// Vertices are never removed.
//
// The interface is two-phase (see README.md in this directory):
//
//   PrepareScores(g, rng) -> ScoreState   the expensive part: degree
//       rankings, similarity scores, effective resistances, spanner /
//       forest structure. The ONLY phase that may consume the Rng.
//   MaskForRate(state, rho) -> RateMask   cheap thresholding of the state
//       at one prune rate. Deterministic, const, and re-entrant: the sweep
//       engine calls it concurrently for many rates on one shared state.
//
// `Sparsify()` is a thin wrapper (prepare once, mask once) kept so
// single-rate call sites stay valid. The paper's sweep protocol evaluates
// every sparsifier at 9 prune rates; the batch engine prepares each
// (sparsifier, run) group's state once and fans the rate axis out as
// near-free MaskForRate tasks (src/engine/batch_runner.h).
//
// The registry carries the per-algorithm capability metadata of the paper's
// Table 2 (directed/weighted/unconnected support, prune-rate control,
// weight changes, determinism, complexity) so that `bench_tables` can
// regenerate the table from code.
#ifndef SPARSIFY_SPARSIFIERS_SPARSIFIER_H_
#define SPARSIFY_SPARSIFIERS_SPARSIFIER_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Granularity of prune-rate control (Table 2 "PRC" column).
enum class PruneRateControl {
  kFine,        // any rho in (0, 1) is achievable (up to rounding)
  kConstrained, // controllable via a coarse knob or with an upper limit
  kNone,        // output size fixed by the algorithm (SF, SP-t)
};

/// Static description of a sparsification algorithm (Table 2 row).
struct SparsifierInfo {
  std::string name;        // e.g. "Local Degree"
  std::string short_name;  // e.g. "LD"
  bool supports_directed = false;
  bool supports_weighted = false;
  bool supports_unconnected = false;
  PruneRateControl prune_rate_control = PruneRateControl::kFine;
  bool changes_weights = false;
  bool deterministic = false;
  std::string complexity;  // informal big-O string for the table
  // True for algorithms beyond the paper's Table 2 (this framework's
  // extension set); Table 2 regeneration lists them separately.
  bool extension = false;
};

/// Opaque result of a sparsifier's scoring phase. Each algorithm derives
/// its own state type; states may hold a pointer to the scored graph, so a
/// state must not outlive the Graph it was prepared on.
class ScoreState {
 public:
  virtual ~ScoreState() = default;
};

/// Downcast helper with a diagnosable failure mode: passing one
/// algorithm's state to another algorithm's MaskForRate is a caller bug.
template <typename T>
const T& StateAs(const ScoreState& state, const char* who) {
  const T* typed = dynamic_cast<const T*>(&state);
  if (typed == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                ": ScoreState of the wrong type (state must "
                                "come from this sparsifier's PrepareScores)");
  }
  return *typed;
}

/// Keep-decision for one prune rate. `new_weights` is empty except for
/// weight-changing algorithms (ER-weighted), where it is indexed by the
/// original canonical edge id like Graph::ReweightedSubgraph expects.
struct RateMask {
  std::vector<uint8_t> keep;
  std::vector<double> new_weights;
};

/// ScoreState of the "score every edge once, keep the global top-k" family
/// (RN, FF, GS, SCAN, LSim, TRI, SIMM, ALG). Shared so their MaskForRate
/// is one common KeepTopScoring call.
class EdgeScoreState : public ScoreState {
 public:
  explicit EdgeScoreState(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  const std::vector<double>& scores() const { return scores_; }

 private:
  std::vector<double> scores_;
};

/// ScoreState of algorithms without prune-rate control (SF, SP-t): the
/// keep-mask itself, returned unchanged at every rate.
class FixedMaskState : public ScoreState {
 public:
  explicit FixedMaskState(std::vector<uint8_t> keep)
      : keep_(std::move(keep)) {}
  const std::vector<uint8_t>& keep() const { return keep_; }

 private:
  std::vector<uint8_t> keep_;
};

/// Base class for all registered sparsification algorithms.
class Sparsifier {
 public:
  virtual ~Sparsifier() = default;

  virtual const SparsifierInfo& Info() const = 0;

  /// Phase 1: scores the graph. This is the expensive part and the only
  /// phase that may draw from `rng` (deterministic algorithms ignore it).
  /// The returned state may reference `g`; it must not outlive it.
  ///
  /// Directed inputs to undirected-only algorithms (SF, SP-t, ER, SIMM,
  /// ALG) are the caller's responsibility to symmetrize first (paper
  /// section 3.1); such algorithms throw std::invalid_argument here.
  virtual std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                                    Rng& rng) const = 0;

  /// Phase 2: thresholds `state` at one prune rate. Deterministic, cheap,
  /// and re-entrant — the engine invokes it concurrently for many rates on
  /// one shared state, so implementations must not mutate the state.
  /// `prune_rate` is the requested fraction of edges to REMOVE
  /// (Definition 1) and must be in [0, 1) unless Info() says kNone;
  /// algorithms with coarse control get as close as their knob allows.
  virtual RateMask MaskForRate(const ScoreState& state,
                               double prune_rate) const = 0;

  /// Returns the sparsified graph over the same vertex set: a thin
  /// prepare-once, mask-once wrapper over the two-phase interface.
  /// Virtual only so algorithms with a rate-dependent fast path can skip
  /// the scoring phase for the single-rate call (ER returns `g` unchanged
  /// when the target keeps every edge, without paying for its Laplacian
  /// solves); overrides must stay semantically equal to the default.
  virtual Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const;

  /// Materializes a RateMask against the graph the state was prepared on.
  static Graph Apply(const Graph& g, const RateMask& mask);

  /// Achieved prune rate of `sparsified` relative to `original`.
  static double AchievedPruneRate(const Graph& original,
                                  const Graph& sparsified);
};

/// Short names of all registered sparsifiers. The paper's Table 2 set
/// comes first (RN, KN, RD, LD, SF, SP-3, SP-5, SP-7, FF, LS, GS, LSim,
/// SCAN, ER-uw, ER-w; SP-t registered once per stretch factor, ER once per
/// weight variant), followed by this framework's extensions (TRI, SIMM,
/// ALG, LS-MH) — filter on SparsifierInfo::extension to separate them.
std::vector<std::string> SparsifierNames();

/// Creates a sparsifier by short name (see SparsifierNames). Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<Sparsifier> CreateSparsifier(const std::string& short_name);

/// Info rows for every registered sparsifier (regenerates Table 2).
std::vector<SparsifierInfo> AllSparsifierInfos();

/// Helper shared by edge-scoring sparsifiers: keeps the `target_keep`
/// highest-scoring canonical edges (ties broken by edge id). Returns the
/// keep-mask.
std::vector<uint8_t> KeepTopScoring(const std::vector<double>& scores,
                                    EdgeId target_keep);

/// MaskForRate of the EdgeScoreState family: global top TargetKeepCount
/// edges by score.
RateMask MaskFromScores(const EdgeScoreState& state, double prune_rate);

/// Number of edges to keep for a prune rate: round((1-rho)|E|), clamped to
/// [0, |E|].
EdgeId TargetKeepCount(EdgeId num_edges, double prune_rate);

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_SPARSIFIER_H_
