// Sparsifier interface and registry.
//
// A sparsifier maps a graph G = (V, E) to a subgraph H = (V, E') with
// |E'| = (1 - rho) |E| for a requested prune rate rho (paper Definition 1).
// Vertices are never removed. Implementations receive the target prune rate
// and an Rng; deterministic sparsifiers ignore the Rng.
//
// The registry carries the per-algorithm capability metadata of the paper's
// Table 2 (directed/weighted/unconnected support, prune-rate control,
// weight changes, determinism, complexity) so that `bench_tables` can
// regenerate the table from code.
#ifndef SPARSIFY_SPARSIFIERS_SPARSIFIER_H_
#define SPARSIFY_SPARSIFIERS_SPARSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Granularity of prune-rate control (Table 2 "PRC" column).
enum class PruneRateControl {
  kFine,        // any rho in (0, 1) is achievable (up to rounding)
  kConstrained, // controllable via a coarse knob or with an upper limit
  kNone,        // output size fixed by the algorithm (SF, SP-t)
};

/// Static description of a sparsification algorithm (Table 2 row).
struct SparsifierInfo {
  std::string name;        // e.g. "Local Degree"
  std::string short_name;  // e.g. "LD"
  bool supports_directed = false;
  bool supports_weighted = false;
  bool supports_unconnected = false;
  PruneRateControl prune_rate_control = PruneRateControl::kFine;
  bool changes_weights = false;
  bool deterministic = false;
  std::string complexity;  // informal big-O string for the table
  // True for algorithms beyond the paper's Table 2 (this framework's
  // extension set); Table 2 regeneration lists them separately.
  bool extension = false;
};

/// Base class for all 12 sparsification algorithms.
class Sparsifier {
 public:
  virtual ~Sparsifier() = default;

  virtual const SparsifierInfo& Info() const = 0;

  /// Returns the sparsified graph over the same vertex set. `prune_rate` is
  /// the requested fraction of edges to REMOVE (Definition 1); algorithms
  /// with coarse or no control get as close as their knob allows. Must be
  /// in [0, 1).
  ///
  /// Directed inputs to undirected-only algorithms (SF, SP-t, ER) are the
  /// caller's responsibility to symmetrize first (paper section 3.1); such
  /// algorithms throw std::invalid_argument on directed input.
  virtual Graph Sparsify(const Graph& g, double prune_rate,
                         Rng& rng) const = 0;

  /// Achieved prune rate of `sparsified` relative to `original`.
  static double AchievedPruneRate(const Graph& original,
                                  const Graph& sparsified);
};

/// Short names of all registered sparsifiers. The paper's Table 2 set
/// comes first (RN, KN, RD, LD, SF, SP-3, SP-5, SP-7, FF, LS, GS, LSim,
/// SCAN, ER-uw, ER-w; SP-t registered once per stretch factor, ER once per
/// weight variant), followed by this framework's extensions (TRI, SIMM,
/// ALG, LS-MH) — filter on SparsifierInfo::extension to separate them.
std::vector<std::string> SparsifierNames();

/// Creates a sparsifier by short name (see SparsifierNames). Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<Sparsifier> CreateSparsifier(const std::string& short_name);

/// Info rows for every registered sparsifier (regenerates Table 2).
std::vector<SparsifierInfo> AllSparsifierInfos();

/// Helper shared by edge-scoring sparsifiers: keeps the `target_keep`
/// highest-scoring canonical edges (ties broken by edge id). Returns the
/// keep-mask.
std::vector<uint8_t> KeepTopScoring(const std::vector<double>& scores,
                                    EdgeId target_keep);

/// Number of edges to keep for a prune rate: round((1-rho)|E|), clamped to
/// [0, |E|].
EdgeId TargetKeepCount(EdgeId num_edges, double prune_rate);

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_SPARSIFIER_H_
