#include "src/sparsifiers/minhash.h"

#include <limits>

namespace sparsify {

namespace {

// SplitMix64-style avalanche; (key, salt) -> 64-bit hash.
uint64_t HashWithSalt(uint64_t key, uint64_t salt) {
  uint64_t z = key + salt * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

MinHashSignatures::MinHashSignatures(const Graph& g, int num_hashes,
                                     Rng& rng)
    : num_hashes_(num_hashes), num_vertices_(g.NumVertices()) {
  sig_.assign(static_cast<size_t>(num_hashes) * num_vertices_,
              std::numeric_limits<uint64_t>::max());
  std::vector<uint64_t> salts(num_hashes);
  for (uint64_t& s : salts) s = rng();
  for (int h = 0; h < num_hashes; ++h) {
    uint64_t* row = sig_.data() + static_cast<size_t>(h) * num_vertices_;
    for (NodeId v = 0; v < num_vertices_; ++v) {
      for (NodeId u : g.OutNeighborNodes(v)) {
        uint64_t hv = HashWithSalt(u, salts[h]);
        if (hv < row[v]) row[v] = hv;
      }
    }
  }
}

double MinHashSignatures::EstimateJaccard(NodeId u, NodeId v) const {
  int agree = 0;
  for (int h = 0; h < num_hashes_; ++h) {
    const uint64_t* row = sig_.data() + static_cast<size_t>(h) * num_vertices_;
    // Two empty neighborhoods both hold max(); count as agreement only if
    // at least one is non-empty to avoid 1.0 for isolated pairs.
    if (row[u] == row[v] &&
        row[u] != std::numeric_limits<uint64_t>::max()) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(num_hashes_);
}

std::vector<double> MinHashJaccardEdgeScores(const Graph& g, int num_hashes,
                                             Rng& rng) {
  MinHashSignatures sig(g, num_hashes, rng);
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    scores[e] = sig.EstimateJaccard(ed.u, ed.v);
  }
  return scores;
}

}  // namespace sparsify
