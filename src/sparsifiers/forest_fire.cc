#include "src/sparsifiers/forest_fire.h"

#include <memory>

namespace sparsify {

const SparsifierInfo& ForestFireSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Forest Fire",
      .short_name = "FF",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,  // with seed-sampling caveat (Table 2)
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(r |E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> ForestFireSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  const EdgeId m = g.NumEdges();
  std::vector<double> burns(m, 0.0);
  if (m == 0) return std::make_unique<EdgeScoreState>(std::move(burns));

  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::vector<NodeId> visited_list;
  // Flat frontier (vector + head cursor): identical FIFO pop order to the
  // old std::queue, reused across fires with zero per-fire allocation. The
  // RNG stream is therefore byte-identical to the queue-based version.
  std::vector<NodeId> frontier;
  const uint64_t total_burn_target =
      static_cast<uint64_t>(coverage_ * static_cast<double>(m)) + 1;
  uint64_t total_burns = 0;

  // Cap the number of fires so adversarial inputs (e.g. burn probability
  // near 0) terminate; coverage is then simply lower than requested.
  const uint64_t max_fires =
      50 * (static_cast<uint64_t>(g.NumVertices()) + total_burn_target);
  uint64_t fires = 0;
  while (total_burns < total_burn_target && fires++ < max_fires) {
    NodeId start = static_cast<NodeId>(rng.NextUint(g.NumVertices()));
    frontier.clear();
    frontier.push_back(start);
    visited[start] = 1;
    visited_list.push_back(start);
    // Safety valve: a single fire burns at most |E| edges.
    uint64_t fire_burns = 0;
    for (size_t head = 0; head < frontier.size() && fire_burns < m; ++head) {
      NodeId v = frontier[head];
      auto nodes = g.OutNeighborNodes(v);
      auto edges = g.OutNeighborEdges(v);
      for (size_t i = 0; i < nodes.size(); ++i) {
        NodeId u = nodes[i];
        if (visited[u]) continue;
        if (!rng.NextBernoulli(burn_probability_)) continue;
        burns[edges[i]] += 1.0;
        ++total_burns;
        ++fire_burns;
        visited[u] = 1;
        visited_list.push_back(u);
        frontier.push_back(u);
      }
    }
    for (NodeId v : visited_list) visited[v] = 0;
    visited_list.clear();
  }
  // Random jitter breaks ties among equally-burned edges so repeated runs
  // differ (the algorithm is non-deterministic, Table 2).
  for (double& b : burns) b += 0.5 * rng.NextDouble();
  return std::make_unique<EdgeScoreState>(std::move(burns));
}

RateMask ForestFireSparsifier::MaskForRate(const ScoreState& state,
                                           double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Forest Fire"),
                        prune_rate);
}

}  // namespace sparsify
