// K-Neighbor sparsifier (paper section 2.3.2, Sadhanala et al.): keeps up to
// k incident edges per vertex, chosen with probability proportional to edge
// weight (uniform for unweighted graphs). Guarantees min(k, deg(v)) incident
// edges per vertex, so it preserves connectivity well. Prune-rate control is
// coarse: k is calibrated by binary search.
//
// Two-phase form: PrepareScores draws one Efraimidis-Spirakis key per
// adjacency entry and records, per edge, the best rank it attains in either
// endpoint's key ordering; an edge is kept at knob k iff that rank < k.
// Kept counts per k collapse to a histogram prefix sum, so MaskForRate's
// binary search costs O(log maxdeg) lookups instead of fresh sampling
// passes (the legacy path resampled per probe with forked rngs).
#ifndef SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_
#define SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// ScoreState of K-Neighbor: per-edge best rank and cumulative kept counts.
class KNeighborState : public ScoreState {
 public:
  KNeighborState(std::vector<NodeId> best_rank, std::vector<EdgeId> count_at_k)
      : best_rank_(std::move(best_rank)), count_at_k_(std::move(count_at_k)) {}

  /// best_rank()[e] = min over endpoints of e's 0-based position in the
  /// endpoint's key-descending adjacency ordering.
  const std::vector<NodeId>& best_rank() const { return best_rank_; }

  /// count_at_k()[k] = number of edges kept at knob k (monotone in k);
  /// size MaxDegree() + 1, count_at_k()[0] = 0.
  const std::vector<EdgeId>& count_at_k() const { return count_at_k_; }

 private:
  std::vector<NodeId> best_rank_;
  std::vector<EdgeId> count_at_k_;
};

class KNeighborSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  /// Calibrates k to the target prune rate (binary search over the state's
  /// exact per-k kept counts), then keeps edges with best rank < k.
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

  /// Single pass with a fixed k; exposed for direct use and tests.
  Graph SparsifyWithK(const Graph& g, NodeId k, Rng& rng) const;

 private:
  std::vector<uint8_t> KeepMaskForK(const Graph& g, NodeId k, Rng& rng) const;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_
