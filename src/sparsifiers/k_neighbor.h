// K-Neighbor sparsifier (paper section 2.3.2, Sadhanala et al.): keeps up to
// k incident edges per vertex, chosen with probability proportional to edge
// weight (uniform for unweighted graphs). Guarantees min(k, deg(v)) incident
// edges per vertex, so it preserves connectivity well. Prune-rate control is
// coarse: k is calibrated by binary search.
#ifndef SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_
#define SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class KNeighborSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;

  /// Calibrates k to the target prune rate (binary search, since the kept
  /// edge count is monotone in k), then applies one pass with the best k.
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

  /// Single pass with a fixed k; exposed for direct use and tests.
  Graph SparsifyWithK(const Graph& g, NodeId k, Rng& rng) const;

 private:
  std::vector<uint8_t> KeepMaskForK(const Graph& g, NodeId k, Rng& rng) const;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_K_NEIGHBOR_H_
