#include "src/sparsifiers/sparsifier.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "src/sparsifiers/effective_resistance.h"
#include "src/sparsifiers/extensions.h"
#include "src/sparsifiers/forest_fire.h"
#include "src/sparsifiers/k_neighbor.h"
#include "src/sparsifiers/local_degree.h"
#include "src/sparsifiers/random_sparsifier.h"
#include "src/sparsifiers/rank_degree.h"
#include "src/sparsifiers/similarity.h"
#include "src/sparsifiers/spanning_forest.h"
#include "src/sparsifiers/t_spanner.h"

namespace sparsify {

double Sparsifier::AchievedPruneRate(const Graph& original,
                                     const Graph& sparsified) {
  if (original.NumEdges() == 0) return 0.0;
  return 1.0 - static_cast<double>(sparsified.NumEdges()) /
                   static_cast<double>(original.NumEdges());
}

Graph Sparsifier::Sparsify(const Graph& g, double prune_rate,
                           Rng& rng) const {
  // Validate the rate before paying for the scoring phase (rate-free
  // algorithms ignore it entirely, matching their historical behavior).
  if (Info().prune_rate_control != PruneRateControl::kNone) {
    (void)TargetKeepCount(g.NumEdges(), prune_rate);
  }
  std::unique_ptr<ScoreState> state = PrepareScores(g, rng);
  return Apply(g, MaskForRate(*state, prune_rate));
}

Graph Sparsifier::Apply(const Graph& g, const RateMask& mask) {
  if (!mask.new_weights.empty()) {
    return g.ReweightedSubgraph(mask.keep, mask.new_weights);
  }
  return g.Subgraph(mask.keep);
}

RateMask MaskFromScores(const EdgeScoreState& state, double prune_rate) {
  const std::vector<double>& scores = state.scores();
  EdgeId target =
      TargetKeepCount(static_cast<EdgeId>(scores.size()), prune_rate);
  return {KeepTopScoring(scores, target), {}};
}

EdgeId TargetKeepCount(EdgeId num_edges, double prune_rate) {
  if (prune_rate < 0.0 || prune_rate >= 1.0) {
    throw std::invalid_argument("prune rate must be in [0, 1)");
  }
  double kept = (1.0 - prune_rate) * static_cast<double>(num_edges);
  auto rounded = static_cast<EdgeId>(kept + 0.5);
  return std::min(rounded, num_edges);
}

std::vector<uint8_t> KeepTopScoring(const std::vector<double>& scores,
                                    EdgeId target_keep) {
  const EdgeId m = static_cast<EdgeId>(scores.size());
  std::vector<uint8_t> keep(m, 0);
  if (target_keep == 0) return keep;
  if (target_keep >= m) {
    std::fill(keep.begin(), keep.end(), 1);
    return keep;
  }
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (target_keep - 1),
                   order.end(), [&](EdgeId a, EdgeId b) {
                     return scores[a] != scores[b] ? scores[a] > scores[b]
                                                   : a < b;
                   });
  for (EdgeId i = 0; i < target_keep; ++i) keep[order[i]] = 1;
  return keep;
}

namespace {

using Factory = std::function<std::unique_ptr<Sparsifier>()>;

struct RegistryEntry {
  const char* short_name;
  Factory make;
};

const std::vector<RegistryEntry>& Registry() {
  static const std::vector<RegistryEntry> entries = {
      {"RN", [] { return std::make_unique<RandomSparsifier>(); }},
      {"KN", [] { return std::make_unique<KNeighborSparsifier>(); }},
      {"RD", [] { return std::make_unique<RankDegreeSparsifier>(); }},
      {"LD", [] { return std::make_unique<LocalDegreeSparsifier>(); }},
      {"SF", [] { return std::make_unique<SpanningForestSparsifier>(); }},
      {"SP-3", [] { return std::make_unique<TSpannerSparsifier>(3.0); }},
      {"SP-5", [] { return std::make_unique<TSpannerSparsifier>(5.0); }},
      {"SP-7", [] { return std::make_unique<TSpannerSparsifier>(7.0); }},
      {"FF", [] { return std::make_unique<ForestFireSparsifier>(); }},
      {"LS", [] { return std::make_unique<LSparSparsifier>(); }},
      {"GS", [] { return std::make_unique<GSparSparsifier>(); }},
      {"LSim", [] { return std::make_unique<LocalSimilaritySparsifier>(); }},
      {"SCAN", [] { return std::make_unique<ScanSparsifier>(); }},
      {"ER-uw",
       [] { return std::make_unique<EffectiveResistanceSparsifier>(false); }},
      {"ER-w",
       [] { return std::make_unique<EffectiveResistanceSparsifier>(true); }},
      // Extensions beyond the paper's Table 2 (SparsifierInfo::extension).
      {"TRI", [] { return std::make_unique<TriangleSparsifier>(); }},
      {"SIMM", [] { return std::make_unique<SimmelianSparsifier>(); }},
      {"ALG",
       [] { return std::make_unique<AlgebraicDistanceSparsifier>(); }},
      {"LS-MH",
       [] { return std::make_unique<LSparSparsifier>(/*use_minhash=*/true); }},
  };
  return entries;
}

}  // namespace

std::vector<std::string> SparsifierNames() {
  std::vector<std::string> names;
  for (const RegistryEntry& e : Registry()) names.emplace_back(e.short_name);
  return names;
}

std::unique_ptr<Sparsifier> CreateSparsifier(const std::string& short_name) {
  for (const RegistryEntry& e : Registry()) {
    if (short_name == e.short_name) return e.make();
  }
  throw std::invalid_argument("unknown sparsifier: " + short_name);
}

std::vector<SparsifierInfo> AllSparsifierInfos() {
  std::vector<SparsifierInfo> infos;
  for (const RegistryEntry& e : Registry()) infos.push_back(e.make()->Info());
  return infos;
}

}  // namespace sparsify
