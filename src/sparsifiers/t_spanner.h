// t-Spanner sparsifier (paper section 2.3.6, greedy algorithm of Althöfer et
// al.): produces a subgraph H such that d_H(u, v) <= t * d_G(u, v) for all
// vertex pairs. Edges are scanned in ascending weight order; an edge (u, v)
// is added only if the current spanner distance between u and v exceeds
// t * w(u, v). Undirected only; no prune-rate control. The spanner is built
// once in PrepareScores; MaskForRate returns it unchanged at every rate.
#ifndef SPARSIFY_SPARSIFIERS_T_SPANNER_H_
#define SPARSIFY_SPARSIFIERS_T_SPANNER_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class TSpannerSparsifier : public Sparsifier {
 public:
  /// `t` is the stretch factor (> 1). The paper evaluates t in {3, 5, 7}.
  explicit TSpannerSparsifier(double t);

  const SparsifierInfo& Info() const override;
  /// Throws std::invalid_argument for directed graphs.
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  /// `prune_rate` is ignored (PruneRateControl::kNone).
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

  double stretch() const { return t_; }

 private:
  double t_;
  SparsifierInfo info_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_T_SPANNER_H_
