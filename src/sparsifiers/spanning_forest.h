// Spanning Forest sparsifier (paper section 2.3.5): Kruskal's algorithm,
// one minimum spanning tree per connected component. Undirected only. No
// prune-rate control — the output always has |V| - #components edges — but
// connectivity is preserved exactly. The forest is built once in
// PrepareScores; MaskForRate returns it unchanged at every rate.
#ifndef SPARSIFY_SPARSIFIERS_SPANNING_FOREST_H_
#define SPARSIFY_SPARSIFIERS_SPANNING_FOREST_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class SpanningForestSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  /// Throws std::invalid_argument for directed graphs.
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  /// `prune_rate` is ignored (PruneRateControl::kNone).
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_SPANNING_FOREST_H_
