#include "src/sparsifiers/extensions.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

namespace sparsify {

std::vector<double> TriangleEdgeScores(const Graph& g) {
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    scores[e] = static_cast<double>(SortedIntersectionSize(
        g.OutNeighborNodes(ed.u), g.OutNeighborNodes(ed.v)));
  }
  return scores;
}

// ---------------------------------------------------------------------------
// Triangle

const SparsifierInfo& TriangleSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Triangle (embeddedness)",
      .short_name = "TRI",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E|^{3/2})",
      .extension = true,
  };
  return info;
}

std::unique_ptr<ScoreState> TriangleSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  (void)rng;  // deterministic
  return std::make_unique<EdgeScoreState>(TriangleEdgeScores(g));
}

RateMask TriangleSparsifier::MaskForRate(const ScoreState& state,
                                         double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Triangle"),
                        prune_rate);
}

// ---------------------------------------------------------------------------
// Simmelian backbone

const SparsifierInfo& SimmelianSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Simmelian Backbone",
      .short_name = "SIMM",
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E|^{3/2} + |E| k log k)",
      .extension = true,
  };
  return info;
}

std::unique_ptr<ScoreState> SimmelianSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  (void)rng;  // deterministic
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Simmelian backbone requires an undirected graph; symmetrize first");
  }
  std::vector<double> tri = TriangleEdgeScores(g);

  // Per vertex: neighbors ranked by triangle count (desc), truncated to
  // max_rank_. Edge score = Jaccard overlap of the two endpoints' ranked
  // neighbor prefixes (non-parametric Simmelian backbone).
  std::vector<std::vector<NodeId>> top(g.NumVertices());
  std::vector<std::pair<double, NodeId>> ranked;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nodes = g.OutNeighborNodes(v);
    auto edges = g.OutNeighborEdges(v);
    ranked.clear();
    for (size_t i = 0; i < nodes.size(); ++i) {
      ranked.emplace_back(tri[edges[i]], nodes[i]);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    size_t take = std::min<size_t>(ranked.size(),
                                   static_cast<size_t>(max_rank_));
    top[v].reserve(take);
    for (size_t i = 0; i < take; ++i) top[v].push_back(ranked[i].second);
    std::sort(top[v].begin(), top[v].end());
  }
  std::vector<double> score(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    const std::vector<NodeId>& a = top[ed.u];
    const std::vector<NodeId>& b = top[ed.v];
    size_t i = 0, j = 0, inter = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++inter;
        ++i;
        ++j;
      }
    }
    size_t uni = a.size() + b.size() - inter;
    score[e] = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  }
  return std::make_unique<EdgeScoreState>(std::move(score));
}

RateMask SimmelianSparsifier::MaskForRate(const ScoreState& state,
                                          double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Simmelian Backbone"),
                        prune_rate);
}

// ---------------------------------------------------------------------------
// Algebraic distance

std::vector<double> AlgebraicDistances(const Graph& g, int num_vectors,
                                       int sweeps, Rng& rng) {
  const NodeId n = g.NumVertices();
  std::vector<double> dist(g.NumEdges(), 0.0);
  std::vector<double> x(n), next(n);
  const double omega = 0.5;  // damped Jacobi
  for (int t = 0; t < num_vectors; ++t) {
    for (double& xi : x) xi = rng.NextDouble() - 0.5;
    for (int s = 0; s < sweeps; ++s) {
      for (NodeId v = 0; v < n; ++v) {
        auto nodes = g.OutNeighborNodes(v);
        auto edges = g.OutNeighborEdges(v);
        if (nodes.empty()) {
          next[v] = x[v];
          continue;
        }
        double acc = 0.0, wsum = 0.0;
        for (size_t i = 0; i < nodes.size(); ++i) {
          double w = g.EdgeWeight(edges[i]);
          acc += w * x[nodes[i]];
          wsum += w;
        }
        next[v] = (1.0 - omega) * x[v] + omega * acc / wsum;
      }
      std::swap(x, next);
    }
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const Edge& ed = g.CanonicalEdge(e);
      double d = x[ed.u] - x[ed.v];
      dist[e] += d * d;
    }
  }
  for (double& d : dist) d = std::sqrt(d);
  return dist;
}

const SparsifierInfo& AlgebraicDistanceSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Algebraic Distance",
      .short_name = "ALG",
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(d s |E|)",
      .extension = true,
  };
  return info;
}

std::unique_ptr<ScoreState> AlgebraicDistanceSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Algebraic distance requires an undirected graph; symmetrize first");
  }
  std::vector<double> dist = AlgebraicDistances(g, num_vectors_, sweeps_,
                                                rng);
  // Keep the algebraically CLOSEST edges: score = -distance.
  std::vector<double> score(dist.size());
  for (size_t i = 0; i < dist.size(); ++i) score[i] = -dist[i];
  return std::make_unique<EdgeScoreState>(std::move(score));
}

RateMask AlgebraicDistanceSparsifier::MaskForRate(const ScoreState& state,
                                                  double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Algebraic Distance"),
                        prune_rate);
}

}  // namespace sparsify
