// Forest Fire sparsifier (paper section 2.3.7, after Leskovec et al.'s burn
// process, in the NetworKit edge-scoring formulation): random fires are
// started at random vertices and spread through unburned edges with
// probability p; each edge's score is how often it burned. The highest-
// scoring edges are kept, giving fine-grained prune-rate control subject to
// burn coverage.
//
// The burn process never depended on the prune rate, so it maps directly
// onto the two-phase interface: PrepareScores runs the fires once,
// MaskForRate thresholds the burn counts.
#ifndef SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_
#define SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class ForestFireSparsifier : public Sparsifier {
 public:
  /// `burn_probability`: chance the fire continues across each incident
  /// edge. `coverage`: total burns targeted, as a multiple of |E| (the
  /// paper's burnt ratio r).
  explicit ForestFireSparsifier(double burn_probability = 0.8,
                                double coverage = 3.0)
      : burn_probability_(burn_probability), coverage_(coverage) {}

  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

 private:
  double burn_probability_;
  double coverage_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_
