// Forest Fire sparsifier (paper section 2.3.7, after Leskovec et al.'s burn
// process, in the NetworKit edge-scoring formulation): random fires are
// started at random vertices and spread through unburned edges with
// probability p; each edge's score is how often it burned. The highest-
// scoring edges are kept, giving fine-grained prune-rate control subject to
// burn coverage.
#ifndef SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_
#define SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class ForestFireSparsifier : public Sparsifier {
 public:
  /// `burn_probability`: chance the fire continues across each incident
  /// edge. `coverage`: total burns targeted, as a multiple of |E| (the
  /// paper's burnt ratio r).
  explicit ForestFireSparsifier(double burn_probability = 0.8,
                                double coverage = 3.0)
      : burn_probability_(burn_probability), coverage_(coverage) {}

  const SparsifierInfo& Info() const override;
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;

 private:
  double burn_probability_;
  double coverage_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_FOREST_FIRE_H_
