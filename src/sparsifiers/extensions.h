// Extension sparsifiers beyond the paper's core twelve.
//
// The paper positions its framework as "extendable to future sparsification
// algorithms" (contribution 2); these three exercise that claim and serve
// as ablation subjects. All are registered with `extension = true` so
// Table 2 regeneration can separate them from the paper's set.
//
//   Triangle (TRI):        keeps edges with the highest embeddedness
//                          (number of triangles through the edge). A
//                          simpler cousin of the similarity family.
//   Simmelian backbone (SIMM): Nick et al.'s non-parametric backbone —
//                          neighbors are ranked by edge triangle counts,
//                          and an edge is scored by the overlap of its
//                          endpoints' top-rank neighborhoods (structural
//                          embeddedness, stricter than raw triangles).
//   Algebraic distance (ALG): Chen & Safro's smoothing-based distance —
//                          O(d) Jacobi relaxation sweeps over random test
//                          vectors; edges between algebraically close
//                          vertices score high. A cheap spectral proxy for
//                          the ER family.
//
// All three are pure edge-scoring algorithms: the score vector is computed
// once in PrepareScores and every rate is a global top-k threshold.
#ifndef SPARSIFY_SPARSIFIERS_EXTENSIONS_H_
#define SPARSIFY_SPARSIFIERS_EXTENSIONS_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

/// Embeddedness scores: triangles through each canonical edge.
std::vector<double> TriangleEdgeScores(const Graph& g);

class TriangleSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

class SimmelianSparsifier : public Sparsifier {
 public:
  /// `max_rank`: how many top-triangle neighbors per vertex participate in
  /// the overlap computation.
  explicit SimmelianSparsifier(int max_rank = 10) : max_rank_(max_rank) {}
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

 private:
  int max_rank_;
};

/// Algebraic distances of every canonical edge (smaller = closer). Exposed
/// for tests; the sparsifier keeps edges with the SMALLEST distances.
std::vector<double> AlgebraicDistances(const Graph& g, int num_vectors,
                                       int sweeps, Rng& rng);

class AlgebraicDistanceSparsifier : public Sparsifier {
 public:
  AlgebraicDistanceSparsifier(int num_vectors = 8, int sweeps = 10)
      : num_vectors_(num_vectors), sweeps_(sweeps) {}
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;

 private:
  int num_vectors_;
  int sweeps_;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_EXTENSIONS_H_
