#include "src/sparsifiers/rank_degree.h"

#include <algorithm>
#include <cmath>

namespace sparsify {

const SparsifierInfo& RankDegreeSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Rank Degree",
      .short_name = "RD",
      .supports_directed = true,  // ranks by out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(rho |E| log(rho |E|))",
  };
  return info;
}

Graph RankDegreeSparsifier::Sparsify(const Graph& g, double prune_rate,
                                     Rng& rng) const {
  const EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  EdgeId kept = 0;

  const NodeId n = g.NumVertices();
  if (n == 0 || target == 0) return g.Subgraph(keep);

  NodeId num_seeds =
      std::max<NodeId>(1, static_cast<NodeId>(seed_fraction_ * n));
  std::vector<NodeId> seeds;
  for (uint64_t s : rng.SampleWithoutReplacement(n, num_seeds)) {
    seeds.push_back(static_cast<NodeId>(s));
  }

  std::vector<uint8_t> in_frontier(n, 0);
  for (NodeId s : seeds) in_frontier[s] = 1;
  std::vector<std::pair<NodeId, NodeId>> ranked;  // (degree, neighbor)

  while (kept < target) {
    std::vector<NodeId> next;
    bool progressed = false;
    for (NodeId s : seeds) {
      if (kept >= target) break;
      auto nbrs = g.OutNeighbors(s);
      if (nbrs.empty()) continue;
      ranked.clear();
      for (const AdjEntry& a : nbrs) {
        ranked.emplace_back(g.OutDegree(a.node), a.node);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      NodeId take = std::max<NodeId>(
          1, static_cast<NodeId>(std::ceil(top_fraction_ * ranked.size())));
      for (NodeId i = 0; i < take && kept < target; ++i) {
        NodeId t = ranked[i].second;
        EdgeId e = g.FindEdge(s, t);
        if (e != kInvalidEdge && !keep[e]) {
          keep[e] = 1;
          ++kept;
          progressed = true;
        }
        if (!in_frontier[t]) {
          in_frontier[t] = 1;
          next.push_back(t);
        }
      }
    }
    if (next.empty() || !progressed) {
      // Stuck (e.g. all frontier edges already kept): reseed randomly, and
      // if even a full random reseed cannot progress, fall back to keeping
      // arbitrary unkept edges so the target is always met.
      next.clear();
      std::fill(in_frontier.begin(), in_frontier.end(), 0);
      for (uint64_t s : rng.SampleWithoutReplacement(n, num_seeds)) {
        next.push_back(static_cast<NodeId>(s));
        in_frontier[s] = 1;
      }
      if (!progressed) {
        for (EdgeId e = 0; e < g.NumEdges() && kept < target; ++e) {
          if (!keep[e]) {
            keep[e] = 1;
            ++kept;
          }
        }
        break;
      }
    }
    seeds = std::move(next);
  }
  return g.Subgraph(keep);
}

}  // namespace sparsify
