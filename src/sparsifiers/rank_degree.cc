#include "src/sparsifiers/rank_degree.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace sparsify {

const SparsifierInfo& RankDegreeSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Rank Degree",
      .short_name = "RD",
      .supports_directed = true,  // ranks by out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,
      .complexity = "O(rho |E| log(rho |E|))",
  };
  return info;
}

std::unique_ptr<ScoreState> RankDegreeSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  // Runs the growth with target = |E|: because the process up to its T-th
  // kept edge is identical for every target >= T (control flow and rng
  // draws only diverge after the T-th keep), the prefix of the recorded
  // order is exactly the set a target-T run would keep.
  const EdgeId m = g.NumEdges();
  const EdgeId target = m;
  std::vector<uint8_t> keep(m, 0);
  std::vector<EdgeId> order;
  order.reserve(m);
  EdgeId kept = 0;

  const NodeId n = g.NumVertices();
  if (n == 0 || target == 0) return std::make_unique<KeepOrderState>(order);

  NodeId num_seeds =
      std::max<NodeId>(1, static_cast<NodeId>(seed_fraction_ * n));
  std::vector<NodeId> seeds;
  for (uint64_t s : rng.SampleWithoutReplacement(n, num_seeds)) {
    seeds.push_back(static_cast<NodeId>(s));
  }

  std::vector<uint8_t> in_frontier(n, 0);
  for (NodeId s : seeds) in_frontier[s] = 1;
  std::vector<std::pair<NodeId, NodeId>> ranked;  // (degree, neighbor)

  while (kept < target) {
    std::vector<NodeId> next;
    bool progressed = false;
    for (NodeId s : seeds) {
      if (kept >= target) break;
      auto nbrs = g.OutNeighborNodes(s);
      if (nbrs.empty()) continue;
      ranked.clear();
      for (NodeId t : nbrs) {
        ranked.emplace_back(g.OutDegree(t), t);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      NodeId take = std::max<NodeId>(
          1, static_cast<NodeId>(std::ceil(top_fraction_ * ranked.size())));
      for (NodeId i = 0; i < take && kept < target; ++i) {
        NodeId t = ranked[i].second;
        EdgeId e = g.FindEdge(s, t);
        if (e != kInvalidEdge && !keep[e]) {
          keep[e] = 1;
          order.push_back(e);
          ++kept;
          progressed = true;
        }
        if (!in_frontier[t]) {
          in_frontier[t] = 1;
          next.push_back(t);
        }
      }
    }
    if (next.empty() || !progressed) {
      // Stuck (e.g. all frontier edges already kept): reseed randomly, and
      // if even a full random reseed cannot progress, fall back to keeping
      // arbitrary unkept edges so the target is always met.
      next.clear();
      std::fill(in_frontier.begin(), in_frontier.end(), 0);
      for (uint64_t s : rng.SampleWithoutReplacement(n, num_seeds)) {
        next.push_back(static_cast<NodeId>(s));
        in_frontier[s] = 1;
      }
      if (!progressed) {
        for (EdgeId e = 0; e < m && kept < target; ++e) {
          if (!keep[e]) {
            keep[e] = 1;
            order.push_back(e);
            ++kept;
          }
        }
        break;
      }
    }
    seeds = std::move(next);
  }
  return std::make_unique<KeepOrderState>(std::move(order));
}

RateMask RankDegreeSparsifier::MaskForRate(const ScoreState& state,
                                           double prune_rate) const {
  const auto& keep_order = StateAs<KeepOrderState>(state, "Rank Degree");
  const std::vector<EdgeId>& order = keep_order.order();
  const EdgeId m = static_cast<EdgeId>(order.size());
  EdgeId target = TargetKeepCount(m, prune_rate);
  RateMask mask;
  mask.keep.assign(m, 0);
  for (EdgeId i = 0; i < target; ++i) mask.keep[order[i]] = 1;
  return mask;
}

}  // namespace sparsify
