#include "src/sparsifiers/similarity.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/sparsifiers/minhash.h"
#include "src/sparsifiers/vertex_ranked.h"

namespace sparsify {

namespace {

// Per-vertex Jaccard ranking: the ScoreState shared by L-Spar's exact and
// min-hash variants.
std::unique_ptr<ScoreState> RankByJaccard(const Graph& g,
                                          const std::vector<double>& jac) {
  return std::make_unique<VertexRankedState>(
      g, [&jac](NodeId, NodeId, EdgeId e) { return jac[e]; });
}

}  // namespace

std::vector<double> CommonNeighborCounts(const Graph& g) {
  std::vector<double> counts(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    counts[e] = static_cast<double>(SortedIntersectionSize(
        g.OutNeighborNodes(ed.u), g.OutNeighborNodes(ed.v)));
  }
  return counts;
}

std::vector<double> JaccardEdgeScores(const Graph& g) {
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    auto nu = g.OutNeighborNodes(ed.u);
    auto nv = g.OutNeighborNodes(ed.v);
    size_t inter = SortedIntersectionSize(nu, nv);
    size_t uni = nu.size() + nv.size() - inter;
    scores[e] = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  }
  return scores;
}

std::vector<double> ScanEdgeScores(const Graph& g) {
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    auto nu = g.OutNeighborNodes(ed.u);
    auto nv = g.OutNeighborNodes(ed.v);
    double inter = static_cast<double>(SortedIntersectionSize(nu, nv));
    scores[e] = (inter + 1.0) /
                std::sqrt((nu.size() + 1.0) * (nv.size() + 1.0));
  }
  return scores;
}

// --------------------------------------------------------------------------
// G-Spar

const SparsifierInfo& GSparSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "G-Spar",
      .short_name = "GS",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(k |E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> GSparSparsifier::PrepareScores(const Graph& g,
                                                           Rng& rng) const {
  (void)rng;  // deterministic
  return std::make_unique<EdgeScoreState>(JaccardEdgeScores(g));
}

RateMask GSparSparsifier::MaskForRate(const ScoreState& state,
                                      double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "G-Spar"), prune_rate);
}

// --------------------------------------------------------------------------
// SCAN

const SparsifierInfo& ScanSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "SCAN",
      .short_name = "SCAN",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> ScanSparsifier::PrepareScores(const Graph& g,
                                                          Rng& rng) const {
  (void)rng;  // deterministic
  return std::make_unique<EdgeScoreState>(ScanEdgeScores(g));
}

RateMask ScanSparsifier::MaskForRate(const ScoreState& state,
                                     double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "SCAN"), prune_rate);
}

// --------------------------------------------------------------------------
// L-Spar

const SparsifierInfo& LSparSparsifier::Info() const {
  static const SparsifierInfo exact_info{
      .name = "L-Spar",
      .short_name = "LS",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(k |E|)",
  };
  static const SparsifierInfo minhash_info{
      .name = "L-Spar (min-wise hashing)",
      .short_name = "LS-MH",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,  // hash salts are drawn from the rng
      .complexity = "O(k |E|)",
      .extension = true,
  };
  return use_minhash_ ? minhash_info : exact_info;
}

std::unique_ptr<ScoreState> LSparSparsifier::PrepareScores(const Graph& g,
                                                           Rng& rng) const {
  std::vector<double> jac = use_minhash_
                                ? MinHashJaccardEdgeScores(g, num_hashes_, rng)
                                : JaccardEdgeScores(g);
  return RankByJaccard(g, jac);
}

RateMask LSparSparsifier::MaskForRate(const ScoreState& state,
                                      double prune_rate) const {
  const auto& ranked = StateAs<VertexRankedState>(state, "L-Spar");
  const Graph& g = ranked.graph();
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  double lo = 0.0, hi = 1.0;
  EdgeId clo = 0;
  bool have_clo = false;
  for (int it = 0; it < 40; ++it) {
    double mid = 0.5 * (lo + hi);
    EdgeId count = ranked.CountForExponent(mid);
    if (count >= target) {
      hi = mid;
    } else {
      lo = mid;
      clo = count;
      have_clo = true;
    }
  }
  if (!have_clo) clo = ranked.CountForExponent(lo);
  double c = clo >= target ? lo : hi;
  RateMask mask;
  ranked.FillMaskForExponent(c, &mask.keep);
  return mask;
}

Graph LSparSparsifier::SparsifyWithExponent(const Graph& g, double c) const {
  std::vector<double> jac = JaccardEdgeScores(g);
  auto state = RankByJaccard(g, jac);
  RateMask mask;
  StateAs<VertexRankedState>(*state, "L-Spar")
      .FillMaskForExponent(c, &mask.keep);
  return g.Subgraph(mask.keep);
}

// --------------------------------------------------------------------------
// Local Similarity

const SparsifierInfo& LocalSimilaritySparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Local Similarity",
      .short_name = "LSim",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E| log |E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> LocalSimilaritySparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  (void)rng;  // deterministic
  std::vector<double> jac = JaccardEdgeScores(g);
  // score(e) = max over endpoints v of 1 - log(rank_v(e)) / log(deg(v)):
  // the edge's best local-rank position, normalized per vertex.
  std::vector<double> score(g.NumEdges(), 0.0);
  std::vector<std::pair<double, EdgeId>> ranked;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborEdges(v);
    if (nbrs.empty()) continue;
    ranked.clear();
    for (EdgeId e : nbrs) ranked.emplace_back(jac[e], e);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    double logdeg = std::log(static_cast<double>(nbrs.size()) + 1.0);
    for (size_t r = 0; r < ranked.size(); ++r) {
      double s = 1.0 - std::log(static_cast<double>(r + 1)) / logdeg;
      score[ranked[r].second] = std::max(score[ranked[r].second], s);
    }
  }
  return std::make_unique<EdgeScoreState>(std::move(score));
}

RateMask LocalSimilaritySparsifier::MaskForRate(const ScoreState& state,
                                                double prune_rate) const {
  return MaskFromScores(StateAs<EdgeScoreState>(state, "Local Similarity"),
                        prune_rate);
}

}  // namespace sparsify
