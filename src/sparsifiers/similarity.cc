#include "src/sparsifiers/similarity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/sparsifiers/minhash.h"

namespace sparsify {

namespace {

// Counts |N(u) n N(v)| by linear merge of the sorted adjacency lists.
size_t IntersectionSize(std::span<const AdjEntry> a,
                        std::span<const AdjEntry> b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].node < b[j].node) {
      ++i;
    } else if (a[i].node > b[j].node) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::vector<double> CommonNeighborCounts(const Graph& g) {
  std::vector<double> counts(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    counts[e] = static_cast<double>(
        IntersectionSize(g.OutNeighbors(ed.u), g.OutNeighbors(ed.v)));
  }
  return counts;
}

std::vector<double> JaccardEdgeScores(const Graph& g) {
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    auto nu = g.OutNeighbors(ed.u);
    auto nv = g.OutNeighbors(ed.v);
    size_t inter = IntersectionSize(nu, nv);
    size_t uni = nu.size() + nv.size() - inter;
    scores[e] = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  }
  return scores;
}

std::vector<double> ScanEdgeScores(const Graph& g) {
  std::vector<double> scores(g.NumEdges(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    auto nu = g.OutNeighbors(ed.u);
    auto nv = g.OutNeighbors(ed.v);
    double inter = static_cast<double>(IntersectionSize(nu, nv));
    scores[e] = (inter + 1.0) /
                std::sqrt((nu.size() + 1.0) * (nv.size() + 1.0));
  }
  return scores;
}

// --------------------------------------------------------------------------
// G-Spar

const SparsifierInfo& GSparSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "G-Spar",
      .short_name = "GS",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(k |E|)",
  };
  return info;
}

Graph GSparSparsifier::Sparsify(const Graph& g, double prune_rate,
                                Rng& rng) const {
  (void)rng;  // deterministic
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  return g.Subgraph(KeepTopScoring(JaccardEdgeScores(g), target));
}

// --------------------------------------------------------------------------
// SCAN

const SparsifierInfo& ScanSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "SCAN",
      .short_name = "SCAN",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E|)",
  };
  return info;
}

Graph ScanSparsifier::Sparsify(const Graph& g, double prune_rate,
                               Rng& rng) const {
  (void)rng;  // deterministic
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  return g.Subgraph(KeepTopScoring(ScanEdgeScores(g), target));
}

// --------------------------------------------------------------------------
// L-Spar

const SparsifierInfo& LSparSparsifier::Info() const {
  static const SparsifierInfo exact_info{
      .name = "L-Spar",
      .short_name = "LS",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(k |E|)",
  };
  static const SparsifierInfo minhash_info{
      .name = "L-Spar (min-wise hashing)",
      .short_name = "LS-MH",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = false,  // hash salts are drawn from the rng
      .complexity = "O(k |E|)",
      .extension = true,
  };
  return use_minhash_ ? minhash_info : exact_info;
}

std::vector<uint8_t> LSparSparsifier::KeepMaskForExponent(
    const Graph& g, double c, const std::vector<double>& jac) const {
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  std::vector<std::pair<double, EdgeId>> ranked;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighbors(v);
    if (nbrs.empty()) continue;
    size_t take = static_cast<size_t>(
        std::ceil(std::pow(static_cast<double>(nbrs.size()), c)));
    take = std::clamp<size_t>(take, 1, nbrs.size());
    ranked.clear();
    for (const AdjEntry& a : nbrs) ranked.emplace_back(jac[a.edge], a.edge);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (size_t i = 0; i < take; ++i) keep[ranked[i].second] = 1;
  }
  return keep;
}

Graph LSparSparsifier::SparsifyWithExponent(const Graph& g, double c) const {
  return g.Subgraph(KeepMaskForExponent(g, c, JaccardEdgeScores(g)));
}

Graph LSparSparsifier::Sparsify(const Graph& g, double prune_rate,
                                Rng& rng) const {
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  std::vector<double> jac = use_minhash_
                                ? MinHashJaccardEdgeScores(g, num_hashes_, rng)
                                : JaccardEdgeScores(g);
  auto count_for = [&](double c) -> EdgeId {
    std::vector<uint8_t> keep = KeepMaskForExponent(g, c, jac);
    return static_cast<EdgeId>(
        std::accumulate(keep.begin(), keep.end(), uint64_t{0}));
  };
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 40; ++it) {
    double mid = 0.5 * (lo + hi);
    if (count_for(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  double c = count_for(lo) >= target ? lo : hi;
  return g.Subgraph(KeepMaskForExponent(g, c, jac));
}

// --------------------------------------------------------------------------
// Local Similarity

const SparsifierInfo& LocalSimilaritySparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Local Similarity",
      .short_name = "LSim",
      .supports_directed = true,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kFine,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E| log |E|)",
  };
  return info;
}

Graph LocalSimilaritySparsifier::Sparsify(const Graph& g, double prune_rate,
                                          Rng& rng) const {
  (void)rng;  // deterministic
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  std::vector<double> jac = JaccardEdgeScores(g);
  // score(e) = max over endpoints v of 1 - log(rank_v(e)) / log(deg(v)):
  // the edge's best local-rank position, normalized per vertex.
  std::vector<double> score(g.NumEdges(), 0.0);
  std::vector<std::pair<double, EdgeId>> ranked;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighbors(v);
    if (nbrs.empty()) continue;
    ranked.clear();
    for (const AdjEntry& a : nbrs) ranked.emplace_back(jac[a.edge], a.edge);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    double logdeg = std::log(static_cast<double>(nbrs.size()) + 1.0);
    for (size_t r = 0; r < ranked.size(); ++r) {
      double s = 1.0 - std::log(static_cast<double>(r + 1)) / logdeg;
      score[ranked[r].second] = std::max(score[ranked[r].second], s);
    }
  }
  return g.Subgraph(KeepTopScoring(score, target));
}

}  // namespace sparsify
