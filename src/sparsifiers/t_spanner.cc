#include "src/sparsifiers/t_spanner.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sparsify {

namespace {

// Bounded-distance Dijkstra over the partial spanner held as adjacency
// lists. Returns the distance from src to dst, or +inf if it exceeds
// `bound`. For unweighted graphs this degenerates to a bounded BFS.
double BoundedDistance(
    const std::vector<std::vector<std::pair<NodeId, double>>>& adj,
    NodeId src, NodeId dst, double bound, std::vector<double>* dist,
    std::vector<NodeId>* touched) {
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  (*dist)[src] = 0.0;
  touched->push_back(src);
  pq.emplace(0.0, src);
  double answer = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > (*dist)[v]) continue;
    if (v == dst) {
      answer = d;
      break;
    }
    if (d > bound) break;
    for (auto [w, ew] : adj[v]) {
      double nd = d + ew;
      if (nd < (*dist)[w] && nd <= bound) {
        (*dist)[w] = nd;
        touched->push_back(w);
        pq.emplace(nd, w);
      }
    }
  }
  for (NodeId v : *touched) {
    (*dist)[v] = std::numeric_limits<double>::infinity();
  }
  touched->clear();
  return answer;
}

}  // namespace

TSpannerSparsifier::TSpannerSparsifier(double t) : t_(t) {
  if (t <= 1.0) throw std::invalid_argument("stretch factor must be > 1");
  info_ = SparsifierInfo{
      .name = "t-Spanner (t=" + std::to_string(static_cast<int>(t)) + ")",
      .short_name = "SP-" + std::to_string(static_cast<int>(t)),
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kNone,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|V|^2 log |V|)",
  };
}

const SparsifierInfo& TSpannerSparsifier::Info() const { return info_; }

std::unique_ptr<ScoreState> TSpannerSparsifier::PrepareScores(const Graph& g,
                                                              Rng& rng) const {
  (void)rng;  // deterministic
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "t-Spanner requires an undirected graph; symmetrize first");
  }
  std::vector<EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.EdgeWeight(a) < g.EdgeWeight(b);
  });
  std::vector<std::vector<std::pair<NodeId, double>>> spanner(
      g.NumVertices());
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  std::vector<double> dist(g.NumVertices(),
                           std::numeric_limits<double>::infinity());
  std::vector<NodeId> touched;
  for (EdgeId e : order) {
    const Edge& ed = g.CanonicalEdge(e);
    double bound = t_ * ed.w;
    double d = BoundedDistance(spanner, ed.u, ed.v, bound, &dist, &touched);
    if (d > bound) {
      keep[e] = 1;
      spanner[ed.u].emplace_back(ed.v, ed.w);
      spanner[ed.v].emplace_back(ed.u, ed.w);
    }
  }
  return std::make_unique<FixedMaskState>(std::move(keep));
}

RateMask TSpannerSparsifier::MaskForRate(const ScoreState& state,
                                         double prune_rate) const {
  (void)prune_rate;  // no control (Table 2)
  return {StateAs<FixedMaskState>(state, "t-Spanner").keep(), {}};
}

}  // namespace sparsify
