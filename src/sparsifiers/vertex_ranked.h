// Per-vertex ranked-neighborhood ScoreState, shared by the sparsifiers
// that keep each vertex's top ceil(deg(v)^x) edges under some per-edge
// ranking (Local Degree ranks by neighbor degree, L-Spar by Jaccard
// similarity) and calibrate the exponent x to the requested prune rate.
//
// Scoring sorts every vertex's neighborhood once and converts each edge's
// best rank into an EXPONENT THRESHOLD: an edge at 0-based rank r of a
// degree-d vertex is kept iff d^x > r, i.e. iff x > log(r)/log(d) (rank 0
// is always kept — every vertex keeps at least one edge). The edge's
// threshold is the minimum over its endpoints; sorting the thresholds once
// makes the kept count for any exponent a single binary search, so the
// per-rate exponent calibration costs O(iterations * log |E|) instead of
// ~80 full sort-and-mask passes.
#ifndef SPARSIFY_SPARSIFIERS_VERTEX_RANKED_H_
#define SPARSIFY_SPARSIFIERS_VERTEX_RANKED_H_

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class VertexRankedState : public ScoreState {
 public:
  /// Ranks every vertex's out-neighborhood by `score(v, neighbor, edge)`
  /// descending, ties broken by canonical edge id ascending — the exact
  /// ordering the legacy per-rate implementations produced with their
  /// per-call sorts — then folds the ranks into per-edge exponent
  /// thresholds.
  template <typename ScoreFn>
  VertexRankedState(const Graph& g, ScoreFn&& score) : graph_(&g) {
    const EdgeId m = g.NumEdges();
    // Rank 0 is unconditionally kept: threshold -1 < any x in [0, 1].
    std::vector<double> threshold(m, 2.0);  // 2.0 = not reached yet
    std::vector<std::pair<double, EdgeId>> scratch;
    for (NodeId v = 0; v < g.NumVertices(); ++v) {
      auto nodes = g.OutNeighborNodes(v);
      auto edges = g.OutNeighborEdges(v);
      if (nodes.empty()) continue;
      scratch.clear();
      for (size_t i = 0; i < nodes.size(); ++i) {
        scratch.emplace_back(score(v, nodes[i], edges[i]), edges[i]);
      }
      std::sort(scratch.begin(), scratch.end(),
                [](const auto& a, const auto& b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
                });
      double log_deg = std::log(static_cast<double>(scratch.size()));
      for (size_t r = 0; r < scratch.size(); ++r) {
        // Kept iff deg^x > r: always for r == 0, else iff x exceeds
        // log(r)/log(deg) (r < deg implies deg >= 2 here).
        double t = r == 0
                       ? -1.0
                       : std::log(static_cast<double>(r)) / log_deg;
        EdgeId e = scratch[r].second;
        threshold[e] = std::min(threshold[e], t);
      }
    }
    by_threshold_.resize(m);
    std::iota(by_threshold_.begin(), by_threshold_.end(), 0);
    std::sort(by_threshold_.begin(), by_threshold_.end(),
              [&threshold](EdgeId a, EdgeId b) {
                return threshold[a] != threshold[b]
                           ? threshold[a] < threshold[b]
                           : a < b;
              });
    sorted_thresholds_.resize(m);
    for (EdgeId i = 0; i < m; ++i) {
      sorted_thresholds_[i] = threshold[by_threshold_[i]];
    }
  }

  const Graph& graph() const { return *graph_; }

  /// Number of edges kept at exponent `x` (those whose threshold is
  /// strictly below x): one binary search over the sorted thresholds.
  EdgeId CountForExponent(double x) const {
    return static_cast<EdgeId>(
        std::lower_bound(sorted_thresholds_.begin(),
                         sorted_thresholds_.end(), x) -
        sorted_thresholds_.begin());
  }

  /// Builds the keep-mask for exponent `x` into `keep`.
  void FillMaskForExponent(double x, std::vector<uint8_t>* keep) const {
    keep->assign(sorted_thresholds_.size(), 0);
    EdgeId kept = CountForExponent(x);
    for (EdgeId i = 0; i < kept; ++i) (*keep)[by_threshold_[i]] = 1;
  }

 private:
  const Graph* graph_;
  std::vector<double> sorted_thresholds_;  // ascending per-edge thresholds
  std::vector<EdgeId> by_threshold_;       // edge ids in that order
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_VERTEX_RANKED_H_
