// Random sparsifier (paper section 2.3.1): keeps a uniform random subset of
// edges. The naive baseline every figure includes; preserves relative,
// distribution-based properties (degree distribution, centrality rankings)
// but no absolute ones.
#ifndef SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_
#define SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class RandomSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  Graph Sparsify(const Graph& g, double prune_rate, Rng& rng) const override;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_
