// Random sparsifier (paper section 2.3.1): keeps a uniform random subset of
// edges. The naive baseline every figure includes; preserves relative,
// distribution-based properties (degree distribution, centrality rankings)
// but no absolute ones.
//
// Two-phase form: PrepareScores draws one uniform priority per edge;
// MaskForRate keeps the `target` highest-priority edges. Nested prefixes of
// one priority draw are themselves uniform samples, so all rates of a sweep
// share a single pass over the rng.
#ifndef SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_
#define SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_

#include "src/sparsifiers/sparsifier.h"

namespace sparsify {

class RandomSparsifier : public Sparsifier {
 public:
  const SparsifierInfo& Info() const override;
  std::unique_ptr<ScoreState> PrepareScores(const Graph& g,
                                            Rng& rng) const override;
  RateMask MaskForRate(const ScoreState& state,
                       double prune_rate) const override;
};

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_RANDOM_SPARSIFIER_H_
