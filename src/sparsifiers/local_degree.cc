#include "src/sparsifiers/local_degree.h"

#include <algorithm>
#include <memory>

#include "src/sparsifiers/vertex_ranked.h"

namespace sparsify {

const SparsifierInfo& LocalDegreeSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Local Degree",
      .short_name = "LD",
      .supports_directed = true,  // ranks by out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E| log |E|)",
  };
  return info;
}

std::unique_ptr<ScoreState> LocalDegreeSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  (void)rng;  // deterministic
  return std::make_unique<VertexRankedState>(
      g, [&g](NodeId, NodeId neighbor, EdgeId) {
        return static_cast<double>(g.OutDegree(neighbor));
      });
}

RateMask LocalDegreeSparsifier::MaskForRate(const ScoreState& state,
                                            double prune_rate) const {
  const auto& ranked = StateAs<VertexRankedState>(state, "Local Degree");
  const Graph& g = ranked.graph();
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  // Kept count is monotone nondecreasing in alpha. The endpoint counts are
  // cached as the search observes them instead of being recomputed with
  // two extra full passes afterwards.
  double lo = 0.0, hi = 1.0;
  EdgeId clo = 0, chi = 0;
  bool have_clo = false, have_chi = false;
  for (int it = 0; it < 40; ++it) {
    double mid = 0.5 * (lo + hi);
    EdgeId c = ranked.CountForExponent(mid);
    if (c >= target) {
      hi = mid;
      chi = c;
      have_chi = true;
    } else {
      lo = mid;
      clo = c;
      have_clo = true;
    }
  }
  if (!have_chi) chi = ranked.CountForExponent(hi);
  if (!have_clo) clo = ranked.CountForExponent(lo);
  // Pick the closer endpoint. alpha has a kept-count floor (every vertex
  // keeps >= 1 edge), so high prune rates saturate at the algorithm's
  // maximum prune rate, as the paper notes (section 3.2).
  double alpha =
      (chi >= target && (chi - target) <= (target - std::min(target, clo)))
          ? hi
          : lo;
  if (clo >= target) alpha = lo;
  RateMask mask;
  ranked.FillMaskForExponent(alpha, &mask.keep);
  return mask;
}

Graph LocalDegreeSparsifier::SparsifyWithAlpha(const Graph& g,
                                               double alpha) const {
  Rng unused(0);
  auto state = PrepareScores(g, unused);
  RateMask mask;
  StateAs<VertexRankedState>(*state, "Local Degree")
      .FillMaskForExponent(alpha, &mask.keep);
  return g.Subgraph(mask.keep);
}

}  // namespace sparsify
