#include "src/sparsifiers/local_degree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sparsify {

const SparsifierInfo& LocalDegreeSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Local Degree",
      .short_name = "LD",
      .supports_directed = true,  // ranks by out-degree (Table 2 note *)
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kConstrained,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E| log |E|)",
  };
  return info;
}

std::vector<uint8_t> LocalDegreeSparsifier::KeepMaskForAlpha(
    const Graph& g, double alpha) const {
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  std::vector<std::pair<NodeId, EdgeId>> ranked;  // (neighbor degree, edge)
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighbors(v);
    if (nbrs.empty()) continue;
    size_t take = static_cast<size_t>(
        std::ceil(std::pow(static_cast<double>(nbrs.size()), alpha)));
    take = std::clamp<size_t>(take, 1, nbrs.size());
    ranked.clear();
    for (const AdjEntry& a : nbrs) {
      ranked.emplace_back(g.OutDegree(a.node), a.edge);
    }
    // Deterministic: ties broken by edge id via pair comparison.
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (size_t i = 0; i < take; ++i) keep[ranked[i].second] = 1;
  }
  return keep;
}

Graph LocalDegreeSparsifier::SparsifyWithAlpha(const Graph& g,
                                               double alpha) const {
  return g.Subgraph(KeepMaskForAlpha(g, alpha));
}

Graph LocalDegreeSparsifier::Sparsify(const Graph& g, double prune_rate,
                                      Rng& rng) const {
  (void)rng;  // deterministic
  EdgeId target = TargetKeepCount(g.NumEdges(), prune_rate);
  auto count_for = [&](double alpha) -> EdgeId {
    std::vector<uint8_t> keep = KeepMaskForAlpha(g, alpha);
    return static_cast<EdgeId>(
        std::accumulate(keep.begin(), keep.end(), uint64_t{0}));
  };
  // Kept count is monotone nondecreasing in alpha.
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 40; ++it) {
    double mid = 0.5 * (lo + hi);
    if (count_for(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Pick the closer endpoint. alpha has a kept-count floor (every vertex
  // keeps >= 1 edge), so high prune rates saturate at the algorithm's
  // maximum prune rate, as the paper notes (section 3.2).
  EdgeId chi = count_for(hi);
  EdgeId clo = count_for(lo);
  double alpha =
      (chi >= target && (chi - target) <= (target - std::min(target, clo)))
          ? hi
          : lo;
  if (clo >= target) alpha = lo;
  return SparsifyWithAlpha(g, alpha);
}

}  // namespace sparsify
