#include "src/sparsifiers/spanning_forest.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "src/graph/union_find.h"

namespace sparsify {

const SparsifierInfo& SpanningForestSparsifier::Info() const {
  static const SparsifierInfo info{
      .name = "Spanning Forest",
      .short_name = "SF",
      .supports_directed = false,
      .supports_weighted = true,
      .supports_unconnected = true,
      .prune_rate_control = PruneRateControl::kNone,
      .changes_weights = false,
      .deterministic = true,
      .complexity = "O(|E| log |V|)",
  };
  return info;
}

std::unique_ptr<ScoreState> SpanningForestSparsifier::PrepareScores(
    const Graph& g, Rng& rng) const {
  (void)rng;  // deterministic
  if (g.IsDirected()) {
    throw std::invalid_argument(
        "Spanning Forest requires an undirected graph; symmetrize first");
  }
  // Kruskal: edges by ascending weight (= minimum spanning forest for
  // weighted graphs; arbitrary but deterministic order for unweighted).
  std::vector<EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.EdgeWeight(a) < g.EdgeWeight(b);
  });
  UnionFind uf(g.NumVertices());
  std::vector<uint8_t> keep(g.NumEdges(), 0);
  for (EdgeId e : order) {
    const Edge& ed = g.CanonicalEdge(e);
    if (uf.Union(ed.u, ed.v)) keep[e] = 1;
  }
  return std::make_unique<FixedMaskState>(std::move(keep));
}

RateMask SpanningForestSparsifier::MaskForRate(const ScoreState& state,
                                               double prune_rate) const {
  (void)prune_rate;  // no control (Table 2)
  return {StateAs<FixedMaskState>(state, "Spanning Forest").keep(), {}};
}

}  // namespace sparsify
