// Min-wise-hash approximate Jaccard similarity.
//
// The original L-Spar algorithm (Satuluri et al., SIGMOD'11 — the paper's
// reference [62]) estimates Jaccard similarity with k independent min-wise
// hashes instead of exact set intersection, trading accuracy for a strict
// O(k |E|) bound. Our default L-Spar uses exact sorted-CSR intersection
// (DESIGN.md section 5, decision 2); this module provides the hashing
// estimator so the ablation bench can quantify the difference.
#ifndef SPARSIFY_SPARSIFIERS_MINHASH_H_
#define SPARSIFY_SPARSIFIERS_MINHASH_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Min-wise hash signatures: `num_hashes` x |V| matrix of neighborhood
/// minima under independent hash functions.
class MinHashSignatures {
 public:
  /// Builds signatures of every vertex's out-neighborhood.
  MinHashSignatures(const Graph& g, int num_hashes, Rng& rng);

  /// Estimated Jaccard similarity of the neighborhoods of u and v:
  /// fraction of hash functions whose minima agree.
  double EstimateJaccard(NodeId u, NodeId v) const;

  int num_hashes() const { return num_hashes_; }

 private:
  int num_hashes_;
  NodeId num_vertices_;
  std::vector<uint64_t> sig_;  // row-major: hash h, vertex v
};

/// Approximate Jaccard score of every canonical edge via min-wise hashing.
std::vector<double> MinHashJaccardEdgeScores(const Graph& g, int num_hashes,
                                             Rng& rng);

}  // namespace sparsify

#endif  // SPARSIFY_SPARSIFIERS_MINHASH_H_
