// Registry of the paper's 14 evaluation datasets (Table 3), realized as
// synthetic stand-ins.
//
// The real datasets (SNAP, SuiteSparse, OGB) cannot ship with this offline
// reproduction, so each is replaced by a generator configuration that
// matches its category's structural traits and Table 3 flags (directedness,
// weights, connectivity), scaled to laptop size. The mapping is documented
// in DESIGN.md section 3. Seeds are fixed: `LoadDataset` is deterministic.
#ifndef SPARSIFY_GRAPH_DATASETS_H_
#define SPARSIFY_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace sparsify {

/// Static description of a dataset (the columns of Table 3).
struct DatasetInfo {
  std::string name;
  std::string category;
  bool directed = false;
  bool weighted = false;
  bool connected = false;  // Table 3 "Connected?" flag of the original
  std::string standin;     // generator recipe used as the synthetic stand-in
};

/// A loaded dataset: the graph plus ground-truth communities when the
/// generator provides them (empty otherwise).
struct Dataset {
  DatasetInfo info;
  Graph graph;
  std::vector<int> communities;
};

/// Names of all 14 datasets, in Table 3 order.
std::vector<std::string> DatasetNames();

/// Info for all datasets (for regenerating Table 3).
std::vector<DatasetInfo> AllDatasetInfos();

/// Loads a dataset by name; throws std::invalid_argument for unknown names.
/// Deterministic: repeated calls return identical graphs.
Dataset LoadDataset(const std::string& name);

/// Loads a size-reduced variant for fast tests: same generator family and
/// flags, roughly `scale` times fewer vertices (scale in (0, 1]).
Dataset LoadDatasetScaled(const std::string& name, double scale);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_DATASETS_H_
