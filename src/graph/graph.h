// Core graph data structure: an immutable CSR (compressed sparse row) graph
// with a canonical edge array.
//
// Design notes
// ------------
// Sparsifiers in this library operate on *canonical edges*: for an undirected
// graph each edge {u,v} is stored once (with u <= v) and the CSR adjacency
// stores both directions, each entry carrying the canonical edge id. For a
// directed graph every arc is its own canonical edge. A sparsifier therefore
// produces a keep-mask over canonical edge ids, and `Subgraph()` materializes
// the sparsified graph over the *same vertex set* (the paper studies edge
// sparsification only; vertices are never dropped, section 2.1).
#ifndef SPARSIFY_GRAPH_GRAPH_H_
#define SPARSIFY_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sparsify {

class ThreadPool;

using NodeId = uint32_t;
using EdgeId = uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// A weighted edge as supplied to the builder. For undirected graphs the
/// orientation of (u, v) is irrelevant; the builder canonicalizes to u <= v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable graph in CSR form.
///
/// The CSR is stored structure-of-arrays: neighbor ids (`adj_nodes_`) and
/// canonical edge ids (`adj_edges_`) live in separate parallel arrays, so
/// traversals that only need neighbor ids (BFS, reachability, the pull
/// direction of the hybrid BFS kernel) stream 4-byte entries at twice the
/// cache density of the old {node, edge} pair layout. Loops that need the
/// edge id too (weights, keep-masks) index both spans with one shared
/// cursor.
///
/// Adjacency lists are sorted by neighbor id, which lets similarity
/// sparsifiers (Jaccard / SCAN) compute exact neighborhood intersections by
/// linear merge and `HasEdge` run in O(log deg).
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list.
  ///
  /// Self loops are dropped, and parallel edges are merged (weights summed
  /// for weighted graphs, deduplicated for unweighted). For undirected
  /// graphs, (u,v) and (v,u) are the same edge.
  ///
  /// `num_vertices` fixes the vertex set [0, num_vertices); edges must not
  /// reference ids outside it.
  static Graph FromEdges(NodeId num_vertices, std::vector<Edge> edges,
                         bool directed, bool weighted);

  /// FromEdges with the O(m log m) canonical sort fanned out over `pool`
  /// (stable chunk sorts + an inplace_merge tree). The sort is stable, so
  /// the result is deterministic and independent of the thread count —
  /// the serial fallback (`pool` null or small inputs) is bit-identical
  /// to the parallel path. Ingest builds every full-scale graph through
  /// this entry point.
  static Graph FromEdgesParallel(NodeId num_vertices, std::vector<Edge> edges,
                                 bool directed, bool weighted,
                                 ThreadPool* pool);

  NodeId NumVertices() const { return num_vertices_; }
  /// Number of canonical edges (undirected edges counted once).
  EdgeId NumEdges() const { return static_cast<EdgeId>(edges_.size()); }
  bool IsDirected() const { return directed_; }
  bool IsWeighted() const { return weighted_; }

  /// Out-neighbor ids of `v` (all neighbors for undirected graphs), sorted.
  std::span<const NodeId> OutNeighborNodes(NodeId v) const {
    return {adj_nodes_.data() + out_offsets_[v],
            adj_nodes_.data() + out_offsets_[v + 1]};
  }

  /// Canonical edge ids parallel to OutNeighborNodes(v): entry i is the
  /// edge connecting `v` to OutNeighborNodes(v)[i].
  std::span<const EdgeId> OutNeighborEdges(NodeId v) const {
    return {adj_edges_.data() + out_offsets_[v],
            adj_edges_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbor ids of `v`, sorted. For undirected graphs this is
  /// identical to OutNeighborNodes.
  std::span<const NodeId> InNeighborNodes(NodeId v) const {
    if (!directed_) return OutNeighborNodes(v);
    return {in_adj_nodes_.data() + in_offsets_[v],
            in_adj_nodes_.data() + in_offsets_[v + 1]};
  }

  /// Canonical edge ids parallel to InNeighborNodes(v).
  std::span<const EdgeId> InNeighborEdges(NodeId v) const {
    if (!directed_) return OutNeighborEdges(v);
    return {in_adj_edges_.data() + in_offsets_[v],
            in_adj_edges_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree (total degree for undirected graphs).
  NodeId OutDegree(NodeId v) const {
    return static_cast<NodeId>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  NodeId InDegree(NodeId v) const {
    if (!directed_) return OutDegree(v);
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Maximum out-degree over all vertices (0 for an empty graph). Cached
  /// at BuildCsr time: both KN's per-k calibration and the hybrid BFS
  /// switch heuristic query it per call, and the old O(n) scan showed up
  /// in sweep profiles.
  NodeId MaxDegree() const { return max_degree_; }

  /// The canonical edge with id `e`. For undirected graphs u <= v.
  const Edge& CanonicalEdge(EdgeId e) const { return edges_[e]; }

  /// All canonical edges.
  const std::vector<Edge>& Edges() const { return edges_; }

  /// Weight of canonical edge `e` (1.0 for unweighted graphs).
  double EdgeWeight(EdgeId e) const { return edges_[e].w; }

  /// True if arc u->v exists (any of the two directions for undirected).
  bool HasEdge(NodeId u, NodeId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  /// Canonical edge id of arc u->v, or kInvalidEdge. O(log deg(u)).
  EdgeId FindEdge(NodeId u, NodeId v) const;

  /// Number of vertices with no incident edge (in or out).
  NodeId CountIsolated() const;

  /// Sum of all canonical edge weights.
  double TotalEdgeWeight() const;

  /// Returns the subgraph over the same vertex set keeping exactly the
  /// canonical edges with keep[e] != 0. `keep` must have NumEdges() entries.
  Graph Subgraph(const std::vector<uint8_t>& keep) const;

  /// Like Subgraph, but assigns new weights to the kept edges (used by the
  /// weighted Effective Resistance sparsifier, the only weight-changing
  /// sparsifier in the paper, Table 2). `new_weights` is indexed by the
  /// *original* canonical edge id.
  Graph ReweightedSubgraph(const std::vector<uint8_t>& keep,
                           const std::vector<double>& new_weights) const;

  /// Undirected version of this graph: each arc u->v becomes edge {u,v};
  /// duplicate arcs collapse. No-op copy for already-undirected graphs.
  /// Mirrors the paper's preprocessing step 2 (section 3.1).
  Graph Symmetrized() const;

  /// Copy of this graph with all weights set to 1 and marked unweighted.
  Graph Unweighted() const;

  /// Human-readable one-line summary (for logs and examples).
  std::string Summary() const;

 private:
  /// Builds without NormalizeEdges: `edges` must already be canonical
  /// (sorted by (u, v), deduplicated, loop-free, u <= v when undirected).
  /// Subgraph/ReweightedSubgraph use this — their inputs are filtered
  /// canonical arrays — to keep the per-sweep-cell hot path allocation-
  /// and sort-free.
  static Graph FromCanonicalEdges(NodeId num_vertices,
                                  std::vector<Edge> edges, bool directed,
                                  bool weighted);

  NodeId num_vertices_ = 0;
  bool directed_ = false;
  bool weighted_ = false;
  NodeId max_degree_ = 0;  // cached max out-degree, set by BuildCsr

  std::vector<Edge> edges_;  // canonical edges

  // Out-CSR over both directions for undirected graphs, structure-of-
  // arrays: adj_nodes_[i] / adj_edges_[i] describe the same entry.
  std::vector<uint64_t> out_offsets_;  // size num_vertices_ + 1
  std::vector<NodeId> adj_nodes_;
  std::vector<EdgeId> adj_edges_;

  // In-CSR, populated only for directed graphs.
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_adj_nodes_;
  std::vector<EdgeId> in_adj_edges_;

  void BuildCsr();
};

/// Intersection size |A n B| of two sorted neighbor-id spans by linear
/// merge — the shared-neighbor primitive of the similarity sparsifiers
/// (Jaccard / SCAN / triangle) and the clustering metrics. Spans come
/// from OutNeighborNodes, whose sortedness BuildCsr guarantees.
inline size_t SortedIntersectionSize(std::span<const NodeId> a,
                                     std::span<const NodeId> b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Preprocessing per paper section 3.1: removes isolated vertices and
/// re-indexes the rest to be zero-based and contiguous. Returns the cleaned
/// graph; if `old_to_new` is non-null it receives the vertex mapping
/// (kInvalidNode for removed vertices).
Graph RemoveIsolatedVertices(const Graph& g,
                             std::vector<NodeId>* old_to_new = nullptr);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_GRAPH_H_
