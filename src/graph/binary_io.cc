#include "src/graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sparsify {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'G', 'B'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary graph: truncated input");
  return value;
}

}  // namespace

void WriteBinaryGraphStream(const Graph& g, std::ostream& out) {
  out.write(kMagic, 4);
  WritePod(out, kVersion);
  WritePod<uint8_t>(out, g.IsDirected() ? 1 : 0);
  WritePod<uint8_t>(out, g.IsWeighted() ? 1 : 0);
  WritePod<uint32_t>(out, g.NumVertices());
  WritePod<uint32_t>(out, g.NumEdges());
  // Bulk writes: one staging buffer per section instead of one stream
  // write per field, which dominated wall time at 10^6 edges.
  const auto& edges = g.Edges();
  std::vector<uint32_t> pairs(2 * edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    pairs[2 * e] = edges[e].u;
    pairs[2 * e + 1] = edges[e].v;
  }
  out.write(reinterpret_cast<const char*>(pairs.data()),
            static_cast<std::streamsize>(pairs.size() * sizeof(uint32_t)));
  if (g.IsWeighted()) {
    std::vector<double> weights(edges.size());
    for (size_t e = 0; e < edges.size(); ++e) weights[e] = edges[e].w;
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights.size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("binary graph: write failure");
}

void WriteBinaryGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  WriteBinaryGraphStream(g, out);
}

Graph ReadBinaryGraphStream(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("binary graph: bad magic");
  }
  uint32_t version = ReadPod<uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("binary graph: unsupported version " +
                             std::to_string(version));
  }
  bool directed = ReadPod<uint8_t>(in) != 0;
  bool weighted = ReadPod<uint8_t>(in) != 0;
  uint32_t n = ReadPod<uint32_t>(in);
  uint32_t m = ReadPod<uint32_t>(in);
  // Bulk reads mirroring the bulk writes above; a short read of either
  // section is truncation.
  std::vector<uint32_t> pairs(2 * static_cast<size_t>(m));
  in.read(reinterpret_cast<char*>(pairs.data()),
          static_cast<std::streamsize>(pairs.size() * sizeof(uint32_t)));
  if (m > 0 && !in) throw std::runtime_error("binary graph: truncated input");
  std::vector<Edge> edges(m);
  for (uint32_t e = 0; e < m; ++e) {
    edges[e].u = pairs[2 * e];
    edges[e].v = pairs[2 * e + 1];
    if (edges[e].u >= n || edges[e].v >= n) {
      throw std::runtime_error("binary graph: edge endpoint out of range");
    }
  }
  if (weighted) {
    std::vector<double> weights(m);
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(double)));
    if (m > 0 && !in) {
      throw std::runtime_error("binary graph: truncated input");
    }
    for (uint32_t e = 0; e < m; ++e) edges[e].w = weights[e];
  }
  return Graph::FromEdges(n, std::move(edges), directed, weighted);
}

Graph ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ReadBinaryGraphStream(in);
}

}  // namespace sparsify
