// Compact binary graph serialization.
//
// Text edge lists (io.h) are interoperable with SNAP but slow to parse;
// pipelines that sparsify once and evaluate many metrics benefit from a
// binary cache. Format (little-endian):
//   magic "SPGB" | u32 version | u8 directed | u8 weighted |
//   u32 num_vertices | u32 num_edges |
//   num_edges x { u32 u, u32 v } | (if weighted) num_edges x f64 w
#ifndef SPARSIFY_GRAPH_BINARY_IO_H_
#define SPARSIFY_GRAPH_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"

namespace sparsify {

/// Serializes the canonical edges of `g`. Throws std::runtime_error on
/// write failure.
void WriteBinaryGraphStream(const Graph& g, std::ostream& out);
void WriteBinaryGraph(const Graph& g, const std::string& path);

/// Deserializes; validates magic, version, and structural bounds. Throws
/// std::runtime_error on malformed input (truncation, bad magic, edge ids
/// out of range).
Graph ReadBinaryGraphStream(std::istream& in);
Graph ReadBinaryGraph(const std::string& path);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_BINARY_IO_H_
