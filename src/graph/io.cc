#include "src/graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sparsify {

Graph ReadEdgeListStream(std::istream& in, bool directed, bool weighted) {
  std::vector<Edge> edges;
  NodeId max_id = 0;
  bool any = false;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t u, v;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("bad edge at line " + std::to_string(lineno));
    }
    if (weighted && !(ls >> w)) w = 1.0;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_id = std::max({max_id, static_cast<NodeId>(u),
                       static_cast<NodeId>(v)});
    any = true;
  }
  NodeId n = any ? max_id + 1 : 0;
  return Graph::FromEdges(n, std::move(edges), directed, weighted);
}

Graph ReadEdgeList(const std::string& path, bool directed, bool weighted) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ReadEdgeListStream(in, directed, weighted);
}

void WriteEdgeListStream(const Graph& g, std::ostream& out) {
  out << "# " << g.Summary() << "\n";
  for (const Edge& e : g.Edges()) {
    out << e.u << " " << e.v;
    if (g.IsWeighted()) out << " " << e.w;
    out << "\n";
  }
}

void WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  WriteEdgeListStream(g, out);
}

}  // namespace sparsify
