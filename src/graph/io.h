// Plain-text edge-list I/O, compatible with the SNAP dataset format used by
// the paper ("# comment" header lines, one "src dst [weight]" pair per line).
#ifndef SPARSIFY_GRAPH_IO_H_
#define SPARSIFY_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"

namespace sparsify {

/// Parses an edge list from a stream. Lines starting with '#' or '%' are
/// comments. Each data line is "u v" or "u v w". Vertex ids may be sparse;
/// `num_vertices` is max id + 1. Throws std::runtime_error on parse errors.
Graph ReadEdgeListStream(std::istream& in, bool directed, bool weighted);

/// Reads an edge-list file (see ReadEdgeListStream). Throws on I/O error.
Graph ReadEdgeList(const std::string& path, bool directed, bool weighted);

/// Writes the canonical edges as "u v w" (weighted) or "u v" lines with a
/// header comment describing the graph.
void WriteEdgeListStream(const Graph& g, std::ostream& out);
void WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_IO_H_
