#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace sparsify {

namespace {

// Packs an edge into a 64-bit key for dedup sets.
uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(NodeId n, EdgeId m, bool directed, Rng& rng) {
  if (n < 2) return Graph::FromEdges(n, {}, directed, false);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  uint64_t max_edges =
      directed ? static_cast<uint64_t>(n) * (n - 1)
               : static_cast<uint64_t>(n) * (n - 1) / 2;
  EdgeId target = static_cast<EdgeId>(
      std::min<uint64_t>(m, max_edges));
  while (edges.size() < target) {
    NodeId u = static_cast<NodeId>(rng.NextUint(n));
    NodeId v = static_cast<NodeId>(rng.NextUint(n));
    if (u == v) continue;
    NodeId a = u, b = v;
    if (!directed && a > b) std::swap(a, b);
    if (seen.insert(EdgeKey(a, b)).second) {
      edges.push_back({a, b, 1.0});
    }
  }
  return Graph::FromEdges(n, std::move(edges), directed, false);
}

Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, Rng& rng) {
  if (edges_per_node == 0) throw std::invalid_argument("m must be >= 1");
  NodeId m0 = std::max<NodeId>(edges_per_node, 2);
  if (n <= m0) return ErdosRenyi(n, n * (n - 1) / 4, false, rng);
  std::vector<Edge> edges;
  // Repeated-endpoint list: picking a uniform element is preferential
  // attachment by degree.
  std::vector<NodeId> endpoints;
  // Seed: path over the first m0 vertices.
  for (NodeId v = 1; v < m0; ++v) {
    edges.push_back({static_cast<NodeId>(v - 1), v, 1.0});
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }
  std::unordered_set<NodeId> targets;
  for (NodeId v = m0; v < n; ++v) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      NodeId t = endpoints[rng.NextUint(endpoints.size())];
      targets.insert(t);
    }
    for (NodeId t : targets) {
      edges.push_back({t, v, 1.0});
      endpoints.push_back(t);
      endpoints.push_back(v);
    }
  }
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph WattsStrogatz(NodeId n, NodeId k, double beta, Rng& rng) {
  if (k < 1 || 2 * k >= n) throw std::invalid_argument("need 1 <= k < n/2");
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return false;
    if (a > b) std::swap(a, b);
    if (!seen.insert(EdgeKey(a, b)).second) return false;
    edges.push_back({a, b, 1.0});
    return true;
  };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= k; ++j) {
      NodeId t = static_cast<NodeId>((v + j) % n);
      if (rng.NextBernoulli(beta)) {
        // Rewire: random target not already a neighbor.
        for (int attempt = 0; attempt < 32; ++attempt) {
          NodeId r = static_cast<NodeId>(rng.NextUint(n));
          if (add(v, r)) break;
        }
      } else {
        add(v, t);
      }
    }
  }
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph RMat(int scale, EdgeId m, double a, double b, double c, bool directed,
           Rng& rng) {
  if (scale < 1 || scale > 30) throw std::invalid_argument("bad scale");
  double d = 1.0 - a - b - c;
  if (d < 0) throw std::invalid_argument("a+b+c must be <= 1");
  NodeId n = static_cast<NodeId>(1) << scale;
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(m);
  // Cap attempts so pathological parameters cannot loop forever.
  uint64_t max_attempts = static_cast<uint64_t>(m) * 50;
  for (uint64_t attempt = 0; attempt < max_attempts && edges.size() < m;
       ++attempt) {
    NodeId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    NodeId x = u, y = v;
    if (!directed && x > y) std::swap(x, y);
    if (seen.insert(EdgeKey(x, y)).second) edges.push_back({x, y, 1.0});
  }
  return Graph::FromEdges(n, std::move(edges), directed, false);
}

Graph PlantedPartition(NodeId n, int num_communities, double p_in,
                       double p_out, Rng& rng,
                       std::vector<int>* communities) {
  if (num_communities < 1) throw std::invalid_argument("need >= 1 community");
  std::vector<int> comm(n);
  for (NodeId v = 0; v < n; ++v) {
    comm[v] = static_cast<int>(v % static_cast<NodeId>(num_communities));
  }
  std::vector<Edge> edges;
  // Row-wise geometric skipping: O(#edges) per probability class rather
  // than O(n^2) Bernoulli draws.
  auto add_class = [&](double p, bool intra) {
    if (p <= 0.0) return;
    for (NodeId u = 0; u + 1 < n; ++u) {
      uint64_t row_len = n - 1 - u;  // candidates v in (u, n)
      uint64_t idx = rng.NextGeometric(p);
      while (idx < row_len) {
        NodeId v = static_cast<NodeId>(u + 1 + idx);
        if ((comm[u] == comm[v]) == intra) edges.push_back({u, v, 1.0});
        idx += 1 + rng.NextGeometric(p);
      }
    }
  };
  add_class(p_in, /*intra=*/true);
  add_class(p_out, /*intra=*/false);
  if (communities != nullptr) *communities = std::move(comm);
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph PowerLawConfiguration(NodeId n, double gamma, NodeId min_degree,
                            NodeId max_degree, Rng& rng) {
  if (min_degree < 1 || max_degree < min_degree) {
    throw std::invalid_argument("bad degree bounds");
  }
  // Inverse-CDF Zipf sampling over [min_degree, max_degree].
  std::vector<NodeId> degree(n);
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    double u = rng.NextDouble();
    double lo = std::pow(static_cast<double>(min_degree), 1.0 - gamma);
    double hi = std::pow(static_cast<double>(max_degree) + 1.0, 1.0 - gamma);
    double x = std::pow(lo + u * (hi - lo), 1.0 / (1.0 - gamma));
    degree[v] = std::min<NodeId>(
        max_degree, std::max<NodeId>(min_degree, static_cast<NodeId>(x)));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId i = 0; i < degree[v]; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.push_back(static_cast<NodeId>(0));
  rng.Shuffle(&stubs);
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.push_back({stubs[i], stubs[i + 1], 1.0});
  }
  // FromEdges drops self loops and merges multi-edges.
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph ForestFireModel(NodeId n, double p_forward, bool directed, Rng& rng) {
  std::vector<std::vector<NodeId>> adj(n);  // out-adjacency while growing
  std::vector<Edge> edges;
  // Flat frontier (vector + head cursor): same FIFO pop order as the old
  // std::queue — the burn RNG stream is untouched — reused across
  // ambassadors with zero per-vertex allocation.
  std::vector<NodeId> frontier;
  for (NodeId v = 1; v < n; ++v) {
    NodeId ambassador = static_cast<NodeId>(rng.NextUint(v));
    std::unordered_set<NodeId> visited{v, ambassador};
    frontier.clear();
    frontier.push_back(ambassador);
    edges.push_back({v, ambassador, 1.0});
    adj[v].push_back(ambassador);
    for (size_t head = 0; head < frontier.size(); ++head) {
      NodeId w = frontier[head];
      // Burn a geometric number of w's neighbors.
      uint64_t burn = rng.NextGeometric(std::max(1e-9, 1.0 - p_forward));
      std::vector<NodeId> cands;
      for (NodeId t : adj[w]) {
        if (!visited.contains(t)) cands.push_back(t);
      }
      rng.Shuffle(&cands);
      for (uint64_t i = 0; i < burn && i < cands.size(); ++i) {
        NodeId t = cands[i];
        visited.insert(t);
        edges.push_back({v, t, 1.0});
        adj[v].push_back(t);
        frontier.push_back(t);
      }
    }
  }
  return Graph::FromEdges(n, std::move(edges), directed, false);
}

Graph LfrBenchmark(NodeId n, double degree_gamma, NodeId min_degree,
                   NodeId max_degree, double size_gamma,
                   NodeId min_community, double mu, Rng& rng,
                   std::vector<int>* communities) {
  if (mu < 0.0 || mu > 1.0) throw std::invalid_argument("mu in [0,1]");
  // 1. Power-law community sizes until they cover n vertices.
  auto zipf = [&](NodeId lo, NodeId hi, double gamma) -> NodeId {
    double u = rng.NextDouble();
    double a = std::pow(static_cast<double>(lo), 1.0 - gamma);
    double b = std::pow(static_cast<double>(hi) + 1.0, 1.0 - gamma);
    double x = std::pow(a + u * (b - a), 1.0 / (1.0 - gamma));
    return std::min<NodeId>(hi, std::max<NodeId>(lo,
                                                 static_cast<NodeId>(x)));
  };
  std::vector<int> comm(n);
  {
    NodeId assigned = 0;
    int community = 0;
    NodeId max_community = std::max<NodeId>(min_community, n / 4);
    while (assigned < n) {
      NodeId size = zipf(min_community, max_community, size_gamma);
      size = std::min<NodeId>(size, n - assigned);
      for (NodeId i = 0; i < size; ++i) comm[assigned + i] = community;
      assigned += size;
      ++community;
    }
  }
  // 2. Power-law degrees; split into intra and inter stubs by mu.
  std::vector<NodeId> intra_stub, inter_stub;
  int num_comms = comm.empty() ? 0 : comm[n - 1] + 1;
  std::vector<std::vector<NodeId>> intra_by_comm(num_comms);
  for (NodeId v = 0; v < n; ++v) {
    NodeId degree = zipf(min_degree, max_degree, degree_gamma);
    for (NodeId i = 0; i < degree; ++i) {
      if (rng.NextDouble() < mu) {
        inter_stub.push_back(v);
      } else {
        intra_by_comm[comm[v]].push_back(v);
      }
    }
  }
  // 3. Stub matching: intra within each community, inter globally.
  std::vector<Edge> edges;
  auto match = [&](std::vector<NodeId>& stubs) {
    rng.Shuffle(&stubs);
    if (stubs.size() % 2 == 1) stubs.pop_back();
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      edges.push_back({stubs[i], stubs[i + 1], 1.0});
    }
  };
  for (std::vector<NodeId>& stubs : intra_by_comm) match(stubs);
  match(inter_stub);
  if (communities != nullptr) *communities = std::move(comm);
  // FromEdges drops self loops and merges multi-edges.
  return Graph::FromEdges(n, std::move(edges), false, false);
}

Graph WithRandomWeights(const Graph& g, double max_weight, Rng& rng) {
  std::vector<Edge> es = g.Edges();
  for (Edge& e : es) {
    // Zipf-ish skew: most weights small, a few large.
    double u = rng.NextDouble();
    e.w = 1.0 + std::floor(std::pow(u, 3.0) * (max_weight - 1.0));
  }
  return Graph::FromEdges(g.NumVertices(), std::move(es), g.IsDirected(),
                          /*weighted=*/true);
}

}  // namespace sparsify
