#include "src/graph/traversal.h"

#include <algorithm>
#include <functional>

namespace sparsify {

namespace {

// GAP direction-switch parameters (Beamer et al.). Push switches to pull
// when the frontier's out-edge count exceeds 1/kAlpha of the unexplored
// edges; pull returns to push once the frontier shrinks below n/kBeta.
constexpr uint64_t kAlpha = 14;
constexpr uint64_t kBeta = 24;

}  // namespace

void TraversalScratch::Begin(NodeId n, bool weighted) {
  if (stamp_.size() < static_cast<size_t>(n)) {
    stamp_.resize(n, 0);
    level_.resize(n, 0);
  }
  if (weighted && dist_.size() < static_cast<size_t>(n)) {
    dist_.resize(n, 0.0);
  }
  weighted_ = weighted;
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped (once per ~4 billion traversals): refill the
    // stamps so stale marks from 4 billion traversals ago cannot alias.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  frontier_.clear();
  next_.clear();
}

void TraversalScratch::EnsureBrandes(NodeId n) {
  if (sigma_.size() < static_cast<size_t>(n)) {
    // New entries start zero; users restore the all-zero invariant for
    // the entries they touch, so this refill happens only on growth.
    sigma_.resize(n, 0.0);
    delta_.resize(n, 0.0);
  }
  order_.clear();
}

TraversalSummary BfsLevels(const Graph& g, NodeId src,
                           TraversalScratch& s, BfsMode mode) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/false);
  TraversalSummary sum;
  s.MarkReached(src);
  s.level_[src] = 0;
  sum.reached = 1;
  s.frontier_.push_back(src);

  // Beamer's m_u estimate: out-edges of still-undiscovered vertices. Each
  // vertex's degree is subtracted exactly once, at discovery time (in
  // either direction), so the push->pull trigger below compares the
  // frontier's edges (m_f) against the unexplored edges without drift or
  // double counting across direction switches.
  const uint64_t total_arcs =
      g.IsDirected() ? g.NumEdges() : 2ull * g.NumEdges();
  uint64_t scout = g.OutDegree(src);  // out-edges of the frontier
  uint64_t edges_to_check = total_arcs - std::min<uint64_t>(total_arcs, scout);
  uint32_t depth = 0;                    // level of the current frontier
  uint32_t max_depth = 0;
  NodeId min_at_max = src;
  size_t frontier_count = 1;

  while (frontier_count > 0) {
    if (mode == BfsMode::kHybrid && scout > edges_to_check / kAlpha) {
      // Pull (bottom-up) rounds: every unreached vertex scans its
      // in-neighbors for one parent on the current level, early-exiting
      // at the first hit. On low-diameter graphs the giant middle levels
      // settle after probing a small fraction of the edges.
      NodeId awake = 0;
      do {
        ++sum.pull_rounds;
        awake = 0;
        uint64_t awake_scout = 0;
        NodeId min_new = kInvalidNode;
        for (NodeId v = 0; v < n; ++v) {
          if (s.Reached(v)) continue;
          for (NodeId u : g.InNeighborNodes(v)) {
            if (s.stamp_[u] == s.epoch_ && s.level_[u] == depth) {
              s.MarkReached(v);
              s.level_[v] = depth + 1;
              ++awake;
              awake_scout += g.OutDegree(v);
              min_new = std::min(min_new, v);
              break;
            }
          }
        }
        edges_to_check -= std::min(edges_to_check, awake_scout);
        if (awake > 0) {
          ++depth;
          sum.reached += awake;
          max_depth = depth;
          min_at_max = min_new;
        }
      } while (awake > 0 && static_cast<uint64_t>(awake) * kBeta >
                                static_cast<uint64_t>(n));
      if (awake == 0) break;  // frontier died inside the pull rounds
      // Frontier shrank below n/kBeta: rebuild the explicit frontier
      // (every vertex on the current level) and resume pushing.
      s.frontier_.clear();
      scout = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (s.Reached(v) && s.level_[v] == depth) {
          s.frontier_.push_back(v);
          scout += g.OutDegree(v);
        }
      }
      frontier_count = s.frontier_.size();
    } else {
      // Push (top-down) round.
      s.next_.clear();
      uint64_t next_scout = 0;
      NodeId min_new = kInvalidNode;
      for (NodeId v : s.frontier_) {
        for (NodeId u : g.OutNeighborNodes(v)) {
          if (!s.Reached(u)) {
            s.MarkReached(u);
            s.level_[u] = depth + 1;
            s.next_.push_back(u);
            next_scout += g.OutDegree(u);
            min_new = std::min(min_new, u);
          }
        }
      }
      std::swap(s.frontier_, s.next_);
      frontier_count = s.frontier_.size();
      scout = next_scout;
      edges_to_check -= std::min(edges_to_check, next_scout);
      if (frontier_count > 0) {
        ++depth;
        sum.reached += static_cast<NodeId>(frontier_count);
        max_depth = depth;
        min_at_max = min_new;
      }
    }
  }
  sum.max_dist = static_cast<double>(max_depth);
  sum.farthest = max_depth > 0 ? min_at_max : src;
  return sum;
}

TraversalSummary DijkstraDistances(const Graph& g, NodeId src,
                                   TraversalScratch& s) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/true);
  TraversalSummary sum;
  s.MarkReached(src);
  s.dist_[src] = 0.0;
  sum.reached = 1;
  s.heap_.clear();
  s.heap_.emplace_back(0.0, src);
  double max_dist = 0.0;
  NodeId farthest = src;
  const auto cmp = std::greater<std::pair<double, NodeId>>();
  while (!s.heap_.empty()) {
    std::pop_heap(s.heap_.begin(), s.heap_.end(), cmp);
    auto [d, v] = s.heap_.back();
    s.heap_.pop_back();
    if (d > s.dist_[v]) continue;  // stale heap entry
    if (v != src) {
      // Lowest-id argmax, matching an ascending strict-`>` scan.
      if (d > max_dist) {
        max_dist = d;
        farthest = v;
      } else if (d == max_dist && max_dist > 0.0 && v < farthest) {
        farthest = v;
      }
    }
    auto nodes = g.OutNeighborNodes(v);
    auto edges = g.OutNeighborEdges(v);
    for (size_t i = 0; i < nodes.size(); ++i) {
      NodeId u = nodes[i];
      double nd = d + g.EdgeWeight(edges[i]);
      if (!s.Reached(u)) {
        s.MarkReached(u);
        ++sum.reached;
      } else if (nd >= s.dist_[u]) {
        continue;
      }
      s.dist_[u] = nd;
      s.heap_.emplace_back(nd, u);
      std::push_heap(s.heap_.begin(), s.heap_.end(), cmp);
    }
  }
  sum.max_dist = max_dist;
  sum.farthest = farthest;
  return sum;
}

TraversalSummary Traverse(const Graph& g, NodeId src,
                          TraversalScratch& scratch, BfsMode mode) {
  return g.IsWeighted() ? DijkstraDistances(g, src, scratch)
                        : BfsLevels(g, src, scratch, mode);
}

std::vector<double> ShortestPathDistances(const Graph& g, NodeId src,
                                          TraversalScratch& scratch) {
  Traverse(g, src, scratch);
  const NodeId n = g.NumVertices();
  std::vector<double> dist(n);
  for (NodeId v = 0; v < n; ++v) dist[v] = scratch.DistanceOf(v);
  return dist;
}

TraversalScratch& LocalTraversalScratch() {
  static thread_local TraversalScratch scratch;
  return scratch;
}

}  // namespace sparsify
