#include "src/graph/traversal.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "src/obs/counters.h"
#include "src/util/cancel.h"

namespace sparsify {

namespace {

// Kernel counters, bumped ONCE at the end of each call (never inside the
// round loops — the hot path stays untouched). Function-local statics
// would also work, but a single struct keeps the registry lookups (which
// allocate on first use) off the per-call path entirely, preserving the
// zero-alloc gate on warm calls.
struct TraversalObs {
  obs::Counter& bfs_calls = obs::GetCounter("traversal.bfs_calls");
  obs::Counter& push_rounds = obs::GetCounter("traversal.push_rounds");
  obs::Counter& pull_rounds = obs::GetCounter("traversal.pull_rounds");
  obs::Histogram& frontier_peak =
      obs::GetHistogram("traversal.frontier_peak");
  obs::Counter& sssp_heap_calls = obs::GetCounter("traversal.sssp_heap_calls");
  obs::Counter& sssp_delta_calls =
      obs::GetCounter("traversal.sssp_delta_calls");
  obs::Counter& sssp_bucket_advances =
      obs::GetCounter("traversal.sssp_bucket_advances");
};

TraversalObs& GetTraversalObs() {
  static TraversalObs* t = new TraversalObs();
  return *t;
}

// GAP direction-switch parameters (Beamer et al.). Push switches to pull
// when the frontier's out-edge count exceeds 1/kAlpha of the PULL-side
// unexplored arcs (in-arcs of undiscovered vertices — what a pull round
// actually scans); pull returns to push once the frontier shrinks below
// n/kBeta. kGamma is the frontier-size floor: a pull round pays a fixed
// per-undiscovered-vertex scan cost, so the switch additionally requires
// the frontier's out-arc count to be at least 1/kGamma of the
// undiscovered vertex count.
constexpr uint64_t kAlpha = 14;
constexpr uint64_t kBeta = 24;
constexpr uint64_t kGamma = 4;

// Delta-stepping eligibility: fall back to the binary heap when the
// max/mean weight ratio needs more cyclic buckets than this (heavy-tailed
// enough that bucket advances would dominate).
constexpr uint64_t kMaxBuckets = 1 << 12;

inline bool TestBit(const std::vector<uint64_t>& bits, NodeId v) {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}

inline void SetBit(std::vector<uint64_t>& bits, NodeId v) {
  bits[v >> 6] |= uint64_t{1} << (v & 63);
}

}  // namespace

void TraversalScratch::Begin(NodeId n, bool weighted) {
  if (stamp_.size() < static_cast<size_t>(n)) {
    stamp_.resize(n, 0);
    level_.resize(n, 0);
  }
  if (weighted && dist_.size() < static_cast<size_t>(n)) {
    dist_.resize(n, 0.0);
  }
  weighted_ = weighted;
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped (once per ~4 billion traversals): refill the
    // stamps so stale marks from 4 billion traversals ago cannot alias,
    // and park bits_epoch_ on 0 (epoch_ restarts at 1, so the bitmap can
    // never alias as valid).
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
    bits_epoch_ = 0;
  }
  frontier_.clear();
  next_.clear();
}

void TraversalScratch::EnsureBrandes(NodeId n) {
  if (sigma_.size() < static_cast<size_t>(n)) {
    // New entries start zero; users restore the all-zero invariant for
    // the entries they touch, so this refill happens only on growth.
    sigma_.resize(n, 0.0);
    delta_.resize(n, 0.0);
  }
  order_.clear();
}

TraversalSummary BfsLevels(const Graph& g, NodeId src,
                           TraversalScratch& s, BfsMode mode) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/false);
  TraversalSummary sum;
  s.MarkReached(src);
  s.level_[src] = 0;
  sum.reached = 1;
  s.frontier_.push_back(src);

  // Pull-cost proxy: IN-arcs of still-undiscovered vertices. For
  // undirected graphs InDegree == OutDegree, so this is exactly Beamer's
  // m_u estimate and the trigger below is unchanged from the classic
  // kernel. For directed graphs it measures what a pull round actually
  // scans: vertices that are never reachable keep their in-arcs in the
  // denominator forever, so a push->pull switch that could only waste
  // work stays suppressed (the committed web-Google regression). Each
  // vertex's in-degree is subtracted exactly once, at discovery time (in
  // either direction), so the estimate never drifts across switches.
  const uint64_t total_arcs =
      g.IsDirected() ? g.NumEdges() : 2ull * g.NumEdges();
  uint64_t scout = g.OutDegree(src);  // out-edges of the frontier
  uint64_t pull_arcs =
      total_arcs - std::min<uint64_t>(total_arcs, g.InDegree(src));
  uint32_t depth = 0;                    // level of the current frontier
  uint32_t max_depth = 0;
  NodeId min_at_max = src;
  size_t frontier_count = 1;
  size_t peak_frontier = 1;
  uint64_t push_rounds = 0;
  const size_t words = (static_cast<size_t>(n) + 63) / 64;

  while (frontier_count > 0) {
    // Cooperative cancellation at round granularity: one relaxed load
    // per level when no token is armed, so the per-edge loops below stay
    // untouched (the zero-alloc + hybrid-gate benches measure this path).
    SPARSIFY_CHECK_CANCELLED();
    // Switch to pull only when the frontier's out-arc mass exceeds
    // 1/kAlpha of the pull-side scan cost AND the frontier is not tiny
    // relative to the undiscovered region (a pull round pays a fixed
    // per-undiscovered-vertex cost regardless of yield).
    const uint64_t undiscovered = static_cast<uint64_t>(n) - sum.reached;
    const bool pull_pays =
        scout > pull_arcs / kAlpha && scout * kGamma >= undiscovered;
    if (mode == BfsMode::kHybrid && pull_pays) {
      // Pull (bottom-up) rounds: every unreached vertex scans its
      // in-neighbors for a discovered parent, early-exiting at the first
      // hit. On low-diameter graphs the giant middle levels settle after
      // probing a small fraction of the edges. The unreached set is a
      // bitmap: fully-discovered words are skipped 64 vertices at a
      // time, and the parent test is a single bit probe — any discovered
      // in-neighbor of a still-undiscovered vertex is at level == depth
      // exactly (one at level < depth would already have discovered it),
      // so no level load is needed.
      if (s.bits_epoch_ != s.epoch_) {
        // First pull switch of this traversal: stamp the discovered set
        // into the bitmap once, then maintain it incrementally.
        if (s.visited_bits_.size() < words) s.visited_bits_.resize(words);
        std::fill_n(s.visited_bits_.begin(), words, 0);
        for (NodeId v = 0; v < n; ++v) {
          if (s.Reached(v)) SetBit(s.visited_bits_, v);
        }
        s.bits_epoch_ = s.epoch_;
      }
      NodeId awake = 0;
      uint64_t awake_scout = 0;
      do {
        SPARSIFY_CHECK_CANCELLED();  // pull rounds are levels too
        ++sum.pull_rounds;
        awake = 0;
        awake_scout = 0;
        uint64_t awake_in = 0;
        NodeId min_new = kInvalidNode;
        s.next_.clear();
        for (size_t w = 0; w < words; ++w) {
          uint64_t todo = ~s.visited_bits_[w];
          if (w == words - 1 && (n & 63)) {
            todo &= (uint64_t{1} << (n & 63)) - 1;  // mask past-n tail bits
          }
          while (todo != 0) {
            const NodeId v =
                static_cast<NodeId>((w << 6) + std::countr_zero(todo));
            todo &= todo - 1;
            for (NodeId u : g.InNeighborNodes(v)) {
              if (TestBit(s.visited_bits_, u)) {
                s.MarkReached(v);
                s.level_[v] = depth + 1;
                s.next_.push_back(v);
                ++awake;
                awake_scout += g.OutDegree(v);
                awake_in += g.InDegree(v);
                min_new = std::min(min_new, v);
                break;
              }
            }
          }
        }
        // Commit this round's discoveries only after the scan: a bit set
        // mid-round would let a vertex adopt a same-round sibling as
        // parent and land one level too deep.
        for (NodeId v : s.next_) SetBit(s.visited_bits_, v);
        pull_arcs -= std::min(pull_arcs, awake_in);
        if (awake > 0) {
          ++depth;
          sum.reached += awake;
          max_depth = depth;
          min_at_max = min_new;
          peak_frontier = std::max(peak_frontier, static_cast<size_t>(awake));
        }
      } while (awake > 0 && static_cast<uint64_t>(awake) * kBeta >
                                static_cast<uint64_t>(n));
      if (awake == 0) break;  // frontier died inside the pull rounds
      // Frontier shrank below n/kBeta: next_ already holds exactly the
      // last pull level, so resuming push is a swap, not an O(n) rescan.
      std::swap(s.frontier_, s.next_);
      frontier_count = s.frontier_.size();
      peak_frontier = std::max(peak_frontier, frontier_count);
      scout = awake_scout;
    } else {
      // Push (top-down) round.
      ++push_rounds;
      s.next_.clear();
      uint64_t next_scout = 0;
      uint64_t next_in = 0;
      NodeId min_new = kInvalidNode;
      for (NodeId v : s.frontier_) {
        for (NodeId u : g.OutNeighborNodes(v)) {
          if (!s.Reached(u)) {
            s.MarkReached(u);
            s.level_[u] = depth + 1;
            s.next_.push_back(u);
            next_scout += g.OutDegree(u);
            next_in += g.InDegree(u);
            min_new = std::min(min_new, u);
          }
        }
      }
      if (s.bits_epoch_ == s.epoch_) {
        // Keep the pull bitmap coherent across push rounds between pulls.
        for (NodeId u : s.next_) SetBit(s.visited_bits_, u);
      }
      std::swap(s.frontier_, s.next_);
      frontier_count = s.frontier_.size();
      peak_frontier = std::max(peak_frontier, frontier_count);
      scout = next_scout;
      pull_arcs -= std::min(pull_arcs, next_in);
      if (frontier_count > 0) {
        ++depth;
        sum.reached += static_cast<NodeId>(frontier_count);
        max_depth = depth;
        min_at_max = min_new;
      }
    }
  }
  sum.max_dist = static_cast<double>(max_depth);
  sum.farthest = max_depth > 0 ? min_at_max : src;
  TraversalObs& tobs = GetTraversalObs();
  tobs.bfs_calls.Add();
  tobs.push_rounds.Add(push_rounds);
  tobs.pull_rounds.Add(sum.pull_rounds);
  tobs.frontier_peak.Record(peak_frontier);
  return sum;
}

namespace {

// Classic lazy-deletion binary-heap Dijkstra (the pre-delta-stepping
// kernel, kept verbatim as the fallback and differential baseline).
TraversalSummary DijkstraBinaryHeap(const Graph& g, NodeId src,
                                    TraversalScratch& s) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/true);
  TraversalSummary sum;
  s.MarkReached(src);
  s.dist_[src] = 0.0;
  sum.reached = 1;
  s.heap_.clear();
  s.heap_.emplace_back(0.0, src);
  double max_dist = 0.0;
  NodeId farthest = src;
  const auto cmp = std::greater<std::pair<double, NodeId>>();
  uint32_t pops = 0;  // cancellation poll cadence: every 4096 pops
  while (!s.heap_.empty()) {
    if ((++pops & 4095u) == 0) SPARSIFY_CHECK_CANCELLED();
    std::pop_heap(s.heap_.begin(), s.heap_.end(), cmp);
    auto [d, v] = s.heap_.back();
    s.heap_.pop_back();
    if (d > s.dist_[v]) continue;  // stale heap entry
    if (v != src) {
      // Lowest-id argmax, matching an ascending strict-`>` scan.
      if (d > max_dist) {
        max_dist = d;
        farthest = v;
      } else if (d == max_dist && max_dist > 0.0 && v < farthest) {
        farthest = v;
      }
    }
    auto nodes = g.OutNeighborNodes(v);
    auto edges = g.OutNeighborEdges(v);
    for (size_t i = 0; i < nodes.size(); ++i) {
      NodeId u = nodes[i];
      double nd = d + g.EdgeWeight(edges[i]);
      if (!s.Reached(u)) {
        s.MarkReached(u);
        ++sum.reached;
      } else if (nd >= s.dist_[u]) {
        continue;
      }
      s.dist_[u] = nd;
      s.heap_.emplace_back(nd, u);
      std::push_heap(s.heap_.begin(), s.heap_.end(), cmp);
    }
  }
  sum.max_dist = max_dist;
  sum.farthest = farthest;
  TraversalObs& tobs = GetTraversalObs();
  tobs.sssp_heap_calls.Add();
  return sum;
}

// Delta-stepping bucket-queue Dijkstra (Meyer & Sanders). Buckets are a
// cyclic array of width `delta` (the mean edge weight — Dial's algorithm
// when weights are uniform); entries are bare vertex ids with lazy
// deletion: an entry popped from bucket k whose CURRENT distance no
// longer maps to bucket k is stale and skipped. While bucket k drains,
// every relaxation candidate is d + w >= k*delta, so nothing is ever
// inserted below the bucket being drained and vertices settle in bucket
// order. Distances are bit-identical to the binary heap: both converge to
// the unique fixed point dist(u) = min over in-edges (dist(p) + w), and
// the surviving value is the min over the same candidate sums (every
// parent is eventually processed at its final distance, and larger
// intermediate candidates are overwritten by strict improvement).
TraversalSummary DijkstraDeltaStepping(const Graph& g, NodeId src,
                                       TraversalScratch& s, double inv_delta,
                                       uint64_t num_buckets) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/true);
  TraversalSummary sum;
  s.MarkReached(src);
  s.dist_[src] = 0.0;
  sum.reached = 1;
  s.reached_order_.clear();
  s.reached_order_.push_back(src);
  if (s.buckets_.size() < num_buckets) s.buckets_.resize(num_buckets);
  for (uint64_t b = 0; b < num_buckets; ++b) s.buckets_[b].clear();
  s.buckets_[0].push_back(src);
  size_t pending = 1;
  uint64_t k = 0;  // absolute index of the bucket being drained
  uint64_t bucket_advances = 0;
  uint32_t pops = 0;  // cancellation poll cadence: every 4096 pops
  while (pending > 0) {
    SPARSIFY_CHECK_CANCELLED();  // once per bucket advance
    auto& bucket = s.buckets_[k % num_buckets];
    while (!bucket.empty()) {
      if ((++pops & 4095u) == 0) SPARSIFY_CHECK_CANCELLED();
      const NodeId v = bucket.back();
      bucket.pop_back();
      --pending;
      const double d = s.dist_[v];
      if (static_cast<uint64_t>(d * inv_delta) != k) continue;  // stale
      auto nodes = g.OutNeighborNodes(v);
      auto edges = g.OutNeighborEdges(v);
      for (size_t i = 0; i < nodes.size(); ++i) {
        const NodeId u = nodes[i];
        const double nd = d + g.EdgeWeight(edges[i]);
        if (!s.Reached(u)) {
          s.MarkReached(u);
          ++sum.reached;
          s.reached_order_.push_back(u);
        } else if (nd >= s.dist_[u]) {
          continue;
        }
        s.dist_[u] = nd;
        s.buckets_[static_cast<uint64_t>(nd * inv_delta) % num_buckets]
            .push_back(u);
        ++pending;
      }
    }
    // All pending entries live within one cyclic span of the array, so
    // the next non-empty bucket is at most num_buckets advances away.
    ++k;
    ++bucket_advances;
  }
  // Summary fold over the discovery-order list. Every member of
  // reached_order_ holds its final distance here, so the (max,
  // lowest-id-at-max) fold is order-independent and matches the
  // ascending strict-`>` scan the heap path folds inline.
  double max_dist = 0.0;
  NodeId farthest = src;
  for (NodeId v : s.reached_order_) {
    if (v == src) continue;
    const double d = s.dist_[v];
    if (d > max_dist) {
      max_dist = d;
      farthest = v;
    } else if (d == max_dist && max_dist > 0.0 && v < farthest) {
      farthest = v;
    }
  }
  sum.max_dist = max_dist;
  sum.farthest = farthest;
  TraversalObs& tobs = GetTraversalObs();
  tobs.sssp_delta_calls.Add();
  tobs.sssp_bucket_advances.Add(bucket_advances);
  return sum;
}

}  // namespace

TraversalSummary DijkstraDistances(const Graph& g, NodeId src,
                                   TraversalScratch& s, SsspMode mode) {
  if (mode != SsspMode::kBinaryHeap && g.NumEdges() > 0) {
    // One stats pass decides eligibility and the bucket width. delta is
    // the mean edge weight; the cyclic array must cover the current
    // bucket plus the widest single relaxation (max_w / delta buckets).
    double total = 0.0;
    double max_w = 0.0;
    double min_w = kInfDistance;
    for (const Edge& e : g.Edges()) {
      total += e.w;
      max_w = std::max(max_w, e.w);
      min_w = std::min(min_w, e.w);
    }
    // Bucket width: a fraction of the mean weight. Width == mean makes
    // most edges intra-bucket ("light") and every light relaxation can
    // reprocess its target within the same bucket phase; mean/8 pushes
    // the bulk of relaxations into future buckets while keeping the
    // cyclic array small (8 * max/mean + 2 slots).
    const double delta =
        total / static_cast<double>(g.NumEdges()) * 0.125;
    if (std::isfinite(max_w) && min_w >= 0.0 && delta > 0.0 &&
        std::isfinite(delta)) {
      const uint64_t num_buckets =
          static_cast<uint64_t>(max_w / delta) + 2;
      if (num_buckets <= kMaxBuckets) {
        return DijkstraDeltaStepping(g, src, s, 1.0 / delta, num_buckets);
      }
    }
    // Degenerate weights (non-positive mean, non-finite, or a max/mean
    // ratio that would make bucket advances dominate): binary heap, even
    // when delta-stepping was requested explicitly.
  }
  return DijkstraBinaryHeap(g, src, s);
}

TraversalSummary Traverse(const Graph& g, NodeId src,
                          TraversalScratch& scratch, BfsMode mode) {
  return g.IsWeighted() ? DijkstraDistances(g, src, scratch)
                        : BfsLevels(g, src, scratch, mode);
}

std::vector<double> ShortestPathDistances(const Graph& g, NodeId src,
                                          TraversalScratch& scratch) {
  Traverse(g, src, scratch);
  const NodeId n = g.NumVertices();
  std::vector<double> dist(n);
  for (NodeId v = 0; v < n; ++v) dist[v] = scratch.DistanceOf(v);
  return dist;
}

TraversalScratch& LocalTraversalScratch() {
  static thread_local TraversalScratch scratch;
  return scratch;
}

}  // namespace sparsify
