#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/thread_pool.h"

namespace sparsify {

namespace {

bool EdgeEndpointLess(const Edge& a, const Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

// Drops self loops and canonicalizes undirected orientation, in place.
void CanonicalizeEdges(std::vector<Edge>* edges, bool directed) {
  std::vector<Edge>& es = *edges;
  size_t out = 0;
  for (const Edge& e : es) {
    if (e.u == e.v) continue;
    Edge c = e;
    if (!directed && c.u > c.v) std::swap(c.u, c.v);
    es[out++] = c;
  }
  es.resize(out);
}

// Merges duplicate (u, v) runs of a sorted edge array, in place.
void MergeDuplicateEdges(std::vector<Edge>* edges, bool weighted) {
  std::vector<Edge>& es = *edges;
  size_t out = 0;
  for (size_t i = 0; i < es.size();) {
    Edge merged = es[i];
    size_t j = i + 1;
    while (j < es.size() && es[j].u == merged.u && es[j].v == merged.v) {
      if (weighted) merged.w += es[j].w;
      ++j;
    }
    if (!weighted) merged.w = 1.0;
    es[out++] = merged;
    i = j;
  }
  es.resize(out);
}

// Canonicalizes, sorts, and merges parallel edges in place.
void NormalizeEdges(std::vector<Edge>* edges, bool directed, bool weighted) {
  CanonicalizeEdges(edges, directed);
  std::sort(edges->begin(), edges->end(), EdgeEndpointLess);
  MergeDuplicateEdges(edges, weighted);
}

// Stable parallel sort: contiguous chunks stable-sorted on the pool, then
// an inplace_merge tree. Stability (equal-endpoint edges keep their input
// order) makes the result independent of the chunk count, so serial and
// parallel builds are bit-identical even when parallel edges with
// different weights are later merged by summation.
void StableSortEdgesParallel(std::vector<Edge>* edges, ThreadPool* pool) {
  std::vector<Edge>& es = *edges;
  constexpr size_t kMinParallelEdges = 1 << 15;
  const size_t threads =
      pool != nullptr ? static_cast<size_t>(pool->NumThreads()) : 1;
  if (threads < 2 || es.size() < kMinParallelEdges) {
    std::stable_sort(es.begin(), es.end(), EdgeEndpointLess);
    return;
  }
  size_t chunks = 1;
  while (chunks * 2 <= threads) chunks *= 2;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) {
    bounds[c] = es.size() * c / chunks;
  }
  ParallelFor(*pool, chunks, [&](size_t c) {
    std::stable_sort(es.begin() + bounds[c], es.begin() + bounds[c + 1],
                     EdgeEndpointLess);
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t pairs = chunks / (2 * width);
    ParallelFor(*pool, pairs, [&](size_t p) {
      const size_t lo = bounds[2 * width * p];
      const size_t mid = bounds[2 * width * p + width];
      const size_t hi = bounds[2 * width * (p + 1)];
      std::inplace_merge(es.begin() + lo, es.begin() + mid, es.begin() + hi,
                         EdgeEndpointLess);
    });
  }
}

}  // namespace

Graph Graph::FromEdges(NodeId num_vertices, std::vector<Edge> edges,
                       bool directed, bool weighted) {
  for (const Edge& e : edges) {
    if (e.u >= num_vertices || e.v >= num_vertices) {
      throw std::invalid_argument("edge endpoint out of range");
    }
  }
  NormalizeEdges(&edges, directed, weighted);
  Graph g;
  g.num_vertices_ = num_vertices;
  g.directed_ = directed;
  g.weighted_ = weighted;
  g.edges_ = std::move(edges);
  g.BuildCsr();
  return g;
}

Graph Graph::FromEdgesParallel(NodeId num_vertices, std::vector<Edge> edges,
                               bool directed, bool weighted,
                               ThreadPool* pool) {
  for (const Edge& e : edges) {
    if (e.u >= num_vertices || e.v >= num_vertices) {
      throw std::invalid_argument("edge endpoint out of range");
    }
  }
  CanonicalizeEdges(&edges, directed);
  StableSortEdgesParallel(&edges, pool);
  MergeDuplicateEdges(&edges, weighted);
  Graph g;
  g.num_vertices_ = num_vertices;
  g.directed_ = directed;
  g.weighted_ = weighted;
  g.edges_ = std::move(edges);
  g.BuildCsr();
  return g;
}

void Graph::BuildCsr() {
  // The canonical edge array is sorted by (u, v), deduplicated, and
  // loop-free (NormalizeEdges, or the FromCanonicalEdges contract), so a
  // single cursor fill in edge order already produces sorted adjacency
  // lists: vertex x first receives its v-side entries (neighbors < x, from
  // edges (u, x) with u ascending), then its u-side entries (neighbors
  // > x for undirected canonical u <= v, with v ascending). No per-vertex
  // sort is needed — BuildCsr is a pure counting sort, which matters on
  // the per-sweep-cell Subgraph hot path.
  const size_t n = num_vertices_;
  out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.u + 1];
    if (!directed_) ++out_offsets_[e.v + 1];
  }
  for (size_t i = 0; i < n; ++i) out_offsets_[i + 1] += out_offsets_[i];
  adj_nodes_.resize(out_offsets_[n]);
  adj_edges_.resize(out_offsets_[n]);
  std::vector<uint64_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const Edge& ed = edges_[e];
    adj_nodes_[cursor[ed.u]] = ed.v;
    adj_edges_[cursor[ed.u]++] = e;
    if (!directed_) {
      adj_nodes_[cursor[ed.v]] = ed.u;
      adj_edges_[cursor[ed.v]++] = e;
    }
  }
  if (directed_) {
    in_offsets_.assign(n + 1, 0);
    for (const Edge& e : edges_) ++in_offsets_[e.v + 1];
    for (size_t i = 0; i < n; ++i) in_offsets_[i + 1] += in_offsets_[i];
    in_adj_nodes_.resize(in_offsets_[n]);
    in_adj_edges_.resize(in_offsets_[n]);
    std::vector<uint64_t> icur(in_offsets_.begin(), in_offsets_.end() - 1);
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      in_adj_nodes_[icur[edges_[e].v]] = edges_[e].u;
      in_adj_edges_[icur[edges_[e].v]++] = e;
    }
  } else {
    in_offsets_.clear();
    in_adj_nodes_.clear();
    in_adj_edges_.clear();
  }
  max_degree_ = 0;
  for (NodeId v = 0; v < num_vertices_; ++v) {
    max_degree_ = std::max(max_degree_, OutDegree(v));
  }
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighborNodes(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it != nbrs.end() && *it == v) {
    return OutNeighborEdges(u)[static_cast<size_t>(it - nbrs.begin())];
  }
  return kInvalidEdge;
}

NodeId Graph::CountIsolated() const {
  NodeId count = 0;
  for (NodeId v = 0; v < num_vertices_; ++v) {
    if (OutDegree(v) == 0 && InDegree(v) == 0) ++count;
  }
  return count;
}

double Graph::TotalEdgeWeight() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.w;
  return total;
}

Graph Graph::FromCanonicalEdges(NodeId num_vertices, std::vector<Edge> edges,
                                bool directed, bool weighted) {
  Graph g;
  g.num_vertices_ = num_vertices;
  g.directed_ = directed;
  g.weighted_ = weighted;
  g.edges_ = std::move(edges);
  g.BuildCsr();
  return g;
}

Graph Graph::Subgraph(const std::vector<uint8_t>& keep) const {
  assert(keep.size() == edges_.size());
  // This graph's canonical edge array is already normalized (sorted,
  // deduplicated, loop-free), and filtering preserves all of that, so the
  // subgraph skips NormalizeEdges' re-sort — this is the per-cell hot path
  // of every sweep.
  size_t count = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) count += keep[e] != 0;
  std::vector<Edge> kept;
  kept.reserve(count);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (keep[e]) kept.push_back(edges_[e]);
  }
  return FromCanonicalEdges(num_vertices_, std::move(kept), directed_,
                            weighted_);
}

Graph Graph::ReweightedSubgraph(const std::vector<uint8_t>& keep,
                                const std::vector<double>& new_weights) const {
  assert(keep.size() == edges_.size());
  assert(new_weights.size() == edges_.size());
  size_t count = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) count += keep[e] != 0;
  std::vector<Edge> kept;
  kept.reserve(count);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (keep[e]) kept.push_back({edges_[e].u, edges_[e].v, new_weights[e]});
  }
  return FromCanonicalEdges(num_vertices_, std::move(kept), directed_,
                            /*weighted=*/true);
}

Graph Graph::Symmetrized() const {
  if (!directed_) return *this;
  std::vector<Edge> es = edges_;
  // NormalizeEdges would sum weights of u->v and v->u when merging; for
  // symmetrization we want the undirected edge to exist once with the
  // max weight of the two arcs (1 for unweighted graphs), matching the
  // "add reverse edge if missing" preprocessing of the paper.
  for (Edge& e : es) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(es.size());
  for (size_t i = 0; i < es.size();) {
    Edge m = es[i];
    size_t j = i + 1;
    while (j < es.size() && es[j].u == m.u && es[j].v == m.v) {
      m.w = std::max(m.w, es[j].w);
      ++j;
    }
    merged.push_back(m);
    i = j;
  }
  return FromEdges(num_vertices_, std::move(merged), /*directed=*/false,
                   weighted_);
}

Graph Graph::Unweighted() const {
  std::vector<Edge> es = edges_;
  for (Edge& e : es) e.w = 1.0;
  return FromEdges(num_vertices_, std::move(es), directed_,
                   /*weighted=*/false);
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << (directed_ ? "directed" : "undirected") << " "
     << (weighted_ ? "weighted" : "unweighted") << " graph: |V|="
     << num_vertices_ << " |E|=" << NumEdges()
     << " isolated=" << CountIsolated();
  return os.str();
}

Graph RemoveIsolatedVertices(const Graph& g, std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> map(g.NumVertices(), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    if (g.OutDegree(v) > 0 || g.InDegree(v) > 0) map[v] = next++;
  }
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  for (const Edge& e : g.Edges()) {
    edges.push_back({map[e.u], map[e.v], e.w});
  }
  if (old_to_new != nullptr) *old_to_new = map;
  return Graph::FromEdges(next, std::move(edges), g.IsDirected(),
                          g.IsWeighted());
}

}  // namespace sparsify
