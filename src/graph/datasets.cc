#include "src/graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/graph/generators.h"
#include "src/util/rng.h"

namespace sparsify {

namespace {

// Union of the canonical edges of two graphs over the same vertex set.
Graph UnionGraphs(const Graph& a, const Graph& b) {
  std::vector<Edge> edges = a.Edges();
  const std::vector<Edge>& eb = b.Edges();
  edges.insert(edges.end(), eb.begin(), eb.end());
  return Graph::FromEdges(std::max(a.NumVertices(), b.NumVertices()),
                          std::move(edges), a.IsDirected(),
                          a.IsWeighted() || b.IsWeighted());
}

struct Recipe {
  DatasetInfo info;
  Dataset (*build)(double scale);
};

NodeId Scaled(NodeId n, double scale) {
  return std::max<NodeId>(64, static_cast<NodeId>(n * scale));
}

Dataset BuildEgoFacebook(double s) {
  Rng rng(101);
  Dataset d;
  d.graph = BarabasiAlbert(Scaled(2000, s), 11, rng);
  return d;
}

Dataset BuildEgoTwitter(double s) {
  Rng rng(102);
  Dataset d;
  d.graph = ForestFireModel(Scaled(4000, s), 0.37, /*directed=*/true, rng);
  return d;
}

Dataset BuildHumanGene2(double s) {
  Rng rng(103);
  Dataset d;
  Graph base = PowerLawConfiguration(Scaled(1500, s), 2.0, 5, 400, rng);
  d.graph = WithRandomWeights(base, 100.0, rng);
  return d;
}

Dataset BuildComDblp(double s) {
  Rng rng(104);
  Dataset d;
  NodeId n = Scaled(3000, s);
  int k = std::max(4, static_cast<int>(n / 30));
  d.graph = PlantedPartition(n, k, 0.30, 0.0015, rng, &d.communities);
  return d;
}

Dataset BuildComAmazon(double s) {
  Rng rng(105);
  Dataset d;
  NodeId n = Scaled(3000, s);
  int k = std::max(4, static_cast<int>(n / 20));
  d.graph = PlantedPartition(n, k, 0.35, 0.0008, rng, &d.communities);
  return d;
}

Dataset BuildEmailEnron(double s) {
  Rng rng(106);
  Dataset d;
  d.graph = PowerLawConfiguration(Scaled(2000, s), 2.2, 1, 150, rng);
  return d;
}

Dataset BuildCaAstroPh(double s) {
  Rng rng(107);
  Dataset d;
  NodeId n = Scaled(2500, s);
  Graph ba = BarabasiAlbert(n, 4, rng);
  Graph ws = WattsStrogatz(n, 4, 0.05, rng);
  d.graph = UnionGraphs(ba, ws);
  return d;
}

Dataset BuildCaHepPh(double s) {
  Rng rng(108);
  Dataset d;
  NodeId n = Scaled(1800, s);
  Graph ba = BarabasiAlbert(n, 4, rng);
  Graph ws = WattsStrogatz(n, 3, 0.05, rng);
  d.graph = UnionGraphs(ba, ws);
  return d;
}

Dataset BuildWeb(uint64_t seed, NodeId n_target, EdgeId m_mult, double s) {
  Rng rng(seed);
  Dataset d;
  NodeId n = Scaled(n_target, s);
  int scale = std::max(6, static_cast<int>(std::ceil(std::log2(n))));
  EdgeId m = static_cast<EdgeId>(n) * m_mult;
  d.graph = RMat(scale, m, 0.57, 0.19, 0.19, /*directed=*/true, rng);
  return d;
}

Dataset BuildWebBerkStan(double s) { return BuildWeb(109, 3000, 11, s); }
Dataset BuildWebGoogle(double s) { return BuildWeb(110, 4000, 6, s); }
Dataset BuildWebNotreDame(double s) { return BuildWeb(111, 2500, 5, s); }
Dataset BuildWebStanford(double s) { return BuildWeb(112, 2800, 8, s); }

Dataset BuildReddit(double s) {
  Rng rng(113);
  Dataset d;
  NodeId n = Scaled(2500, s);
  d.graph = LfrBenchmark(n, 2.2, 6, std::max<NodeId>(20, n / 12), 2.0,
                         std::max<NodeId>(20, n / 50), 0.08, rng,
                         &d.communities);
  return d;
}

Dataset BuildOgbnProteins(double s) {
  Rng rng(114);
  Dataset d;
  NodeId n = Scaled(2000, s);
  d.graph = LfrBenchmark(n, 2.0, 10, std::max<NodeId>(30, n / 7), 2.0,
                         std::max<NodeId>(40, n / 10), 0.10, rng,
                         &d.communities);
  return d;
}

const Recipe kRecipes[] = {
    {{"ego-Facebook", "Social Network", false, false, true,
      "Barabasi-Albert(n=2000, m=11)"},
     &BuildEgoFacebook},
    {{"ego-Twitter", "Social Network", true, false, false,
      "ForestFireModel(n=4000, p=0.37, directed)"},
     &BuildEgoTwitter},
    {{"human_gene2", "gene", false, true, false,
      "PowerLawConfiguration(n=1500, gamma=2.0, deg in [5,400]) + Zipf "
      "weights"},
     &BuildHumanGene2},
    {{"com-DBLP", "Community Network", false, false, true,
      "PlantedPartition(n=3000, k=n/30, p_in=0.30, p_out=0.0015)"},
     &BuildComDblp},
    {{"com-Amazon", "Community Network", false, false, true,
      "PlantedPartition(n=3000, k=n/20, p_in=0.35, p_out=0.0008)"},
     &BuildComAmazon},
    {{"email-Enron", "communication", false, false, false,
      "PowerLawConfiguration(n=2000, gamma=2.2, deg in [1,150])"},
     &BuildEmailEnron},
    {{"ca-AstroPh", "collaboration", false, false, false,
      "BarabasiAlbert(n=2500, m=4) U WattsStrogatz(k=4, beta=0.05)"},
     &BuildCaAstroPh},
    {{"ca-HepPh", "collaboration", false, false, false,
      "BarabasiAlbert(n=1800, m=4) U WattsStrogatz(k=3, beta=0.05)"},
     &BuildCaHepPh},
    {{"web-BerkStan", "web", true, false, false,
      "RMAT(a=0.57, b=c=0.19, n~3000, m=11n, directed)"},
     &BuildWebBerkStan},
    {{"web-Google", "web", true, false, false,
      "RMAT(a=0.57, b=c=0.19, n~4000, m=6n, directed)"},
     &BuildWebGoogle},
    {{"web-NotreDame", "web", true, false, false,
      "RMAT(a=0.57, b=c=0.19, n~2500, m=5n, directed)"},
     &BuildWebNotreDame},
    {{"web-Stanford", "web", true, false, false,
      "RMAT(a=0.57, b=c=0.19, n~2800, m=8n, directed)"},
     &BuildWebStanford},
    {{"Reddit", "GNN", false, false, true,
      "LFR(n=2500, deg~PL(2.2) in [6,n/12], communities~PL(2.0), mu=0.08)"},
     &BuildReddit},
    {{"ogbn-proteins", "GNN", false, false, true,
      "LFR(n=2000, deg~PL(2.0) in [10,n/7], communities~PL(2.0), mu=0.10)"},
     &BuildOgbnProteins},
};

const Recipe& FindRecipe(const std::string& name) {
  for (const Recipe& r : kRecipes) {
    if (r.info.name == name) return r;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const Recipe& r : kRecipes) names.push_back(r.info.name);
  return names;
}

std::vector<DatasetInfo> AllDatasetInfos() {
  std::vector<DatasetInfo> infos;
  for (const Recipe& r : kRecipes) infos.push_back(r.info);
  return infos;
}

Dataset LoadDatasetScaled(const std::string& name, double scale) {
  const Recipe& r = FindRecipe(name);
  Dataset d = r.build(scale);
  d.info = r.info;
  // Preprocessing step 1 (paper section 3.1): remove isolated vertices and
  // reindex. Community labels are remapped alongside.
  std::vector<NodeId> old_to_new;
  Graph cleaned = RemoveIsolatedVertices(d.graph, &old_to_new);
  if (!d.communities.empty()) {
    std::vector<int> comm(cleaned.NumVertices());
    for (NodeId v = 0; v < d.graph.NumVertices(); ++v) {
      if (old_to_new[v] != kInvalidNode) {
        comm[old_to_new[v]] = d.communities[v];
      }
    }
    d.communities = std::move(comm);
  }
  d.graph = std::move(cleaned);
  return d;
}

Dataset LoadDataset(const std::string& name) {
  return LoadDatasetScaled(name, 1.0);
}

}  // namespace sparsify
