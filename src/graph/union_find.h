// Disjoint-set (union-find) with path halving and union by size.
// Substrate for Kruskal's spanning forest and connected components.
#ifndef SPARSIFY_GRAPH_UNION_FIND_H_
#define SPARSIFY_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace sparsify {

/// Disjoint-set forest over elements [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of x's set (path halving).
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b. Returns true if they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_UNION_FIND_H_
