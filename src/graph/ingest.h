// One-time SNAP-edge-list -> binary cache ingest for full-scale graphs.
//
// The paper evaluates sparsifiers on 10^4-10^6-node SNAP graphs; parsing
// a text edge list of that size on every run is the wrong place to spend
// wall time. Ingest parses once, builds the CSR with the canonical sort
// fanned out over a ThreadPool, and writes a content-addressed binary
// cache next to the store ("SPGC" container: a binary_io payload plus the
// graph's 64-bit content hash). Every later run re-keys the unchanged
// text input to the same cache file and loads the binary in one bulk
// read. Externally loaded graphs key into CellKey through the content
// hash ("ingest-<hash>"), so two differently named files holding the same
// graph share result-store cells, and a renamed file never collides with
// a synthetic dataset name.
#ifndef SPARSIFY_GRAPH_INGEST_H_
#define SPARSIFY_GRAPH_INGEST_H_

#include <string>

#include "src/graph/graph.h"

namespace sparsify {

class ThreadPool;

/// 64-bit FNV-1a hash over the canonical form of `g` (directed/weighted
/// flags, vertex and edge counts, every canonical edge's endpoints and
/// weight bits), rendered as 16 hex digits. Identical graphs hash
/// identically regardless of input edge order, duplicate edges, or cache
/// round-trips, because the hash runs over the normalized edge array.
std::string GraphContentHash(const Graph& g);

/// The result-store dataset key an ingested graph evaluates under:
/// "ingest-<16-hex-hash>". Distinct from every synthetic dataset name.
std::string IngestDatasetKey(const Graph& g);

struct IngestOptions {
  bool directed = false;
  bool weighted = false;
  std::string cache_dir;       // "" disables the on-disk cache
  ThreadPool* pool = nullptr;  // parallel canonical sort when provided
};

struct IngestResult {
  Graph graph;
  std::string content_hash;  // GraphContentHash(graph)
  std::string cache_file;    // cache file consulted/written ("" if none)
  bool from_cache = false;   // the binary cache satisfied the load
};

/// Loads a graph from `input_path` through the binary cache.
///
/// A ".spgc" input is read as a cache container directly (hash-verified;
/// throws on a torn or corrupted file). Anything else is treated as SNAP
/// text: the raw file bytes plus the directed/weighted flags key a cache
/// file under options.cache_dir — a valid hit skips parsing entirely; a
/// miss (or a torn cache file, which is discarded and rebuilt) parses the
/// text, builds the graph via Graph::FromEdgesParallel, and rewrites the
/// cache atomically (temp file + rename). Throws std::runtime_error on
/// unreadable or malformed input.
IngestResult IngestGraph(const std::string& input_path,
                         const IngestOptions& options);

/// Writes the "SPGC" cache container: magic | u32 version | u64 content
/// hash | binary_io payload.
void WriteGraphCache(const Graph& g, const std::string& path);

/// Reads a cache container, re-verifying the stored content hash against
/// the loaded graph. Throws std::runtime_error on bad magic/version,
/// truncation, or a hash mismatch (torn or corrupted file).
Graph ReadGraphCache(const std::string& path);

/// LoadDatasetScaled(name, scale).graph with an on-disk cache, for benches
/// and CI runs that reuse one full-scale synthetic graph across many
/// invocations. The cache is keyed by "<name>@<scale>" (NOT by content:
/// regenerate the cache directory when generator recipes change — CI keys
/// its cache on the generator sources' hash for exactly this reason).
/// Loads are hash-verified like every cache read; a torn file is rebuilt.
Graph LoadDatasetScaledCached(const std::string& name, double scale,
                              const std::string& cache_dir,
                              ThreadPool* pool = nullptr);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_INGEST_H_
