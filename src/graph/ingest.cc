#include "src/graph/ingest.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>
#include <stdexcept>

#include "src/graph/binary_io.h"
#include "src/graph/datasets.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"

namespace sparsify {

namespace {

constexpr char kCacheMagic[4] = {'S', 'P', 'G', 'C'};
constexpr uint32_t kCacheVersion = 1;

// FNV-1a, the library's dependency-free stable 64-bit hash.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t FnvMixPod(uint64_t h, T value) {
  return FnvMix(h, &value, sizeof(T));
}

uint64_t RawGraphContentHash(const Graph& g) {
  uint64_t h = kFnvOffset;
  h = FnvMixPod<uint8_t>(h, g.IsDirected() ? 1 : 0);
  h = FnvMixPod<uint8_t>(h, g.IsWeighted() ? 1 : 0);
  h = FnvMixPod<uint32_t>(h, g.NumVertices());
  h = FnvMixPod<uint32_t>(h, g.NumEdges());
  for (const Edge& e : g.Edges()) {
    h = FnvMixPod<uint32_t>(h, e.u);
    h = FnvMixPod<uint32_t>(h, e.v);
    if (g.IsWeighted()) {
      uint64_t bits;
      std::memcpy(&bits, &e.w, sizeof(bits));
      h = FnvMixPod<uint64_t>(h, bits);
    }
  }
  return h;
}

std::string HexHash(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Hash of the raw input file bytes: the text-side cache key. Streamed in
// chunks so a multi-GB edge list never lives in memory twice.
uint64_t FileBytesHash(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  uint64_t h = kFnvOffset;
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof(buf));
    h = FnvMix(h, buf, static_cast<size_t>(in.gcount()));
  }
  return h;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// SNAP text parse, semantics identical to ReadEdgeListStream ('#'/'%'
// comment lines, "u v [w]" rows, n = max id + 1) but over one bulk read
// with pointer scanning — the iostream-per-line parse is the bottleneck
// at 10^6+ edges.
void ParseEdgeListText(const std::string& path, bool weighted,
                       std::vector<Edge>* edges, NodeId* num_vertices) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  edges->clear();
  edges->reserve(std::count(text.begin(), text.end(), '\n') + 1);
  NodeId max_id = 0;
  bool any = false;
  size_t lineno = 0;
  const char* p = text.c_str();
  const char* end = p + text.size();
  while (p < end) {
    ++lineno;
    const char* line_end = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (line_end == nullptr) line_end = end;
    if (p == line_end || *p == '#' || *p == '%' || *p == '\r') {
      p = line_end + 1;
      continue;
    }
    char* cursor = nullptr;
    const uint64_t u = std::strtoull(p, &cursor, 10);
    if (cursor == p) {
      throw std::runtime_error("bad edge at line " + std::to_string(lineno));
    }
    const char* after_u = cursor;
    const uint64_t v = std::strtoull(after_u, &cursor, 10);
    if (cursor == after_u) {
      throw std::runtime_error("bad edge at line " + std::to_string(lineno));
    }
    double w = 1.0;
    if (weighted) {
      const char* after_v = cursor;
      w = std::strtod(after_v, &cursor);
      if (cursor == after_v || cursor > line_end) w = 1.0;
    }
    edges->push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_id = std::max({max_id, static_cast<NodeId>(u),
                       static_cast<NodeId>(v)});
    any = true;
    p = line_end + 1;
  }
  *num_vertices = any ? max_id + 1 : 0;
}

// Removes `<path>.tmp.<pid>.<nonce>` leftovers whose writer is gone.
// Two racing processes building the same cache entry each write their own
// tmp file (the suffix keeps them apart), so an orphan only exists when a
// writer died mid-build — kill(pid, 0) == ESRCH is the liveness probe. A
// still-running writer's tmp file is left alone.
void RemoveStaleCacheTmpFiles(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  const std::string prefix = target.filename().string() + ".tmp.";
  std::error_code ec;
  fs::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string rest = name.substr(prefix.size());  // "<pid>.<nonce>"
    char* end = nullptr;
    const long pid = std::strtol(rest.c_str(), &end, 10);
    if (end == rest.c_str() || *end != '.') continue;  // not ours
    if (pid != static_cast<long>(::getpid()) &&
        (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH)) {
      fs::remove(entry.path(), ec);
    }
  }
}

void WriteGraphCacheAtomic(const Graph& g, const std::string& path) {
  RemoveStaleCacheTmpFiles(path);
  // PID + random nonce: concurrent processes (or a PID-reusing successor
  // of a crashed one) never clobber each other's in-flight tmp file.
  static std::atomic<uint64_t> counter{std::random_device{}()};
  const uint64_t nonce = counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          HexHash(nonce);
  try {
    WriteGraphCache(g, tmp);
    SPARSIFY_FAILPOINT("ingest.rename");
    std::filesystem::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

std::string SanitizeCacheName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  return out;
}

}  // namespace

std::string GraphContentHash(const Graph& g) {
  return HexHash(RawGraphContentHash(g));
}

std::string IngestDatasetKey(const Graph& g) {
  return "ingest-" + GraphContentHash(g);
}

void WriteGraphCache(const Graph& g, const std::string& path) {
  SPARSIFY_FAILPOINT("ingest.tmp_write");
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open " + path);
    out.write(kCacheMagic, 4);
    const uint32_t version = kCacheVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t hash = RawGraphContentHash(g);
    out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
    WriteBinaryGraphStream(g, out);
    // Flush before the state check: buffered bytes can fail at flush time
    // (full disk), and a silently short cache file would replay as a torn
    // entry on every future run.
    out.flush();
    if (!out) throw IoError("graph cache: write failure to " + path);
  }
  // Durability: the caller renames this file over the cache entry; fsync
  // first so a power cut cannot promote an empty/partial inode.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throw IoError("graph cache: reopen for fsync failed: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw IoError("graph cache: fsync failed: " + path);
}

Graph ReadGraphCache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kCacheMagic, 4) != 0) {
    throw std::runtime_error("graph cache: bad magic");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kCacheVersion) {
    throw std::runtime_error("graph cache: unsupported version");
  }
  uint64_t stored_hash = 0;
  in.read(reinterpret_cast<char*>(&stored_hash), sizeof(stored_hash));
  if (!in) throw std::runtime_error("graph cache: truncated input");
  Graph g = ReadBinaryGraphStream(in);
  SPARSIFY_FAILPOINT("ingest.hash_verify");
  if (RawGraphContentHash(g) != stored_hash) {
    throw std::runtime_error(
        "graph cache: content hash mismatch (torn or corrupted cache file)");
  }
  return g;
}

IngestResult IngestGraph(const std::string& input_path,
                         const IngestOptions& options) {
  IngestResult result;
  if (HasSuffix(input_path, ".spgc")) {
    result.graph = ReadGraphCache(input_path);
    result.content_hash = GraphContentHash(result.graph);
    result.cache_file = input_path;
    result.from_cache = true;
    return result;
  }
  if (HasSuffix(input_path, ".spgb")) {
    result.graph = ReadBinaryGraph(input_path);
    result.content_hash = GraphContentHash(result.graph);
    result.from_cache = true;
    return result;
  }
  // Text input: the raw bytes + parse flags key the cache file, so an
  // unchanged file never parses twice and an edited file never serves a
  // stale graph.
  if (!options.cache_dir.empty()) {
    std::filesystem::create_directories(options.cache_dir);
    const std::string key =
        HexHash(FnvMixPod<uint16_t>(
            FileBytesHash(input_path),
            static_cast<uint16_t>((options.directed ? 1 : 0) |
                                  (options.weighted ? 2 : 0))));
    result.cache_file =
        (std::filesystem::path(options.cache_dir) / (key + ".spgc")).string();
    if (std::filesystem::exists(result.cache_file)) {
      try {
        result.graph = ReadGraphCache(result.cache_file);
        result.content_hash = GraphContentHash(result.graph);
        result.from_cache = true;
        return result;
      } catch (const std::exception&) {
        // Torn or corrupted cache entry: discard and rebuild below.
        std::filesystem::remove(result.cache_file);
      }
    }
  }
  std::vector<Edge> edges;
  NodeId n = 0;
  ParseEdgeListText(input_path, options.weighted, &edges, &n);
  result.graph = Graph::FromEdgesParallel(n, std::move(edges),
                                          options.directed, options.weighted,
                                          options.pool);
  result.content_hash = GraphContentHash(result.graph);
  if (!result.cache_file.empty()) {
    WriteGraphCacheAtomic(result.graph, result.cache_file);
  }
  return result;
}

Graph LoadDatasetScaledCached(const std::string& name, double scale,
                              const std::string& cache_dir,
                              ThreadPool* pool) {
  (void)pool;  // generation dominates; the recipe build is serial today
  if (cache_dir.empty()) return LoadDatasetScaled(name, scale).graph;
  std::filesystem::create_directories(cache_dir);
  char scale_buf[32];
  std::snprintf(scale_buf, sizeof(scale_buf), "%g", scale);
  const std::string file = SanitizeCacheName(name) + "_at_" + scale_buf +
                           ".spgc";
  const std::string path =
      (std::filesystem::path(cache_dir) / file).string();
  if (std::filesystem::exists(path)) {
    try {
      return ReadGraphCache(path);
    } catch (const std::exception&) {
      std::filesystem::remove(path);  // torn cache entry: rebuild
    }
  }
  Graph g = LoadDatasetScaled(name, scale).graph;
  WriteGraphCacheAtomic(g, path);
  return g;
}

}  // namespace sparsify
