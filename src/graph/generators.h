// Synthetic graph generators.
//
// The paper evaluates on 14 real-world graphs from SNAP / SuiteSparse / OGB
// (Table 3). Those datasets are not redistributable inside this offline
// reproduction, so we synthesize stand-ins whose *structural traits* (degree
// distribution, community structure, triangle density, directedness,
// density) match each dataset's category — see DESIGN.md section 3. These
// generators are also used directly by the unit and property tests.
#ifndef SPARSIFY_GRAPH_GENERATORS_H_
#define SPARSIFY_GRAPH_GENERATORS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// G(n, m) Erdős–Rényi: m distinct uniform random edges.
Graph ErdosRenyi(NodeId n, EdgeId m, bool directed, Rng& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_node` existing vertices with probability proportional to
/// degree. Produces a connected power-law graph (social-network-like).
Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`. High clustering coefficient
/// (collaboration-network-like).
Graph WattsStrogatz(NodeId n, NodeId k, double beta, Rng& rng);

/// R-MAT / Kronecker-style recursive generator with partition probabilities
/// (a, b, c, d), a + b + c + d = 1. Skewed in/out degrees; used as the
/// stand-in for web graphs. Vertices: 2^scale.
Graph RMat(int scale, EdgeId m, double a, double b, double c, bool directed,
           Rng& rng);

/// Planted partition: `num_communities` equal-size groups; intra-community
/// edge probability `p_in`, inter `p_out`. If `communities` is non-null it
/// receives the ground-truth community of each vertex. Stand-in for
/// community networks (com-DBLP, com-Amazon) and GNN datasets.
Graph PlantedPartition(NodeId n, int num_communities, double p_in,
                       double p_out, Rng& rng,
                       std::vector<int>* communities = nullptr);

/// Power-law configuration model: degree sequence d_i ~ Zipf(gamma) clamped
/// to [min_degree, max_degree], stubs matched uniformly; self loops and
/// multi-edges dropped. Stand-in for dense biological graphs when combined
/// with weights.
Graph PowerLawConfiguration(NodeId n, double gamma, NodeId min_degree,
                            NodeId max_degree, Rng& rng);

/// Leskovec-style forest-fire *generative* model (distinct from the Forest
/// Fire sparsifier): each arriving vertex picks an ambassador and "burns"
/// through its neighborhood with forward probability `p_forward`.
Graph ForestFireModel(NodeId n, double p_forward, bool directed, Rng& rng);

/// Assigns Zipf-distributed integer weights in [1, max_weight] to the edges
/// of `g`, returning a weighted copy (stand-in for human_gene2's weights).
Graph WithRandomWeights(const Graph& g, double max_weight, Rng& rng);

/// LFR-style benchmark graph: power-law community sizes (exponent
/// `size_gamma`), power-law degrees (exponent `degree_gamma`, bounded by
/// [min_degree, max_degree]), and mixing parameter `mu` = expected fraction
/// of each vertex's edges that leave its community. Stub matching within
/// and across communities; self loops and multi-edges dropped. Harder for
/// community detection than PlantedPartition because both community sizes
/// and degrees are heterogeneous.
Graph LfrBenchmark(NodeId n, double degree_gamma, NodeId min_degree,
                   NodeId max_degree, double size_gamma,
                   NodeId min_community, double mu, Rng& rng,
                   std::vector<int>* communities = nullptr);

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_GENERATORS_H_
