// Shared traversal kernel: reusable scratch + direction-optimizing BFS +
// scratch-reusing Dijkstra.
//
// Every BFS/SSSP-bound metric in the library (SPSP stretch, eccentricity,
// approximate diameter, closeness/betweenness centrality, reachability
// sampling, Dinic's level phase) used to allocate a fresh O(n) distance
// vector and drive a std::deque-backed std::queue per call. This kernel
// removes both overheads:
//
//  * TraversalScratch owns every per-traversal array (epoch-stamped visit
//    marks, uint32 level array, double distance array, flat frontier
//    buffers, Dijkstra heap storage, Brandes sigma/delta/order arrays).
//    Repeated traversals over same-sized graphs do zero allocation, and
//    the epoch stamp makes "reset the visited set" an O(1) counter bump
//    instead of an O(n) refill.
//
//  * BfsLevels is a level-synchronous direction-optimizing BFS (Beamer et
//    al., the GAP-benchmark kernel): it starts in the push (top-down)
//    direction and switches to pull (bottom-up) when the frontier's edge
//    count grows past a fixed fraction of the unexplored edges — on
//    low-diameter social/web graphs the pull direction settles the giant
//    middle levels while touching only a fraction of the edges. The pull
//    direction scans InNeighborNodes, so it is correct for directed
//    graphs too. The push->pull switch is gated on the IN-arc mass of
//    still-undiscovered vertices (what a pull round actually scans) plus
//    a frontier-size floor, so directed graphs with large unreachable
//    regions never pay for pull rounds that cannot help; pull rounds scan
//    a word-parallel visited bitmap instead of walking byte stamps (see
//    src/graph/README.md for the full heuristic and why one visited bit
//    is a sufficient parent test).
//
//  * DijkstraDistances runs a delta-stepping bucket queue by default
//    (binary-heap fallback when the weight distribution defeats
//    bucketing), with bit-identical distances either way.
//
// Determinism: BFS hop counts and Dijkstra distances are the unique fixed
// point of their recurrences — they do not depend on the order vertices
// are processed in, so push-only, hybrid, and the legacy queue BFS produce
// bit-identical distance arrays (see src/graph/README.md for the full
// argument). The TraversalSummary reductions (max, min-id-at-max) are
// likewise order-independent.
//
// Scratch ownership: a scratch is single-threaded — one traversal at a
// time, results valid until the next Begin on the same scratch. Under
// nested parallelism hand each NestedParallelFor subtask its own scratch;
// LocalTraversalScratch() does exactly that (one scratch per OS thread).
#ifndef SPARSIFY_GRAPH_TRAVERSAL_H_
#define SPARSIFY_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace sparsify {

constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Reusable per-thread traversal state. All fields are kernel-managed;
/// consumers read results through the accessors after a traversal returns.
class TraversalScratch {
 public:
  static constexpr uint32_t kNoLevel = static_cast<uint32_t>(-1);

  /// True if `v` was reached by the last traversal.
  bool Reached(NodeId v) const { return stamp_[v] == epoch_; }

  /// Hop count of `v` (valid after BfsLevels; kNoLevel if unreached).
  uint32_t LevelOf(NodeId v) const {
    return Reached(v) ? level_[v] : kNoLevel;
  }

  /// Distance of `v` in ShortestPathDistances semantics: hop count for
  /// BFS, weighted distance for Dijkstra, kInfDistance if unreached.
  double DistanceOf(NodeId v) const {
    if (!Reached(v)) return kInfDistance;
    return weighted_ ? dist_[v] : static_cast<double>(level_[v]);
  }

  /// Prepares for a traversal over an n-vertex graph: sizes the arrays
  /// (allocation only when n grows past any previous graph) and bumps the
  /// visit epoch (O(1); the stamp array is refilled only when the 32-bit
  /// epoch wraps, once per ~4 billion traversals).
  void Begin(NodeId n, bool weighted);

  /// Sizes and zeroes the Brandes sigma/delta arrays. Callers must
  /// restore the all-zero invariant before returning (zero the entries
  /// they touched), so repeated calls cost O(1).
  void EnsureBrandes(NodeId n);

  // Kernel-internal state, exposed for the traversal functions and the
  // Brandes accumulation in centrality.cc. Treat as read-only elsewhere.
  std::vector<uint32_t> stamp_;  // visit epoch per vertex
  uint32_t epoch_ = 0;
  bool weighted_ = false;
  std::vector<uint32_t> level_;  // hop counts (unweighted traversals)
  std::vector<double> dist_;     // weighted distances (Dijkstra)
  std::vector<NodeId> frontier_;  // flat frontier (also Brandes' FIFO)
  std::vector<NodeId> next_;      // next-level frontier
  std::vector<std::pair<double, NodeId>> heap_;  // Dijkstra min-heap
  // Pull-direction visited bitmap, built lazily at the first pull switch
  // of a traversal and maintained incrementally afterwards. Valid iff
  // bits_epoch_ == epoch_.
  std::vector<uint64_t> visited_bits_;
  uint32_t bits_epoch_ = 0;
  // Delta-stepping state: cyclic bucket array (vertex ids, lazy deletion)
  // and the discovery-order list the end-of-run summary fold walks.
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<NodeId> reached_order_;
  // Brandes betweenness state (EnsureBrandes; all-zero between calls).
  std::vector<double> sigma_;
  std::vector<double> delta_;
  std::vector<NodeId> order_;  // BFS/settle order of the last accumulation

  void MarkReached(NodeId v) { stamp_[v] = epoch_; }
};

/// Order-independent summary of one traversal, folded while the kernel
/// runs so consumers like eccentricity and the double-sweep diameter never
/// rescan an O(n) distance vector.
struct TraversalSummary {
  NodeId reached = 0;     // vertices reached, including the source
  double max_dist = 0.0;  // max distance over reached v != src (0 if none)
  NodeId farthest = 0;    // lowest-id vertex attaining max_dist when
                          // max_dist > 0, else the source itself — exactly
                          // the argmax an ascending strict `>` scan of the
                          // distance vector produces
  int pull_rounds = 0;    // BFS rounds executed in the pull direction
};

enum class BfsMode {
  kHybrid,    // direction-optimizing push/pull (the default)
  kPushOnly,  // classic top-down only (bench baseline / differential tests)
};

enum class SsspMode {
  kAuto,           // delta-stepping when the weight distribution allows it
  kDeltaStepping,  // force the bucket queue (still falls back on degenerate
                   // weights: delta <= 0 or non-finite)
  kBinaryHeap,     // classic lazy-deletion binary heap (bench baseline /
                   // differential tests)
};

/// Hop-count BFS from `src` along out-edges, ignoring weights. Results via
/// scratch.LevelOf / scratch.DistanceOf / scratch.Reached.
TraversalSummary BfsLevels(const Graph& g, NodeId src,
                           TraversalScratch& scratch,
                           BfsMode mode = BfsMode::kHybrid);

/// Dijkstra from `src` along out-edges using edge weights. Results via
/// scratch.DistanceOf / scratch.Reached. Distances are bit-identical
/// across every SsspMode (unique fixed point; see src/graph/README.md).
TraversalSummary DijkstraDistances(const Graph& g, NodeId src,
                                   TraversalScratch& scratch,
                                   SsspMode mode = SsspMode::kAuto);

/// ShortestPathDistances dispatch: BFS for unweighted graphs, Dijkstra
/// for weighted ones — the semantics every distance metric is defined on.
TraversalSummary Traverse(const Graph& g, NodeId src,
                          TraversalScratch& scratch,
                          BfsMode mode = BfsMode::kHybrid);

/// Drop-in scratch-reusing replacement for the legacy per-call API:
/// returns the exact std::vector<double> the seed implementation produced
/// (hop counts / weighted distances, kInfDistance for unreachable).
std::vector<double> ShortestPathDistances(const Graph& g, NodeId src,
                                          TraversalScratch& scratch);

/// The calling thread's own scratch (thread_local). This is the scratch
/// handout rule under nested parallelism: every NestedParallelFor subtask
/// runs on exactly one thread, so each claiming thread — pool workers and
/// the nested caller alike — reuses its own scratch with no sharing and
/// no locking. Results are only valid until the next traversal on the
/// same thread: collect what you need before starting another.
TraversalScratch& LocalTraversalScratch();

}  // namespace sparsify

#endif  // SPARSIFY_GRAPH_TRAVERSAL_H_
