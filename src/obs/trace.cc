#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace sparsify::obs {
namespace {

std::atomic<bool> g_tracing{false};

// One buffer per thread that ever recorded a span. The thread_local
// handle below holds a shared_ptr; the global list holds another, so a
// buffer outlives its thread and DrainTrace can still collect it. The
// per-buffer mutex is uncontended in steady state (only the owning
// thread appends; drains happen at quiescence).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

BufferRegistry& GetBufferRegistry() {
  static BufferRegistry* r = new BufferRegistry();  // leaked: outlives threads
  return *r;
}

ThreadBuffer& ThisThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = GetBufferRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void JsonEscape(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

bool TracingEnabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

void StartTracing() {
  // Drop anything left from a previous run so a fresh trace starts
  // empty even if the caller never drained.
  DrainTrace();
  g_tracing.store(true, std::memory_order_relaxed);
}

void StopTracing() { g_tracing.store(false, std::memory_order_relaxed); }

std::vector<TraceEvent> DrainTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferRegistry& r = GetBufferRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    buffers = r.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    std::move(buf->events.begin(), buf->events.end(),
              std::back_inserter(out));
    buf->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.tid < b.tid;
            });
  return out;
}

namespace internal {

void RecordEvent(TraceEvent&& ev) {
  ThreadBuffer& buf = ThisThreadBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

int ThisThreadTraceTid() { return ThisThreadBuffer().tid; }

}  // namespace internal

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  int64_t t0 = 0;
  for (const TraceEvent& ev : events) {
    if (t0 == 0 || ev.begin_ns < t0) t0 = ev.begin_ns;
  }
  // Microsecond timestamps rebased on the earliest span; Perfetto and
  // chrome://tracing both expect "ts" in us.
  auto us = [t0](int64_t ns) {
    return static_cast<double>(ns - t0) * 1e-3;
  };
  out << "{\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const TraceEvent& ev : events) {
    if (!first) out << ",";
    first = false;
    // Begin event carries the args; the matching end event is bare.
    out << "\n{\"name\":\"";
    JsonEscape(ev.name, out);
    out << "\",\"cat\":\"sparsify\",\"ph\":\"B\",\"pid\":1,\"tid\":"
        << ev.tid << ",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", us(ev.begin_ns));
    out << num << ",\"args\":{";
    bool first_arg = true;
    if (!ev.detail.empty()) {
      out << "\"detail\":\"";
      JsonEscape(ev.detail, out);
      out << "\"";
      first_arg = false;
    }
    for (const auto& [key, value] : ev.args) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"";
      JsonEscape(key, out);
      out << "\":\"";
      JsonEscape(value, out);
      out << "\"";
    }
    out << "}},";
    out << "\n{\"name\":\"";
    JsonEscape(ev.name, out);
    out << "\",\"cat\":\"sparsify\",\"ph\":\"E\",\"pid\":1,\"tid\":"
        << ev.tid << ",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", us(ev.end_ns));
    out << num << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(events, out);
  return out.good();
}

}  // namespace sparsify::obs
