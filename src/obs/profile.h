// Span aggregation for `sparsify_cli profile`: folds a drained trace
// into a per-(stage, detail) breakdown table with exact percentiles
// (computed from the individual span durations, not histogram buckets).
#ifndef SPARSIFY_OBS_PROFILE_H_
#define SPARSIFY_OBS_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace sparsify::obs {

/// One line of the breakdown: all spans sharing (stage, detail), where
/// stage is the span name ("metric_unit") and detail the sub-key (the
/// metric name, the sparsifier, ...; empty for undifferentiated spans).
struct ProfileRow {
  std::string stage;
  std::string detail;
  uint64_t count = 0;
  double total_seconds = 0;  // sum of span durations (thread-seconds)
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
};

/// Aggregates events into rows. Rows are ordered by stage total time
/// (descending), then by row total within the stage, so the expensive
/// work reads top-down.
std::vector<ProfileRow> BuildProfile(const std::vector<TraceEvent>& events);

/// Run-level context printed in the table header. pool_busy_seconds is
/// the summed per-worker busy time; utilization is busy over
/// (wall x threads).
struct ProfileSummary {
  double wall_seconds = 0;
  size_t threads = 0;
  double pool_busy_seconds = 0;
};

/// Renders the breakdown as an aligned text table. units/s is row count
/// over run wall time (throughput, not inverse latency).
void PrintProfile(const std::vector<ProfileRow>& rows,
                  const ProfileSummary& summary, std::ostream& out);

}  // namespace sparsify::obs

#endif  // SPARSIFY_OBS_PROFILE_H_
