#include "src/obs/counters.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

namespace sparsify::obs {
namespace {

// Round-robin shard assignment: each new thread takes the next slot.
// deques/maps in the registry below need a mutex anyway; the shard index
// itself is lock-free after the first use on a thread.
std::atomic<size_t> g_next_shard{0};

size_t AssignShard() {
  return g_next_shard.fetch_add(1, std::memory_order_relaxed) %
         kCounterShards;
}

// Registry storage. std::map keeps iteration sorted and never moves
// nodes, so returned references stay stable as the map grows. Objects
// are heap-held via unique_ptr because Counter/Histogram are
// over-aligned (alignas(64) shards) and deliberately non-movable.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlive all threads
  return *r;
}

// Bit width of v: 0 for 0, otherwise floor(log2(v)) + 1.
size_t BucketOf(uint64_t v) {
  size_t b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
}

}  // namespace

size_t ThisThreadShard() {
  thread_local size_t shard = AssignShard();
  return shard;
}

void Histogram::Record(uint64_t sample) {
  Shard& s = shards_[ThisThreadShard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(sample, std::memory_order_relaxed);
  s.buckets[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (prev < sample &&
         !s.max.compare_exchange_weak(prev, sample,
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

uint64_t Histogram::Snapshot::PercentileUpperBound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; walk buckets until the
  // cumulative count reaches it.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Bucket b holds values of bit width b: [2^(b-1), 2^b).
      if (b == 0) return 0;
      if (b >= 64) return ~uint64_t{0};
      return (uint64_t{1} << b) - 1;
    }
  }
  return max;
}

Counter& GetCounter(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& GetHistogram(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<CounterValue> SnapshotCounters() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterValue> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    out.push_back({name, c->Value()});
  }
  return out;
}

std::vector<HistogramValue> SnapshotHistograms() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistogramValue> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    out.push_back({name, h->Snap()});
  }
  return out;
}

void ResetAllStats() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
}

}  // namespace sparsify::obs
