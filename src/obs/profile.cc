#include "src/obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

namespace sparsify::obs {
namespace {

double PercentileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  // Nearest-rank on the sorted sample; exact, since we keep every span.
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted_ms.size()));
  if (rank >= sorted_ms.size()) rank = sorted_ms.size() - 1;
  return sorted_ms[rank];
}

}  // namespace

std::vector<ProfileRow> BuildProfile(
    const std::vector<TraceEvent>& events) {
  struct Acc {
    std::vector<double> durations_ms;
    double total_seconds = 0;
  };
  std::map<std::pair<std::string, std::string>, Acc> by_key;
  for (const TraceEvent& ev : events) {
    Acc& acc = by_key[{ev.name, ev.detail}];
    double s = ev.DurationSeconds();
    acc.durations_ms.push_back(s * 1e3);
    acc.total_seconds += s;
  }

  std::map<std::string, double> stage_total;
  std::vector<ProfileRow> rows;
  rows.reserve(by_key.size());
  for (auto& [key, acc] : by_key) {
    std::sort(acc.durations_ms.begin(), acc.durations_ms.end());
    ProfileRow row;
    row.stage = key.first;
    row.detail = key.second;
    row.count = acc.durations_ms.size();
    row.total_seconds = acc.total_seconds;
    row.p50_ms = PercentileMs(acc.durations_ms, 0.50);
    row.p95_ms = PercentileMs(acc.durations_ms, 0.95);
    row.max_ms = acc.durations_ms.back();
    stage_total[row.stage] += row.total_seconds;
    rows.push_back(std::move(row));
  }

  std::sort(rows.begin(), rows.end(),
            [&stage_total](const ProfileRow& a, const ProfileRow& b) {
              double sa = stage_total[a.stage];
              double sb = stage_total[b.stage];
              if (sa != sb) return sa > sb;
              if (a.stage != b.stage) return a.stage < b.stage;
              if (a.total_seconds != b.total_seconds) {
                return a.total_seconds > b.total_seconds;
              }
              return a.detail < b.detail;
            });
  return rows;
}

void PrintProfile(const std::vector<ProfileRow>& rows,
                  const ProfileSummary& summary, std::ostream& out) {
  char line[256];
  double capacity = summary.wall_seconds * static_cast<double>(summary.threads);
  double util = capacity > 0 ? 100.0 * summary.pool_busy_seconds / capacity : 0;
  std::snprintf(line, sizeof(line),
                "# profile: wall=%.3fs threads=%zu pool_util=%.1f%%\n",
                summary.wall_seconds, summary.threads, util);
  out << line;

  size_t stage_w = 5, detail_w = 6;
  for (const ProfileRow& r : rows) {
    stage_w = std::max(stage_w, r.stage.size());
    detail_w = std::max(detail_w, r.detail.size());
  }
  std::snprintf(line, sizeof(line),
                "%-*s  %-*s  %7s  %9s  %9s  %9s  %9s  %9s\n",
                static_cast<int>(stage_w), "stage",
                static_cast<int>(detail_w), "detail", "count", "total_s",
                "p50_ms", "p95_ms", "max_ms", "units/s");
  out << line;
  for (const ProfileRow& r : rows) {
    double rate = summary.wall_seconds > 0
                      ? static_cast<double>(r.count) / summary.wall_seconds
                      : 0;
    std::snprintf(line, sizeof(line),
                  "%-*s  %-*s  %7llu  %9.3f  %9.3f  %9.3f  %9.3f  %9.1f\n",
                  static_cast<int>(stage_w), r.stage.c_str(),
                  static_cast<int>(detail_w),
                  r.detail.empty() ? "-" : r.detail.c_str(),
                  static_cast<unsigned long long>(r.count), r.total_seconds,
                  r.p50_ms, r.p95_ms, r.max_ms, rate);
    out << line;
  }
}

}  // namespace sparsify::obs
