// Counter / histogram registry: the always-on half of the observability
// layer (spans — the opt-in half — live in trace.h).
//
// Counters and histograms are SHARDED per thread in the MRV style
// (randomized/record-split hot values, SIGMOD'23): each object owns a
// fixed array of cache-line-sized slots, every thread is pinned to one
// slot round-robin on first use, and a hot-path increment is exactly one
// relaxed fetch_add on the thread's own line — no mutex, no contention,
// no allocation. Reads merge the slots, so Value()/Snapshot() are linear
// in the shard count but increments never wait on readers or on each
// other.
//
// Determinism contract: instrumentation only OBSERVES. Nothing in this
// header touches RNG streams or result values, so enabling, disabling,
// or reading metrics can never change a sweep's numeric output. Counter
// totals for a fixed workload are thread-count independent (the same
// work increments the same counters no matter which worker runs it);
// histogram COUNTS are too, though the recorded latencies of course vary
// run to run.
//
// Registry: GetCounter/GetHistogram intern objects by name and return
// stable references (never invalidated, never freed). Call sites cache
// the reference in a function-local static so the registry's mutex is
// touched once per call site, not per increment:
//
//   static obs::Counter& calls = obs::GetCounter("traversal.bfs_calls");
//   calls.Add();
#ifndef SPARSIFY_OBS_COUNTERS_H_
#define SPARSIFY_OBS_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sparsify::obs {

/// Number of per-thread slots of every counter/histogram. A power of two;
/// more threads than shards simply share slots (the merge stays exact —
/// fetch_add is atomic either way, sharing only reintroduces contention).
inline constexpr size_t kCounterShards = 16;

/// This thread's shard index: assigned round-robin on first use, cached
/// thread_local afterwards (one TLS read per increment).
size_t ThisThreadShard();

/// Monotonic sharded counter. Add is one relaxed fetch_add on the calling
/// thread's cache line; Value sums the shards.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[ThisThreadShard()].v.fetch_add(delta,
                                           std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

/// Log2-bucketed histogram of non-negative samples (latencies in ns,
/// sizes, ...). Bucket i holds samples whose bit width is i, i.e. values
/// in [2^(i-1), 2^i); Record is a handful of relaxed atomics on the
/// calling thread's shard. Count/sum/max are exact; percentiles resolve
/// to the containing power-of-two bucket (factor-of-2 accuracy — the
/// right tool for "did p95 regress 10x", not for microbenchmarks).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit widths 0..64

  void Record(uint64_t sample);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[kBuckets] = {};

    /// Upper bound of the bucket containing rank q*count (q in [0,1]).
    /// 0 when empty. The true sample is within 2x below the bound.
    uint64_t PercentileUpperBound(double q) const;
    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / count : 0.0;
    }
  };

  /// Merged view across shards.
  Snapshot Snap() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Shard shards_[kCounterShards];
};

/// Interns (on first use) and returns the named counter / histogram.
/// References are stable for the process lifetime. Names are dotted
/// lowercase paths ("engine.metric_units", "store.append_ns"); the _ns
/// suffix marks nanosecond latency histograms.
Counter& GetCounter(const std::string& name);
Histogram& GetHistogram(const std::string& name);

struct CounterValue {
  std::string name;
  uint64_t value = 0;
};

struct HistogramValue {
  std::string name;
  Histogram::Snapshot snap;
};

/// All registered counters / histograms, sorted by name. Counters with
/// value 0 are included (a registered name is part of the surface).
std::vector<CounterValue> SnapshotCounters();
std::vector<HistogramValue> SnapshotHistograms();

/// Zeroes every registered counter and histogram (names stay interned).
/// For test isolation and `sparsify_cli profile` run scoping; racing
/// Reset against live increments loses no more than the racing deltas.
void ResetAllStats();

}  // namespace sparsify::obs

#endif  // SPARSIFY_OBS_COUNTERS_H_
