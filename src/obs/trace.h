// Span tracer: RAII scoped spans recorded into per-thread buffers and
// drained into Chrome trace_event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev).
//
// Cost model, from cheapest to dearest:
//   - compiled out (SPARSIFY_DISABLE_TRACING): TRACE_SPAN expands to an
//     inert empty struct; literally zero code on the hot path.
//   - compiled in, tracing off (the default): one relaxed atomic load
//     per span site. No clock reads, no allocation — this is the mode
//     the zero-alloc bench gate runs in.
//   - tracing on (StartTracing / --trace=FILE): two steady_clock reads
//     per span plus an append to a thread-local buffer; detail/arg
//     strings are copied. Buffers grow unbounded until drained — spans
//     are for bounded runs (a sweep, a bench), not an always-on server
//     loop.
//
// Determinism contract: spans observe; they never consume RNG, never
// touch result values, and the trace file is a separate artifact — CSV
// exports are byte-identical with tracing on or off (tested).
//
// Usage:
//   TRACE_SPAN(span, "metric_unit");
//   if (span.active()) {
//     span.Detail(metric_name);           // aggregation key in `profile`
//     span.Arg("sparsifier", algo_name);  // extra context in the trace
//   }
//
// The span name must be a string literal (or otherwise outlive the
// drain): it is stored as a pointer. Detail/Arg values are copied.
#ifndef SPARSIFY_OBS_TRACE_H_
#define SPARSIFY_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/util/timer.h"

namespace sparsify::obs {

/// One completed span. Timestamps are Timer::NowNanos() values (shared
/// steady_clock domain); tid is a small per-buffer ordinal, stable for
/// the life of the thread.
struct TraceEvent {
  const char* name = "";  // stage name, e.g. "metric_unit"
  std::string detail;     // sub-key, e.g. the metric name; may be empty
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  int tid = 0;
  /// Extra (key, value) pairs emitted into the Chrome event's args.
  std::vector<std::pair<std::string, std::string>> args;

  double DurationSeconds() const {
    return static_cast<double>(end_ns - begin_ns) * 1e-9;
  }
};

/// True while spans are being recorded. One relaxed load; this is the
/// whole cost of a span site when tracing is off.
bool TracingEnabled();

/// Clears previously drained-able events and starts recording.
void StartTracing();

/// Stops recording. Spans already open finish recording normally (their
/// destructor checks nothing — they were armed at construction).
void StopTracing();

/// Moves all recorded events out of every thread buffer, sorted by
/// begin time. Call after the workload has quiesced (pool Wait()
/// returned); a span still open on another thread is not included.
std::vector<TraceEvent> DrainTrace();

namespace internal {
void RecordEvent(TraceEvent&& ev);
int ThisThreadTraceTid();
}  // namespace internal

/// RAII span. Arms itself at construction iff tracing is enabled; the
/// destructor stamps the end time and appends to this thread's buffer.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) {
      active_ = true;
      event_.name = name;
      event_.tid = internal::ThisThreadTraceTid();
      event_.begin_ns = Timer::NowNanos();
    }
  }

  ~ScopedSpan() {
    if (active_) {
      event_.end_ns = Timer::NowNanos();
      internal::RecordEvent(std::move(event_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Whether this span is recording. Guard Detail/Arg calls with this so
  /// their string construction is skipped when tracing is off.
  bool active() const { return active_; }

  void Detail(std::string detail) {
    if (active_) event_.detail = std::move(detail);
  }

  void Arg(std::string key, std::string value) {
    if (active_) {
      event_.args.emplace_back(std::move(key), std::move(value));
    }
  }

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Compile-time no-op stand-in: same surface, no members, no code.
struct NullSpan {
  explicit NullSpan(const char*) {}
  static constexpr bool active() { return false; }
  void Detail(const std::string&) {}
  void Arg(const std::string&, const std::string&) {}
};

#ifdef SPARSIFY_DISABLE_TRACING
#define TRACE_SPAN(var, name) ::sparsify::obs::NullSpan var(name)
#else
#define TRACE_SPAN(var, name) ::sparsify::obs::ScopedSpan var(name)
#endif

/// Writes events as Chrome trace_event JSON ({"traceEvents": [...]}).
/// Each span becomes a balanced B/E pair; `name` is the span name
/// verbatim (so tooling can select on it), detail and args go into the
/// begin event's args object. Timestamps are rebased onto the earliest
/// event and written in microseconds.
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);

/// WriteChromeTrace to a file path. Returns false (and writes nothing
/// durable) if the file cannot be opened.
bool WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                          const std::string& path);

}  // namespace sparsify::obs

#endif  // SPARSIFY_OBS_TRACE_H_
