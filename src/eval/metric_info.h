// Static registry of the 16 graph metrics the paper evaluates (Table 1),
// with their applicability flags to directed / weighted / unconnected
// graphs. `bench_tables` regenerates Table 1 from this registry.
#ifndef SPARSIFY_EVAL_METRIC_INFO_H_
#define SPARSIFY_EVAL_METRIC_INFO_H_

#include <string>
#include <vector>

namespace sparsify {

/// Tri-state applicability flag for Table 1.
enum class Applicability {
  kYes,       // check mark
  kNo,        // cross
  kIgnored,   // weight not used, same as unweighted (Table 1 dagger)
  kExcluded,  // infinite/degenerate pairs excluded (Table 1 double dagger)
};

/// One row of Table 1.
struct MetricInfo {
  std::string name;
  std::string group;  // Basic / Distance / Centrality / Clustering / App
  Applicability directed = Applicability::kYes;
  Applicability weighted = Applicability::kYes;
  Applicability unconnected = Applicability::kYes;
  std::string note;
};

/// All 16 metrics in Table 1 order.
std::vector<MetricInfo> AllMetricInfos();

/// Rendering helper for the table printer.
std::string ApplicabilityToString(Applicability a);

}  // namespace sparsify

#endif  // SPARSIFY_EVAL_METRIC_INFO_H_
