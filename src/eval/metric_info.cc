#include "src/eval/metric_info.h"

namespace sparsify {

std::vector<MetricInfo> AllMetricInfos() {
  using A = Applicability;
  return {
      {"Degree Dist.", "Basic", A::kYes, A::kIgnored, A::kYes, ""},
      {"Diameter", "Distance", A::kYes, A::kYes, A::kExcluded,
       "infinite pairs excluded"},
      {"Eccentricity", "Distance", A::kYes, A::kYes, A::kExcluded,
       "infinite pairs excluded"},
      {"APSP", "Distance", A::kYes, A::kYes, A::kExcluded,
       "infinite pairs excluded"},
      {"Betweenness Cent.", "Centrality", A::kYes, A::kYes, A::kYes, ""},
      {"Closeness Cent.", "Centrality", A::kYes, A::kYes, A::kYes, ""},
      {"Eigenvector Cent.", "Centrality", A::kYes, A::kYes, A::kYes,
       "left eigenvector for directed graphs"},
      {"Katz Cent.", "Centrality", A::kYes, A::kYes, A::kYes, ""},
      {"#Communities", "Clustering", A::kNo, A::kYes, A::kYes, ""},
      {"LCC", "Clustering", A::kYes, A::kIgnored, A::kYes, ""},
      {"MCC", "Clustering", A::kYes, A::kIgnored, A::kYes, ""},
      {"GCC", "Clustering", A::kYes, A::kIgnored, A::kYes, ""},
      {"Clustering F1 Sim", "Clustering", A::kNo, A::kYes, A::kYes, ""},
      {"PageRank", "Application", A::kYes, A::kYes, A::kYes, ""},
      {"Min-cut/Max-flow", "Application", A::kYes, A::kYes, A::kExcluded,
       "cross-community terminal pairs excluded"},
      {"GNN", "Application", A::kYes, A::kYes, A::kYes, ""},
  };
}

std::string ApplicabilityToString(Applicability a) {
  switch (a) {
    case Applicability::kYes:
      return "yes";
    case Applicability::kNo:
      return "no";
    case Applicability::kIgnored:
      return "ignored";
    case Applicability::kExcluded:
      return "excluded";
  }
  return "?";
}

}  // namespace sparsify
