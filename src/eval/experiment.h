// Experiment harness: the N-to-N sweep machinery of the paper's framework
// (section 3.2). Runs every requested sparsifier over the prune-rate grid
// 0.1..0.9, averaging non-deterministic sparsifiers over multiple runs and
// reporting the standard deviation, exactly as the paper's protocol
// prescribes (10 graphs per point for non-deterministic sparsifiers; the
// run count is configurable here because the full paper protocol is
// laptop-hostile).
#ifndef SPARSIFY_EVAL_EXPERIMENT_H_
#define SPARSIFY_EVAL_EXPERIMENT_H_

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/engine/batch_runner.h"
#include "src/graph/graph.h"
#include "src/sparsifiers/sparsifier.h"
#include "src/util/rng.h"

namespace sparsify {

/// Metric evaluated on (original, sparsified). Each evaluation receives
/// its own seeded rng stream so sampled metrics are reproducible.
///
/// Thread-safety contract (audited in tests/test_multi_metric.cc): the
/// engine invokes the callable from multiple worker threads at once —
/// concurrently across cells AND, in a multi-metric sweep, concurrently
/// with the cell's other metrics on the same shared subgraph. It must not
/// mutate state shared between invocations without synchronization
/// (capture by value, use thread_local scratch, or set
/// SweepConfig::num_threads = 1). During an engine-run evaluation
/// CurrentSubtaskPool() exposes the worker pool, so a metric may fan its
/// independent per-source work out via NestedParallelFor — such subtasks
/// must write disjoint slots and fold in a FIXED order (never by thread
/// count) to keep results bit-identical at any parallelism; see
/// ApproxBetweennessCentrality's fixed-batch partials for the pattern.
using MetricFn =
    std::function<double(const Graph& original, const Graph& sparsified,
                         Rng& rng)>;

/// One (sparsifier, prune rate) cell of a sweep.
struct SweepPoint {
  double requested_prune_rate = 0.0;
  double achieved_prune_rate = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  int runs = 0;
};

/// All points of one sparsifier across the prune-rate grid.
struct SweepSeries {
  std::string sparsifier;
  std::vector<SweepPoint> points;
};

/// Sweep configuration.
struct SweepConfig {
  std::vector<std::string> sparsifiers;  // short names; empty = all
  std::vector<double> prune_rates = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9};
  int runs_nondeterministic = 5;  // paper uses 10
  uint64_t seed = 42;
  // Worker threads for the batch engine; <= 0 selects the hardware
  // concurrency. Results are bit-identical at any thread count (every
  // cell's RNG stream derives from the cell's grid index).
  int num_threads = 0;
};

/// Builds the engine grid spec equivalent to `config` (threads excluded —
/// that is a runner property). The resumable sweep uses this to key store
/// cells against exactly the grid RunSweep would run.
BatchSpec ToBatchSpec(const SweepConfig& config);

/// Folds full-grid engine results (grid order, one entry per ExpandGrid
/// task) into per-sparsifier series: mean/stddev across runs per rate,
/// requested rate replaced by the achieved mean for fixed-output
/// algorithms. Shared by RunSweep and the resumable sweep so stored and
/// fresh cells reassemble identically.
std::vector<SweepSeries> FoldSweepResults(const SweepConfig& config,
                                          const std::vector<BatchResult>& results);

/// Runs the sweep of `metric` for every sparsifier in `config` on `g`,
/// evaluating the {sparsifier x prune rate x run} grid in parallel on
/// `config.num_threads` workers (engine/batch_runner.h); output is
/// bit-identical at any thread count.
///
/// Sparsifiers that require undirected input (SF, SP-t, ER) receive the
/// symmetrized graph when `g` is directed, mirroring the paper's
/// preprocessing (sections 3.1 and 4.5); the metric then also compares
/// against the symmetrized original. Sparsifiers without prune-rate control
/// (SF, SP-t) contribute a single point at their natural prune rate.
std::vector<SweepSeries> RunSweep(const Graph& g, const SweepConfig& config,
                                  const MetricFn& metric);

/// As above, but reuses `runner`'s thread pool (config.num_threads is
/// ignored). Callers sweeping many (dataset, metric) pairs — the full
/// N-to-N matrix — share one runner to avoid per-sweep pool churn.
std::vector<SweepSeries> RunSweep(const Graph& g, const SweepConfig& config,
                                  const MetricFn& metric,
                                  BatchRunner& runner);

/// Prints `series` as CSV rows:
/// sparsifier,prune_rate,achieved_prune_rate,value,stddev,runs.
void PrintSeriesCsv(std::ostream& os, const std::string& title,
                    const std::vector<SweepSeries>& series);

/// Prints `series` as a pivot table (rows = sparsifiers, columns = prune
/// rates) with an optional reference value line (the figures' green
/// "ground truth on the full graph" dashed line).
void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::string& value_name,
                      const std::vector<SweepSeries>& series,
                      std::optional<double> reference = std::nullopt);

}  // namespace sparsify

#endif  // SPARSIFY_EVAL_EXPERIMENT_H_
