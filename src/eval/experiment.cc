#include "src/eval/experiment.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "src/engine/batch_runner.h"
#include "src/util/stats.h"

namespace sparsify {

std::vector<SweepSeries> RunSweep(const Graph& g, const SweepConfig& config,
                                  const MetricFn& metric) {
  BatchRunner runner(config.num_threads);
  return RunSweep(g, config, metric, runner);
}

BatchSpec ToBatchSpec(const SweepConfig& config) {
  BatchSpec spec;
  spec.sparsifiers = config.sparsifiers;
  spec.prune_rates = config.prune_rates;
  spec.runs = config.runs_nondeterministic;
  spec.master_seed = config.seed;
  return spec;
}

std::vector<SweepSeries> RunSweep(const Graph& g, const SweepConfig& config,
                                  const MetricFn& metric,
                                  BatchRunner& runner) {
  return FoldSweepResults(config,
                          runner.Run(g, ToBatchSpec(config), metric));
}

std::vector<SweepSeries> FoldSweepResults(
    const SweepConfig& config, const std::vector<BatchResult>& results) {
  BatchSpec spec = ToBatchSpec(config);
  // Results arrive in grid order: sparsifier-major, then rate, then run.
  // Each requested entry's block size comes from ExpandGrid itself (on a
  // single-name spec), so the fold can never drift from the engine's
  // expansion; grouping within a block uses the tasks' own prune_rate.
  // One series per requested entry, even when a name is listed twice.
  std::vector<std::string> names =
      spec.sparsifiers.empty() ? SparsifierNames() : spec.sparsifiers;
  std::vector<SweepSeries> all_series;
  size_t i = 0;
  for (const std::string& name : names) {
    BatchSpec entry_spec = spec;
    entry_spec.sparsifiers = {name};
    size_t end = i + BatchRunner::ExpandGrid(entry_spec).size();
    bool fixed_output = CreateSparsifier(name)->Info().prune_rate_control ==
                        PruneRateControl::kNone;
    SweepSeries series;
    series.sparsifier = name;
    while (i < end) {
      // run == 0 marks the start of each (name, rate) block in ExpandGrid's
      // ordering; grouping on it (rather than rate equality) keeps duplicate
      // or NaN rates as separate points.
      double rate = results[i].task.prune_rate;
      std::vector<double> values;
      std::vector<double> achieved;
      do {
        values.push_back(results[i].value);
        achieved.push_back(results[i].achieved_prune_rate);
        ++i;
      } while (i < end && results[i].task.run != 0);
      SweepPoint point;
      point.requested_prune_rate = rate;
      point.mean = Mean(values);
      point.stddev = StdDev(values);
      point.achieved_prune_rate = Mean(achieved);
      point.runs = static_cast<int>(values.size());
      if (fixed_output) point.requested_prune_rate = point.achieved_prune_rate;
      series.points.push_back(point);
    }
    all_series.push_back(std::move(series));
  }
  return all_series;
}

void PrintSeriesCsv(std::ostream& os, const std::string& title,
                    const std::vector<SweepSeries>& series) {
  os << "# " << title << "\n";
  os << "sparsifier,prune_rate,achieved_prune_rate,value,stddev,runs\n";
  for (const SweepSeries& s : series) {
    for (const SweepPoint& p : s.points) {
      os << s.sparsifier << "," << p.requested_prune_rate << ","
         << p.achieved_prune_rate << "," << p.mean << "," << p.stddev << ","
         << p.runs << "\n";
    }
  }
}

void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::string& value_name,
                      const std::vector<SweepSeries>& series,
                      std::optional<double> reference) {
  os << "== " << title << " ==\n";
  if (reference.has_value()) {
    os << "(reference on full graph: " << *reference << ")\n";
  }
  // Column header from the union of requested rates.
  std::vector<double> rates;
  for (const SweepSeries& s : series) {
    for (const SweepPoint& p : s.points) {
      bool found = false;
      for (double r : rates) {
        if (std::abs(r - p.requested_prune_rate) < 1e-9) found = true;
      }
      if (!found) rates.push_back(p.requested_prune_rate);
    }
  }
  std::sort(rates.begin(), rates.end());
  os << std::setw(8) << value_name << " |";
  for (double r : rates) {
    os << std::setw(9) << std::fixed << std::setprecision(2) << r;
  }
  os << "\n";
  os << std::string(10 + rates.size() * 9, '-') << "\n";
  for (const SweepSeries& s : series) {
    os << std::setw(8) << s.sparsifier << " |";
    for (double r : rates) {
      const SweepPoint* found = nullptr;
      for (const SweepPoint& p : s.points) {
        if (std::abs(p.requested_prune_rate - r) < 1e-9) found = &p;
      }
      if (found != nullptr) {
        os << std::setw(9) << std::fixed << std::setprecision(3)
           << found->mean;
      } else {
        os << std::setw(9) << "-";
      }
    }
    os << "\n";
  }
  os << "\n";
}

}  // namespace sparsify
