#include "src/eval/experiment.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "src/util/stats.h"

namespace sparsify {

std::vector<SweepSeries> RunSweep(const Graph& g, const SweepConfig& config,
                                  const MetricFn& metric) {
  std::vector<std::string> names =
      config.sparsifiers.empty() ? SparsifierNames() : config.sparsifiers;
  Rng master(config.seed);

  Graph sym_holder;
  const Graph* symmetrized = nullptr;
  auto graph_for = [&](const SparsifierInfo& info) -> const Graph* {
    if (!g.IsDirected() || info.supports_directed) return &g;
    if (symmetrized == nullptr) {
      sym_holder = g.Symmetrized();
      symmetrized = &sym_holder;
    }
    return symmetrized;
  };

  std::vector<SweepSeries> all_series;
  for (const std::string& name : names) {
    std::unique_ptr<Sparsifier> sparsifier = CreateSparsifier(name);
    const SparsifierInfo& info = sparsifier->Info();
    const Graph* input = graph_for(info);
    SweepSeries series;
    series.sparsifier = name;

    bool fixed_output = info.prune_rate_control == PruneRateControl::kNone;
    std::vector<double> rates =
        fixed_output ? std::vector<double>{0.0} : config.prune_rates;
    int runs = info.deterministic ? 1 : config.runs_nondeterministic;

    for (double rate : rates) {
      SweepPoint point;
      point.requested_prune_rate = rate;
      std::vector<double> values;
      std::vector<double> achieved;
      for (int run = 0; run < runs; ++run) {
        Rng run_rng = master.Fork();
        Graph sparsified = sparsifier->Sparsify(*input, rate, run_rng);
        achieved.push_back(
            Sparsifier::AchievedPruneRate(*input, sparsified));
        Rng metric_rng = master.Fork();
        values.push_back(metric(*input, sparsified, metric_rng));
      }
      point.mean = Mean(values);
      point.stddev = StdDev(values);
      point.achieved_prune_rate = Mean(achieved);
      point.runs = runs;
      if (fixed_output) point.requested_prune_rate = point.achieved_prune_rate;
      series.points.push_back(point);
    }
    all_series.push_back(std::move(series));
  }
  return all_series;
}

void PrintSeriesCsv(std::ostream& os, const std::string& title,
                    const std::vector<SweepSeries>& series) {
  os << "# " << title << "\n";
  os << "sparsifier,prune_rate,achieved_prune_rate,value,stddev,runs\n";
  for (const SweepSeries& s : series) {
    for (const SweepPoint& p : s.points) {
      os << s.sparsifier << "," << p.requested_prune_rate << ","
         << p.achieved_prune_rate << "," << p.mean << "," << p.stddev << ","
         << p.runs << "\n";
    }
  }
}

void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::string& value_name,
                      const std::vector<SweepSeries>& series,
                      std::optional<double> reference) {
  os << "== " << title << " ==\n";
  if (reference.has_value()) {
    os << "(reference on full graph: " << *reference << ")\n";
  }
  // Column header from the union of requested rates.
  std::vector<double> rates;
  for (const SweepSeries& s : series) {
    for (const SweepPoint& p : s.points) {
      bool found = false;
      for (double r : rates) {
        if (std::abs(r - p.requested_prune_rate) < 1e-9) found = true;
      }
      if (!found) rates.push_back(p.requested_prune_rate);
    }
  }
  std::sort(rates.begin(), rates.end());
  os << std::setw(8) << value_name << " |";
  for (double r : rates) {
    os << std::setw(9) << std::fixed << std::setprecision(2) << r;
  }
  os << "\n";
  os << std::string(10 + rates.size() * 9, '-') << "\n";
  for (const SweepSeries& s : series) {
    os << std::setw(8) << s.sparsifier << " |";
    for (double r : rates) {
      const SweepPoint* found = nullptr;
      for (const SweepPoint& p : s.points) {
        if (std::abs(p.requested_prune_rate - r) < 1e-9) found = &p;
      }
      if (found != nullptr) {
        os << std::setw(9) << std::fixed << std::setprecision(3)
           << found->mean;
      } else {
        os << std::setw(9) << "-";
      }
    }
    os << "\n";
  }
  os << "\n";
}

}  // namespace sparsify
