#include "src/gnn/models.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace sparsify {

namespace {

Matrix ColSum(const Matrix& m) {
  Matrix out(1, m.cols);
  for (size_t i = 0; i < m.rows; ++i) {
    const double* row = m.Row(i);
    for (size_t j = 0; j < m.cols; ++j) out.At(0, j) += row[j];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// GraphSAGE

GraphSage::GraphSage(size_t in_dim, size_t hidden_dim, size_t num_classes,
                     Rng& rng, double lr)
    : w1_(2 * in_dim, hidden_dim),
      b1_(1, hidden_dim),
      w2_(2 * hidden_dim, num_classes),
      b2_(1, num_classes),
      opt_w1_(2 * in_dim, hidden_dim, lr),
      opt_b1_(1, hidden_dim, lr),
      opt_w2_(2 * hidden_dim, num_classes, lr),
      opt_b2_(1, num_classes, lr) {
  GlorotInit(&w1_, rng);
  GlorotInit(&w2_, rng);
}

Matrix GraphSage::Forward(const Graph& g, const Matrix& x) const {
  Matrix c0 = HConcat(x, MeanAggregate(g, x));
  Matrix h1 = MatMul(c0, w1_);
  AddBias(b1_, &h1);
  ReluInPlace(&h1);
  Matrix c1 = HConcat(h1, MeanAggregate(g, h1));
  Matrix logits = MatMul(c1, w2_);
  AddBias(b2_, &logits);
  return logits;
}

double GraphSage::TrainEpoch(const Graph& g, const Matrix& x,
                             const std::vector<int>& labels,
                             const std::vector<int>& train_rows) {
  // Forward with caches.
  Matrix c0 = HConcat(x, MeanAggregate(g, x));
  Matrix h1 = MatMul(c0, w1_);
  AddBias(b1_, &h1);
  ReluInPlace(&h1);
  Matrix c1 = HConcat(h1, MeanAggregate(g, h1));
  Matrix logits = MatMul(c1, w2_);
  AddBias(b2_, &logits);

  Matrix dlogits;
  double loss = SoftmaxCrossEntropy(logits, labels, train_rows, &dlogits);

  // Backward.
  Matrix dw2 = MatTMul(c1, dlogits);
  Matrix db2 = ColSum(dlogits);
  Matrix dc1 = MatMulT(dlogits, w2_);
  Matrix dh1_direct, dm1;
  HSplit(dc1, h1.cols, &dh1_direct, &dm1);
  Matrix dh1 = MeanAggregateTranspose(g, dm1);
  for (size_t i = 0; i < dh1.data.size(); ++i) {
    dh1.data[i] += dh1_direct.data[i];
  }
  ReluBackward(h1, &dh1);
  Matrix dw1 = MatTMul(c0, dh1);
  Matrix db1 = ColSum(dh1);

  opt_w2_.Step(dw2, &w2_);
  opt_b2_.Step(db2, &b2_);
  opt_w1_.Step(dw1, &w1_);
  opt_b1_.Step(db1, &b1_);
  return loss;
}

// ---------------------------------------------------------------------------
// ClusterGCN

ClusterGcn::ClusterGcn(size_t in_dim, size_t hidden_dim, size_t num_classes,
                       Rng& rng, double lr)
    : w1_(in_dim, hidden_dim),
      b1_(1, hidden_dim),
      w2_(hidden_dim, num_classes),
      b2_(1, num_classes),
      opt_w1_(in_dim, hidden_dim, lr),
      opt_b1_(1, hidden_dim, lr),
      opt_w2_(hidden_dim, num_classes, lr),
      opt_b2_(1, num_classes, lr) {
  GlorotInit(&w1_, rng);
  GlorotInit(&w2_, rng);
}

Matrix ClusterGcn::Forward(const Graph& g, const Matrix& x) const {
  Matrix a0 = GcnAggregate(g, x);
  Matrix h1 = MatMul(a0, w1_);
  AddBias(b1_, &h1);
  ReluInPlace(&h1);
  Matrix p1 = GcnAggregate(g, h1);
  Matrix logits = MatMul(p1, w2_);
  AddBias(b2_, &logits);
  return logits;
}

double ClusterGcn::TrainEpoch(const Graph& g, const Matrix& x,
                              const std::vector<int>& labels,
                              const std::vector<int>& train_rows,
                              const std::vector<std::vector<NodeId>>& batches) {
  std::vector<uint8_t> is_train(g.NumVertices(), 0);
  for (int r : train_rows) is_train[r] = 1;
  double total_loss = 0.0;
  int counted = 0;
  for (const std::vector<NodeId>& batch : batches) {
    InducedBatch ib = InduceBatch(g, x, labels, is_train, batch);
    if (ib.local_train_rows.empty()) continue;
    // Forward on the induced subgraph.
    Matrix a0 = GcnAggregate(ib.graph, ib.features);
    Matrix h1 = MatMul(a0, w1_);
    AddBias(b1_, &h1);
    ReluInPlace(&h1);
    Matrix p1 = GcnAggregate(ib.graph, h1);
    Matrix logits = MatMul(p1, w2_);
    AddBias(b2_, &logits);

    Matrix dlogits;
    total_loss += SoftmaxCrossEntropy(logits, ib.labels, ib.local_train_rows,
                                      &dlogits);
    ++counted;

    Matrix dw2 = MatTMul(p1, dlogits);
    Matrix db2 = ColSum(dlogits);
    Matrix dp1 = MatMulT(dlogits, w2_);
    Matrix dh1 = GcnAggregateTranspose(ib.graph, dp1);
    ReluBackward(h1, &dh1);
    Matrix dw1 = MatTMul(a0, dh1);
    Matrix db1 = ColSum(dh1);

    opt_w2_.Step(dw2, &w2_);
    opt_b2_.Step(db2, &b2_);
    opt_w1_.Step(dw1, &w1_);
    opt_b1_.Step(db1, &b1_);
  }
  return counted > 0 ? total_loss / counted : 0.0;
}

// ---------------------------------------------------------------------------
// Batching helpers

std::vector<std::vector<NodeId>> MakeClusterBatches(
    const std::vector<int>& cluster_labels, size_t min_batch_vertices) {
  int num_clusters = 0;
  for (int lab : cluster_labels) {
    num_clusters = std::max(num_clusters, lab + 1);
  }
  std::vector<std::vector<NodeId>> by_cluster(num_clusters);
  for (NodeId v = 0; v < cluster_labels.size(); ++v) {
    by_cluster[cluster_labels[v]].push_back(v);
  }
  std::vector<std::vector<NodeId>> batches;
  std::vector<NodeId> current;
  for (const std::vector<NodeId>& cluster : by_cluster) {
    current.insert(current.end(), cluster.begin(), cluster.end());
    if (current.size() >= min_batch_vertices) {
      batches.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    if (batches.empty()) {
      batches.push_back(std::move(current));
    } else {
      batches.back().insert(batches.back().end(), current.begin(),
                            current.end());
    }
  }
  return batches;
}

InducedBatch InduceBatch(const Graph& g, const Matrix& x,
                         const std::vector<int>& labels,
                         const std::vector<uint8_t>& is_train,
                         const std::vector<NodeId>& vertices) {
  InducedBatch ib;
  ib.global_ids = vertices;
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(vertices.size());
  for (NodeId i = 0; i < vertices.size(); ++i) local[vertices[i]] = i;
  std::vector<Edge> edges;
  for (NodeId i = 0; i < vertices.size(); ++i) {
    NodeId v = vertices[i];
    auto nodes = g.OutNeighborNodes(v);
    auto edge_ids = g.OutNeighborEdges(v);
    for (size_t ni = 0; ni < nodes.size(); ++ni) {
      NodeId u = nodes[ni];
      auto it = local.find(u);
      if (it == local.end()) continue;
      // Undirected canonical edges would otherwise be added twice.
      if (!g.IsDirected() && u < v) continue;
      edges.push_back({i, it->second, g.EdgeWeight(edge_ids[ni])});
    }
  }
  ib.graph = Graph::FromEdges(static_cast<NodeId>(vertices.size()),
                              std::move(edges), g.IsDirected(),
                              g.IsWeighted());
  ib.features = Matrix(vertices.size(), x.cols);
  ib.labels.resize(vertices.size());
  for (NodeId i = 0; i < vertices.size(); ++i) {
    std::copy(x.Row(vertices[i]), x.Row(vertices[i]) + x.cols,
              ib.features.Row(i));
    ib.labels[i] = labels[vertices[i]];
    if (is_train[vertices[i]]) {
      ib.local_train_rows.push_back(static_cast<int>(i));
    }
  }
  return ib;
}

}  // namespace sparsify
