// The two GNN models the paper evaluates (section 3.3.4): GraphSAGE
// (Hamilton et al., mean aggregator) and ClusterGCN-style GCN trained over
// cluster partitions. Both are 2-layer node classifiers trained with Adam
// and manual backprop on CPU.
//
// Experiment protocol (paper section 3.3): train on the SPARSIFIED graph,
// evaluate on the FULL graph — the accuracy drop measures how much
// label-relevant structure the sparsifier destroyed.
#ifndef SPARSIFY_GNN_MODELS_H_
#define SPARSIFY_GNN_MODELS_H_

#include <vector>

#include "src/gnn/aggregate.h"
#include "src/gnn/nn.h"
#include "src/graph/graph.h"

namespace sparsify {

/// Two-layer GraphSAGE with mean aggregation:
///   H1 = ReLU([X | mean_nbr(X)] W1 + b1)
///   Z  = [H1 | mean_nbr(H1)] W2 + b2
class GraphSage {
 public:
  GraphSage(size_t in_dim, size_t hidden_dim, size_t num_classes, Rng& rng,
            double lr = 1e-2);

  /// One full-batch epoch of training on `g`; returns the mean loss over
  /// `train_rows`.
  double TrainEpoch(const Graph& g, const Matrix& x,
                    const std::vector<int>& labels,
                    const std::vector<int>& train_rows);

  /// Logits for every vertex of `g`.
  Matrix Forward(const Graph& g, const Matrix& x) const;

 private:
  Matrix w1_, b1_, w2_, b2_;
  Adam opt_w1_, opt_b1_, opt_w2_, opt_b2_;
};

/// Two-layer GCN with D^{-1}(A+I) propagation, trained over cluster
/// partitions (ClusterGCN, Chiang et al.): each step runs forward/backward
/// on the subgraph induced by one batch of clusters, severing inter-batch
/// edges exactly as ClusterGCN does.
class ClusterGcn {
 public:
  ClusterGcn(size_t in_dim, size_t hidden_dim, size_t num_classes, Rng& rng,
             double lr = 1e-2);

  /// One epoch over all `batches` (each a list of vertex ids). Returns the
  /// mean loss over batches.
  double TrainEpoch(const Graph& g, const Matrix& x,
                    const std::vector<int>& labels,
                    const std::vector<int>& train_rows,
                    const std::vector<std::vector<NodeId>>& batches);

  /// Full-graph logits.
  Matrix Forward(const Graph& g, const Matrix& x) const;

 private:
  Matrix w1_, b1_, w2_, b2_;
  Adam opt_w1_, opt_b1_, opt_w2_, opt_b2_;
};

/// Groups cluster labels into batches of at least `min_batch_vertices`
/// vertices (ClusterGCN's stochastic multiple-partitions scheme,
/// deterministic variant: clusters are taken in label order).
std::vector<std::vector<NodeId>> MakeClusterBatches(
    const std::vector<int>& cluster_labels, size_t min_batch_vertices);

/// Subgraph of `g` induced by `vertices` with local re-indexing; also
/// returns the row-sliced feature/label views for the batch.
struct InducedBatch {
  Graph graph;
  Matrix features;
  std::vector<int> labels;
  std::vector<int> local_train_rows;
  std::vector<NodeId> global_ids;
};
InducedBatch InduceBatch(const Graph& g, const Matrix& x,
                         const std::vector<int>& labels,
                         const std::vector<uint8_t>& is_train,
                         const std::vector<NodeId>& vertices);

}  // namespace sparsify

#endif  // SPARSIFY_GNN_MODELS_H_
