// Synthetic node-classification data for the GNN experiments.
//
// The paper's GNN datasets (Reddit, ogbn-proteins) carry real node features
// and labels; our stand-ins synthesize both from the generator's planted
// communities: the label is the community modulo `num_classes`, and the
// features are a noisy class centroid. The noise level is chosen so that
// features alone are informative but graph structure adds accuracy — which
// is exactly the regime the paper's full-graph vs empty-graph band
// (Fig. 13) depicts.
#ifndef SPARSIFY_GNN_DATA_H_
#define SPARSIFY_GNN_DATA_H_

#include <vector>

#include "src/gnn/nn.h"
#include "src/graph/graph.h"

namespace sparsify {

/// A node-classification task.
struct NodeClassificationData {
  Matrix features;          // n x dim
  std::vector<int> labels;  // n, in [0, num_classes)
  int num_classes = 0;
  std::vector<int> train_rows;
  std::vector<int> test_rows;
};

/// Builds features/labels from community assignments. `noise` is the
/// standard deviation of the Gaussian perturbation around each class
/// centroid (centroids are random Gaussian vectors of norm ~1).
NodeClassificationData MakeNodeClassificationData(
    const std::vector<int>& communities, int num_classes, int feature_dim,
    double noise, double train_fraction, Rng& rng);

/// Accuracy of argmax predictions over `rows`.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels, const std::vector<int>& rows);

/// Macro-averaged one-vs-rest AUROC of the logits over `rows` (the paper
/// reports AUROC for ogbn-proteins). Classes absent from `rows` are
/// skipped.
double MacroAuroc(const Matrix& logits, const std::vector<int>& labels,
                  const std::vector<int>& rows);

}  // namespace sparsify

#endif  // SPARSIFY_GNN_DATA_H_
