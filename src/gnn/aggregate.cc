#include "src/gnn/aggregate.h"

#include <cassert>

namespace sparsify {

Matrix MeanAggregate(const Graph& g, const Matrix& x) {
  assert(x.rows == g.NumVertices());
  Matrix out(x.rows, x.cols);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborNodes(v);
    if (nbrs.empty()) continue;
    double inv = 1.0 / static_cast<double>(nbrs.size());
    double* orow = out.Row(v);
    for (NodeId u : nbrs) {
      const double* xrow = x.Row(u);
      for (size_t j = 0; j < x.cols; ++j) orow[j] += inv * xrow[j];
    }
  }
  return out;
}

Matrix MeanAggregateTranspose(const Graph& g, const Matrix& grad) {
  assert(grad.rows == g.NumVertices());
  Matrix out(grad.rows, grad.cols);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborNodes(v);
    if (nbrs.empty()) continue;
    double inv = 1.0 / static_cast<double>(nbrs.size());
    const double* grow = grad.Row(v);
    for (NodeId u : nbrs) {
      double* orow = out.Row(u);
      for (size_t j = 0; j < grad.cols; ++j) orow[j] += inv * grow[j];
    }
  }
  return out;
}

Matrix GcnAggregate(const Graph& g, const Matrix& x) {
  assert(x.rows == g.NumVertices());
  Matrix out(x.rows, x.cols);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborNodes(v);
    double inv = 1.0 / (static_cast<double>(nbrs.size()) + 1.0);
    double* orow = out.Row(v);
    const double* self = x.Row(v);
    for (size_t j = 0; j < x.cols; ++j) orow[j] += inv * self[j];
    for (NodeId u : nbrs) {
      const double* xrow = x.Row(u);
      for (size_t j = 0; j < x.cols; ++j) orow[j] += inv * xrow[j];
    }
  }
  return out;
}

Matrix GcnAggregateTranspose(const Graph& g, const Matrix& grad) {
  assert(grad.rows == g.NumVertices());
  Matrix out(grad.rows, grad.cols);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.OutNeighborNodes(v);
    double inv = 1.0 / (static_cast<double>(nbrs.size()) + 1.0);
    const double* grow = grad.Row(v);
    double* self = out.Row(v);
    for (size_t j = 0; j < grad.cols; ++j) self[j] += inv * grow[j];
    for (NodeId u : nbrs) {
      double* orow = out.Row(u);
      for (size_t j = 0; j < grad.cols; ++j) orow[j] += inv * grow[j];
    }
  }
  return out;
}

}  // namespace sparsify
