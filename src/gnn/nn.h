// Dense neural-network kernels for the CPU GNN substrate: a row-major
// matrix type, matmul variants, ReLU, softmax cross-entropy, and Adam.
//
// The paper trains GraphSAGE and ClusterGCN with PyG on an A40 GPU; this
// reproduction implements the same computations (mean-aggregation message
// passing + MLP + softmax classification) directly, sized for CPU training
// on the synthetic stand-in datasets (see DESIGN.md section 3).
#ifndef SPARSIFY_GNN_NN_H_
#define SPARSIFY_GNN_NN_H_

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace sparsify {

/// Row-major dense matrix.
struct Matrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> data;

  Matrix() = default;
  Matrix(size_t r, size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& At(size_t r, size_t c) { return data[r * cols + c]; }
  double At(size_t r, size_t c) const { return data[r * cols + c]; }
  double* Row(size_t r) { return data.data() + r * cols; }
  const double* Row(size_t r) const { return data.data() + r * cols; }
  void Zero() { std::fill(data.begin(), data.end(), 0.0); }
};

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatTMul(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulT(const Matrix& a, const Matrix& b);
/// Horizontal concatenation [A | B].
Matrix HConcat(const Matrix& a, const Matrix& b);
/// Splits the columns of `ab` back into two blocks of widths ca and cb.
void HSplit(const Matrix& ab, size_t ca, Matrix* a, Matrix* b);

/// In-place ReLU; returns the pre-activation copy needed for the backward
/// pass via the mask convention relu'(x) = [x > 0].
void ReluInPlace(Matrix* m);
/// grad *= [pre > 0] elementwise.
void ReluBackward(const Matrix& post_activation, Matrix* grad);

/// Adds row vector `bias` (1 x cols) to every row.
void AddBias(const Matrix& bias, Matrix* m);

/// Glorot-uniform initialization.
void GlorotInit(Matrix* m, Rng& rng);

/// Softmax cross-entropy over the rows listed in `rows`. Writes the
/// loss gradient (dL/dlogits, zero outside `rows`) into `grad` and returns
/// the mean loss. `labels[r]` is the class index of row r.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels,
                           const std::vector<int>& rows, Matrix* grad);

/// Row-wise argmax predictions.
std::vector<int> ArgmaxRows(const Matrix& logits);

/// Adam optimizer state for one parameter matrix.
class Adam {
 public:
  Adam(size_t rows, size_t cols, double lr = 1e-2, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  /// Applies one Adam update: param -= lr * mhat / (sqrt(vhat) + eps).
  void Step(const Matrix& grad, Matrix* param);

 private:
  Matrix m_, v_;
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
};

}  // namespace sparsify

#endif  // SPARSIFY_GNN_NN_H_
