#include "src/gnn/data.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sparsify {

NodeClassificationData MakeNodeClassificationData(
    const std::vector<int>& communities, int num_classes, int feature_dim,
    double noise, double train_fraction, Rng& rng) {
  const size_t n = communities.size();
  NodeClassificationData data;
  data.num_classes = num_classes;
  data.labels.resize(n);
  for (size_t v = 0; v < n; ++v) {
    data.labels[v] = communities[v] % num_classes;
  }
  // Random unit-ish centroids.
  Matrix centroids(num_classes, feature_dim);
  for (double& c : centroids.data) c = rng.NextGaussian();
  for (int k = 0; k < num_classes; ++k) {
    double norm = 0.0;
    for (int j = 0; j < feature_dim; ++j) {
      norm += centroids.At(k, j) * centroids.At(k, j);
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (int j = 0; j < feature_dim; ++j) centroids.At(k, j) /= norm;
  }
  data.features = Matrix(n, feature_dim);
  for (size_t v = 0; v < n; ++v) {
    const double* c = centroids.Row(data.labels[v]);
    double* f = data.features.Row(v);
    for (int j = 0; j < feature_dim; ++j) {
      f[j] = c[j] + noise * rng.NextGaussian();
    }
  }
  // Split.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  size_t num_train = static_cast<size_t>(train_fraction * n);
  data.train_rows.assign(order.begin(), order.begin() + num_train);
  data.test_rows.assign(order.begin() + num_train, order.end());
  return data;
}

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels,
                const std::vector<int>& rows) {
  if (rows.empty()) return 0.0;
  int correct = 0;
  for (int r : rows) {
    if (predictions[r] == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double MacroAuroc(const Matrix& logits, const std::vector<int>& labels,
                  const std::vector<int>& rows) {
  if (rows.empty()) return 0.5;
  double auc_sum = 0.0;
  int classes_counted = 0;
  std::vector<std::pair<double, int>> scored;  // (score, is_positive)
  for (size_t k = 0; k < logits.cols; ++k) {
    scored.clear();
    size_t pos = 0;
    for (int r : rows) {
      int is_pos = labels[r] == static_cast<int>(k) ? 1 : 0;
      pos += is_pos;
      scored.emplace_back(logits.At(r, k), is_pos);
    }
    size_t neg = scored.size() - pos;
    if (pos == 0 || neg == 0) continue;
    // Rank-sum AUROC with midrank tie handling.
    std::sort(scored.begin(), scored.end());
    double rank_sum_pos = 0.0;
    size_t i = 0;
    while (i < scored.size()) {
      size_t j = i;
      while (j < scored.size() && scored[j].first == scored[i].first) ++j;
      double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
      for (size_t t = i; t < j; ++t) {
        if (scored[t].second) rank_sum_pos += midrank;
      }
      i = j;
    }
    double auc = (rank_sum_pos - 0.5 * pos * (pos + 1.0)) /
                 (static_cast<double>(pos) * static_cast<double>(neg));
    auc_sum += auc;
    ++classes_counted;
  }
  return classes_counted > 0 ? auc_sum / classes_counted : 0.5;
}

}  // namespace sparsify
