// Graph message-passing aggregation operators shared by the GNN models.
#ifndef SPARSIFY_GNN_AGGREGATE_H_
#define SPARSIFY_GNN_AGGREGATE_H_

#include "src/gnn/nn.h"
#include "src/graph/graph.h"

namespace sparsify {

/// M = A_mean X where A_mean is the row-normalized adjacency (mean of
/// neighbor rows; zero row for isolated vertices). GraphSAGE's aggregator.
Matrix MeanAggregate(const Graph& g, const Matrix& x);

/// G_out = A_mean^T G — the adjoint of MeanAggregate, used in backprop.
Matrix MeanAggregateTranspose(const Graph& g, const Matrix& grad);

/// M = D^{-1}(A + I) X — GCN-style normalized aggregation with self loops
/// (ClusterGCN uses this propagation rule).
Matrix GcnAggregate(const Graph& g, const Matrix& x);

/// Adjoint of GcnAggregate.
Matrix GcnAggregateTranspose(const Graph& g, const Matrix& grad);

}  // namespace sparsify

#endif  // SPARSIFY_GNN_AGGREGATE_H_
