#include "src/gnn/nn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sparsify {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols == b.rows);
  Matrix c(a.rows, b.cols);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t k = 0; k < a.cols; ++k) {
      double aik = a.At(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  assert(a.rows == b.rows);
  Matrix c(a.cols, b.cols);
  for (size_t k = 0; k < a.rows; ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (size_t i = 0; i < a.cols; ++i) {
      double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  assert(a.cols == b.cols);
  Matrix c(a.rows, b.rows);
  for (size_t i = 0; i < a.rows; ++i) {
    const double* arow = a.Row(i);
    for (size_t j = 0; j < b.rows; ++j) {
      const double* brow = b.Row(j);
      double s = 0.0;
      for (size_t k = 0; k < a.cols; ++k) s += arow[k] * brow[k];
      c.At(i, j) = s;
    }
  }
  return c;
}

Matrix HConcat(const Matrix& a, const Matrix& b) {
  assert(a.rows == b.rows);
  Matrix c(a.rows, a.cols + b.cols);
  for (size_t i = 0; i < a.rows; ++i) {
    std::copy(a.Row(i), a.Row(i) + a.cols, c.Row(i));
    std::copy(b.Row(i), b.Row(i) + b.cols, c.Row(i) + a.cols);
  }
  return c;
}

void HSplit(const Matrix& ab, size_t ca, Matrix* a, Matrix* b) {
  assert(ab.cols >= ca);
  size_t cb = ab.cols - ca;
  *a = Matrix(ab.rows, ca);
  *b = Matrix(ab.rows, cb);
  for (size_t i = 0; i < ab.rows; ++i) {
    std::copy(ab.Row(i), ab.Row(i) + ca, a->Row(i));
    std::copy(ab.Row(i) + ca, ab.Row(i) + ab.cols, b->Row(i));
  }
}

void ReluInPlace(Matrix* m) {
  for (double& x : m->data) x = std::max(0.0, x);
}

void ReluBackward(const Matrix& post_activation, Matrix* grad) {
  assert(post_activation.data.size() == grad->data.size());
  for (size_t i = 0; i < grad->data.size(); ++i) {
    if (post_activation.data[i] <= 0.0) grad->data[i] = 0.0;
  }
}

void AddBias(const Matrix& bias, Matrix* m) {
  assert(bias.rows == 1 && bias.cols == m->cols);
  for (size_t i = 0; i < m->rows; ++i) {
    double* row = m->Row(i);
    for (size_t j = 0; j < m->cols; ++j) row[j] += bias.At(0, j);
  }
}

void GlorotInit(Matrix* m, Rng& rng) {
  double bound = std::sqrt(6.0 / static_cast<double>(m->rows + m->cols));
  for (double& x : m->data) x = (2.0 * rng.NextDouble() - 1.0) * bound;
}

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels,
                           const std::vector<int>& rows, Matrix* grad) {
  *grad = Matrix(logits.rows, logits.cols);
  if (rows.empty()) return 0.0;
  double loss = 0.0;
  double inv = 1.0 / static_cast<double>(rows.size());
  std::vector<double> p(logits.cols);
  for (int r : rows) {
    const double* row = logits.Row(r);
    double mx = *std::max_element(row, row + logits.cols);
    double z = 0.0;
    for (size_t j = 0; j < logits.cols; ++j) {
      p[j] = std::exp(row[j] - mx);
      z += p[j];
    }
    int y = labels[r];
    loss += -std::log(std::max(1e-300, p[y] / z));
    double* grow = grad->Row(r);
    for (size_t j = 0; j < logits.cols; ++j) {
      grow[j] = (p[j] / z - (static_cast<int>(j) == y ? 1.0 : 0.0)) * inv;
    }
  }
  return loss * inv;
}

std::vector<int> ArgmaxRows(const Matrix& logits) {
  std::vector<int> pred(logits.rows, 0);
  for (size_t i = 0; i < logits.rows; ++i) {
    const double* row = logits.Row(i);
    pred[i] = static_cast<int>(
        std::max_element(row, row + logits.cols) - row);
  }
  return pred;
}

Adam::Adam(size_t rows, size_t cols, double lr, double beta1, double beta2,
           double eps)
    : m_(rows, cols), v_(rows, cols), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {}

void Adam::Step(const Matrix& grad, Matrix* param) {
  assert(grad.data.size() == param->data.size());
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, t_);
  double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < grad.data.size(); ++i) {
    double gi = grad.data[i];
    m_.data[i] = beta1_ * m_.data[i] + (1.0 - beta1_) * gi;
    v_.data[i] = beta2_ * v_.data[i] + (1.0 - beta2_) * gi * gi;
    double mhat = m_.data[i] / bc1;
    double vhat = v_.data[i] / bc2;
    param->data[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace sparsify
