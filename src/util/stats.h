// Small statistics helpers shared by metrics and the evaluation harness.
#ifndef SPARSIFY_UTIL_STATS_H_
#define SPARSIFY_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace sparsify {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);

/// Median (averages the two middle elements for even sizes); 0 if empty.
double Median(std::vector<double> xs);

/// Bhattacharyya distance -ln(sum_i sqrt(p_i * q_i)) between two discrete
/// distributions given as histograms over the same bins. Histograms are
/// normalized internally; they need not sum to 1. Returns +inf when the
/// distributions have disjoint support. Used for the degree-distribution
/// metric (paper section 3.3.1).
double BhattacharyyaDistance(const std::vector<double>& p,
                             const std::vector<double>& q);

/// Accumulates a running mean/stddev (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double StdDev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_STATS_H_
