// Deterministic fault-injection: named failpoints on the engine's
// failure-critical paths (store append/replay/lock, ingest tmp
// write/rename/verify, pool task dispatch, engine unit execution).
//
// A failpoint site is one SPARSIFY_FAILPOINT("name") statement. Sites
// are free when nothing is armed — the macro compiles to a single
// relaxed atomic load, the same discipline as TRACE_SPAN — and only
// consult the (mutex-protected) site table while at least one policy is
// armed, i.e. under tests and torture runs.
//
// Arming: programmatically (fail::Arm / fail::ArmFromSpec) or through
// the SPARSIFY_FAILPOINTS environment variable (read by the CLI at
// startup via fail::ArmFromEnv), so a subprocess torture harness can
// inject faults into an unmodified binary.
//
// Spec grammar (';'-separated entries):
//   site=action[@trigger]
//   action   throw            throw fail::InjectedFault (permanent class)
//            throw-transient  throw TransientError (the retryable class)
//            abort            std::abort() — simulates a hard crash with
//                             buffers lost past the last flush
//            kill             raise(SIGKILL) — the torture harness's
//                             crash: no atexit, no stream flush, nothing
//            delay:MS         sleep MS milliseconds, then continue
//            hang             block until the ambient CancelToken
//                             (src/util/cancel.h) trips — then the
//                             cancellation propagates as its typed
//                             exception — or until every failpoint is
//                             disarmed (then continue). Makes deadline
//                             and watchdog paths testable without
//                             timing-flaky sleeps.
//   trigger  (none)           fire on every hit
//            @N               fire on exactly the Nth hit (1-based), once
//            @pP              fire per-hit with probability P in [0,1]
//            @pP/SEED         same, seeding the site's RNG with SEED
// Examples:
//   SPARSIFY_FAILPOINTS='store.append=kill@7'
//   SPARSIFY_FAILPOINTS='engine.metric_unit/degree=throw'
//   SPARSIFY_FAILPOINTS='engine.metric_unit=throw-transient@p0.3/42'
//
// Scoped sites: SPARSIFY_FAILPOINT_SCOPED(site, scope) evaluates the
// dynamic name "site/scope" first and falls back to the bare site, so a
// spec can target one metric ("engine.metric_unit/degree") or all of
// them ("engine.metric_unit").
//
// Determinism contract: failpoints never touch result values or the
// engine's RNG streams. Nth-hit triggers count per site under a lock,
// so with a single worker thread the Nth hit is the same hit every run;
// with many workers the hit ORDER varies but the set of sites hit does
// not. Probability triggers draw from a private per-site SplitMix64
// stream seeded by the spec, never from the engine's Rng.
#ifndef SPARSIFY_UTIL_FAILPOINT_H_
#define SPARSIFY_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/errors.h"

namespace sparsify::fail {

/// Thrown by the `throw` action: an injected permanent failure. Distinct
/// from TransientError so tests can assert which class fired.
class InjectedFault : public SparsifyError {
 public:
  explicit InjectedFault(const std::string& what) : SparsifyError(what) {}
};

enum class Action {
  kThrow,           // throw InjectedFault
  kThrowTransient,  // throw TransientError
  kAbort,           // std::abort()
  kKill,            // raise(SIGKILL)
  kDelay,           // sleep delay_ms, then continue
  kHang,            // block until cancelled or disarmed
};

/// When and what a failpoint does. Default-constructed: fire on every
/// hit, throwing InjectedFault.
struct Policy {
  Action action = Action::kThrow;
  // Trigger selection: nth > 0 fires on exactly the Nth hit (1-based,
  // once); otherwise probability >= 0 fires per-hit with that chance;
  // otherwise every hit fires.
  uint64_t nth = 0;
  double probability = -1.0;
  uint64_t seed = 0;         // probability stream seed
  uint64_t delay_ms = 0;     // kDelay only
};

/// Arms `site` with `policy` (replacing any existing policy for the
/// site and resetting its hit/fired counters).
void Arm(const std::string& site, const Policy& policy);

/// Disarms one site. Unknown sites are a no-op.
void Disarm(const std::string& site);

/// Disarms everything and resets all counters. Tests call this in
/// teardown so armed state never leaks across tests.
void DisarmAll();

/// Parses and arms a ';'-separated spec (grammar above). Returns the
/// number of sites armed. Throws std::invalid_argument on a malformed
/// spec — a typo in a torture run must abort loudly, not silently
/// disable the fault.
int ArmFromSpec(const std::string& spec);

/// Arms from the SPARSIFY_FAILPOINTS environment variable if set.
/// Returns the number of sites armed (0 when unset or empty).
int ArmFromEnv();

/// Times `site` was evaluated while armed (scoped lookups count under
/// the name that matched). 0 for never-hit or unknown sites.
uint64_t HitCount(const std::string& site);

/// Times `site`'s action actually fired.
uint64_t FiredCount(const std::string& site);

namespace internal {

// Count of armed sites; the macro's one relaxed load.
extern std::atomic<int> g_armed;

inline bool AnyArmed() {
  return g_armed.load(std::memory_order_relaxed) > 0;
}

// Slow path: looks the site up and applies its policy. `scope` may be
// nullptr; otherwise "site/scope" is consulted before the bare site.
void Evaluate(const char* site, const char* scope);

}  // namespace internal
}  // namespace sparsify::fail

/// A failpoint site. One relaxed load when nothing is armed anywhere.
#define SPARSIFY_FAILPOINT(site)                               \
  do {                                                         \
    if (::sparsify::fail::internal::AnyArmed())                \
      ::sparsify::fail::internal::Evaluate((site), nullptr);   \
  } while (0)

/// A failpoint site with a dynamic scope (e.g. the metric name): specs
/// may arm "site/scope" for one scope or "site" for all of them.
/// `scope` is a NUL-terminated C string, evaluated only when armed.
#define SPARSIFY_FAILPOINT_SCOPED(site, scope)                 \
  do {                                                         \
    if (::sparsify::fail::internal::AnyArmed())                \
      ::sparsify::fail::internal::Evaluate((site), (scope));   \
  } while (0)

#endif  // SPARSIFY_UTIL_FAILPOINT_H_
