// Typed error hierarchy: the library's failure classes.
//
// Every layer that can fail in a way a caller might handle differently
// throws one of these instead of a bare std::runtime_error, so the CLI
// can map uncaught exceptions to distinct documented exit codes (see
// sparsify_cli.h) and the engine can decide whether a failed unit is
// worth retrying. All classes derive from std::runtime_error, so code
// (and tests) written against the old untyped throws keeps working.
//
// Retry classification: TransientError marks failures where retrying the
// exact same computation may succeed (resource pressure, injected
// transient faults, interrupted syscalls). Everything else is permanent:
// retrying a deterministic computation that threw will throw again, so
// the engine records a typed error record instead of burning retries.
#ifndef SPARSIFY_UTIL_ERRORS_H_
#define SPARSIFY_UTIL_ERRORS_H_

#include <stdexcept>
#include <string>

namespace sparsify {

/// Root of the typed hierarchy. Catch-all handlers should still catch
/// std::exception — not everything in the process throws typed errors.
class SparsifyError : public std::runtime_error {
 public:
  explicit SparsifyError(const std::string& what)
      : std::runtime_error(what) {}
};

/// I/O failure: unreadable input, failed write/flush/fsync, rename.
class IoError : public SparsifyError {
 public:
  explicit IoError(const std::string& what) : SparsifyError(what) {}
};

/// An exclusive store operation (Compact, merge commit) found other LIVE
/// writers — processes holding unexpired leases on the store directory.
/// Concurrent appending is cooperative and never raises this; only
/// whole-store rewrites demand exclusivity.
class StoreLockHeldError : public SparsifyError {
 public:
  explicit StoreLockHeldError(const std::string& what)
      : SparsifyError(what) {}
};

/// Persistent data failed validation: bad header, unsupported version,
/// CRC mismatch, interior corruption, graph-cache hash mismatch.
class StoreCorruptError : public SparsifyError {
 public:
  explicit StoreCorruptError(const std::string& what)
      : SparsifyError(what) {}
};

/// Retryable failure class: the same computation, retried, may succeed.
/// The engine retries these with capped exponential backoff (bounded by
/// --max-unit-retries); every other exception type is permanent.
class TransientError : public SparsifyError {
 public:
  explicit TransientError(const std::string& what) : SparsifyError(what) {}
};

/// Cooperative cancellation tripped (src/util/cancel.h): a CancelToken
/// the computation was polling was cancelled. Not a retry candidate in
/// place — the engine either skips the unit (run-level cancellation,
/// nothing recorded, resume resubmits) or records it as a typed error.
class CancelledError : public SparsifyError {
 public:
  explicit CancelledError(const std::string& what) : SparsifyError(what) {}
};

/// A deadline expired (--unit-timeout, watchdog escalation, or a
/// run-level --deadline). Derives from CancelledError so generic
/// cancellation handlers see both; the engine records unit deadlines as
/// "deadline" error records, which resume treats as missing.
class DeadlineExceededError : public CancelledError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : CancelledError(what) {}
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_ERRORS_H_
