// CRC-32C (Castagnoli), the store's per-record integrity check.
//
// Software table-driven implementation (no SSE4.2 dependency — the
// store's appends are bounded by fsync, not by checksumming a ~200-byte
// JSONL line). The Castagnoli polynomial (0x1EDC6F41, reflected
// 0x82F63B78) is the variant used by iSCSI, ext4, and RocksDB; it
// detects all burst errors up to 32 bits and any odd number of bit
// flips, which is exactly the torn-write/bit-rot model the result store
// defends against.
#ifndef SPARSIFY_UTIL_CRC32C_H_
#define SPARSIFY_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sparsify {

/// CRC-32C of `len` bytes at `data` (init 0xFFFFFFFF, final xor-out —
/// the standard whole-message form; there is no streaming state to
/// resume because store records are checksummed line-at-a-time).
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_CRC32C_H_
