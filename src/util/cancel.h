// Cooperative cancellation and deadlines: the engine's defense against
// time. A CancelToken is a relaxed-atomic flag plus an optional deadline
// on the library's shared monotonic clock (Timer::NowNanos); long-running
// kernels poll it at round granularity through SPARSIFY_CHECK_CANCELLED,
// which follows the same one-load-when-unarmed discipline as TRACE_SPAN
// and SPARSIFY_FAILPOINT: when no token is installed anywhere in the
// process, a check is a single relaxed load of a global counter, so the
// hot paths pay nothing for carrying cancellation compiled in.
//
// Tokens form a parent chain (unit token -> run token): cancelling the
// run cancels every unit, while a unit's own deadline fires alone. A
// tripped check throws CancelledError or DeadlineExceededError
// (src/util/errors.h); the engine's per-unit catch ladder turns a unit
// deadline into a typed "deadline" error record (resume resubmits it)
// and a run-level cancellation into a skipped unit with no record at
// all. Cancellation never consumes engine RNG, so a cancelled-then-
// resumed sweep is bit-identical to a cold one.
//
// The file also hosts the two time-robustness services built on tokens:
// a watchdog thread that detects stuck units via the activity registry
// (dumping the obs counter table + in-flight activities to stderr before
// escalating), and the CLI's async-signal-safe SIGINT/SIGTERM-to-token
// bridge for graceful shutdown.
#ifndef SPARSIFY_UTIL_CANCEL_H_
#define SPARSIFY_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace sparsify {

/// Cooperative cancellation token: a lock-free flag + optional deadline.
/// Cancel() is async-signal-safe (one relaxed CAS on a lock-free atomic),
/// so a POSIX signal handler may cancel the token a sweep is watching.
/// Checks are wait-free; the deadline consults the clock only until it
/// latches. Tokens are passed by pointer and must outlive every checker.
class CancelToken {
 public:
  /// Why the token tripped. First cause wins and is sticky.
  enum class Reason : uint8_t { kNone = 0, kCancelled = 1, kDeadline = 2 };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe from any thread and from signal
  /// handlers. A later Cancel with a different reason is a no-op.
  /// const: checkers hold const pointers, and the watchdog escalates
  /// through one — the flag is the token's mutable-by-design half.
  void Cancel(Reason reason = Reason::kCancelled) const {
    uint8_t expected = 0;
    state_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                   std::memory_order_relaxed);
  }

  /// Sets an absolute deadline in Timer::NowNanos() nanoseconds
  /// (0 = none). Checks after the deadline trip with Reason::kDeadline.
  void SetDeadline(int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Sets the deadline `seconds` from now. Nonpositive durations are
  /// already expired: the very next check trips.
  void SetDeadlineAfter(double seconds);

  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Chains this token under `parent`: the parent tripping trips this
  /// token too (checked transitively). Set before sharing the token.
  void set_parent(const CancelToken* parent) { parent_ = parent; }
  const CancelToken* parent() const { return parent_; }

  /// True once cancelled, past deadline, or an ancestor tripped. A
  /// passed deadline latches into state so later checks skip the clock.
  bool Cancelled() const;

  /// This token's own trip reason (kNone if only an ancestor tripped).
  Reason reason() const {
    return static_cast<Reason>(state_.load(std::memory_order_relaxed));
  }

  /// The reason a check would observe: own reason, else the nearest
  /// tripped ancestor's, else kNone.
  Reason EffectiveReason() const;

  /// Throws DeadlineExceededError / CancelledError if tripped; no-op
  /// otherwise. This is what SPARSIFY_CHECK_CANCELLED calls when armed.
  void ThrowIfCancelled() const;

 private:
  // mutable: Cancelled() latches an expired deadline on const tokens.
  mutable std::atomic<uint8_t> state_{0};
  std::atomic<int64_t> deadline_ns_{0};
  const CancelToken* parent_ = nullptr;
};

/// The token the current thread's work should poll, or nullptr. Installed
/// by CancelScope; the engine installs one around every unit, and
/// NestedParallelFor re-installs the caller's token inside pool helpers.
const CancelToken* CurrentCancelToken();

/// RAII: installs `token` as the current thread's ambient cancel token
/// for the scope's lifetime and restores the previous one on exit.
/// Installing nullptr is a no-op scope (the global armed count does not
/// move), so unconditional scopes cost nothing when cancellation is off.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
  bool armed_;
};

namespace cancel_internal {

// Count of live non-null CancelScopes across all threads. Zero means no
// thread anywhere can observe a token, so checks reduce to this load.
extern std::atomic<int> g_armed;

inline bool AnyArmed() {
  return g_armed.load(std::memory_order_relaxed) > 0;
}

// Slow path: polls the current thread's token (if any) and throws on
// trip. Out of line so the macro's fast path stays a single load.
void CheckCurrent();

}  // namespace cancel_internal

/// Cooperative cancellation check for round loops. One relaxed load when
/// no token is installed process-wide; when armed, a thread-local read
/// plus a relaxed flag load (plus one clock read until a deadline
/// latches). Throws CancelledError / DeadlineExceededError on trip.
#define SPARSIFY_CHECK_CANCELLED()                      \
  do {                                                  \
    if (::sparsify::cancel_internal::AnyArmed()) {      \
      ::sparsify::cancel_internal::CheckCurrent();      \
    }                                                   \
  } while (0)

// ---------------------------------------------------------------------------
// Activity registry: what each thread is working on right now.
//
// The engine wraps every unit of work (score group, subgraph build,
// metric unit) in an ActivityScope; the watchdog samples the registry to
// find activities that have made no progress past the stall threshold.
// DrainTrace() only surfaces *completed* spans, so this registry is the
// source of truth for in-flight ("armed") work.
// ---------------------------------------------------------------------------

/// RAII: marks the current thread as executing `stage` (a string literal,
/// e.g. "metric_unit") on `detail` (copied), watchable via `token` (may
/// be null). Scopes nest; the enclosing activity is restored on exit.
class ActivityScope {
 public:
  ActivityScope(const char* stage, const std::string& detail,
                const CancelToken* token);
  ~ActivityScope();
  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

 private:
  const char* prev_stage_;
  std::string prev_detail_;
  const CancelToken* prev_token_;
  int64_t prev_start_ns_;
  void* slot_;
};

/// One in-flight activity as sampled by the watchdog / dump path.
struct ActivitySnapshot {
  std::string stage;
  std::string detail;
  double age_seconds = 0;
  bool cancellable = false;
};

/// Snapshot of every thread's current activity (threads with no active
/// ActivityScope are omitted). Exposed for tests and the watchdog dump.
std::vector<ActivitySnapshot> SnapshotActivities();

// ---------------------------------------------------------------------------
// Watchdog: detects units that stopped making progress.
// ---------------------------------------------------------------------------

struct WatchdogOptions {
  /// An activity older than this is considered stuck. Must be > 0.
  double stall_seconds = 300.0;
  /// Poll period; 0 derives stall_seconds / 4, clamped to [50ms, 5s].
  double poll_seconds = 0;
  /// After dumping, cancel the stuck activity's token with
  /// Reason::kDeadline so only that unit fails under FaultPolicy.
  bool cancel_stuck = true;
  /// Extra diagnostics appended to the dump (e.g. the CLI wires the
  /// ThreadPool's per-worker task/busy counters here). May be null.
  std::function<void(std::FILE*)> extra_dump;
};

/// Starts the singleton watchdog thread. On a stuck activity it dumps
/// the activity table and the obs counter/histogram snapshot to stderr
/// (once per stuck activity), then escalates per `cancel_stuck`. A
/// second Start while running is ignored.
void StartWatchdog(const WatchdogOptions& options);

/// Stops and joins the watchdog thread. No-op if not running.
void StopWatchdog();

/// Number of stuck-activity dumps emitted since process start (for
/// tests/CI smoke assertions).
int64_t WatchdogDumpCount();

// ---------------------------------------------------------------------------
// Signal-driven graceful shutdown (used by the CLI).
// ---------------------------------------------------------------------------

/// Installs SIGINT/SIGTERM handlers that cancel `token` (first signal;
/// a short notice is written to stderr with write(2)) and _exit(128+sig)
/// on the second signal. The handler body is async-signal-safe: one
/// relaxed CAS plus write(2). `token` must stay alive until
/// ClearSignalCancel() restores the previous handlers.
void InstallSignalCancel(CancelToken* token);

/// Restores the previously installed SIGINT/SIGTERM handlers and
/// forgets the token. Safe to call when nothing is installed.
void ClearSignalCancel();

/// The signal number that triggered cancellation (0 if none yet). Reset
/// by InstallSignalCancel.
int SignalCancelSigno();

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_CANCEL_H_
